#!/usr/bin/env bash
# Tier-1 verify plus sanitizer builds of the concurrency-adjacent code:
# an AddressSanitizer pass over the memory-lifetime hot spots and a
# ThreadSanitizer pass over the MVCC / multi-instance scheduler suites.
# Run from the repository root:
#
#   scripts/check.sh               # regular build + full ctest, then ASan + TSan
#   SKIP_ASAN=1 scripts/check.sh   # skip the ASan section
#   SKIP_TSAN=1 scripts/check.sh   # skip the TSan section
set -euo pipefail
cd "$(dirname "$0")/.."

echo "== tier-1: regular build + ctest =="
cmake -B build -S .
cmake --build build -j
ctest --test-dir build --output-on-failure -j

if [[ "${SKIP_ASAN:-0}" != "1" ]]; then
  echo "== ASan: sanitized build + obs/integration/plan tests =="
  cmake -B build-asan -S . -DSQLFLOW_SANITIZE=address
  cmake --build build-asan -j --target sqlflow_obs_tests \
    sqlflow_integration_tests sqlflow_sql_tests \
    sqlflow_sql_range_tests sqlflow_sql_fuzz_tests sqlflow_vec_exec_tests \
    sqlflow_chaos_tests sqlflow_introspect_tests \
    sqlflow_mvcc_tests sqlflow_concurrency_tests \
    sqlflow_durability_tests sqlflow_net_tests pattern_matrix
  ./build-asan/tests/sqlflow_obs_tests
  ./build-asan/tests/sqlflow_integration_tests
  # The optimizer differential battery (index/hash-join/plan-cache paths
  # exercise raw slot bookkeeping — worth the sanitized pass).
  ./build-asan/tests/sqlflow_sql_tests \
    --gtest_filter='PlansTest.*:LookupKeyTest.*'
  # Range/boundary semantics + the index-consistency property battery,
  # then the 600-query differential fuzzer (ordered-map slot vectors get
  # spliced on every DML — exactly the code ASan should watch).
  ./build-asan/tests/sqlflow_sql_range_tests
  # Four-way differential fuzzer (optimizer × batch) — the vectorized
  # pipeline borrows row storage and string pointers in place, so the
  # 600-query battery runs sanitized in all four configurations.
  ./build-asan/tests/sqlflow_sql_fuzz_tests
  # Columnar batch primitives and window-boundary differentials: null
  # bitmaps, selection compaction, kNullSlot padded reads — raw index
  # arithmetic over borrowed vectors, exactly ASan's beat.
  ./build-asan/tests/sqlflow_vec_exec_tests
  # Fault injection, retry replay, compensation, and the rollback
  # invariant — transaction undo logs and re-executed statements are
  # fresh memory-lifetime territory, so the whole suite runs sanitized.
  ./build-asan/tests/sqlflow_chaos_tests
  # Introspection surface: EXPLAIN ANALYZE profiling hooks, sys.* virtual
  # table materialization, and the synthetic chaos history generator all
  # hand rows across layer boundaries — run the battery sanitized.
  ./build-asan/tests/sqlflow_introspect_tests
  # Cross-layer chaos sweep: all fault layers (statement, mid-statement
  # partial writes, service invoke + adapter bridge) armed at five
  # seeds; Table II and the order-process confirmations must stay
  # byte-identical, with mid-statement rollback running under ASan.
  for seed in 1 2 3 4 5; do
    ./build-asan/examples/pattern_matrix --chaos="$seed" > /dev/null
  done
  # The layer filter must hold the invariant with each layer alone.
  ./build-asan/examples/pattern_matrix --chaos=1 --chaos-sites=mid > /dev/null
  ./build-asan/examples/pattern_matrix --chaos=1 --chaos-sites=service \
    --chaos-prob=0.3 > /dev/null
  # MVCC snapshot isolation and the deterministic interleaving harness
  # (five-seed sweeps live inside the suites) — sanitized for memory
  # lifetime first; the TSan section below covers the data races.
  ./build-asan/tests/sqlflow_mvcc_tests
  ./build-asan/tests/sqlflow_concurrency_tests
  # Crash-recovery sweep: WAL replay, torn-tail truncation, snapshot
  # load, and workflow rehydration all re-read bytes the previous
  # incarnation wrote — the five-seed kill-at-LSN matrices live inside
  # the suite, so the whole durability battery runs sanitized.
  ./build-asan/tests/sqlflow_durability_tests
  # Wire protocol: frame codec buffers, per-connection sessions handed
  # between reader and worker threads, the protocol-hardening battery
  # (malformed frames, CRC flips, half-closes), and the five-seed
  # network-fault + server-crash chaos matrices — socket-lifetime and
  # buffer arithmetic are exactly ASan's beat.
  ./build-asan/tests/sqlflow_net_tests
fi

if [[ "${SKIP_TSAN:-0}" != "1" ]]; then
  echo "== TSan: sanitized build + mvcc/conc/chaos/fuzz suites =="
  cmake -B build-tsan -S . -DSQLFLOW_SANITIZE=thread
  cmake --build build-tsan -j --target sqlflow_mvcc_tests \
    sqlflow_concurrency_tests sqlflow_chaos_tests sqlflow_sql_fuzz_tests \
    sqlflow_durability_tests sqlflow_net_tests
  # The free-running worker pool and the concurrent fuzz replay are the
  # genuinely racy schedules; mvcc + chaos pin the lock discipline of
  # the statement latch, version stash, and fault injector.
  ./build-tsan/tests/sqlflow_mvcc_tests
  ./build-tsan/tests/sqlflow_concurrency_tests
  ./build-tsan/tests/sqlflow_chaos_tests
  ./build-tsan/tests/sqlflow_sql_fuzz_tests \
    --gtest_filter='SqlFuzzTest.ConcurrentReplayMatchesSingleThreadedOracle'
  # Durability under TSan: group commit batches appends from concurrent
  # connections behind the WAL mutex, and the cross-connection fuzz
  # replay (above) plus the journal/resume paths share that lock with
  # the statement latch — run the suite to pin the discipline.
  ./build-tsan/tests/sqlflow_durability_tests
  # The server is the raciest schedule in the tree: reader threads, a
  # shared worker pool, per-connection write mutexes, admission gates
  # on atomics, and the group-commit coalescing wait all interleave
  # for real under the chaos matrices — run the suite to pin them.
  ./build-tsan/tests/sqlflow_net_tests
fi

echo "== bench smoke: sql plans + range + exec + chaos + introspect + conc + dur + server =="
./build/bench/bench_sql_plans --quick > /dev/null
./build/bench/bench_sql_range --quick > /dev/null
./build/bench/bench_sql_exec --quick > /dev/null
./build/bench/bench_chaos --quick > /dev/null
./build/bench/bench_introspect --quick > /dev/null
./build/bench/bench_concurrency --quick > /dev/null
./build/bench/bench_durability --quick > /dev/null
# The server smoke also enforces the overload envelope: the binary
# aborts if the 2x-admission run sees a non-transient failure or the
# server is not serving afterwards.
./build/bench/bench_server --quick > /dev/null

echo "== chaos smoke: Table II invariant under seed 1 =="
./build/examples/pattern_matrix --chaos=1 > /dev/null

echo "== metrics dump smoke: registry JSON lands on disk =="
metrics_tmp="$(mktemp)"
./build/examples/pattern_matrix --metrics="$metrics_tmp" > /dev/null
grep -q '"sql.plan.' "$metrics_tmp"
rm -f "$metrics_tmp"

echo "== all checks passed =="
