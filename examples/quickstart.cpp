// Quickstart: the three SQL-integration styles in one file.
//
// Builds a tiny product database, then issues the same query three ways:
//  1. IBM BIS style   — SQL activity + set references (data stays external)
//  2. Microsoft WF    — SqlDatabase activity materializing a DataSet
//  3. Oracle SOA      — assign activity calling ora:query-database
//
// Run:  ./quickstart

#include <cstdio>

#include "bis/retrieve_set_activity.h"
#include "bis/sql_activity.h"
#include "dataset/data_set.h"
#include "rowset/xml_rowset.h"
#include "soa/xpath_extensions.h"
#include "wf/sql_database_activity.h"
#include "wfc/engine.h"
#include "xml/serializer.h"

using namespace sqlflow;

namespace {

Status RunQuickstart() {
  wfc::WorkflowEngine engine("quickstart");

  // --- substrate: an in-memory SQL database --------------------------------
  SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                           engine.data_sources().Open("memdb://shop"));
  SQLFLOW_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE TABLE Products (
      ProductID INTEGER PRIMARY KEY,
      Name      VARCHAR(40) NOT NULL,
      Price     DOUBLE
    );
    INSERT INTO Products VALUES
      (1, 'bolt', 0.10), (2, 'nut', 0.05), (3, 'washer', 0.01),
      (4, 'screw', 0.12), (5, 'anchor', 0.50);
  )sql"));

  constexpr const char* kQuery =
      "SELECT Name, Price FROM Products WHERE Price >= 0.10 "
      "ORDER BY Price DESC";

  // --- 1. IBM BIS style ------------------------------------------------------
  {
    bis::SqlActivity::Config sql_config;
    sql_config.data_source_variable = "DS";
    sql_config.statement = kQuery;
    sql_config.result_set_reference = "SR_Result";
    bis::RetrieveSetActivity::Config retrieve_config;
    retrieve_config.data_source_variable = "DS";
    retrieve_config.set_reference = "SR_Result";
    retrieve_config.set_variable = "SV_Result";
    std::vector<wfc::ActivityPtr> steps{
        std::make_shared<bis::SqlActivity>("SQL", sql_config),
        std::make_shared<bis::RetrieveSetActivity>("Retrieve",
                                                   retrieve_config)};
    auto definition = std::make_shared<wfc::ProcessDefinition>(
        "bis-style", std::make_shared<wfc::SequenceActivity>(
                         "main", std::move(steps)));
    definition->DeclareVariable(
        "DS", wfc::VarValue(wfc::ObjectPtr(
                  std::make_shared<bis::DataSourceVariable>(
                      "memdb://shop"))));
    definition->DeclareVariable(
        "SR_Result",
        wfc::VarValue(wfc::ObjectPtr(std::make_shared<bis::SetReference>(
            bis::SetReference::Kind::kResult, "PriceyProducts"))));
    engine.DeployOrReplace(definition);

    SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                             engine.RunProcess("bis-style"));
    SQLFLOW_RETURN_IF_ERROR(result.status);
    SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                             result.variables.GetXml("SV_Result"));
    std::printf("== IBM BIS style ==\n");
    std::printf("external result table: PriceyProducts (%zu rows)\n",
                db->catalog().FindTable("PriceyProducts")->row_count());
    std::printf("materialized XML RowSet:\n%s\n",
                xml::Serialize(*rowset, /*pretty=*/true).c_str());
  }

  // --- 2. Microsoft WF style ---------------------------------------------------
  {
    wf::SqlDatabaseActivity::Config config;
    config.connection_string = "memdb://shop";
    config.statement = kQuery;
    config.result_variable = "DS_Result";
    auto definition = std::make_shared<wfc::ProcessDefinition>(
        "wf-style",
        std::make_shared<wf::SqlDatabaseActivity>("SQLDatabase", config));
    engine.DeployOrReplace(definition);

    SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                             engine.RunProcess("wf-style"));
    SQLFLOW_RETURN_IF_ERROR(result.status);
    SQLFLOW_ASSIGN_OR_RETURN(
        std::shared_ptr<dataset::DataSet> data_set,
        result.variables.GetObjectAs<dataset::DataSet>("DS_Result"));
    SQLFLOW_ASSIGN_OR_RETURN(dataset::DataTablePtr table,
                             data_set->SoleTable());
    std::printf("== Microsoft WF style ==\n%s\n%s\n",
                data_set->Describe().c_str(),
                table->ToResultSet().ToAsciiTable().c_str());
  }

  // --- 3. Oracle SOA style -----------------------------------------------------
  {
    soa::SoaConfig soa_config;
    soa_config.data_sources = &engine.data_sources();
    soa_config.default_connection = "memdb://shop";
    SQLFLOW_RETURN_IF_ERROR(soa::RegisterSoaXPathExtensions(
        &engine.xpath_functions(), soa_config));

    auto assign = std::make_shared<wfc::AssignActivity>("Assign");
    assign->CopyExpr(std::string("ora:query-database('") + kQuery + "')",
                     "RS");
    assign->CopyExpr("ora:lookup-table('Price', 'Products', 'Name', "
                     "'anchor')",
                     "AnchorPrice");
    auto definition =
        std::make_shared<wfc::ProcessDefinition>("soa-style", assign);
    engine.DeployOrReplace(definition);

    SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                             engine.RunProcess("soa-style"));
    SQLFLOW_RETURN_IF_ERROR(result.status);
    SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                             result.variables.GetXml("RS"));
    SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet back,
                             rowset::FromRowSet(rowset));
    SQLFLOW_ASSIGN_OR_RETURN(Value anchor,
                             result.variables.GetScalar("AnchorPrice"));
    std::printf("== Oracle SOA style ==\n%s", back.ToAsciiTable().c_str());
    std::printf("ora:lookup-table('Price','Products','Name','anchor') = "
                "%s\n",
                anchor.ToString().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunQuickstart();
  if (!st.ok()) {
    std::fprintf(stderr, "quickstart failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nquickstart OK\n");
  return 0;
}
