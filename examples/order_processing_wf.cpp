// Fig. 6 — the sample order workflow realized with the Microsoft WF
// analogue:
//
//   SQLDatabase₁ (query, automatic materialization into a DataSet) →
//   while with ADO.NET-style code condition → invoke OrderFromSupplier →
//   SQLDatabase₂ (INSERT confirmation).
//
// Run:  ./order_processing_wf [order_count] [item_types]

#include <cstdio>
#include <cstdlib>

#include "workflows/order_process.h"

using namespace sqlflow;

int main(int argc, char** argv) {
  patterns::OrdersScenario scenario;
  if (argc > 1) scenario.order_count = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) scenario.item_types = std::strtoul(argv[2], nullptr, 10);

  auto fixture = workflows::MakeWfOrderFixture(scenario);
  if (!fixture.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  auto result = fixture->engine->RunProcess(workflows::kWfOrderProcess);
  if (!result.ok() || !result->status.ok()) {
    const Status& st = result.ok() ? result->status : result.status();
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("audit trail (runtime tracking service):\n%s\n",
              result->audit.ToString().c_str());
  auto confirmations = workflows::ReadConfirmations(fixture->db.get());
  std::printf("OrderConfirmations:\n%s",
              confirmations->ToAsciiTable().c_str());
  return 0;
}
