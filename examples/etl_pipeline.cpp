// A small ETL flow built from the paper's building blocks: extract from
// an operational database, transform in the process space (the data
// cache), and load into a warehouse inside one atomic SQL sequence —
// the scenario Sec. II motivates ("data management tasks expressed via
// SQL explicitly within the process logic").
//
//   SQL (aggregate)  →  retrieve set  →  snippet (derive a rating)  →
//   atomic SQL sequence { DELETE old snapshot; INSERT per row }
//
// Run:  ./etl_pipeline

#include <cstdio>

#include "bis/atomic_sql_sequence.h"
#include "bis/retrieve_set_activity.h"
#include "bis/sql_activity.h"
#include "rowset/xml_rowset.h"
#include "wfc/engine.h"

using namespace sqlflow;

namespace {

Status RunEtl() {
  wfc::WorkflowEngine engine("etl");

  // Operational source.
  SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> ops,
                           engine.data_sources().Open("memdb://ops"));
  SQLFLOW_RETURN_IF_ERROR(ops->ExecuteScript(R"sql(
    CREATE TABLE Sales (
      SaleID INTEGER PRIMARY KEY,
      Region VARCHAR(10) NOT NULL,
      Amount DOUBLE NOT NULL
    );
    INSERT INTO Sales VALUES
      (1, 'north', 120.0), (2, 'north', 80.0), (3, 'south', 400.0),
      (4, 'south', 150.0), (5, 'west', 20.0), (6, 'west', 10.0),
      (7, 'north', 300.0);
  )sql"));

  // Warehouse target.
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<sql::Database> warehouse,
      engine.data_sources().Open("memdb://warehouse"));
  SQLFLOW_RETURN_IF_ERROR(warehouse->ExecuteScript(R"sql(
    CREATE TABLE RegionStats (
      Region VARCHAR(10) PRIMARY KEY,
      Total  DOUBLE,
      Rating VARCHAR(10)
    );
    INSERT INTO RegionStats VALUES ('stale', 0.0, 'old');
  )sql"));

  // -- Extract: aggregate in the source, result stays external. --------------
  bis::SqlActivity::Config extract;
  extract.data_source_variable = "DS_Ops";
  extract.statement =
      "SELECT Region, SUM(Amount) AS Total FROM Sales "
      "GROUP BY Region ORDER BY Region";
  extract.result_set_reference = "SR_Agg";

  bis::RetrieveSetActivity::Config retrieve;
  retrieve.data_source_variable = "DS_Ops";
  retrieve.set_reference = "SR_Agg";
  retrieve.set_variable = "SV_Agg";

  // -- Transform: derive a rating per row in the process-space cache. ---------
  auto transform = std::make_shared<wfc::SnippetActivity>(
      "Transform", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                                 ctx.variables().GetXml("SV_Agg"));
        size_t rows = rowset::RowCount(rowset);
        for (size_t r = 0; r < rows; ++r) {
          SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row,
                                   rowset::GetRow(rowset, r));
          SQLFLOW_ASSIGN_OR_RETURN(Value total,
                                   rowset::GetField(row, "Total"));
          SQLFLOW_ASSIGN_OR_RETURN(double amount, total.AsDouble());
          const char* rating = amount >= 400   ? "gold"
                               : amount >= 100 ? "silver"
                                               : "bronze";
          // Tuple IUD on the cache: extend each row with the rating.
          xml::NodePtr cell = row->AddElement("Rating", rating);
          cell->SetAttribute("type", "STRING");
        }
        return Status::OK();
      });

  // -- Load: one transaction against the warehouse. ----------------------------
  bis::SqlActivity::Config clear;
  clear.data_source_variable = "DS_Warehouse";
  clear.statement = "DELETE FROM RegionStats";

  auto load_rows = std::make_shared<wfc::SnippetActivity>(
      "LoadRows", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(
            std::shared_ptr<sql::Database> db,
            bis::ResolveDataSource(ctx, "DS_Warehouse"));
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                                 ctx.variables().GetXml("SV_Agg"));
        rowset::RowSetCursor cursor(rowset);
        while (cursor.HasNext()) {
          SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row, cursor.Next());
          sql::Params params;
          SQLFLOW_ASSIGN_OR_RETURN(Value region,
                                   rowset::GetField(row, "Region"));
          SQLFLOW_ASSIGN_OR_RETURN(Value total,
                                   rowset::GetField(row, "Total"));
          SQLFLOW_ASSIGN_OR_RETURN(Value rating,
                                   rowset::GetField(row, "Rating"));
          params.Add(region).Add(total).Add(rating);
          auto result = db->Execute(
              "INSERT INTO RegionStats VALUES (?, ?, ?)", params);
          if (!result.ok()) return result.status();
        }
        return Status::OK();
      });

  auto load = std::make_shared<bis::AtomicSqlSequence>(
      "AtomicLoad", "DS_Warehouse",
      std::vector<wfc::ActivityPtr>{
          std::make_shared<bis::SqlActivity>("ClearSnapshot", clear),
          load_rows});

  std::vector<wfc::ActivityPtr> steps{
      std::make_shared<bis::SqlActivity>("Extract", extract),
      std::make_shared<bis::RetrieveSetActivity>("Retrieve", retrieve),
      transform, load};
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      "etl", std::make_shared<wfc::SequenceActivity>("main",
                                                     std::move(steps)));
  definition->DeclareVariable(
      "DS_Ops", wfc::VarValue(wfc::ObjectPtr(
                    std::make_shared<bis::DataSourceVariable>(
                        "memdb://ops"))));
  definition->DeclareVariable(
      "DS_Warehouse",
      wfc::VarValue(wfc::ObjectPtr(
          std::make_shared<bis::DataSourceVariable>(
              "memdb://warehouse"))));
  definition->DeclareVariable(
      "SR_Agg",
      wfc::VarValue(wfc::ObjectPtr(std::make_shared<bis::SetReference>(
          bis::SetReference::Kind::kResult, "AggSnapshot"))));
  SQLFLOW_RETURN_IF_ERROR(engine.Deploy(definition));

  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           engine.RunProcess("etl"));
  SQLFLOW_RETURN_IF_ERROR(result.status);

  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet stats,
      warehouse->Execute("SELECT * FROM RegionStats ORDER BY Region"));
  std::printf("warehouse RegionStats after the ETL run:\n%s",
              stats.ToAsciiTable().c_str());
  std::printf(
      "\nwarehouse transactions: %llu committed, %llu rolled back\n",
      static_cast<unsigned long long>(
          warehouse->stats().transactions_committed),
      static_cast<unsigned long long>(
          warehouse->stats().transactions_rolled_back));
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunEtl();
  if (!st.ok()) {
    std::fprintf(stderr, "etl failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\netl_pipeline OK\n");
  return 0;
}
