// Fig. 4 — the sample order workflow realized with the IBM BIS analogue:
//
//   SQL₁ (aggregate approved orders into a lifecycle-managed result
//   table referenced by SR_ItemList) → retrieve set → while + snippet
//   cursor → invoke OrderFromSupplier → SQL₂ (INSERT confirmation).
//
// Run:  ./order_processing_bis [order_count] [item_types]

#include <cstdio>
#include <cstdlib>

#include "workflows/order_process.h"

using namespace sqlflow;

int main(int argc, char** argv) {
  patterns::OrdersScenario scenario;
  if (argc > 1) scenario.order_count = std::strtoul(argv[1], nullptr, 10);
  if (argc > 2) scenario.item_types = std::strtoul(argv[2], nullptr, 10);

  auto fixture = workflows::MakeBisOrderFixture(scenario);
  if (!fixture.ok()) {
    std::fprintf(stderr, "setup failed: %s\n",
                 fixture.status().ToString().c_str());
    return 1;
  }
  auto result =
      fixture->engine->RunProcess(workflows::kBisOrderProcess);
  if (!result.ok() || !result->status.ok()) {
    const Status& st = result.ok() ? result->status : result.status();
    std::fprintf(stderr, "run failed: %s\n", st.ToString().c_str());
    return 1;
  }

  std::printf("audit trail (WPS-style monitoring):\n%s\n",
              result->audit.ToString().c_str());
  auto confirmations = workflows::ReadConfirmations(fixture->db.get());
  if (!confirmations.ok()) {
    std::fprintf(stderr, "%s\n",
                 confirmations.status().ToString().c_str());
    return 1;
  }
  std::printf("OrderConfirmations (persistent across instances):\n%s",
              confirmations->ToAsciiTable().c_str());
  std::printf(
      "\ndatabase stats: %llu statements, %llu rows read, %llu rows "
      "written\n",
      static_cast<unsigned long long>(
          fixture->db->stats().statements_executed),
      static_cast<unsigned long long>(fixture->db->stats().rows_read),
      static_cast<unsigned long long>(
          fixture->db->stats().rows_written));
  return 0;
}
