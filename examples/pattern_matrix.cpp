// Regenerates the paper's two comparison tables from running code:
//
//   Table I  — general information & data management capabilities
//              (inline-support cells probed from the live engines)
//   Table II — data management pattern support; every `x` is backed by
//              an executed-and-checked scenario.
//
// Run:  ./pattern_matrix

#include <cstdio>

#include "patterns/evaluators.h"
#include "patterns/report.h"

using namespace sqlflow;

int main() {
  auto profiles = patterns::BuildProductProfiles();
  if (!profiles.ok()) {
    std::fprintf(stderr, "profile probe failed: %s\n",
                 profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", patterns::RenderTableOne(*profiles).c_str());

  std::vector<patterns::ProductMatrix> matrices;
  for (auto& evaluator : patterns::MakeAllEvaluators()) {
    std::printf("evaluating %s ...\n",
                evaluator->product_name().c_str());
    auto matrix = evaluator->EvaluateAll();
    if (!matrix.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   matrix.status().ToString().c_str());
      return 1;
    }
    matrices.push_back(*matrix);
  }
  std::printf("\n%s", patterns::RenderTableTwo(matrices).c_str());

  // Per-cell evidence.
  std::printf("\nverification notes:\n");
  for (const patterns::ProductMatrix& matrix : matrices) {
    std::printf("\n%s\n", matrix.product.c_str());
    for (const patterns::CellRealization& cell : matrix.cells) {
      std::string restriction =
          cell.restriction.empty() ? "" : " (" + cell.restriction + ")";
      std::printf("  %-18s %-32s [%s]%s — %s\n",
                  patterns::PatternName(cell.pattern),
                  cell.mechanism.c_str(),
                  patterns::RealizationLevelName(cell.level),
                  restriction.c_str(), cell.note.c_str());
    }
  }
  return 0;
}
