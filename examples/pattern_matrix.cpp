// Regenerates the paper's two comparison tables from running code:
//
//   Table I  — general information & data management capabilities
//              (inline-support cells probed from the live engines)
//   Table II — data management pattern support; every `x` is backed by
//              an executed-and-checked scenario.
//
// Every scenario runs under the obs tracer, so alongside the tables the
// binary prints an instrumented matrix (SQL statements, latency, and
// injected/absorbed fault counts per cell) and can export the full span
// forest as Chrome trace JSON.
//
// Run:  ./pattern_matrix [--trace=FILE] [--spans] [--chaos=SEED]
//   --trace=FILE      write a chrome://tracing / Perfetto JSON file
//   --spans           print the span tree of the whole evaluation
//   --chaos=SEED      after the fault-free run, re-run every (engine,
//                     pattern) cell with a seed-deterministic transient
//                     fault schedule injected at statement granularity
//                     and verify the recovery invariant: retries absorb
//                     every fault, so Table II is byte-identical to the
//                     fault-free run. Exit 1 if the matrix changed.
//   --chaos-prob=P    per-statement fault probability (default 0.02)

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/report.h"
#include "sql/database.h"
#include "sql/fault.h"

using namespace sqlflow;

namespace {

/// Runs all three evaluators; exits the process on evaluation failure
/// (an engine that cannot even run its scenarios is a build break, not
/// a matrix entry).
std::vector<patterns::ProductMatrix> EvaluateMatrices() {
  std::vector<patterns::ProductMatrix> matrices;
  for (auto& evaluator : patterns::MakeAllEvaluators()) {
    std::printf("evaluating %s ...\n",
                evaluator->product_name().c_str());
    auto matrix = evaluator->EvaluateAll();
    if (!matrix.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   matrix.status().ToString().c_str());
      std::exit(1);
    }
    matrices.push_back(*matrix);
  }
  return matrices;
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  bool print_spans = false;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  double chaos_prob = 0.02;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0 && argv[i][8] != '\0') {
      trace_file = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      print_spans = true;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0 &&
               argv[i][8] != '\0') {
      chaos = true;
      chaos_seed = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--chaos-prob=", 13) == 0 &&
               argv[i][13] != '\0') {
      chaos_prob = std::strtod(argv[i] + 13, nullptr);
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=FILE] [--spans] [--chaos=SEED] "
                   "[--chaos-prob=P]\n",
                   argv[0]);
      return 2;
    }
  }

  auto profiles = patterns::BuildProductProfiles();
  if (!profiles.ok()) {
    std::fprintf(stderr, "profile probe failed: %s\n",
                 profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", patterns::RenderTableOne(*profiles).c_str());

  // Profile probing ran SQL too; the trace should cover exactly the
  // pattern evaluation.
  obs::TraceBuffer::Global().Clear();

  std::vector<patterns::ProductMatrix> matrices = EvaluateMatrices();
  std::printf("\n%s", patterns::RenderTableTwo(matrices).c_str());

  std::printf("\n%s",
              patterns::RenderInstrumentationTable(matrices).c_str());

  // Per-cell evidence.
  std::printf("\nverification notes:\n");
  for (const patterns::ProductMatrix& matrix : matrices) {
    std::printf("\n%s\n", matrix.product.c_str());
    for (const patterns::CellRealization& cell : matrix.cells) {
      std::string restriction =
          cell.restriction.empty() ? "" : " (" + cell.restriction + ")";
      std::printf("  %-18s %-32s [%s]%s — %s\n",
                  patterns::PatternName(cell.pattern),
                  cell.mechanism.c_str(),
                  patterns::RealizationLevelName(cell.level),
                  restriction.c_str(), cell.note.c_str());
    }
  }

  std::printf("\nprocess metrics:\n%s",
              obs::MetricsRegistry::Global().ToString().c_str());

  if (print_spans) {
    std::printf("\nspan tree:\n%s",
                obs::RenderSpanTree(obs::TraceBuffer::Global().Snapshot())
                    .c_str());
  }
  if (!trace_file.empty()) {
    Status st = obs::WriteChromeTraceFile(trace_file);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu spans to %s (load in chrome://tracing)\n",
                obs::TraceBuffer::Global().size(), trace_file.c_str());
  }

  if (!chaos) return 0;

  // --- chaos sweep -----------------------------------------------------------
  // Same evaluation, but every statement on every database any scenario
  // opens may fault transiently (connection lost / deadlock victim /
  // statement timeout) on a schedule determined entirely by the seed.
  // Statement-level replay plus the wfc retry wrappers must absorb all
  // of them: the Table II matrix is the observable, and it must not
  // move. (Table I's recovery claims, made checkable.)
  std::printf("\n== chaos sweep: seed=%llu probability=%.3f ==\n",
              static_cast<unsigned long long>(chaos_seed), chaos_prob);
  std::string baseline = patterns::RenderTableTwo(matrices);

  sql::FaultInjector::Options options;
  options.seed = chaos_seed;
  options.probability = chaos_prob;
  auto injector = std::make_shared<sql::FaultInjector>(options);
  sql::Database::SetGlobalFaultInjector(injector);
  sql::RetryPolicy retry;
  retry.max_attempts = 8;  // p^8 at p=0.02 → exhaustion is ~unreachable
  sql::Database::SetRetryPolicyDefault(retry);

  std::vector<patterns::ProductMatrix> chaos_matrices =
      EvaluateMatrices();

  sql::Database::SetGlobalFaultInjector(nullptr);
  sql::Database::SetRetryPolicyDefault(sql::RetryPolicy{});

  std::string chaos_table = patterns::RenderTableTwo(chaos_matrices);
  std::printf("\n%s", patterns::RenderInstrumentationTable(chaos_matrices)
                          .c_str());
  std::printf("\nfault schedule: %s\n",
              sql::DescribeFaultStats(injector->stats()).c_str());
  if (chaos_table != baseline) {
    std::printf("\nCHAOS INVARIANT VIOLATED — matrix changed under "
                "transient faults:\n%s",
                chaos_table.c_str());
    return 1;
  }
  std::printf("chaos invariant holds: Table II is byte-identical to the "
              "fault-free run (%llu faults injected, all absorbed)\n",
              static_cast<unsigned long long>(
                  injector->stats().faults_injected));
  return 0;
}
