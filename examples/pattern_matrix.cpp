// Regenerates the paper's two comparison tables from running code:
//
//   Table I  — general information & data management capabilities
//              (inline-support cells probed from the live engines)
//   Table II — data management pattern support; every `x` is backed by
//              an executed-and-checked scenario.
//
// Every scenario runs under the obs tracer, so alongside the tables the
// binary prints an instrumented matrix (SQL statements, latency, and
// injected/absorbed fault counts per cell) and can export the full span
// forest as Chrome trace JSON.
//
// Run:  ./pattern_matrix [--trace=FILE] [--spans] [--chaos=SEED]
//   --trace=FILE      write a chrome://tracing / Perfetto JSON file
//   --metrics=FILE    write the full obs counter/histogram registry as
//                     JSON at exit (after the chaos sweep, when armed)
//   --spans           print the span tree of the whole evaluation
//   --chaos=SEED      after the fault-free run, re-run every (engine,
//                     pattern) cell with a seed-deterministic transient
//                     fault schedule injected across all enabled fault
//                     layers and verify the recovery invariant: retries
//                     (statement replay after partial-write rollback,
//                     service re-invocation, workflow retry) absorb
//                     every fault, so Table II is byte-identical to the
//                     fault-free run. Exit 1 if the matrix changed.
//   --chaos-prob=P    per-site fault probability (default 0.02)
//   --chaos-sites=L   comma list of fault layers to arm (default all):
//                       sql      pre-execution statement faults
//                       mid      mid-statement partial-write faults
//                       service  service/adapter transport faults

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/report.h"
#include "sql/database.h"
#include "sql/fault.h"
#include "wfc/service.h"
#include "workflows/order_process.h"

using namespace sqlflow;

namespace {

/// Runs all three evaluators; exits the process on evaluation failure
/// (an engine that cannot even run its scenarios is a build break, not
/// a matrix entry).
std::vector<patterns::ProductMatrix> EvaluateMatrices() {
  std::vector<patterns::ProductMatrix> matrices;
  for (auto& evaluator : patterns::MakeAllEvaluators()) {
    std::printf("evaluating %s ...\n",
                evaluator->product_name().c_str());
    auto matrix = evaluator->EvaluateAll();
    if (!matrix.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   matrix.status().ToString().c_str());
      std::exit(1);
    }
    matrices.push_back(*matrix);
  }
  return matrices;
}

/// Runs the three order-process realizations (Figs. 4/6/8) end to end
/// and returns their OrderConfirmations tables concatenated — the
/// cross-layer observable: every fault layer (statement, mid-statement,
/// service invoke, adapter bridge) fires somewhere along these paths.
std::string RunOrderProcesses() {
  struct Variant {
    const char* process;
    Result<patterns::Fixture> (*make)(const patterns::OrdersScenario&);
  };
  const Variant variants[] = {
      {workflows::kBisOrderProcess, workflows::MakeBisOrderFixture},
      {workflows::kWfOrderProcess, workflows::MakeWfOrderFixture},
      {workflows::kSoaOrderProcess, workflows::MakeSoaOrderFixture},
  };
  std::string out;
  for (const Variant& variant : variants) {
    auto fixture = variant.make(patterns::OrdersScenario{});
    if (!fixture.ok()) {
      std::fprintf(stderr, "%s setup failed: %s\n", variant.process,
                   fixture.status().ToString().c_str());
      std::exit(1);
    }
    auto run = fixture->engine->RunProcess(variant.process);
    if (!run.ok() || !run->status.ok()) {
      const Status& st = run.ok() ? run->status : run.status();
      std::fprintf(stderr, "%s run failed: %s\n", variant.process,
                   st.ToString().c_str());
      std::exit(1);
    }
    auto confirmations =
        workflows::ReadConfirmations(fixture->db.get());
    if (!confirmations.ok()) {
      std::fprintf(stderr, "%s readback failed: %s\n", variant.process,
                   confirmations.status().ToString().c_str());
      std::exit(1);
    }
    out += std::string(variant.process) + ":\n" +
           confirmations->ToAsciiTable();
  }
  return out;
}

/// Dumps the full obs registry as JSON; exits on I/O failure so CI
/// catches a missing dump instead of silently passing.
void WriteMetricsJson(const std::string& path) {
  std::ofstream out(path);
  out << obs::MetricsRegistry::Global().ToJson() << "\n";
  if (!out.good()) {
    std::fprintf(stderr, "metrics export failed: cannot write %s\n",
                 path.c_str());
    std::exit(1);
  }
  std::printf("\nwrote metrics registry to %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  std::string trace_file;
  std::string metrics_file;
  bool print_spans = false;
  bool chaos = false;
  uint64_t chaos_seed = 0;
  double chaos_prob = 0.01;
  bool sites_sql = true;
  bool sites_mid = true;
  bool sites_service = true;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0 && argv[i][8] != '\0') {
      trace_file = argv[i] + 8;
    } else if (std::strncmp(argv[i], "--metrics=", 10) == 0 &&
               argv[i][10] != '\0') {
      metrics_file = argv[i] + 10;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      print_spans = true;
    } else if (std::strncmp(argv[i], "--chaos=", 8) == 0 &&
               argv[i][8] != '\0') {
      chaos = true;
      chaos_seed = std::strtoull(argv[i] + 8, nullptr, 10);
    } else if (std::strncmp(argv[i], "--chaos-prob=", 13) == 0 &&
               argv[i][13] != '\0') {
      chaos_prob = std::strtod(argv[i] + 13, nullptr);
    } else if (std::strncmp(argv[i], "--chaos-sites=", 14) == 0 &&
               argv[i][14] != '\0') {
      sites_sql = sites_mid = sites_service = false;
      std::string list = argv[i] + 14;
      size_t start = 0;
      while (start <= list.size()) {
        size_t comma = list.find(',', start);
        std::string site =
            list.substr(start, comma == std::string::npos
                                   ? std::string::npos
                                   : comma - start);
        if (site == "sql") {
          sites_sql = true;
        } else if (site == "mid") {
          sites_mid = true;
        } else if (site == "service") {
          sites_service = true;
        } else {
          std::fprintf(stderr,
                       "--chaos-sites: unknown site '%s' (want "
                       "sql|mid|service)\n",
                       site.c_str());
          return 2;
        }
        if (comma == std::string::npos) break;
        start = comma + 1;
      }
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=FILE] [--metrics=FILE] [--spans] "
                   "[--chaos=SEED] [--chaos-prob=P] "
                   "[--chaos-sites=sql,mid,service]\n",
                   argv[0]);
      return 2;
    }
  }

  auto profiles = patterns::BuildProductProfiles();
  if (!profiles.ok()) {
    std::fprintf(stderr, "profile probe failed: %s\n",
                 profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", patterns::RenderTableOne(*profiles).c_str());

  // Profile probing ran SQL too; the trace should cover exactly the
  // pattern evaluation.
  obs::TraceBuffer::Global().Clear();

  std::vector<patterns::ProductMatrix> matrices = EvaluateMatrices();
  std::printf("\n%s", patterns::RenderTableTwo(matrices).c_str());

  std::printf("\n%s",
              patterns::RenderInstrumentationTable(matrices).c_str());

  // Per-cell evidence.
  std::printf("\nverification notes:\n");
  for (const patterns::ProductMatrix& matrix : matrices) {
    std::printf("\n%s\n", matrix.product.c_str());
    for (const patterns::CellRealization& cell : matrix.cells) {
      std::string restriction =
          cell.restriction.empty() ? "" : " (" + cell.restriction + ")";
      std::printf("  %-18s %-32s [%s]%s — %s\n",
                  patterns::PatternName(cell.pattern),
                  cell.mechanism.c_str(),
                  patterns::RealizationLevelName(cell.level),
                  restriction.c_str(), cell.note.c_str());
    }
  }

  std::printf("\nprocess metrics:\n%s",
              obs::MetricsRegistry::Global().ToString().c_str());

  if (print_spans) {
    std::printf("\nspan tree:\n%s",
                obs::RenderSpanTree(obs::TraceBuffer::Global().Snapshot())
                    .c_str());
  }
  if (!trace_file.empty()) {
    Status st = obs::WriteChromeTraceFile(trace_file);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu spans to %s (load in chrome://tracing)\n",
                obs::TraceBuffer::Global().size(), trace_file.c_str());
  }

  if (!chaos) {
    if (!metrics_file.empty()) WriteMetricsJson(metrics_file);
    return 0;
  }

  // --- chaos sweep -----------------------------------------------------------
  // Same evaluation, but faults fire on a schedule determined entirely
  // by the seed at every armed layer: before statements (connection
  // lost / deadlock victim / statement timeout), in the middle of
  // multi-row DML and index maintenance (leaving real partial writes
  // the engine must roll back before replaying), and on service/adapter
  // invocations. Statement-level replay, InvokeWithRecovery, and the
  // wfc retry wrappers must absorb all of them: the Table II matrix and
  // the order-process confirmations are the observables, and neither
  // may move. (Table I's recovery claims, made checkable.)
  std::printf("\n== chaos sweep: seed=%llu probability=%.3f "
              "sites=%s%s%s ==\n",
              static_cast<unsigned long long>(chaos_seed), chaos_prob,
              sites_sql ? "sql," : "", sites_mid ? "mid," : "",
              sites_service ? "service" : "");
  std::string baseline = patterns::RenderTableTwo(matrices);
  std::string order_baseline = RunOrderProcesses();

  sql::FaultInjector::Options options;
  options.seed = chaos_seed;
  options.probability = chaos_prob;
  options.statement_sites = sites_sql;
  options.mid_statement_sites = sites_mid;
  options.service_sites = sites_service;
  auto injector = std::make_shared<sql::FaultInjector>(options);
  sql::Database::SetGlobalFaultInjector(injector);
  sql::RetryPolicy retry;
  // Mid-statement sites draw once per mutated row, so wide set-updates
  // fault on most attempts; 32 attempts at p=0.01 keeps exhaustion
  // unreachable even for 100-row statements (~0.63^32 ≈ 4e-7).
  retry.max_attempts = 32;
  sql::Database::SetRetryPolicyDefault(retry);
  wfc::ServiceRetryPolicy service_retry;
  service_retry.max_attempts = 8;
  wfc::SetServiceRetryPolicyDefault(service_retry);

  std::vector<patterns::ProductMatrix> chaos_matrices =
      EvaluateMatrices();
  std::string chaos_orders = RunOrderProcesses();

  sql::Database::SetGlobalFaultInjector(nullptr);
  sql::Database::SetRetryPolicyDefault(sql::RetryPolicy{});
  wfc::SetServiceRetryPolicyDefault(wfc::ServiceRetryPolicy{});

  std::string chaos_table = patterns::RenderTableTwo(chaos_matrices);
  std::printf("\n%s", patterns::RenderInstrumentationTable(chaos_matrices)
                          .c_str());
  std::printf("\nfault schedule: %s\n",
              sql::DescribeFaultStats(injector->stats()).c_str());
  if (chaos_table != baseline) {
    std::printf("\nCHAOS INVARIANT VIOLATED — matrix changed under "
                "transient faults:\n%s",
                chaos_table.c_str());
    return 1;
  }
  if (chaos_orders != order_baseline) {
    std::printf("\nCHAOS INVARIANT VIOLATED — order-process "
                "confirmations changed under transient faults:\n%s\n"
                "expected:\n%s",
                chaos_orders.c_str(), order_baseline.c_str());
    return 1;
  }
  std::printf("chaos invariant holds: Table II and the order-process "
              "confirmations are byte-identical to the fault-free run "
              "(%llu faults injected, all absorbed)\n",
              static_cast<unsigned long long>(
                  injector->stats().faults_injected));
  if (!metrics_file.empty()) WriteMetricsJson(metrics_file);
  return 0;
}
