// Regenerates the paper's two comparison tables from running code:
//
//   Table I  — general information & data management capabilities
//              (inline-support cells probed from the live engines)
//   Table II — data management pattern support; every `x` is backed by
//              an executed-and-checked scenario.
//
// Every scenario runs under the obs tracer, so alongside the tables the
// binary prints an instrumented matrix (SQL statements & latency per
// cell) and can export the full span forest as Chrome trace JSON.
//
// Run:  ./pattern_matrix [--trace=FILE] [--spans]
//   --trace=FILE  write a chrome://tracing / Perfetto-loadable JSON file
//   --spans       print the span tree of the whole evaluation

#include <cstdio>
#include <cstring>
#include <string>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/report.h"

using namespace sqlflow;

int main(int argc, char** argv) {
  std::string trace_file;
  bool print_spans = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--trace=", 8) == 0 && argv[i][8] != '\0') {
      trace_file = argv[i] + 8;
    } else if (std::strcmp(argv[i], "--spans") == 0) {
      print_spans = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--trace=FILE] [--spans]\n", argv[0]);
      return 2;
    }
  }

  auto profiles = patterns::BuildProductProfiles();
  if (!profiles.ok()) {
    std::fprintf(stderr, "profile probe failed: %s\n",
                 profiles.status().ToString().c_str());
    return 1;
  }
  std::printf("%s\n", patterns::RenderTableOne(*profiles).c_str());

  // Profile probing ran SQL too; the trace should cover exactly the
  // pattern evaluation.
  obs::TraceBuffer::Global().Clear();

  std::vector<patterns::ProductMatrix> matrices;
  for (auto& evaluator : patterns::MakeAllEvaluators()) {
    std::printf("evaluating %s ...\n",
                evaluator->product_name().c_str());
    auto matrix = evaluator->EvaluateAll();
    if (!matrix.ok()) {
      std::fprintf(stderr, "  failed: %s\n",
                   matrix.status().ToString().c_str());
      return 1;
    }
    matrices.push_back(*matrix);
  }
  std::printf("\n%s", patterns::RenderTableTwo(matrices).c_str());

  std::printf("\n%s",
              patterns::RenderInstrumentationTable(matrices).c_str());

  // Per-cell evidence.
  std::printf("\nverification notes:\n");
  for (const patterns::ProductMatrix& matrix : matrices) {
    std::printf("\n%s\n", matrix.product.c_str());
    for (const patterns::CellRealization& cell : matrix.cells) {
      std::string restriction =
          cell.restriction.empty() ? "" : " (" + cell.restriction + ")";
      std::printf("  %-18s %-32s [%s]%s — %s\n",
                  patterns::PatternName(cell.pattern),
                  cell.mechanism.c_str(),
                  patterns::RealizationLevelName(cell.level),
                  restriction.c_str(), cell.note.c_str());
    }
  }

  std::printf("\nprocess metrics:\n%s",
              obs::MetricsRegistry::Global().ToString().c_str());

  if (print_spans) {
    std::printf("\nspan tree:\n%s",
                obs::RenderSpanTree(obs::TraceBuffer::Global().Snapshot())
                    .c_str());
  }
  if (!trace_file.empty()) {
    Status st = obs::WriteChromeTraceFile(trace_file);
    if (!st.ok()) {
      std::fprintf(stderr, "trace export failed: %s\n",
                   st.ToString().c_str());
      return 1;
    }
    std::printf("\nwrote %zu spans to %s (load in chrome://tracing)\n",
                obs::TraceBuffer::Global().size(), trace_file.c_str());
  }
  return 0;
}
