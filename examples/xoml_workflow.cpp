// Markup authoring mode (Sec. IV-A): a workflow defined entirely in
// XOML-style XML, including the custom <SqlDatabase> activity the WF
// module contributes to the loader — the markup face of augmenting the
// custom activity library.
//
// Run:  ./xoml_workflow

#include <cstdio>

#include "dataset/data_set.h"
#include "wf/sql_database_activity.h"
#include "wfc/xoml.h"

using namespace sqlflow;

namespace {

constexpr const char* kMarkup = R"xml(
<Process name="restock-check">
  <Variables>
    <Variable name="Threshold" type="integer" value="20"/>
    <Variable name="Verdict" type="string" value=""/>
  </Variables>
  <Sequence name="main">
    <SqlDatabase name="CountLowStock" connection="memdb://warehouse"
                 statement="SELECT COUNT(*) AS n FROM Stock WHERE Units &lt; :limit"
                 result="LowStock">
      <Param name="limit" expr="$Threshold"/>
    </SqlDatabase>
    <Assign name="ExtractCount">
      <Copy to="LowCount" expr="number($LowStockCount)"/>
    </Assign>
    <IfElse name="Decide" condition="$LowCount &gt; 0">
      <Then>
        <Assign><Copy to="Verdict" value="RESTOCK NEEDED"/></Assign>
      </Then>
      <Else>
        <Assign><Copy to="Verdict" value="stock ok"/></Assign>
      </Else>
    </IfElse>
  </Sequence>
</Process>
)xml";

Status RunDemo() {
  wfc::WorkflowEngine engine("xoml-demo");
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<sql::Database> db,
      engine.data_sources().Open("memdb://warehouse"));
  SQLFLOW_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE TABLE Stock (Sku VARCHAR(10) PRIMARY KEY, Units INTEGER);
    INSERT INTO Stock VALUES ('bolt', 120), ('nut', 3), ('washer', 15);
  )sql"));

  wfc::XomlLoader loader;
  SQLFLOW_RETURN_IF_ERROR(wf::RegisterSqlDatabaseXomlActivity(&loader));
  std::printf("registered activity elements:");
  for (const std::string& type : loader.RegisteredActivityTypes()) {
    std::printf(" <%s>", type.c_str());
  }
  std::printf("\n\n");

  SQLFLOW_ASSIGN_OR_RETURN(wfc::ProcessDefinitionPtr definition,
                           loader.LoadProcess(kMarkup));
  SQLFLOW_RETURN_IF_ERROR(engine.Deploy(definition));

  // The markup's Assign reads $LowStockCount, which a small code
  // snippet extracts from the DataSet — wire it via a start hook to
  // keep the markup minimal (code-separation authoring).
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result, [&] {
    return engine.RunProcess("restock-check");
  }());
  // First run fails at $LowStockCount — demonstrate the code-separation
  // fix: re-load with a snippet step injected around the markup flow.
  if (!result.status.ok()) {
    std::printf("code-only variable missing as expected: %s\n\n",
                result.status.ToString().c_str());
  }

  // Code-separation mode: markup structure + a code snippet for the
  // DataSet access.
  auto extract = std::make_shared<wfc::SnippetActivity>(
      "ExtractFromDataSet", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(
            std::shared_ptr<dataset::DataSet> set,
            ctx.variables().GetObjectAs<dataset::DataSet>("LowStock"));
        SQLFLOW_ASSIGN_OR_RETURN(dataset::DataTablePtr table,
                                 set->SoleTable());
        SQLFLOW_ASSIGN_OR_RETURN(Value n, table->Get(0, "n"));
        ctx.variables().Set("LowStockCount", wfc::VarValue(n));
        return Status::OK();
      });
  SQLFLOW_ASSIGN_OR_RETURN(wfc::ProcessDefinitionPtr markup_def,
                           loader.LoadProcess(kMarkup));
  auto root = std::dynamic_pointer_cast<wfc::SequenceActivity>(
      markup_def->root());
  // Insert the snippet after the SqlDatabase activity (index 0).
  std::vector<wfc::ActivityPtr> steps{root->children()[0], extract,
                                      root->children()[1],
                                      root->children()[2]};
  auto combined = std::make_shared<wfc::ProcessDefinition>(
      "restock-check-v2",
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps)));
  for (const auto& [name, value] : markup_def->variables()) {
    combined->DeclareVariable(name, value);
  }
  SQLFLOW_RETURN_IF_ERROR(engine.Deploy(combined));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult v2,
                           engine.RunProcess("restock-check-v2"));
  SQLFLOW_RETURN_IF_ERROR(v2.status);
  SQLFLOW_ASSIGN_OR_RETURN(Value verdict,
                           v2.variables.GetScalar("Verdict"));
  SQLFLOW_ASSIGN_OR_RETURN(Value low, v2.variables.GetScalar("LowCount"));
  std::printf("low-stock SKUs below threshold: %s → verdict: %s\n",
              low.ToString().c_str(), verdict.ToString().c_str());
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "demo failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\nxoml_workflow OK\n");
  return 0;
}
