// Dynamic data-source binding (Sec. III-B / Table I):
//
// The same deployed BIS-style process runs against a test environment
// and then against production — switched purely by rebinding the data
// source variable at (re)start time, without redeploying the process.
// The WF/SOA analogues cannot express this: their connection strings
// are a static part of the activity.
//
// Run:  ./dynamic_datasource

#include <cstdio>

#include "bis/sql_activity.h"
#include "wfc/engine.h"

using namespace sqlflow;

namespace {

Status RunDemo() {
  wfc::WorkflowEngine engine("dyn");

  // Two environments with the same schema, different data.
  for (const char* env : {"memdb://test", "memdb://prod"}) {
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                             engine.data_sources().Open(env));
    SQLFLOW_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
      CREATE TABLE Orders (OrderID INTEGER PRIMARY KEY, Total DOUBLE);
      CREATE TABLE Stats (Label VARCHAR(20), OrderCount INTEGER);
    )sql"));
  }
  {
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> test,
                             engine.data_sources().Get("test"));
    SQLFLOW_RETURN_IF_ERROR(test->ExecuteScript(
        "INSERT INTO Orders VALUES (1, 10.0), (2, 20.0)"));
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> prod,
                             engine.data_sources().Get("prod"));
    SQLFLOW_RETURN_IF_ERROR(prod->ExecuteScript(
        "INSERT INTO Orders VALUES (1, 10.0), (2, 20.0), (3, 30.0), "
        "(4, 40.0), (5, 50.0)"));
  }

  // One process, deployed once. It aggregates Orders into Stats using
  // whatever database the DS variable points at.
  bis::SqlActivity::Config config;
  config.data_source_variable = "DS";
  config.statement =
      "INSERT INTO Stats SELECT :label, COUNT(*) FROM Orders";
  config.parameters = {{"label", "$EnvLabel"}};
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      "aggregate", std::make_shared<bis::SqlActivity>("SQL", config));
  definition->DeclareVariable("DS");
  definition->DeclareVariable("EnvLabel");
  SQLFLOW_RETURN_IF_ERROR(engine.Deploy(definition));

  for (const char* env : {"memdb://test", "memdb://prod"}) {
    std::map<std::string, wfc::VarValue> inputs{
        {"DS", wfc::VarValue(wfc::ObjectPtr(
                   std::make_shared<bis::DataSourceVariable>(env)))},
        {"EnvLabel", wfc::VarValue(Value::String(env))},
    };
    SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                             engine.RunProcess("aggregate", inputs));
    SQLFLOW_RETURN_IF_ERROR(result.status);
    std::printf("ran instance %llu against %s\n",
                static_cast<unsigned long long>(result.instance_id),
                env);
  }

  for (const char* env : {"test", "prod"}) {
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                             engine.data_sources().Get(env));
    SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet stats,
                             db->Execute("SELECT * FROM Stats"));
    std::printf("\nStats in %s:\n%s", env,
                stats.ToAsciiTable().c_str());
  }
  return Status::OK();
}

}  // namespace

int main() {
  Status st = RunDemo();
  if (!st.ok()) {
    std::fprintf(stderr, "demo failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("\ndynamic_datasource OK\n");
  return 0;
}
