#ifndef SQLFLOW_XML_NODE_H_
#define SQLFLOW_XML_NODE_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace sqlflow::xml {

class Node;
using NodePtr = std::shared_ptr<Node>;

enum class NodeKind { kElement, kText };

/// DOM-lite XML node. Elements carry a name, ordered attributes, and
/// children; text nodes carry character content. Parent links are weak so
/// subtrees share ownership downward only.
///
/// This is the process-space data representation of the workflow layers:
/// BPEL variables, XML RowSets, and XSQL documents are all trees of Node.
class Node : public std::enable_shared_from_this<Node> {
 public:
  static NodePtr Element(std::string name);
  static NodePtr Text(std::string content);

  NodeKind kind() const { return kind_; }
  bool is_element() const { return kind_ == NodeKind::kElement; }
  bool is_text() const { return kind_ == NodeKind::kText; }

  /// Element name, or empty for text nodes.
  const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Text content of a text node (not recursive; see TextContent()).
  const std::string& text() const { return text_; }
  void set_text(std::string text) { text_ = std::move(text); }

  // --- tree structure -------------------------------------------------------
  NodePtr parent() const { return parent_.lock(); }
  const std::vector<NodePtr>& children() const { return children_; }
  size_t child_count() const { return children_.size(); }

  /// Appends `child` (detaching it from any previous parent) and returns it.
  NodePtr AppendChild(NodePtr child);
  Status InsertChild(size_t index, NodePtr child);
  Status RemoveChildAt(size_t index);
  /// Removes `child` if present; NotFound otherwise.
  Status RemoveChild(const NodePtr& child);
  void ClearChildren() { children_.clear(); }

  /// Index of this node in its parent's child list; -1 for roots.
  int IndexInParent() const;

  // --- attributes -----------------------------------------------------------
  void SetAttribute(const std::string& name, std::string value);
  std::optional<std::string> GetAttribute(const std::string& name) const;
  bool RemoveAttribute(const std::string& name);
  const std::vector<std::pair<std::string, std::string>>& attributes()
      const {
    return attributes_;
  }

  // --- convenience ----------------------------------------------------------
  /// Concatenated text of all descendant text nodes (XPath string-value).
  std::string TextContent() const;

  /// Replaces all children with a single text node (no-op text for "").
  void SetTextContent(const std::string& text);

  /// First child element with `name`, or nullptr.
  NodePtr FindFirst(const std::string& name) const;
  /// All child elements with `name` (direct children only).
  std::vector<NodePtr> FindAll(const std::string& name) const;
  /// Appends a child element with a single text child; returns the element.
  NodePtr AddElement(const std::string& name, const std::string& text);

  /// Deep copy (new identity, no parent).
  NodePtr Clone() const;

  /// Structural equality: kind, name, attributes (ordered), children.
  bool Equals(const Node& other) const;

 private:
  Node() = default;

  NodeKind kind_ = NodeKind::kElement;
  std::string name_;
  std::string text_;
  std::vector<std::pair<std::string, std::string>> attributes_;
  std::vector<NodePtr> children_;
  std::weak_ptr<Node> parent_;
};

}  // namespace sqlflow::xml

#endif  // SQLFLOW_XML_NODE_H_
