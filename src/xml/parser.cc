#include "xml/parser.h"

#include <cctype>
#include <vector>

namespace sqlflow::xml {

namespace {

class XmlParser {
 public:
  explicit XmlParser(std::string_view input) : input_(input) {}

  Result<NodePtr> ParseDocument() {
    SkipProlog();
    SQLFLOW_ASSIGN_OR_RETURN(NodePtr root, ParseElement());
    SkipMisc();
    if (pos_ != input_.size()) {
      return Error("trailing content after document element");
    }
    return root;
  }

 private:
  Status Error(const std::string& msg) const {
    return Status::SyntaxError("XML: " + msg + " at offset " +
                               std::to_string(pos_));
  }

  char Peek() const { return pos_ < input_.size() ? input_[pos_] : '\0'; }
  bool StartsWith(std::string_view prefix) const {
    return input_.substr(pos_, prefix.size()) == prefix;
  }

  void SkipWhitespace() {
    while (pos_ < input_.size() &&
           std::isspace(static_cast<unsigned char>(input_[pos_]))) {
      ++pos_;
    }
  }

  bool SkipComment() {
    if (!StartsWith("<!--")) return false;
    size_t end = input_.find("-->", pos_ + 4);
    pos_ = end == std::string_view::npos ? input_.size() : end + 3;
    return true;
  }

  void SkipProlog() {
    SkipWhitespace();
    if (StartsWith("<?xml")) {
      size_t end = input_.find("?>", pos_);
      pos_ = end == std::string_view::npos ? input_.size() : end + 2;
    }
    SkipMisc();
  }

  void SkipMisc() {
    while (true) {
      SkipWhitespace();
      if (!SkipComment()) break;
    }
  }

  static bool IsNameStart(char c) {
    return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':';
  }
  static bool IsNameChar(char c) {
    return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
           c == ':' || c == '-' || c == '.';
  }

  Result<std::string> ParseName() {
    if (pos_ >= input_.size() || !IsNameStart(input_[pos_])) {
      return Error("expected a name");
    }
    size_t start = pos_;
    while (pos_ < input_.size() && IsNameChar(input_[pos_])) ++pos_;
    return std::string(input_.substr(start, pos_ - start));
  }

  Result<std::string> DecodeEntities(std::string_view raw) {
    std::string out;
    out.reserve(raw.size());
    for (size_t i = 0; i < raw.size();) {
      if (raw[i] != '&') {
        out += raw[i++];
        continue;
      }
      size_t semi = raw.find(';', i);
      if (semi == std::string_view::npos) {
        return Error("unterminated entity reference");
      }
      std::string_view entity = raw.substr(i + 1, semi - i - 1);
      if (entity == "amp") {
        out += '&';
      } else if (entity == "lt") {
        out += '<';
      } else if (entity == "gt") {
        out += '>';
      } else if (entity == "quot") {
        out += '"';
      } else if (entity == "apos") {
        out += '\'';
      } else if (!entity.empty() && entity[0] == '#') {
        int code = 0;
        if (entity.size() > 1 && (entity[1] == 'x' || entity[1] == 'X')) {
          code = static_cast<int>(
              std::strtol(std::string(entity.substr(2)).c_str(), nullptr,
                          16));
        } else {
          code = static_cast<int>(
              std::strtol(std::string(entity.substr(1)).c_str(), nullptr,
                          10));
        }
        if (code <= 0 || code > 127) {
          return Error("unsupported character reference");
        }
        out += static_cast<char>(code);
      } else {
        return Error("unknown entity '&" + std::string(entity) + ";'");
      }
      i = semi + 1;
    }
    return out;
  }

  Result<NodePtr> ParseElement() {
    if (Peek() != '<') return Error("expected '<'");
    ++pos_;
    SQLFLOW_ASSIGN_OR_RETURN(std::string name, ParseName());
    NodePtr element = Node::Element(std::move(name));

    // Attributes.
    while (true) {
      SkipWhitespace();
      char c = Peek();
      if (c == '>' || c == '/') break;
      SQLFLOW_ASSIGN_OR_RETURN(std::string attr_name, ParseName());
      SkipWhitespace();
      if (Peek() != '=') return Error("expected '=' after attribute name");
      ++pos_;
      SkipWhitespace();
      char quote = Peek();
      if (quote != '"' && quote != '\'') {
        return Error("expected quoted attribute value");
      }
      ++pos_;
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != quote) ++pos_;
      if (pos_ >= input_.size()) {
        return Error("unterminated attribute value");
      }
      SQLFLOW_ASSIGN_OR_RETURN(
          std::string value,
          DecodeEntities(input_.substr(start, pos_ - start)));
      ++pos_;  // closing quote
      element->SetAttribute(attr_name, std::move(value));
    }

    if (Peek() == '/') {
      ++pos_;
      if (Peek() != '>') return Error("expected '>' after '/'");
      ++pos_;
      return element;
    }
    ++pos_;  // '>'

    // Content.
    while (true) {
      if (pos_ >= input_.size()) {
        return Error("unexpected end inside element <" + element->name() +
                     ">");
      }
      if (StartsWith("</")) {
        pos_ += 2;
        SQLFLOW_ASSIGN_OR_RETURN(std::string close_name, ParseName());
        if (close_name != element->name()) {
          return Error("mismatched closing tag </" + close_name + "> for <" +
                       element->name() + ">");
        }
        SkipWhitespace();
        if (Peek() != '>') return Error("expected '>' in closing tag");
        ++pos_;
        return element;
      }
      if (SkipComment()) continue;
      if (StartsWith("<![CDATA[")) {
        size_t end = input_.find("]]>", pos_ + 9);
        if (end == std::string_view::npos) {
          return Error("unterminated CDATA section");
        }
        element->AppendChild(
            Node::Text(std::string(input_.substr(pos_ + 9, end - pos_ - 9))));
        pos_ = end + 3;
        continue;
      }
      if (Peek() == '<') {
        SQLFLOW_ASSIGN_OR_RETURN(NodePtr child, ParseElement());
        element->AppendChild(std::move(child));
        continue;
      }
      // Text run.
      size_t start = pos_;
      while (pos_ < input_.size() && input_[pos_] != '<') ++pos_;
      std::string_view raw = input_.substr(start, pos_ - start);
      bool all_space = true;
      for (char c : raw) {
        if (!std::isspace(static_cast<unsigned char>(c))) {
          all_space = false;
          break;
        }
      }
      if (!all_space) {
        SQLFLOW_ASSIGN_OR_RETURN(std::string text, DecodeEntities(raw));
        element->AppendChild(Node::Text(std::move(text)));
      }
    }
  }

  std::string_view input_;
  size_t pos_ = 0;
};

}  // namespace

Result<NodePtr> Parse(std::string_view input) {
  XmlParser parser(input);
  return parser.ParseDocument();
}

}  // namespace sqlflow::xml
