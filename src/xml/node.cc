#include "xml/node.h"

namespace sqlflow::xml {

NodePtr Node::Element(std::string name) {
  auto node = NodePtr(new Node());
  node->kind_ = NodeKind::kElement;
  node->name_ = std::move(name);
  return node;
}

NodePtr Node::Text(std::string content) {
  auto node = NodePtr(new Node());
  node->kind_ = NodeKind::kText;
  node->text_ = std::move(content);
  return node;
}

NodePtr Node::AppendChild(NodePtr child) {
  if (NodePtr old_parent = child->parent()) {
    (void)old_parent->RemoveChild(child);
  }
  child->parent_ = weak_from_this();
  children_.push_back(child);
  return child;
}

Status Node::InsertChild(size_t index, NodePtr child) {
  if (index > children_.size()) {
    return Status::InvalidArgument("child index out of range");
  }
  if (NodePtr old_parent = child->parent()) {
    (void)old_parent->RemoveChild(child);
  }
  child->parent_ = weak_from_this();
  children_.insert(children_.begin() + static_cast<ptrdiff_t>(index),
                   std::move(child));
  return Status::OK();
}

Status Node::RemoveChildAt(size_t index) {
  if (index >= children_.size()) {
    return Status::InvalidArgument("child index out of range");
  }
  children_[index]->parent_.reset();
  children_.erase(children_.begin() + static_cast<ptrdiff_t>(index));
  return Status::OK();
}

Status Node::RemoveChild(const NodePtr& child) {
  for (size_t i = 0; i < children_.size(); ++i) {
    if (children_[i] == child) {
      return RemoveChildAt(i);
    }
  }
  return Status::NotFound("node is not a child of this element");
}

int Node::IndexInParent() const {
  NodePtr p = parent();
  if (p == nullptr) return -1;
  for (size_t i = 0; i < p->children_.size(); ++i) {
    if (p->children_[i].get() == this) return static_cast<int>(i);
  }
  return -1;
}

void Node::SetAttribute(const std::string& name, std::string value) {
  for (auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) {
      attr_value = std::move(value);
      return;
    }
  }
  attributes_.emplace_back(name, std::move(value));
}

std::optional<std::string> Node::GetAttribute(
    const std::string& name) const {
  for (const auto& [attr_name, attr_value] : attributes_) {
    if (attr_name == name) return attr_value;
  }
  return std::nullopt;
}

bool Node::RemoveAttribute(const std::string& name) {
  for (auto it = attributes_.begin(); it != attributes_.end(); ++it) {
    if (it->first == name) {
      attributes_.erase(it);
      return true;
    }
  }
  return false;
}

std::string Node::TextContent() const {
  if (is_text()) return text_;
  std::string out;
  for (const NodePtr& child : children_) {
    out += child->TextContent();
  }
  return out;
}

void Node::SetTextContent(const std::string& text) {
  children_.clear();
  if (!text.empty()) {
    AppendChild(Text(text));
  }
}

NodePtr Node::FindFirst(const std::string& name) const {
  for (const NodePtr& child : children_) {
    if (child->is_element() && child->name_ == name) return child;
  }
  return nullptr;
}

std::vector<NodePtr> Node::FindAll(const std::string& name) const {
  std::vector<NodePtr> out;
  for (const NodePtr& child : children_) {
    if (child->is_element() && child->name_ == name) out.push_back(child);
  }
  return out;
}

NodePtr Node::AddElement(const std::string& name, const std::string& text) {
  NodePtr element = Element(name);
  if (!text.empty()) element->AppendChild(Text(text));
  AppendChild(element);
  return element;
}

NodePtr Node::Clone() const {
  NodePtr copy =
      is_element() ? Element(name_) : Text(text_);
  copy->attributes_ = attributes_;
  for (const NodePtr& child : children_) {
    copy->AppendChild(child->Clone());
  }
  return copy;
}

bool Node::Equals(const Node& other) const {
  if (kind_ != other.kind_) return false;
  if (is_text()) return text_ == other.text_;
  if (name_ != other.name_) return false;
  if (attributes_ != other.attributes_) return false;
  if (children_.size() != other.children_.size()) return false;
  for (size_t i = 0; i < children_.size(); ++i) {
    if (!children_[i]->Equals(*other.children_[i])) return false;
  }
  return true;
}

}  // namespace sqlflow::xml
