#include "xml/serializer.h"

namespace sqlflow::xml {

std::string EscapeText(const std::string& raw) {
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      case '\'':
        out += "&apos;";
        break;
      default:
        out += c;
    }
  }
  return out;
}

namespace {

bool OnlyTextChildren(const Node& node) {
  for (const NodePtr& child : node.children()) {
    if (!child->is_text()) return false;
  }
  return true;
}

void SerializeInto(const Node& node, bool pretty, int depth,
                   std::string* out) {
  if (node.is_text()) {
    *out += EscapeText(node.text());
    return;
  }
  std::string indent = pretty ? std::string(2 * static_cast<size_t>(depth), ' ') : "";
  *out += indent;
  *out += '<';
  *out += node.name();
  for (const auto& [name, value] : node.attributes()) {
    *out += ' ';
    *out += name;
    *out += "=\"";
    *out += EscapeText(value);
    *out += '"';
  }
  if (node.children().empty()) {
    *out += "/>";
    if (pretty) *out += '\n';
    return;
  }
  *out += '>';
  if (!pretty || OnlyTextChildren(node)) {
    for (const NodePtr& child : node.children()) {
      SerializeInto(*child, false, 0, out);
    }
  } else {
    *out += '\n';
    for (const NodePtr& child : node.children()) {
      if (child->is_text()) {
        *out += std::string(2 * static_cast<size_t>(depth + 1), ' ');
        *out += EscapeText(child->text());
        *out += '\n';
      } else {
        SerializeInto(*child, true, depth + 1, out);
      }
    }
    *out += indent;
  }
  *out += "</";
  *out += node.name();
  *out += '>';
  if (pretty) *out += '\n';
}

}  // namespace

std::string Serialize(const Node& node, bool pretty) {
  std::string out;
  SerializeInto(node, pretty, 0, &out);
  return out;
}

}  // namespace sqlflow::xml
