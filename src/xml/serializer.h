#ifndef SQLFLOW_XML_SERIALIZER_H_
#define SQLFLOW_XML_SERIALIZER_H_

#include <string>

#include "xml/node.h"

namespace sqlflow::xml {

/// Serializes a tree to markup. With `pretty`, elements are indented two
/// spaces per level; elements whose only child is text stay on one line.
std::string Serialize(const Node& node, bool pretty = false);

/// Escapes `&`, `<`, `>`, `"`, `'` for use in text/attribute content.
std::string EscapeText(const std::string& raw);

}  // namespace sqlflow::xml

#endif  // SQLFLOW_XML_SERIALIZER_H_
