#ifndef SQLFLOW_XML_PARSER_H_
#define SQLFLOW_XML_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xml/node.h"

namespace sqlflow::xml {

/// Parses a well-formed XML document (single root element). Supported:
/// elements, attributes (single or double quoted), text, the five
/// predefined entities, comments and an optional XML declaration (both
/// skipped), CDATA sections. Not supported: DTDs, processing
/// instructions, namespaces beyond treating `a:b` as a plain name.
///
/// Whitespace-only text between elements is dropped; mixed content keeps
/// its text.
Result<NodePtr> Parse(std::string_view input);

}  // namespace sqlflow::xml

#endif  // SQLFLOW_XML_PARSER_H_
