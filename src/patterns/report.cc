#include "patterns/report.h"

#include <algorithm>
#include <cstdio>
#include <functional>
#include <map>
#include <sstream>

#include "common/string_util.h"

namespace sqlflow::patterns {

namespace {

void Rule(std::ostringstream* os, const std::vector<size_t>& widths) {
  *os << '+';
  for (size_t w : widths) *os << std::string(w + 2, '-') << '+';
  *os << '\n';
}

void RenderRow(std::ostringstream* os, const std::vector<size_t>& widths,
               const std::vector<std::string>& cells) {
  *os << '|';
  for (size_t i = 0; i < widths.size(); ++i) {
    const std::string& cell = i < cells.size() ? cells[i] : "";
    *os << ' ' << cell << std::string(widths[i] - cell.size() + 1, ' ')
        << '|';
  }
  *os << '\n';
}

std::vector<size_t> ComputeWidths(
    const std::vector<std::vector<std::string>>& rows) {
  size_t columns = 0;
  for (const auto& row : rows) columns = std::max(columns, row.size());
  std::vector<size_t> widths(columns, 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  return widths;
}

}  // namespace

std::string RenderTableOne(const std::vector<ProductProfile>& profiles) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{""};
  std::vector<std::string> product_row{""};
  for (const ProductProfile& p : profiles) {
    header.push_back(p.short_name);
    product_row.push_back(p.product);
  }
  rows.push_back(header);
  rows.push_back(product_row);

  auto add = [&](const std::string& label,
                 const std::function<std::string(const ProductProfile&)>&
                     get) {
    std::vector<std::string> row{label};
    for (const ProductProfile& p : profiles) row.push_back(get(p));
    rows.push_back(std::move(row));
  };

  rows.push_back({"-- General Information --"});
  add("Workflow Language",
      [](const ProductProfile& p) { return p.workflow_language; });
  add("Level of Process Modeling",
      [](const ProductProfile& p) { return p.process_modeling_level; });
  add("Workflow Design Tool",
      [](const ProductProfile& p) { return p.design_tool; });
  rows.push_back({"-- Data Management Capabilities --"});
  add("SQL Inline Support", [](const ProductProfile& p) {
    return Join(p.sql_inline_support, "; ");
  });
  add("Reference to External Data Set", [](const ProductProfile& p) {
    return p.external_data_set_reference;
  });
  add("Materialized Set Representation", [](const ProductProfile& p) {
    return p.materialized_representation;
  });
  add("Reference to External Data Source", [](const ProductProfile& p) {
    return p.external_data_source_reference;
  });
  add("Additional Features",
      [](const ProductProfile& p) { return p.additional_features; });

  std::vector<size_t> widths = ComputeWidths(rows);
  std::ostringstream os;
  os << "TABLE I — GENERAL INFORMATION AND DATA MANAGEMENT "
        "CAPABILITIES\n";
  Rule(&os, widths);
  for (size_t i = 0; i < rows.size(); ++i) {
    RenderRow(&os, widths, rows[i]);
    if (i == 1) Rule(&os, widths);
  }
  Rule(&os, widths);
  return os.str();
}

std::string RenderTableTwo(const std::vector<ProductMatrix>& matrices) {
  // Footnote bookkeeping (the paper uses ¹ and ²; we use 1) and 2)).
  std::vector<std::string> footnotes;
  auto footnote_mark = [&footnotes](const std::string& restriction) {
    if (restriction.empty()) return std::string();
    for (size_t i = 0; i < footnotes.size(); ++i) {
      if (footnotes[i] == restriction) {
        return "(" + std::to_string(i + 1) + ")";
      }
    }
    footnotes.push_back(restriction);
    return "(" + std::to_string(footnotes.size()) + ")";
  };

  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> header{"Product / Mechanism"};
  for (Pattern p : kAllPatterns) header.push_back(PatternName(p));
  rows.push_back(std::move(header));

  for (const ProductMatrix& matrix : matrices) {
    rows.push_back({"== " + matrix.product + " =="});
    // Group cells by mechanism, preserving first-seen order; workaround
    // mechanisms are folded into one "Only workarounds possible" row to
    // match the paper's layout.
    std::vector<std::string> mechanism_order;
    std::map<std::string, std::vector<CellRealization>> by_mechanism;
    for (const CellRealization& cell : matrix.cells) {
      std::string key = cell.level == RealizationLevel::kWorkaround
                            ? "Only workarounds possible"
                            : cell.mechanism;
      if (by_mechanism.find(key) == by_mechanism.end()) {
        mechanism_order.push_back(key);
      }
      by_mechanism[key].push_back(cell);
    }
    for (const std::string& mechanism : mechanism_order) {
      std::vector<std::string> row{mechanism};
      for (Pattern p : kAllPatterns) {
        std::string mark;
        for (const CellRealization& cell : by_mechanism[mechanism]) {
          if (cell.pattern != p) continue;
          mark = cell.verified ? "x" : "FAIL";
          mark += footnote_mark(cell.restriction);
        }
        row.push_back(mark);
      }
      rows.push_back(std::move(row));
    }
  }

  std::vector<size_t> widths = ComputeWidths(rows);
  std::ostringstream os;
  os << "TABLE II — DATA MANAGEMENT PATTERN SUPPORT\n"
     << "(x = scenario executed and verified)\n";
  Rule(&os, widths);
  RenderRow(&os, widths, rows[0]);
  Rule(&os, widths);
  for (size_t i = 1; i < rows.size(); ++i) {
    RenderRow(&os, widths, rows[i]);
  }
  Rule(&os, widths);
  for (size_t i = 0; i < footnotes.size(); ++i) {
    os << "(" << i + 1 << ") " << footnotes[i] << "\n";
  }
  return os.str();
}

std::string RenderInstrumentationTable(
    const std::vector<ProductMatrix>& matrices) {
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"Product", "Pattern", "Mechanism", "sql_statements",
                  "latency", "faults", "absorbed"});
  char latency[32];
  for (const ProductMatrix& matrix : matrices) {
    for (const CellRealization& cell : matrix.cells) {
      std::snprintf(latency, sizeof latency, "%.2fms",
                    cell.eval_micros / 1e3);
      rows.push_back({matrix.product, PatternName(cell.pattern),
                      cell.mechanism, std::to_string(cell.sql_statements),
                      latency, std::to_string(cell.faults_injected),
                      std::to_string(cell.faults_absorbed)});
    }
  }
  std::vector<size_t> widths = ComputeWidths(rows);
  std::ostringstream os;
  os << "INSTRUMENTED PATTERN MATRIX — SQL statements & latency per "
        "cell\n"
     << "(measured by the obs tracer/metrics hooks; counts include "
        "fixture seeding)\n";
  Rule(&os, widths);
  RenderRow(&os, widths, rows[0]);
  Rule(&os, widths);
  for (size_t i = 1; i < rows.size(); ++i) {
    RenderRow(&os, widths, rows[i]);
  }
  Rule(&os, widths);
  return os.str();
}

}  // namespace sqlflow::patterns
