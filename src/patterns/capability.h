#ifndef SQLFLOW_PATTERNS_CAPABILITY_H_
#define SQLFLOW_PATTERNS_CAPABILITY_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace sqlflow::patterns {

/// One product column of Table I (general information and data
/// management capabilities).
struct ProductProfile {
  std::string product;           // "IBM Business Integration Suite (BIS)"
  std::string short_name;        // "IBM"
  // General information:
  std::string workflow_language;        // "BPEL" / "C#, VB, XOML (BPEL)"
  std::string process_modeling_level;   // "graphical, (markup)" ...
  std::string design_tool;              // "WebSphere Integration Developer"
  // Data management capabilities:
  std::vector<std::string> sql_inline_support;  // activity types/functions
  std::string external_data_set_reference;      // "Set Reference, static text"
  std::string materialized_representation;      // "proprietary XML RowSet"
  std::string external_data_source_reference;   // "dynamic, static"
  std::string additional_features;              // "-" or lifecycle mgmt
};

/// The three profiles. Where possible the entries are *probed from the
/// live implementation* (e.g. the inline-support list enumerates the
/// registered activity types / extension functions), so the table stays
/// truthful as the code evolves; the rest restates the products' design
/// decisions encoded in this library.
Result<std::vector<ProductProfile>> BuildProductProfiles();

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_CAPABILITY_H_
