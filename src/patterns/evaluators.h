#ifndef SQLFLOW_PATTERNS_EVALUATORS_H_
#define SQLFLOW_PATTERNS_EVALUATORS_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "patterns/realization.h"

namespace sqlflow::patterns {

/// Executes one scenario per (pattern, mechanism) cell for a product and
/// reports which mechanism realized the pattern at which level. This is
/// the paper's Table II turned into checkable code: a cell is only
/// `verified` when the scenario ran end-to-end and its post-conditions
/// held.
class ProductEvaluator {
 public:
  virtual ~ProductEvaluator() = default;

  virtual std::string product_name() const = 0;
  /// Short label for Table I column headers ("IBM BIS", "Microsoft WF",
  /// "Oracle SOA Suite").
  virtual std::string short_name() const = 0;

  /// Runs the scenarios for one pattern; each returned cell carries its
  /// verification outcome.
  virtual Result<std::vector<CellRealization>> EvaluatePattern(
      Pattern pattern) = 0;

  /// Runs all nine patterns.
  Result<ProductMatrix> EvaluateAll();
};

std::unique_ptr<ProductEvaluator> MakeBisEvaluator();
std::unique_ptr<ProductEvaluator> MakeWfEvaluator();
std::unique_ptr<ProductEvaluator> MakeSoaEvaluator();

/// All three, in the paper's order.
std::vector<std::unique_ptr<ProductEvaluator>> MakeAllEvaluators();

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_EVALUATORS_H_
