#include "patterns/realization.h"

namespace sqlflow::patterns {

const char* RealizationLevelName(RealizationLevel level) {
  switch (level) {
    case RealizationLevel::kAbstract:
      return "abstract";
    case RealizationLevel::kWorkaround:
      return "workaround";
    case RealizationLevel::kUnsupported:
      return "unsupported";
  }
  return "?";
}

std::vector<CellRealization> ProductMatrix::ForPattern(Pattern p) const {
  std::vector<CellRealization> out;
  for (const CellRealization& cell : cells) {
    if (cell.pattern == p) out.push_back(cell);
  }
  return out;
}

bool ProductMatrix::AllVerified() const {
  for (const CellRealization& cell : cells) {
    if (!cell.verified) return false;
  }
  return !cells.empty();
}

}  // namespace sqlflow::patterns
