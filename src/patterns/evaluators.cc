#include "patterns/evaluators.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqlflow::patterns {

Result<ProductMatrix> ProductEvaluator::EvaluateAll() {
  ProductMatrix matrix;
  matrix.product = product_name();
  obs::Span span("matrix.eval");
  span.Set("engine", short_name());
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  obs::Counter& sql_statements = metrics.GetCounter("sql.statements");
  // Faults arrive through three layers (statement, mid-statement,
  // service/adapter) with disjoint counters; a cell's totals must sum
  // all of them or service-layer chaos reads as zero faults.
  obs::Counter& faults_injected =
      metrics.GetCounter("sql.fault.injected");
  obs::Counter& faults_injected_mid =
      metrics.GetCounter("sql.fault.injected.mid");
  obs::Counter& faults_injected_svc =
      metrics.GetCounter("svc.fault.injected");
  obs::Counter& faults_absorbed_sql =
      metrics.GetCounter("sql.fault.absorbed");
  obs::Counter& faults_absorbed_wfc =
      metrics.GetCounter("wfc.retry.absorbed");
  obs::Counter& faults_absorbed_svc =
      metrics.GetCounter("svc.fault.absorbed");
  for (Pattern pattern : kAllPatterns) {
    uint64_t statements_before = sql_statements.value();
    uint64_t injected_before = faults_injected.value() +
                               faults_injected_mid.value() +
                               faults_injected_svc.value();
    uint64_t absorbed_before = faults_absorbed_sql.value() +
                               faults_absorbed_wfc.value() +
                               faults_absorbed_svc.value();
    int64_t start_ns = obs::NowNanos();
    SQLFLOW_ASSIGN_OR_RETURN(std::vector<CellRealization> cells,
                             EvaluatePattern(pattern));
    double micros = (obs::NowNanos() - start_ns) / 1e3;
    uint64_t statements = sql_statements.value() - statements_before;
    uint64_t injected = faults_injected.value() +
                        faults_injected_mid.value() +
                        faults_injected_svc.value() - injected_before;
    uint64_t absorbed = faults_absorbed_sql.value() +
                        faults_absorbed_wfc.value() +
                        faults_absorbed_svc.value() - absorbed_before;
    for (CellRealization& cell : cells) {
      cell.sql_statements = statements;
      cell.eval_micros = micros;
      cell.faults_injected = injected;
      cell.faults_absorbed = absorbed;
      matrix.cells.push_back(std::move(cell));
    }
  }
  return matrix;
}

std::vector<std::unique_ptr<ProductEvaluator>> MakeAllEvaluators() {
  std::vector<std::unique_ptr<ProductEvaluator>> evaluators;
  evaluators.push_back(MakeBisEvaluator());
  evaluators.push_back(MakeWfEvaluator());
  evaluators.push_back(MakeSoaEvaluator());
  return evaluators;
}

}  // namespace sqlflow::patterns
