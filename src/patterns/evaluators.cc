#include "patterns/evaluators.h"

namespace sqlflow::patterns {

Result<ProductMatrix> ProductEvaluator::EvaluateAll() {
  ProductMatrix matrix;
  matrix.product = product_name();
  for (Pattern pattern : kAllPatterns) {
    SQLFLOW_ASSIGN_OR_RETURN(std::vector<CellRealization> cells,
                             EvaluatePattern(pattern));
    for (CellRealization& cell : cells) {
      matrix.cells.push_back(std::move(cell));
    }
  }
  return matrix;
}

std::vector<std::unique_ptr<ProductEvaluator>> MakeAllEvaluators() {
  std::vector<std::unique_ptr<ProductEvaluator>> evaluators;
  evaluators.push_back(MakeBisEvaluator());
  evaluators.push_back(MakeWfEvaluator());
  evaluators.push_back(MakeSoaEvaluator());
  return evaluators;
}

}  // namespace sqlflow::patterns
