#include "patterns/evaluators.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqlflow::patterns {

Result<ProductMatrix> ProductEvaluator::EvaluateAll() {
  ProductMatrix matrix;
  matrix.product = product_name();
  obs::Span span("matrix.eval");
  span.Set("engine", short_name());
  obs::Counter& sql_statements =
      obs::MetricsRegistry::Global().GetCounter("sql.statements");
  for (Pattern pattern : kAllPatterns) {
    uint64_t statements_before = sql_statements.value();
    int64_t start_ns = obs::NowNanos();
    SQLFLOW_ASSIGN_OR_RETURN(std::vector<CellRealization> cells,
                             EvaluatePattern(pattern));
    double micros = (obs::NowNanos() - start_ns) / 1e3;
    uint64_t statements = sql_statements.value() - statements_before;
    for (CellRealization& cell : cells) {
      cell.sql_statements = statements;
      cell.eval_micros = micros;
      matrix.cells.push_back(std::move(cell));
    }
  }
  return matrix;
}

std::vector<std::unique_ptr<ProductEvaluator>> MakeAllEvaluators() {
  std::vector<std::unique_ptr<ProductEvaluator>> evaluators;
  evaluators.push_back(MakeBisEvaluator());
  evaluators.push_back(MakeWfEvaluator());
  evaluators.push_back(MakeSoaEvaluator());
  return evaluators;
}

}  // namespace sqlflow::patterns
