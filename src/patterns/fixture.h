#ifndef SQLFLOW_PATTERNS_FIXTURE_H_
#define SQLFLOW_PATTERNS_FIXTURE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "wfc/engine.h"

namespace sqlflow::patterns {

/// The shared evaluation scenario (Sec. III-C's sample business
/// process): an Orders database, an OrderConfirmations sink, an Items
/// lookup table, a confirmation-id sequence, a TopItems stored
/// procedure, and the OrderFromSupplier web service.
struct OrdersScenario {
  /// Deterministic workload knobs.
  size_t order_count = 20;
  size_t item_types = 5;
  /// approved ≈ 4/5 of orders (every 5th is unapproved).
  uint32_t seed = 42;
};

/// One self-contained evaluation environment: a workflow engine whose
/// data-source registry contains a seeded `memdb://orders` database and
/// whose service registry provides `OrderFromSupplier`.
struct Fixture {
  std::unique_ptr<wfc::WorkflowEngine> engine;
  std::shared_ptr<sql::Database> db;  // the orders database
  static constexpr const char* kConnection = "memdb://orders";
};

/// Builds a fresh fixture (fresh engine, fresh database).
Result<Fixture> MakeFixture(const std::string& engine_name,
                            const OrdersScenario& scenario = {});

/// Seeds the scenario schema and data into an existing database.
Status SeedOrdersDatabase(sql::Database* db,
                          const OrdersScenario& scenario = {});

/// Sum of quantities of approved orders (ground truth for checks).
Result<int64_t> ApprovedQuantitySum(sql::Database* db);

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_FIXTURE_H_
