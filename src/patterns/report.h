#ifndef SQLFLOW_PATTERNS_REPORT_H_
#define SQLFLOW_PATTERNS_REPORT_H_

#include <string>
#include <vector>

#include "patterns/capability.h"
#include "patterns/realization.h"

namespace sqlflow::patterns {

/// Renders Table I ("General Information and Data Management
/// Capabilities") from the product profiles.
std::string RenderTableOne(const std::vector<ProductProfile>& profiles);

/// Renders Table II ("Data Management Pattern Support") from the
/// verified matrices — mechanisms as rows, patterns as columns, `x`
/// marks with the paper's footnote restrictions (¹only UPDATE, ²only
/// DELETE and INSERT). Unverified cells render as `FAIL` so a
/// regression is visible in the table itself.
std::string RenderTableTwo(const std::vector<ProductMatrix>& matrices);

/// Renders the instrumentation companion to Table II: one row per
/// (product, pattern, mechanism) cell with the SQL statement count and
/// evaluation latency the obs hooks measured while the cell's scenario
/// ran. This is the "which mechanism costs what" view the paper's
/// monitoring services would give an administrator.
std::string RenderInstrumentationTable(
    const std::vector<ProductMatrix>& matrices);

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_REPORT_H_
