#include "bis/atomic_sql_sequence.h"
#include "bis/lifecycle.h"
#include "bis/retrieve_set_activity.h"
#include "bis/sql_activity.h"
#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/fixture.h"
#include "rowset/xml_rowset.h"
#include "sql/table.h"

namespace sqlflow::patterns {

namespace {

using bis::DataSourceVariable;
using bis::RetrieveSetActivity;
using bis::SetReference;
using bis::SqlActivity;

constexpr const char* kDsVar = "DS_Orders";

/// Deploys a process whose variables include the data-source variable
/// and runs it once.
Result<wfc::InstanceResult> RunFlow(
    Fixture* fixture, wfc::ActivityPtr root,
    const std::function<void(wfc::ProcessDefinition&)>& configure = {}) {
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      "scenario", std::move(root));
  definition->DeclareVariable(
      kDsVar, wfc::VarValue(wfc::ObjectPtr(
                  std::make_shared<DataSourceVariable>(
                      Fixture::kConnection))));
  if (configure) configure(*definition);
  fixture->engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture->engine->RunProcess("scenario"));
  if (!result.status.ok()) return result.status;
  return result;
}

CellRealization Cell(Pattern p, std::string mechanism,
                     RealizationLevel level, std::string restriction,
                     const Status& outcome, std::string note) {
  CellRealization cell;
  cell.pattern = p;
  cell.mechanism = std::move(mechanism);
  cell.level = level;
  cell.restriction = std::move(restriction);
  cell.verified = outcome.ok();
  cell.note = outcome.ok() ? std::move(note) : outcome.ToString();
  return cell;
}

/// Declares a result set reference bound to a fixed table name.
void DeclareResultRef(wfc::ProcessDefinition& definition,
                      const std::string& variable,
                      const std::string& table) {
  definition.DeclareVariable(
      variable,
      wfc::VarValue(wfc::ObjectPtr(std::make_shared<SetReference>(
          SetReference::Kind::kResult, table))));
}

void DeclareInputRef(wfc::ProcessDefinition& definition,
                     const std::string& variable,
                     const std::string& table) {
  definition.DeclareVariable(
      variable,
      wfc::VarValue(wfc::ObjectPtr(std::make_shared<SetReference>(
          SetReference::Kind::kInput, table))));
}

// --- scenarios --------------------------------------------------------------

Status QueryScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  SqlActivity::Config config;
  config.data_source_variable = kDsVar;
  config.statement =
      "SELECT ItemID, SUM(Quantity) AS Quantity FROM {SR_Orders} "
      "WHERE Approved = TRUE GROUP BY ItemID";
  config.result_set_reference = "SR_ItemList";
  auto activity = std::make_shared<SqlActivity>("SQL1", config);
  SQLFLOW_ASSIGN_OR_RETURN(
      wfc::InstanceResult result,
      RunFlow(&fixture, activity, [](wfc::ProcessDefinition& d) {
        DeclareInputRef(d, "SR_Orders", "Orders");
        DeclareResultRef(d, "SR_ItemList", "ItemList");
      }));
  (void)result;
  // The result stays external: verify the table exists in the DB and
  // aggregates correctly.
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute("SELECT SUM(Quantity) FROM ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(Value total, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t actual, total.AsInteger());
  if (actual != expected) {
    return Status::ExecutionError("aggregate mismatch");
  }
  return Status::OK();
}

Status SetIudScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  SqlActivity::Config config;
  config.data_source_variable = kDsVar;
  config.statement =
      "UPDATE {SR_Orders} SET Approved = TRUE WHERE Quantity >= :minq";
  config.parameters = {{"minq", "3"}};
  config.affected_variable = "Affected";
  auto activity = std::make_shared<SqlActivity>("SQL-upd", config);
  SQLFLOW_ASSIGN_OR_RETURN(
      wfc::InstanceResult result,
      RunFlow(&fixture, activity, [](wfc::ProcessDefinition& d) {
        DeclareInputRef(d, "SR_Orders", "Orders");
      }));
  SQLFLOW_ASSIGN_OR_RETURN(Value affected,
                           result.variables.GetScalar("Affected"));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet remaining,
      fixture.db->Execute("SELECT COUNT(*) FROM Orders WHERE Approved = "
                          "FALSE AND Quantity >= 3"));
  SQLFLOW_ASSIGN_OR_RETURN(Value still, remaining.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t still_count, still.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t affected_count, affected.AsInteger());
  if (still_count != 0 || affected_count == 0) {
    return Status::ExecutionError("set update did not apply");
  }
  return Status::OK();
}

Status DataSetupScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  SqlActivity::Config config;
  config.data_source_variable = kDsVar;
  config.statement =
      "CREATE TABLE AuditLog (EntryID INTEGER PRIMARY KEY, Message "
      "VARCHAR(80))";
  auto activity = std::make_shared<SqlActivity>("SQL-ddl", config);
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, activity).status());
  if (fixture.db->catalog().FindTable("AuditLog") == nullptr) {
    return Status::ExecutionError("DDL did not create the table");
  }
  return Status::OK();
}

Status StoredProcedureScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  SqlActivity::Config config;
  config.data_source_variable = kDsVar;
  config.statement = "CALL TopItems(2)";
  config.result_set_reference = "SR_Top";
  auto activity = std::make_shared<SqlActivity>("SQL-call", config);
  SQLFLOW_RETURN_IF_ERROR(
      RunFlow(&fixture, activity, [](wfc::ProcessDefinition& d) {
        DeclareResultRef(d, "SR_Top", "TopItems2");
      }).status());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute("SELECT COUNT(*) FROM TopItems2"));
  SQLFLOW_ASSIGN_OR_RETURN(Value count, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, count.AsInteger());
  if (n != 2) {
    return Status::ExecutionError("procedure result not materialized");
  }
  return Status::OK();
}

/// Builds the Query → RetrieveSet fragment shared by the internal-data
/// scenarios and returns the instance result (RowSet in SV_ItemList).
Result<std::pair<Fixture, wfc::InstanceResult>> QueryAndRetrieve() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  SqlActivity::Config query_config;
  query_config.data_source_variable = kDsVar;
  query_config.statement =
      "SELECT ItemID, SUM(Quantity) AS Quantity FROM {SR_Orders} "
      "WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID";
  query_config.result_set_reference = "SR_ItemList";
  RetrieveSetActivity::Config retrieve_config;
  retrieve_config.data_source_variable = kDsVar;
  retrieve_config.set_reference = "SR_ItemList";
  retrieve_config.set_variable = "SV_ItemList";
  std::vector<wfc::ActivityPtr> steps;
  steps.push_back(std::make_shared<SqlActivity>("SQL1", query_config));
  steps.push_back(
      std::make_shared<RetrieveSetActivity>("Retrieve", retrieve_config));
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(
      wfc::InstanceResult result,
      RunFlow(&fixture, root, [](wfc::ProcessDefinition& d) {
        DeclareInputRef(d, "SR_Orders", "Orders");
        DeclareResultRef(d, "SR_ItemList", "ItemList");
      }));
  return std::make_pair(std::move(fixture), std::move(result));
}

Status SetRetrievalScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(auto pair, QueryAndRetrieve());
  auto& [fixture, result] = pair;
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet external,
      fixture.db->Execute("SELECT COUNT(*) FROM ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(Value count, external.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected, count.AsInteger());
  if (rowset::RowCount(rowset) != static_cast<size_t>(expected)) {
    return Status::ExecutionError("materialized row count mismatch");
  }
  return Status::OK();
}

Status SequentialAccessScenario() {
  // Workaround: while activity + Java-Snippet cursor (Sec. III-C).
  SQLFLOW_ASSIGN_OR_RETURN(auto pair, QueryAndRetrieve());
  auto& [fixture, query_result] = pair;
  xml::NodePtr rowset_template;
  {
    SQLFLOW_ASSIGN_OR_RETURN(rowset_template,
                             query_result.variables.GetXml("SV_ItemList"));
  }

  // Second flow: iterate the RowSet, summing quantities.
  auto body = std::make_shared<wfc::SnippetActivity>(
      "JavaSnippet", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                                 ctx.variables().GetXml("SV_ItemList"));
        SQLFLOW_ASSIGN_OR_RETURN(Value pos,
                                 ctx.variables().GetScalar("Pos"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t index, pos.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(
            xml::NodePtr row,
            rowset::GetRow(rowset, static_cast<size_t>(index)));
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 rowset::GetField(row, "Quantity"));
        SQLFLOW_ASSIGN_OR_RETURN(Value sum,
                                 ctx.variables().GetScalar("Sum"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t q, qty.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(int64_t s, sum.AsInteger());
        ctx.variables().Set("Sum", wfc::VarValue(Value::Integer(s + q)));
        ctx.variables().Set("Pos",
                            wfc::VarValue(Value::Integer(index + 1)));
        return Status::OK();
      });
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wfc::Condition::XPath("$Pos < count($SV_ItemList/Row)"),
      body);
  auto definition =
      std::make_shared<wfc::ProcessDefinition>("cursor", loop);
  definition->DeclareVariable("SV_ItemList",
                              wfc::VarValue(rowset_template));
  definition->DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));
  definition->DeclareVariable("Sum", wfc::VarValue(Value::Integer(0)));
  fixture.engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture.engine->RunProcess("cursor"));
  SQLFLOW_RETURN_IF_ERROR(result.status);
  SQLFLOW_ASSIGN_OR_RETURN(Value sum, result.variables.GetScalar("Sum"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t actual, sum.AsInteger());
  if (actual != expected) {
    return Status::ExecutionError("cursor sum mismatch");
  }
  return Status::OK();
}

Status RandomAccessScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(auto pair, QueryAndRetrieve());
  auto& [fixture, query_result] = pair;
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           query_result.variables.GetXml("SV_ItemList"));
  if (rowset::RowCount(rowset) < 2) {
    return Status::ExecutionError("scenario needs at least two rows");
  }
  // Assign activity with a BPEL XPath expression selecting row 2.
  auto assign = std::make_shared<wfc::AssignActivity>("Assign");
  // number() extracts the scalar value of the selected node — the BPEL
  // idiom for copying one field into a simple-typed variable.
  assign->CopyExpr("number($SV_ItemList/Row[2]/ItemID)", "SecondItem");
  auto definition =
      std::make_shared<wfc::ProcessDefinition>("random", assign);
  definition->DeclareVariable("SV_ItemList", wfc::VarValue(rowset));
  fixture.engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture.engine->RunProcess("random"));
  SQLFLOW_RETURN_IF_ERROR(result.status);
  SQLFLOW_ASSIGN_OR_RETURN(Value item,
                           result.variables.GetScalar("SecondItem"));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row2, rowset::GetRow(rowset, 1));
  SQLFLOW_ASSIGN_OR_RETURN(Value expected,
                           rowset::GetField(row2, "ItemID"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t a, item.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t b, expected.AsInteger());
  if (a != b) return Status::ExecutionError("random access mismatch");
  return Status::OK();
}

Status TupleUpdateViaAssignScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(auto pair, QueryAndRetrieve());
  auto& [fixture, query_result] = pair;
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           query_result.variables.GetXml("SV_ItemList"));
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-upd");
  assign->CopyExprToNode("999", "SV_ItemList",
                         "$SV_ItemList/Row[1]/Quantity");
  auto definition =
      std::make_shared<wfc::ProcessDefinition>("tuple-upd", assign);
  definition->DeclareVariable("SV_ItemList", wfc::VarValue(rowset));
  fixture.engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture.engine->RunProcess("tuple-upd"));
  SQLFLOW_RETURN_IF_ERROR(result.status);
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr updated,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row1, rowset::GetRow(updated, 0));
  SQLFLOW_ASSIGN_OR_RETURN(Value qty, rowset::GetField(row1, "Quantity"));
  if (qty.AsString() != "999") {
    return Status::ExecutionError("assign-based tuple update failed");
  }
  return Status::OK();
}

Status TupleInsertDeleteViaSnippetScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(auto pair, QueryAndRetrieve());
  auto& [fixture, query_result] = pair;
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           query_result.variables.GetXml("SV_ItemList"));
  size_t before = rowset::RowCount(rowset);
  auto snippet = std::make_shared<wfc::SnippetActivity>(
      "JavaSnippet-iud", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rs,
                                 ctx.variables().GetXml("SV_ItemList"));
        SQLFLOW_RETURN_IF_ERROR(rowset::InsertRow(
            rs, {Value::Integer(777), Value::Integer(1)}));
        SQLFLOW_RETURN_IF_ERROR(rowset::DeleteRow(rs, 0));
        return Status::OK();
      });
  auto definition =
      std::make_shared<wfc::ProcessDefinition>("tuple-iud", snippet);
  definition->DeclareVariable("SV_ItemList", wfc::VarValue(rowset));
  fixture.engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture.engine->RunProcess("tuple-iud"));
  SQLFLOW_RETURN_IF_ERROR(result.status);
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr after,
                           result.variables.GetXml("SV_ItemList"));
  if (rowset::RowCount(after) != before) {  // one in, one out
    return Status::ExecutionError("snippet-based insert/delete failed");
  }
  SQLFLOW_ASSIGN_OR_RETURN(
      xml::NodePtr last,
      rowset::GetRow(after, rowset::RowCount(after) - 1));
  SQLFLOW_ASSIGN_OR_RETURN(Value item, rowset::GetField(last, "ItemID"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t item_id, item.AsInteger());
  if (item_id != 777) {
    return Status::ExecutionError("inserted row not found");
  }
  return Status::OK();
}

Status SynchronizationScenario() {
  // Workaround: UPDATE statements in an SQL activity propagate the
  // cache's changes back (Sec. III-C).
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("bis"));
  // Materialize Items, change a name locally, then push it back via an
  // SQL activity parameterized from the cache.
  RetrieveSetActivity::Config retrieve_config;
  retrieve_config.data_source_variable = kDsVar;
  retrieve_config.set_reference = "SR_Items";
  retrieve_config.set_variable = "SV_Items";
  auto retrieve = std::make_shared<RetrieveSetActivity>("Retrieve",
                                                        retrieve_config);
  auto local_change = std::make_shared<wfc::SnippetActivity>(
      "LocalChange", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rs,
                                 ctx.variables().GetXml("SV_Items"));
        return rowset::UpdateField(rs, 0, "Name",
                                   Value::String("renamed-item"));
      });
  SqlActivity::Config push_config;
  push_config.data_source_variable = kDsVar;
  push_config.statement =
      "UPDATE {SR_Items} SET Name = :name WHERE ItemID = :id";
  push_config.parameters = {
      {"name", "$SV_Items/Row[1]/Name"},
      {"id", "$SV_Items/Row[1]/ItemID"},
  };
  auto push = std::make_shared<SqlActivity>("SQL-sync", push_config);
  std::vector<wfc::ActivityPtr> steps{retrieve, local_change, push};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_RETURN_IF_ERROR(
      RunFlow(&fixture, root, [](wfc::ProcessDefinition& d) {
        DeclareInputRef(d, "SR_Items", "Items");
      }).status());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT Name FROM Items ORDER BY ItemID LIMIT 1"));
  SQLFLOW_ASSIGN_OR_RETURN(Value name, check.ScalarValue());
  if (name.AsString() != "renamed-item") {
    return Status::ExecutionError("synchronization did not reach source");
  }
  return Status::OK();
}

class BisEvaluator : public ProductEvaluator {
 public:
  std::string product_name() const override {
    return "IBM Business Integration Suite";
  }
  std::string short_name() const override { return "IBM BIS"; }

  Result<std::vector<CellRealization>> EvaluatePattern(
      Pattern pattern) override {
    obs::Span span("pattern.eval");
    span.Set("engine", short_name());
    span.Set("pattern", PatternName(pattern));
    std::vector<CellRealization> cells;
    switch (pattern) {
      case Pattern::kQuery:
        cells.push_back(Cell(pattern, "SQL", RealizationLevel::kAbstract,
                             "", QueryScenario(),
                             "SQL activity; result stays external via "
                             "result set reference"));
        break;
      case Pattern::kSetIud:
        cells.push_back(Cell(pattern, "SQL", RealizationLevel::kAbstract,
                             "", SetIudScenario(),
                             "SQL activity with UPDATE"));
        break;
      case Pattern::kDataSetup:
        cells.push_back(Cell(pattern, "SQL", RealizationLevel::kAbstract,
                             "", DataSetupScenario(),
                             "SQL activity with DDL"));
        break;
      case Pattern::kStoredProcedure:
        cells.push_back(Cell(pattern, "SQL", RealizationLevel::kAbstract,
                             "", StoredProcedureScenario(),
                             "SQL activity with CALL"));
        break;
      case Pattern::kSetRetrieval:
        cells.push_back(Cell(pattern, "Retrieve Set",
                             RealizationLevel::kAbstract, "",
                             SetRetrievalScenario(),
                             "retrieve set activity materializes into an "
                             "XML RowSet set variable"));
        break;
      case Pattern::kSequentialSetAccess:
        cells.push_back(Cell(pattern, "While + Java-Snippet",
                             RealizationLevel::kWorkaround, "",
                             SequentialAccessScenario(),
                             "cursor built from a while activity and a "
                             "Java-Snippet"));
        break;
      case Pattern::kRandomSetAccess:
        cells.push_back(Cell(pattern, "Assign (BPEL-specific XPath)",
                             RealizationLevel::kAbstract, "",
                             RandomAccessScenario(),
                             "assign activity with an XPath row index"));
        break;
      case Pattern::kTupleIud:
        cells.push_back(Cell(pattern, "Assign (BPEL-specific XPath)",
                             RealizationLevel::kAbstract, "only UPDATE",
                             TupleUpdateViaAssignScenario(),
                             "assign can select and update tuples"));
        cells.push_back(Cell(pattern, "Java-Snippet",
                             RealizationLevel::kWorkaround,
                             "only DELETE and INSERT",
                             TupleInsertDeleteViaSnippetScenario(),
                             "insertion/deletion need embedded Java"));
        break;
      case Pattern::kSynchronization:
        cells.push_back(Cell(pattern, "SQL activity UPDATE statements",
                             RealizationLevel::kWorkaround, "",
                             SynchronizationScenario(),
                             "no synchronization activity type; manual "
                             "UPDATE statements"));
        break;
    }
    return cells;
  }
};

}  // namespace

std::unique_ptr<ProductEvaluator> MakeBisEvaluator() {
  return std::make_unique<BisEvaluator>();
}

}  // namespace sqlflow::patterns
