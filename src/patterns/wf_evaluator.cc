#include "dataset/data_adapter.h"
#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/fixture.h"
#include "sql/table.h"
#include "wf/cursor.h"
#include "wf/sql_database_activity.h"

namespace sqlflow::patterns {

namespace {

using dataset::DataAdapter;
using dataset::DataSet;
using dataset::DataTablePtr;
using wf::SqlDatabaseActivity;

Result<wfc::InstanceResult> RunFlow(
    Fixture* fixture, wfc::ActivityPtr root,
    const std::function<void(wfc::ProcessDefinition&)>& configure = {}) {
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      "scenario", std::move(root));
  if (configure) configure(*definition);
  fixture->engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture->engine->RunProcess("scenario"));
  if (!result.status.ok()) return result.status;
  return result;
}

CellRealization Cell(Pattern p, std::string mechanism,
                     RealizationLevel level, std::string restriction,
                     const Status& outcome, std::string note) {
  CellRealization cell;
  cell.pattern = p;
  cell.mechanism = std::move(mechanism);
  cell.level = level;
  cell.restriction = std::move(restriction);
  cell.verified = outcome.ok();
  cell.note = outcome.ok() ? std::move(note) : outcome.ToString();
  return cell;
}

/// SqlDatabaseActivity that aggregates approved orders into a DataSet
/// stored in variable SV_ItemList.
wfc::ActivityPtr MakeItemListQuery() {
  SqlDatabaseActivity::Config config;
  config.connection_string = Fixture::kConnection;
  config.statement =
      "SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders "
      "WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID";
  config.result_variable = "SV_ItemList";
  config.result_table_name = "ItemList";
  return std::make_shared<SqlDatabaseActivity>("SQLDatabase1", config);
}

Result<DataTablePtr> ItemListTable(const wfc::InstanceResult& result) {
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<DataSet> data_set,
      result.variables.GetObjectAs<DataSet>("SV_ItemList"));
  return data_set->SoleTable();
}

// --- scenarios ----------------------------------------------------------------

Status QueryScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, MakeItemListQuery()));
  SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table, ItemListTable(result));
  int64_t total = 0;
  for (const dataset::DataRow& row : table->rows()) {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t q, row.values[1].AsInteger());
    total += q;
  }
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  if (total != expected) {
    return Status::ExecutionError("aggregate mismatch");
  }
  return Status::OK();
}

Status SetIudScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  SqlDatabaseActivity::Config config;
  config.connection_string = Fixture::kConnection;
  config.statement = "DELETE FROM Orders WHERE Approved = FALSE";
  config.affected_variable = "Affected";
  auto activity =
      std::make_shared<SqlDatabaseActivity>("SQLDatabase-del", config);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, activity));
  SQLFLOW_ASSIGN_OR_RETURN(Value affected,
                           result.variables.GetScalar("Affected"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, affected.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT COUNT(*) FROM Orders WHERE Approved = FALSE"));
  SQLFLOW_ASSIGN_OR_RETURN(Value remaining, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t m, remaining.AsInteger());
  if (n == 0 || m != 0) {
    return Status::ExecutionError("set delete did not apply");
  }
  return Status::OK();
}

Status DataSetupScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  SqlDatabaseActivity::Config config;
  config.connection_string = Fixture::kConnection;
  config.statement = "CREATE SEQUENCE BatchSeq START WITH 100";
  auto activity =
      std::make_shared<SqlDatabaseActivity>("SQLDatabase-ddl", config);
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, activity).status());
  if (fixture.db->catalog().FindSequence("BatchSeq") == nullptr) {
    return Status::ExecutionError("DDL did not create the sequence");
  }
  return Status::OK();
}

Status StoredProcedureScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  SqlDatabaseActivity::Config config;
  config.connection_string = Fixture::kConnection;
  config.statement = "CALL TopItems(3)";
  config.result_variable = "SV_Top";
  config.result_table_name = "Top3";
  auto activity =
      std::make_shared<SqlDatabaseActivity>("SQLDatabase-call", config);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, activity));
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<DataSet> data_set,
      result.variables.GetObjectAs<DataSet>("SV_Top"));
  SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table, data_set->SoleTable());
  if (table->ActiveRowCount() != 3) {
    return Status::ExecutionError("procedure result not materialized");
  }
  return Status::OK();
}

Status SetRetrievalScenario() {
  // Identical mechanism to Query — the materialization IS automatic.
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, MakeItemListQuery()));
  SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table, ItemListTable(result));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT COUNT(DISTINCT ItemID) FROM Orders WHERE Approved = "
          "TRUE"));
  SQLFLOW_ASSIGN_OR_RETURN(Value expected, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, expected.AsInteger());
  if (table->ActiveRowCount() != static_cast<size_t>(n)) {
    return Status::ExecutionError("DataSet row count mismatch");
  }
  return Status::OK();
}

Status SequentialAccessScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  // while + code condition + fetch snippet, accumulating in a snippet.
  auto accumulate = std::make_shared<wfc::SnippetActivity>(
      "Accumulate", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 ctx.variables().GetScalar("CurrentQty"));
        SQLFLOW_ASSIGN_OR_RETURN(Value sum,
                                 ctx.variables().GetScalar("Sum"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t q, qty.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(int64_t s, sum.AsInteger());
        ctx.variables().Set("Sum", wfc::VarValue(Value::Integer(s + q)));
        return Status::OK();
      });
  std::vector<wfc::ActivityPtr> body_steps{
      wf::FetchRowSnippet("Fetch", "SV_ItemList", "Pos",
                          {{"Quantity", "CurrentQty"}}),
      accumulate};
  auto body = std::make_shared<wfc::SequenceActivity>(
      "loop-body", std::move(body_steps));
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wf::DataSetHasMoreRows("SV_ItemList", "Pos"), body);
  std::vector<wfc::ActivityPtr> steps{MakeItemListQuery(), loop};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(
      wfc::InstanceResult result,
      RunFlow(&fixture, root, [](wfc::ProcessDefinition& d) {
        d.DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));
        d.DeclareVariable("Sum", wfc::VarValue(Value::Integer(0)));
      }));
  SQLFLOW_ASSIGN_OR_RETURN(Value sum, result.variables.GetScalar("Sum"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t actual, sum.AsInteger());
  if (actual != expected) {
    return Status::ExecutionError("cursor sum mismatch");
  }
  return Status::OK();
}

Status RandomAccessScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  auto probe = std::make_shared<wfc::SnippetActivity>(
      "Code", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(
            std::shared_ptr<DataSet> data_set,
            ctx.variables().GetObjectAs<DataSet>("SV_ItemList"));
        SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table,
                                 data_set->SoleTable());
        SQLFLOW_ASSIGN_OR_RETURN(Value item, table->Get(1, "ItemID"));
        ctx.variables().Set("SecondItem", wfc::VarValue(item));
        return Status::OK();
      });
  std::vector<wfc::ActivityPtr> steps{MakeItemListQuery(), probe};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, root));
  SQLFLOW_ASSIGN_OR_RETURN(Value item,
                           result.variables.GetScalar("SecondItem"));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT ItemID FROM Orders WHERE Approved = TRUE "
          "GROUP BY ItemID ORDER BY ItemID LIMIT 1 OFFSET 1"));
  SQLFLOW_ASSIGN_OR_RETURN(Value expected, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t a, item.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t b, expected.AsInteger());
  if (a != b) return Status::ExecutionError("random access mismatch");
  return Status::OK();
}

Status TupleIudScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  auto mutate = std::make_shared<wfc::SnippetActivity>(
      "Code-iud", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(
            std::shared_ptr<DataSet> data_set,
            ctx.variables().GetObjectAs<DataSet>("SV_ItemList"));
        SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table,
                                 data_set->SoleTable());
        size_t before = table->ActiveRowCount();
        SQLFLOW_RETURN_IF_ERROR(table->AddRow(
            {Value::Integer(777), Value::Integer(5)}));
        SQLFLOW_RETURN_IF_ERROR(
            table->UpdateValue(0, "Quantity", Value::Integer(999)));
        SQLFLOW_RETURN_IF_ERROR(table->MarkDeleted(1));
        if (table->ActiveRowCount() != before) {  // +1 added, -1 deleted
          return Status::ExecutionError("IUD bookkeeping wrong");
        }
        return Status::OK();
      });
  std::vector<wfc::ActivityPtr> steps{MakeItemListQuery(), mutate};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, root));
  SQLFLOW_ASSIGN_OR_RETURN(DataTablePtr table, ItemListTable(result));
  if (table->CountState(dataset::RowState::kAdded) != 1 ||
      table->CountState(dataset::RowState::kModified) != 1 ||
      table->CountState(dataset::RowState::kDeleted) != 1) {
    return Status::ExecutionError("change tracking states wrong");
  }
  return Status::OK();
}

Status SynchronizationScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("wf"));
  std::shared_ptr<sql::Database> db = fixture.db;
  // Fill a DataSet from Items, mutate it, push back via DataAdapter.
  auto sync = std::make_shared<wfc::SnippetActivity>(
      "Code-sync", [db](wfc::ProcessContext&) -> Status {
        DataAdapter adapter(db, "Items");
        DataSet cache;
        SQLFLOW_ASSIGN_OR_RETURN(
            DataTablePtr table,
            adapter.Fill(&cache, "SELECT * FROM Items ORDER BY ItemID"));
        SQLFLOW_RETURN_IF_ERROR(
            table->UpdateValue(0, "Name", Value::String("synced-item")));
        SQLFLOW_RETURN_IF_ERROR(table->AddRow(
            {Value::Integer(999), Value::String("new-item")}));
        SQLFLOW_RETURN_IF_ERROR(table->MarkDeleted(1));
        SQLFLOW_ASSIGN_OR_RETURN(DataAdapter::UpdateCounts counts,
                                 adapter.Update(table.get()));
        if (counts.inserted != 1 || counts.updated != 1 ||
            counts.deleted != 1) {
          return Status::ExecutionError("unexpected sync counts");
        }
        return Status::OK();
      });
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, sync).status());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet renamed,
      db->Execute("SELECT COUNT(*) FROM Items WHERE Name = "
                  "'synced-item'"));
  SQLFLOW_ASSIGN_OR_RETURN(Value n1, renamed.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet added,
      db->Execute("SELECT COUNT(*) FROM Items WHERE ItemID = 999"));
  SQLFLOW_ASSIGN_OR_RETURN(Value n2, added.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet deleted,
      db->Execute("SELECT COUNT(*) FROM Items WHERE ItemID = 2"));
  SQLFLOW_ASSIGN_OR_RETURN(Value n3, deleted.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t c1, n1.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t c2, n2.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t c3, n3.AsInteger());
  if (c1 != 1 || c2 != 1 || c3 != 0) {
    return Status::ExecutionError("synchronized state wrong");
  }
  return Status::OK();
}

class WfEvaluator : public ProductEvaluator {
 public:
  std::string product_name() const override {
    return "Microsoft Workflow Foundation";
  }
  std::string short_name() const override { return "Microsoft WF"; }

  Result<std::vector<CellRealization>> EvaluatePattern(
      Pattern pattern) override {
    obs::Span span("pattern.eval");
    span.Set("engine", short_name());
    span.Set("pattern", PatternName(pattern));
    std::vector<CellRealization> cells;
    switch (pattern) {
      case Pattern::kQuery:
        cells.push_back(Cell(pattern, "SQL Database",
                             RealizationLevel::kAbstract, "",
                             QueryScenario(),
                             "SQL database activity (CAL)"));
        break;
      case Pattern::kSetIud:
        cells.push_back(Cell(pattern, "SQL Database",
                             RealizationLevel::kAbstract, "",
                             SetIudScenario(), "DML statement"));
        break;
      case Pattern::kDataSetup:
        cells.push_back(Cell(pattern, "SQL Database",
                             RealizationLevel::kAbstract, "",
                             DataSetupScenario(), "DDL statement"));
        break;
      case Pattern::kStoredProcedure:
        cells.push_back(Cell(pattern, "SQL Database",
                             RealizationLevel::kAbstract, "",
                             StoredProcedureScenario(),
                             "stored procedure call"));
        break;
      case Pattern::kSetRetrieval:
        cells.push_back(Cell(pattern, "SQL Database",
                             RealizationLevel::kAbstract, "",
                             SetRetrievalScenario(),
                             "automatic materialization into a DataSet"));
        break;
      case Pattern::kSequentialSetAccess:
        cells.push_back(Cell(pattern, "While + code condition (ADO.NET)",
                             RealizationLevel::kWorkaround, "",
                             SequentialAccessScenario(),
                             "while activity + ADO.NET-based condition "
                             "and fetch code"));
        break;
      case Pattern::kRandomSetAccess:
        cells.push_back(Cell(pattern, "Code activity (ADO.NET)",
                             RealizationLevel::kWorkaround, "",
                             RandomAccessScenario(),
                             "code activity indexing the DataSet"));
        break;
      case Pattern::kTupleIud:
        cells.push_back(Cell(pattern, "Code activity (ADO.NET)",
                             RealizationLevel::kWorkaround, "",
                             TupleIudScenario(),
                             "code activity mutating the DataSet with "
                             "change tracking"));
        break;
      case Pattern::kSynchronization:
        cells.push_back(Cell(pattern, "Code activity (ADO.NET)",
                             RealizationLevel::kWorkaround, "",
                             SynchronizationScenario(),
                             "DataAdapter.Update pushes cached changes"));
        break;
    }
    return cells;
  }
};

}  // namespace

std::unique_ptr<ProductEvaluator> MakeWfEvaluator() {
  return std::make_unique<WfEvaluator>();
}

}  // namespace sqlflow::patterns
