#include "patterns/fixture.h"

#include "sql/table.h"

namespace sqlflow::patterns {

Status SeedOrdersDatabase(sql::Database* db,
                          const OrdersScenario& scenario) {
  SQLFLOW_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE TABLE Orders (
      OrderID  INTEGER PRIMARY KEY,
      ItemID   INTEGER NOT NULL,
      Quantity INTEGER NOT NULL,
      Approved BOOLEAN NOT NULL
    );
    CREATE TABLE Items (
      ItemID INTEGER PRIMARY KEY,
      Name   VARCHAR(40) NOT NULL
    );
    CREATE TABLE OrderConfirmations (
      ConfirmationID INTEGER PRIMARY KEY,
      ItemID         INTEGER NOT NULL,
      Quantity       INTEGER NOT NULL,
      Confirmation   VARCHAR(80) NOT NULL
    );
    CREATE SEQUENCE ConfSeq START WITH 1;
  )sql"));

  // Deterministic pseudo-random workload (xorshift32 keeps runs stable
  // across platforms).
  uint32_t state = scenario.seed == 0 ? 1 : scenario.seed;
  auto next = [&state]() {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };

  for (size_t i = 1; i <= scenario.item_types; ++i) {
    sql::Params params;
    params.Add(Value::Integer(static_cast<int64_t>(i)));
    params.Add(Value::String("item-" + std::to_string(i)));
    auto result =
        db->Execute("INSERT INTO Items VALUES (?, ?)", params);
    if (!result.ok()) return result.status();
  }
  for (size_t i = 1; i <= scenario.order_count; ++i) {
    sql::Params params;
    params.Add(Value::Integer(static_cast<int64_t>(i)));
    params.Add(Value::Integer(
        static_cast<int64_t>(next() % scenario.item_types) + 1));
    params.Add(Value::Integer(static_cast<int64_t>(next() % 9) + 1));
    params.Add(Value::Boolean(i % 5 != 0));  // every 5th unapproved
    auto result =
        db->Execute("INSERT INTO Orders VALUES (?, ?, ?, ?)", params);
    if (!result.ok()) return result.status();
  }

  // TopItems(n): the n item types with the largest approved quantity —
  // the scenario's "complex data processing expressed by a stored
  // procedure".
  sql::StoredProcedure top_items;
  top_items.name = "TopItems";
  top_items.arity = 1;
  top_items.body = [](sql::Database& database,
                      const std::vector<Value>& args)
      -> Result<sql::ResultSet> {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t n, args[0].AsInteger());
    sql::Params params;
    return database.Execute(
        "SELECT ItemID, SUM(Quantity) AS Total FROM Orders "
        "WHERE Approved = TRUE GROUP BY ItemID "
        "ORDER BY Total DESC, ItemID LIMIT " +
            std::to_string(n),
        params);
  };
  SQLFLOW_RETURN_IF_ERROR(db->RegisterProcedure(std::move(top_items)));
  return Status::OK();
}

Result<Fixture> MakeFixture(const std::string& engine_name,
                            const OrdersScenario& scenario) {
  Fixture fixture;
  fixture.engine = std::make_unique<wfc::WorkflowEngine>(engine_name);
  SQLFLOW_ASSIGN_OR_RETURN(
      fixture.db,
      fixture.engine->data_sources().Open(Fixture::kConnection));
  SQLFLOW_RETURN_IF_ERROR(SeedOrdersDatabase(fixture.db.get(), scenario));

  // The supplier service: returns a confirmation string.
  auto supplier = std::make_shared<wfc::SimpleWebService>(
      "OrderFromSupplier",
      std::vector<std::string>{"ItemID", "Quantity"},
      [](const std::vector<Value>& args) -> Result<Value> {
        SQLFLOW_ASSIGN_OR_RETURN(int64_t item, args[0].AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(int64_t qty, args[1].AsInteger());
        return Value::String("CONFIRMED item=" + std::to_string(item) +
                             " qty=" + std::to_string(qty));
      });
  SQLFLOW_RETURN_IF_ERROR(
      fixture.engine->services().Register(std::move(supplier)));
  return fixture;
}

Result<int64_t> ApprovedQuantitySum(sql::Database* db) {
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet result,
      db->Execute("SELECT SUM(Quantity) FROM Orders WHERE Approved = "
                  "TRUE"));
  SQLFLOW_ASSIGN_OR_RETURN(Value v, result.ScalarValue());
  if (v.is_null()) return static_cast<int64_t>(0);
  return v.AsInteger();
}

}  // namespace sqlflow::patterns
