#ifndef SQLFLOW_PATTERNS_REALIZATION_H_
#define SQLFLOW_PATTERNS_REALIZATION_H_

#include <string>
#include <vector>

#include "patterns/patterns.h"

namespace sqlflow::patterns {

/// How a product realizes a pattern — Table II's key distinction:
/// at the abstract level (a dedicated activity type / function, hiding
/// implementation details from the process designer) or only through a
/// workaround (user-specific code such as Java-Snippets / code
/// activities, or repurposed SQL).
enum class RealizationLevel { kAbstract, kWorkaround, kUnsupported };

const char* RealizationLevelName(RealizationLevel level);

/// One verified cell of Table II: which mechanism realizes the pattern,
/// at which level, with which restriction (the paper's footnotes, e.g.
/// "only UPDATE"), and whether the executable scenario for this claim
/// actually succeeded.
struct CellRealization {
  Pattern pattern = Pattern::kQuery;
  std::string mechanism;  // Table II row label, e.g. "SQL", "Retrieve Set"
  RealizationLevel level = RealizationLevel::kAbstract;
  std::string restriction;  // "" or "only UPDATE" / "only DELETE and INSERT"
  bool verified = false;    // scenario executed and checked
  std::string note;         // how it was verified / why it failed

  // Instrumentation stamped by ProductEvaluator::EvaluateAll: how many
  // SQL statements the pattern's scenarios issued (including fixture
  // seeding) and how long the evaluation took. Cells of the same
  // pattern share one measurement.
  uint64_t sql_statements = 0;
  double eval_micros = 0.0;
  // Chaos instrumentation (same stamping): faults injected while the
  // pattern's scenarios ran, and how many were absorbed by a retry
  // layer (statement-level replay or wfc::RetryActivity) before they
  // could change the scenario's outcome. Zero on fault-free runs.
  uint64_t faults_injected = 0;
  uint64_t faults_absorbed = 0;
};

/// All verified cells for one product.
struct ProductMatrix {
  std::string product;  // "IBM Business Integration Suite", ...
  std::vector<CellRealization> cells;

  /// Cells for one pattern (may be several mechanisms).
  std::vector<CellRealization> ForPattern(Pattern p) const;
  /// True if every cell's scenario verified.
  bool AllVerified() const;
};

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_REALIZATION_H_
