#include "patterns/capability.h"

#include "bis/atomic_sql_sequence.h"
#include "bis/retrieve_set_activity.h"
#include "bis/sql_activity.h"
#include "common/string_util.h"
#include "soa/xpath_extensions.h"
#include "wf/sql_database_activity.h"

namespace sqlflow::patterns {

Result<std::vector<ProductProfile>> BuildProductProfiles() {
  std::vector<ProductProfile> profiles;

  // --- IBM -------------------------------------------------------------------
  {
    ProductProfile ibm;
    ibm.product = "Business Integration Suite (BIS)";
    ibm.short_name = "IBM";
    ibm.workflow_language = "BPEL";
    ibm.process_modeling_level = "graphical, (markup)";
    ibm.design_tool = "WebSphere Integration Developer";
    // Probe the activity-type tags from the live classes.
    bis::SqlActivity sql_probe("probe", bis::SqlActivity::Config{});
    bis::RetrieveSetActivity retrieve_probe(
        "probe", bis::RetrieveSetActivity::Config{});
    bis::AtomicSqlSequence atomic_probe("probe", "", {});
    ibm.sql_inline_support = {
        "SQL Activity [" + sql_probe.TypeName() + "]",
        "Retrieve Set Activity [" + retrieve_probe.TypeName() + "]",
        "Atomic SQL Sequence [" + atomic_probe.TypeName() + "]",
    };
    ibm.external_data_set_reference = "Set Reference, static text";
    ibm.materialized_representation = "proprietary XML RowSet";
    ibm.external_data_source_reference = "dynamic, static";
    ibm.additional_features = "Lifecycle Management for DB Entities";
    profiles.push_back(std::move(ibm));
  }

  // --- Microsoft ---------------------------------------------------------------
  {
    ProductProfile ms;
    ms.product = "Workflow Foundation (WF)";
    ms.short_name = "Microsoft";
    ms.workflow_language = "C#, VB, XOML (BPEL)";
    ms.process_modeling_level = "graphical, code, markup";
    ms.design_tool = "Workflow Designer";
    // Probe: the custom activity registers itself with the markup loader.
    wfc::XomlLoader loader;
    SQLFLOW_RETURN_IF_ERROR(wf::RegisterSqlDatabaseXomlActivity(&loader));
    bool registered = false;
    for (const std::string& type : loader.RegisteredActivityTypes()) {
      if (type == "SqlDatabase") registered = true;
    }
    ms.sql_inline_support = {
        std::string("customized SQL Activity [sql-database") +
        (registered ? ", markup <SqlDatabase>]" : "]")};
    ms.external_data_set_reference = "static text";
    ms.materialized_representation = "DataSet Object";
    ms.external_data_source_reference = "static";
    ms.additional_features = "-";
    profiles.push_back(std::move(ms));
  }

  // --- Oracle ---------------------------------------------------------------
  {
    ProductProfile oracle;
    oracle.product = "SOA Suite";
    oracle.short_name = "Oracle";
    oracle.workflow_language = "BPEL";
    oracle.process_modeling_level = "graphical, (markup)";
    oracle.design_tool = "Process Designer";
    // Probe the registered extension functions.
    xpath::FunctionRegistry registry;
    sql::DataSourceRegistry sources;
    soa::SoaConfig config;
    config.data_sources = &sources;
    config.default_connection = "memdb://probe";
    SQLFLOW_RETURN_IF_ERROR(
        soa::RegisterSoaXPathExtensions(&registry, config));
    std::string functions =
        "XPath Extension Functions [" +
        Join(registry.FunctionNames(), ", ") + "]";
    oracle.sql_inline_support = {std::move(functions)};
    oracle.external_data_set_reference = "static text";
    oracle.materialized_representation = "proprietary XML RowSet";
    oracle.external_data_source_reference = "static";
    oracle.additional_features = "-";
    profiles.push_back(std::move(oracle));
  }

  return profiles;
}

}  // namespace sqlflow::patterns
