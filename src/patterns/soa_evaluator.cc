#include "obs/trace.h"
#include "patterns/evaluators.h"
#include "patterns/fixture.h"
#include "rowset/xml_rowset.h"
#include "soa/bpelx.h"
#include "soa/xpath_extensions.h"
#include "sql/table.h"

namespace sqlflow::patterns {

namespace {

/// Fixture with the ora:/orcl: extension functions registered against
/// the engine's data sources and the static default connection.
Result<Fixture> MakeSoaFixture() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeFixture("soa"));
  soa::SoaConfig config;
  config.data_sources = &fixture.engine->data_sources();
  config.default_connection = Fixture::kConnection;
  SQLFLOW_RETURN_IF_ERROR(soa::RegisterSoaXPathExtensions(
      &fixture.engine->xpath_functions(), config));
  return fixture;
}

Result<wfc::InstanceResult> RunFlow(
    Fixture* fixture, wfc::ActivityPtr root,
    const std::function<void(wfc::ProcessDefinition&)>& configure = {}) {
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      "scenario", std::move(root));
  if (configure) configure(*definition);
  fixture->engine->DeployOrReplace(definition);
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           fixture->engine->RunProcess("scenario"));
  if (!result.status.ok()) return result.status;
  return result;
}

CellRealization Cell(Pattern p, std::string mechanism,
                     RealizationLevel level, std::string restriction,
                     const Status& outcome, std::string note) {
  CellRealization cell;
  cell.pattern = p;
  cell.mechanism = std::move(mechanism);
  cell.level = level;
  cell.restriction = std::move(restriction);
  cell.verified = outcome.ok();
  cell.note = outcome.ok() ? std::move(note) : outcome.ToString();
  return cell;
}

/// Assign with ora:query-database producing the aggregated item list
/// RowSet in SV_ItemList.
wfc::ActivityPtr MakeQueryAssign() {
  auto assign = std::make_shared<wfc::AssignActivity>("Assign1");
  assign->CopyExpr(
      "ora:query-database('SELECT ItemID, SUM(Quantity) AS Quantity "
      "FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY "
      "ItemID')",
      "SV_ItemList");
  return assign;
}

// --- scenarios ----------------------------------------------------------------

Status QueryScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, MakeQueryAssign()));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet back,
                           rowset::FromRowSet(rowset));
  int64_t total = 0;
  for (const sql::Row& row : back.rows()) {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t q, row[1].AsInteger());
    total += q;
  }
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  if (total != expected) {
    return Status::ExecutionError("aggregate mismatch");
  }
  return Status::OK();
}

Status SetIudScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-dml");
  assign->CopyExpr(
      "orcl:processXSQL('<xsql connection=\"memdb://orders\">"
      "<dml>UPDATE Orders SET Approved = TRUE</dml></xsql>')",
      "Status");
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, assign).status());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT COUNT(*) FROM Orders WHERE Approved = FALSE"));
  SQLFLOW_ASSIGN_OR_RETURN(Value remaining, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, remaining.AsInteger());
  if (n != 0) return Status::ExecutionError("set update did not apply");
  return Status::OK();
}

Status DataSetupScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-ddl");
  assign->CopyExpr(
      "orcl:processXSQL('<xsql connection=\"memdb://orders\">"
      "<dml>CREATE TABLE StagingArea (K INTEGER PRIMARY KEY, V "
      "VARCHAR(20))</dml></xsql>')",
      "Status");
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, assign).status());
  if (fixture.db->catalog().FindTable("StagingArea") == nullptr) {
    return Status::ExecutionError("DDL did not create the table");
  }
  return Status::OK();
}

Status StoredProcedureScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-call");
  assign->CopyExpr(
      "orcl:processXSQL('<xsql connection=\"memdb://orders\">"
      "<call>CALL TopItems(2)</call></xsql>')",
      "SV_Top");
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, assign));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr results,
                           result.variables.GetXml("SV_Top"));
  xml::NodePtr rowset = results->FindFirst("RowSet");
  if (rowset == nullptr || rowset::RowCount(rowset) != 2) {
    return Status::ExecutionError("procedure result not returned");
  }
  return Status::OK();
}

Status SetRetrievalScenario() {
  // query-database materializes into an XML RowSet automatically.
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, MakeQueryAssign()));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT COUNT(DISTINCT ItemID) FROM Orders WHERE Approved = "
          "TRUE"));
  SQLFLOW_ASSIGN_OR_RETURN(Value expected, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, expected.AsInteger());
  if (rowset::RowCount(rowset) != static_cast<size_t>(n)) {
    return Status::ExecutionError("RowSet row count mismatch");
  }
  return Status::OK();
}

Status SequentialAccessScenario() {
  // Workaround: while + Oracle-specific Java-Snippet (Sec. V-C).
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto body = std::make_shared<wfc::SnippetActivity>(
      "JavaSnippet", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                                 ctx.variables().GetXml("SV_ItemList"));
        SQLFLOW_ASSIGN_OR_RETURN(Value pos,
                                 ctx.variables().GetScalar("Pos"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t index, pos.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(
            xml::NodePtr row,
            rowset::GetRow(rowset, static_cast<size_t>(index)));
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 rowset::GetField(row, "Quantity"));
        SQLFLOW_ASSIGN_OR_RETURN(Value sum,
                                 ctx.variables().GetScalar("Sum"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t q, qty.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(int64_t s, sum.AsInteger());
        ctx.variables().Set("Sum", wfc::VarValue(Value::Integer(s + q)));
        ctx.variables().Set("Pos",
                            wfc::VarValue(Value::Integer(index + 1)));
        return Status::OK();
      });
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wfc::Condition::XPath("$Pos < count($SV_ItemList/Row)"),
      body);
  std::vector<wfc::ActivityPtr> steps{MakeQueryAssign(), loop};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(
      wfc::InstanceResult result,
      RunFlow(&fixture, root, [](wfc::ProcessDefinition& d) {
        d.DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));
        d.DeclareVariable("Sum", wfc::VarValue(Value::Integer(0)));
      }));
  SQLFLOW_ASSIGN_OR_RETURN(Value sum, result.variables.GetScalar("Sum"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t expected,
                           ApprovedQuantitySum(fixture.db.get()));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t actual, sum.AsInteger());
  if (actual != expected) {
    return Status::ExecutionError("cursor sum mismatch");
  }
  return Status::OK();
}

Status RandomAccessScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-random");
  // getVariableData-style scalar extraction via number().
  assign->CopyExpr("number($SV_ItemList/Row[2]/ItemID)", "SecondItem");
  std::vector<wfc::ActivityPtr> steps{MakeQueryAssign(), assign};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, root));
  SQLFLOW_ASSIGN_OR_RETURN(Value item,
                           result.variables.GetScalar("SecondItem"));
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT ItemID FROM Orders WHERE Approved = TRUE "
          "GROUP BY ItemID ORDER BY ItemID LIMIT 1 OFFSET 1"));
  SQLFLOW_ASSIGN_OR_RETURN(Value expected, check.ScalarValue());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t a, item.AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(int64_t b, expected.AsInteger());
  if (a != b) return Status::ExecutionError("random access mismatch");
  return Status::OK();
}

Status TupleIudViaBpelxScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto mutate = std::make_shared<wfc::SnippetActivity>(
      "bpelx-ops", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr before,
                                 ctx.variables().GetXml("SV_ItemList"));
        size_t n = rowset::RowCount(before);
        SQLFLOW_RETURN_IF_ERROR(soa::BpelxInsertRow(
            ctx, "SV_ItemList",
            {Value::Integer(777), Value::Integer(3)}));
        SQLFLOW_RETURN_IF_ERROR(soa::BpelxUpdateField(
            ctx, "SV_ItemList", 0, "Quantity", Value::Integer(555)));
        SQLFLOW_RETURN_IF_ERROR(
            soa::BpelxDeleteRow(ctx, "SV_ItemList", 1));
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr after,
                                 ctx.variables().GetXml("SV_ItemList"));
        if (rowset::RowCount(after) != n) {
          return Status::ExecutionError("bpelx op bookkeeping wrong");
        }
        return Status::OK();
      });
  std::vector<wfc::ActivityPtr> steps{MakeQueryAssign(), mutate};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, root));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr first, rowset::GetRow(rowset, 0));
  SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                           rowset::GetField(first, "Quantity"));
  SQLFLOW_ASSIGN_OR_RETURN(int64_t q, qty.AsInteger());
  if (q != 555) return Status::ExecutionError("bpelx update lost");
  return Status::OK();
}

Status TupleUpdateViaAssignScenario() {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto assign = std::make_shared<wfc::AssignActivity>("Assign-upd");
  assign->CopyExprToNode("888", "SV_ItemList",
                         "$SV_ItemList/Row[1]/Quantity");
  std::vector<wfc::ActivityPtr> steps{MakeQueryAssign(), assign};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_ASSIGN_OR_RETURN(wfc::InstanceResult result,
                           RunFlow(&fixture, root));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           result.variables.GetXml("SV_ItemList"));
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr first, rowset::GetRow(rowset, 0));
  SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                           rowset::GetField(first, "Quantity"));
  if (qty.AsString() != "888") {
    return Status::ExecutionError("assign-based update failed");
  }
  return Status::OK();
}

Status SynchronizationScenario() {
  // Workaround: manually add processXSQL pushing local changes back.
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture, MakeSoaFixture());
  auto query = std::make_shared<wfc::AssignActivity>("Assign-pull");
  query->CopyExpr(
      "ora:query-database('SELECT ItemID, Name FROM Items ORDER BY "
      "ItemID')",
      "SV_Items");
  auto local_change = std::make_shared<wfc::SnippetActivity>(
      "LocalChange", [](wfc::ProcessContext& ctx) -> Status {
        return soa::BpelxUpdateField(ctx, "SV_Items", 0, "Name",
                                     Value::String("soa-renamed"));
      });
  auto push = std::make_shared<wfc::AssignActivity>("Assign-push");
  // XPath 1.0 has no quote escaping inside literals; alternate the two
  // quote kinds instead (single-quoted literals may contain the double
  // quotes the markup's attributes need, and vice versa).
  push->CopyExpr(
      "orcl:processXSQL(concat("
      "'<xsql connection=\"memdb://orders\">"
      "<dml>UPDATE Items SET Name = ', \"'\", $SV_Items/Row[1]/Name, "
      "\"'\", ' WHERE ItemID = ', $SV_Items/Row[1]/ItemID, "
      "'</dml></xsql>'))",
      "Status");
  std::vector<wfc::ActivityPtr> steps{query, local_change, push};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  SQLFLOW_RETURN_IF_ERROR(RunFlow(&fixture, root).status());
  SQLFLOW_ASSIGN_OR_RETURN(
      sql::ResultSet check,
      fixture.db->Execute(
          "SELECT Name FROM Items ORDER BY ItemID LIMIT 1"));
  SQLFLOW_ASSIGN_OR_RETURN(Value name, check.ScalarValue());
  if (name.AsString() != "soa-renamed") {
    return Status::ExecutionError("synchronization did not reach source");
  }
  return Status::OK();
}

class SoaEvaluator : public ProductEvaluator {
 public:
  std::string product_name() const override { return "Oracle SOA Suite"; }
  std::string short_name() const override { return "Oracle SOA Suite"; }

  Result<std::vector<CellRealization>> EvaluatePattern(
      Pattern pattern) override {
    obs::Span span("pattern.eval");
    span.Set("engine", short_name());
    span.Set("pattern", PatternName(pattern));
    std::vector<CellRealization> cells;
    switch (pattern) {
      case Pattern::kQuery:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             QueryScenario(), "ora:query-database"));
        break;
      case Pattern::kSetIud:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             SetIudScenario(), "orcl:processXSQL DML"));
        break;
      case Pattern::kDataSetup:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             DataSetupScenario(), "orcl:processXSQL DDL"));
        break;
      case Pattern::kStoredProcedure:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             StoredProcedureScenario(),
                             "orcl:processXSQL CALL"));
        break;
      case Pattern::kSetRetrieval:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             SetRetrievalScenario(),
                             "automatic XML RowSet materialization"));
        break;
      case Pattern::kSequentialSetAccess:
        cells.push_back(Cell(pattern, "While + Java-Snippet",
                             RealizationLevel::kWorkaround, "",
                             SequentialAccessScenario(),
                             "while activity + Oracle-specific "
                             "Java-Snippet"));
        break;
      case Pattern::kRandomSetAccess:
        cells.push_back(Cell(pattern, "Assign (BPEL-specific XPath)",
                             RealizationLevel::kAbstract, "",
                             RandomAccessScenario(),
                             "getVariableData-style XPath row index"));
        break;
      case Pattern::kTupleIud:
        cells.push_back(Cell(pattern, "Assign (XPath Ext. Functions)",
                             RealizationLevel::kAbstract, "",
                             TupleIudViaBpelxScenario(),
                             "bpelx-style local XML ops cover insert, "
                             "update and delete"));
        cells.push_back(Cell(pattern, "Assign (BPEL-specific XPath)",
                             RealizationLevel::kAbstract, "only UPDATE",
                             TupleUpdateViaAssignScenario(),
                             "plain assign covers update only"));
        break;
      case Pattern::kSynchronization:
        cells.push_back(Cell(pattern, "processXSQL added manually",
                             RealizationLevel::kWorkaround, "",
                             SynchronizationScenario(),
                             "manually added processXSQL propagates "
                             "local updates"));
        break;
    }
    return cells;
  }
};

}  // namespace

std::unique_ptr<ProductEvaluator> MakeSoaEvaluator() {
  return std::make_unique<SoaEvaluator>();
}

}  // namespace sqlflow::patterns
