#ifndef SQLFLOW_PATTERNS_PATTERNS_H_
#define SQLFLOW_PATTERNS_PATTERNS_H_

#include <array>
#include <string>

namespace sqlflow::patterns {

/// The nine data management patterns of Sec. II-B (Fig. 2). The first
/// four process *external* data (managed by the database); the last five
/// concern *internal* data (the process-space cache) — Set Retrieval is
/// the bridge.
enum class Pattern {
  kQuery = 0,          // SQL queries over external data
  kSetIud,             // set-oriented INSERT/UPDATE/DELETE, external
  kDataSetup,          // DDL during process execution
  kStoredProcedure,    // calling stored procedures
  kSetRetrieval,       // materialize external data into the process space
  kSequentialSetAccess,// cursor over the data cache
  kRandomSetAccess,    // indexed access into the data cache
  kTupleIud,           // insert/update/delete on the data cache
  kSynchronization,    // push cache changes back to the source
};

inline constexpr std::array<Pattern, 9> kAllPatterns = {
    Pattern::kQuery,          Pattern::kSetIud,
    Pattern::kDataSetup,      Pattern::kStoredProcedure,
    Pattern::kSetRetrieval,   Pattern::kSequentialSetAccess,
    Pattern::kRandomSetAccess, Pattern::kTupleIud,
    Pattern::kSynchronization,
};

/// Short column label as used in Table II.
const char* PatternName(Pattern p);

/// One-sentence description from Sec. II-B.
const char* PatternDescription(Pattern p);

/// True for the patterns operating on external data (plus Set Retrieval,
/// which reads external data).
bool IsExternalDataPattern(Pattern p);

}  // namespace sqlflow::patterns

#endif  // SQLFLOW_PATTERNS_PATTERNS_H_
