#include "patterns/patterns.h"

namespace sqlflow::patterns {

const char* PatternName(Pattern p) {
  switch (p) {
    case Pattern::kQuery:
      return "Query";
    case Pattern::kSetIud:
      return "Set IUD";
    case Pattern::kDataSetup:
      return "Data Setup";
    case Pattern::kStoredProcedure:
      return "Stored Procedure";
    case Pattern::kSetRetrieval:
      return "Set Retrieval";
    case Pattern::kSequentialSetAccess:
      return "Seq. Set Access";
    case Pattern::kRandomSetAccess:
      return "Random Set Access";
    case Pattern::kTupleIud:
      return "Tuple IUD";
    case Pattern::kSynchronization:
      return "Synchronization";
  }
  return "?";
}

const char* PatternDescription(Pattern p) {
  switch (p) {
    case Pattern::kQuery:
      return "querying external data by means of SQL queries";
    case Pattern::kSetIud:
      return "set-oriented insert, update and delete on external data";
    case Pattern::kDataSetup:
      return "executing DDL statements for configuration and setup "
             "during process execution";
    case Pattern::kStoredProcedure:
      return "calling stored procedures on the external data source";
    case Pattern::kSetRetrieval:
      return "retrieving external data and materializing it in a "
             "set-oriented data structure in the process space";
    case Pattern::kSequentialSetAccess:
      return "sequential (cursor) access to the process-space data cache";
    case Pattern::kRandomSetAccess:
      return "random access to the process-space data cache";
    case Pattern::kTupleIud:
      return "insert, update and delete on the process-space data cache";
    case Pattern::kSynchronization:
      return "synchronizing the local data cache with the original data "
             "source";
  }
  return "?";
}

bool IsExternalDataPattern(Pattern p) {
  switch (p) {
    case Pattern::kQuery:
    case Pattern::kSetIud:
    case Pattern::kDataSetup:
    case Pattern::kStoredProcedure:
    case Pattern::kSetRetrieval:
      return true;
    default:
      return false;
  }
}

}  // namespace sqlflow::patterns
