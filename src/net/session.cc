#include "net/session.h"

#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "wfc/service.h"

namespace sqlflow::net {

namespace {

/// SQL-level transaction control must not be wrapped in the session's
/// own ledger transaction (no nesting in this engine) — those requests
/// run bare and stay outside the durable dedup.
bool IsTxnControl(std::string_view sql) {
  size_t i = 0;
  while (i < sql.size() &&
         (sql[i] == ' ' || sql[i] == '\t' || sql[i] == '\n' ||
          sql[i] == '\r')) {
    ++i;
  }
  auto starts_with = [&](std::string_view kw) {
    if (sql.size() - i < kw.size()) return false;
    for (size_t j = 0; j < kw.size(); ++j) {
      char c = sql[i + j];
      if (c >= 'a' && c <= 'z') c = static_cast<char>(c - 'a' + 'A');
      if (c != kw[j]) return false;
    }
    return true;
  };
  return starts_with("BEGIN") || starts_with("COMMIT") ||
         starts_with("ROLLBACK") || starts_with("START");
}

sql::ResultSet InstanceIdResult(uint64_t instance_id) {
  sql::ResultSet rs({"INSTANCE_ID"});
  rs.AddRow({Value::Integer(static_cast<int64_t>(instance_id))});
  return rs;
}

}  // namespace

std::string EncodeOutcome(const Status& status, const sql::ResultSet& rs) {
  std::string out;
  out.push_back(static_cast<char>(status.code()));
  sql::WalPutString(out, status.message());
  PutResultSet(out, rs);
  return out;
}

Status DecodeOutcome(std::string_view encoded, Status* status,
                     sql::ResultSet* rs) {
  sql::WalReader r(encoded);
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  SQLFLOW_ASSIGN_OR_RETURN(std::string message, r.Str());
  *status = Status(static_cast<StatusCode>(code), std::move(message));
  SQLFLOW_ASSIGN_OR_RETURN(*rs, ReadResultSet(r));
  return Status::OK();
}

Session::Session(std::shared_ptr<sql::Database> conn, WorkflowState* wf)
    : conn_(std::move(conn)), wf_(wf) {}

Response Session::Handle(const Request& request) {
  std::lock_guard<std::mutex> lock(mutex_);
  obs::MetricsRegistry::Global().GetCounter("net.requests").Increment();
  Response response;
  response.request_id = request.request_id;
  switch (request.type) {
    case MessageType::kExecuteSql:
      response = ExecuteSql(request);
      break;
    case MessageType::kStartInstance:
      response = StartInstance(request);
      break;
    case MessageType::kInvokeService:
      response = InvokeService(request);
      break;
    case MessageType::kQueryAudit:
      response = QueryAudit(request);
      break;
    case MessageType::kPing:
      break;  // OK, empty result
    default:
      response.status = Status::InvalidArgument(
          "request type " +
          std::to_string(static_cast<int>(request.type)) +
          " is not executable");
      break;
  }
  cached_in_txn_.store(conn_->in_transaction(), std::memory_order_relaxed);
  cached_txn_.store(conn_->ReaderTxnId(), std::memory_order_relaxed);
  return response;
}

bool Session::ReplayRecorded(const std::string& key, Response* out) {
  sql::WalManager* wal = conn_->wal();
  if (key.empty() || wal == nullptr) return false;
  auto entry = wal->FindNetRequest(key);
  if (!entry.has_value() || entry->state != sql::WalNetRequest::kDone) {
    return false;
  }
  Status status;
  sql::ResultSet rs;
  if (!DecodeOutcome(entry->response, &status, &rs).ok()) return false;
  out->status = std::move(status);
  out->result = std::move(rs);
  obs::MetricsRegistry::Global()
      .GetCounter("net.request.deduped")
      .Increment();
  return true;
}

Response Session::ExecuteSql(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (ReplayRecorded(request.idempotency_key, &response)) return response;

  const bool use_ledger = !request.idempotency_key.empty() &&
                          conn_->wal() != nullptr &&
                          !conn_->in_transaction() &&
                          !IsTxnControl(request.sql);
  if (!use_ledger) {
    auto result = conn_->Execute(request.sql, request.params);
    if (result.ok()) {
      response.result = std::move(*result);
    } else {
      response.status = result.status();
    }
    return response;
  }

  // Keyed autocommit statement: run it inside a transaction whose
  // commit batch also carries the ledger entry. The statement's effects
  // and the dedup marker become durable atomically, which is the whole
  // exactly-once story — a crash can't separate them.
  Status begin = conn_->Begin();
  if (!begin.ok()) {
    response.status = begin;
    return response;
  }
  auto result = conn_->Execute(request.sql, request.params);
  if (!result.ok()) {
    (void)conn_->Rollback();
    // Failed statements are deliberately not recorded: the failure may
    // be transient and a retry should get a fresh execution.
    response.status = result.status();
    return response;
  }
  (void)conn_->AddWalAttachment(sql::WalNetRequestRecord(
      request.idempotency_key,
      {sql::WalNetRequest::kDone, 0,
       EncodeOutcome(Status::OK(), *result)}));
  Status commit = conn_->Commit();
  if (!commit.ok()) {
    // Commit failure already rolled the transaction (and the queued
    // ledger entry) back inside Database::Commit.
    response.status = commit;
    return response;
  }
  response.result = std::move(*result);
  return response;
}

Response Session::StartInstance(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (wf_ == nullptr || wf_->engine == nullptr) {
    response.status =
        Status::Unsupported("this server has no workflow engine");
    return response;
  }
  if (ReplayRecorded(request.idempotency_key, &response)) return response;

  std::map<std::string, wfc::VarValue> inputs;
  for (const auto& [name, value] : request.args) inputs[name] = value;

  std::lock_guard<std::mutex> wf_lock(wf_->mutex);
  sql::WalManager* wal = conn_->wal();
  const std::string& key = request.idempotency_key;
  const bool keyed = !key.empty() && wal != nullptr;

  if (keyed) {
    // A pending ledger entry means a previous incarnation crashed with
    // this request in flight; its instance id (recorded before the run
    // started) tells us how far it got.
    auto entry = wal->FindNetRequest(key);
    if (entry.has_value() &&
        entry->state == sql::WalNetRequest::kPending) {
      const uint64_t id = entry->instance_id;
      auto done = wf_->results.find(id);
      if (done != wf_->results.end()) {
        // Resumed (or completed this incarnation): answer from the
        // finished instance and finalize the ledger.
        response.status = done->second.status;
        response.result = InstanceIdResult(id);
        (void)conn_->AddWalAttachment(sql::WalNetRequestRecord(
            key, {sql::WalNetRequest::kDone, id,
                  EncodeOutcome(response.status, response.result)}));
        obs::MetricsRegistry::Global()
            .GetCounter("net.request.deduped")
            .Increment();
        return response;
      }
      auto wf_state = wal->WfState();
      auto logged = wf_state.find(id);
      if (logged != wf_state.end()) {
        if (logged->second.ended) {
          // The instance finished before the crash but the kDone record
          // didn't make it. Its effects are committed exactly once; the
          // recorded response is lost, so synthesize the completion.
          response.result = InstanceIdResult(id);
          (void)conn_->AddWalAttachment(sql::WalNetRequestRecord(
              key, {sql::WalNetRequest::kDone, id,
                    EncodeOutcome(response.status, response.result)}));
          obs::MetricsRegistry::Global()
              .GetCounter("net.request.deduped")
              .Increment();
          return response;
        }
        // Started but neither ended nor resumed: recovery has not run
        // its course. Re-running would duplicate the instance's
        // committed steps — refuse transiently instead.
        response.status = Status::Unavailable(
            "instance " + std::to_string(id) +
            " is awaiting resume; retry after recovery");
        return response;
      }
      // The crash hit between the pending record and the instance's
      // first WAL record: nothing ran, a fresh run is safe. Fall
      // through — the new pending record supersedes the stale one.
    }
  }

  const uint64_t instance_id = wf_->engine->AllocateInstanceId();
  if (keyed) {
    Status pending = conn_->AddWalAttachment(sql::WalNetRequestRecord(
        key, {sql::WalNetRequest::kPending, instance_id, ""}));
    if (!pending.ok()) {
      response.status = std::move(pending);
      return response;
    }
  }
  auto run = wf_->engine->RunAllocatedInstance(instance_id, request.target,
                                              inputs);
  if (!run.ok()) {
    // Unknown process — the instance never started; the pending record
    // (if any) is inert and a retry fails the same way.
    response.status = run.status();
    return response;
  }
  wf_->results[run->instance_id] = *run;
  response.status = run->status;
  response.result = InstanceIdResult(run->instance_id);
  if (keyed) {
    (void)conn_->AddWalAttachment(sql::WalNetRequestRecord(
        key, {sql::WalNetRequest::kDone, run->instance_id,
              EncodeOutcome(response.status, response.result)}));
  }
  return response;
}

Response Session::InvokeService(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (wf_ == nullptr || wf_->engine == nullptr) {
    response.status =
        Status::Unsupported("this server has no service registry");
    return response;
  }
  auto service = wf_->engine->services().Find(request.target);
  if (!service.ok()) {
    response.status = service.status();
    return response;
  }
  std::vector<std::pair<std::string, Value>> params = request.args;
  if (!request.idempotency_key.empty()) {
    // Service-level dedup: IdempotentService answers repeats of this
    // key from its response cache without re-invoking the endpoint.
    params.emplace_back(wfc::IdempotentService::kKeyParam,
                        Value::String(request.idempotency_key));
  }
  auto reply =
      wfc::InvokeWithRecovery(**service, wfc::MakeRequest(params));
  if (!reply.ok()) {
    response.status = reply.status();
    return response;
  }
  auto value = wfc::GetResponseValue(*reply);
  if (!value.ok()) {
    response.status = value.status();
    return response;
  }
  sql::ResultSet rs({"VALUE"});
  rs.AddRow({std::move(*value)});
  response.result = std::move(rs);
  return response;
}

Response Session::QueryAudit(const Request& request) {
  Response response;
  response.request_id = request.request_id;
  if (wf_ == nullptr || wf_->engine == nullptr) {
    response.status =
        Status::Unsupported("this server has no workflow engine");
    return response;
  }
  std::lock_guard<std::mutex> wf_lock(wf_->mutex);
  auto it = wf_->results.find(request.instance_id);
  if (it == wf_->results.end()) {
    response.status = Status::NotFound(
        "no finished instance " + std::to_string(request.instance_id) +
        " on this server");
    return response;
  }
  // Timestamps and durations are deliberately omitted: the audit reply
  // is stable across runs, which the chaos differentials rely on.
  sql::ResultSet rs({"SEQ", "KIND", "ACTIVITY", "DETAIL", "ATTEMPT"});
  for (const wfc::AuditEvent& event : it->second.audit.events()) {
    rs.AddRow({Value::Integer(static_cast<int64_t>(event.sequence)),
               Value::String(wfc::AuditEventKindName(event.kind)),
               Value::String(event.activity),
               Value::String(event.detail),
               Value::Integer(event.attempt)});
  }
  response.result = std::move(rs);
  return response;
}

}  // namespace sqlflow::net
