#ifndef SQLFLOW_NET_SESSION_H_
#define SQLFLOW_NET_SESSION_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "net/protocol.h"
#include "sql/database.h"
#include "wfc/engine.h"

namespace sqlflow::net {

/// Server-side workflow runtime shared by every session: the engine, the
/// mutex that serializes instance starts (durable dehydration records a
/// sequential journal on the database's primary connection), and the
/// finished-instance results the audit endpoint serves. `results` also
/// holds instances finished by a *previous* process incarnation and
/// completed via WorkflowEngine::ResumeInstances — the server notes them
/// at startup so a retried start maps onto the resumed outcome instead
/// of running a duplicate.
struct WorkflowState {
  wfc::WorkflowEngine* engine = nullptr;
  std::mutex mutex;
  std::map<uint64_t, wfc::InstanceResult> results;
};

/// Encodes a request outcome (status + rows) for the durable request
/// ledger. The request id is *not* part of the encoding: a retry carries
/// a fresh id and gets the recorded outcome under it.
std::string EncodeOutcome(const Status& status, const sql::ResultSet& rs);
Status DecodeOutcome(std::string_view encoded, Status* status,
                     sql::ResultSet* rs);

/// One connection's execution context: a private MVCC session
/// (sql::Database::CreateConnection) plus the shared workflow runtime.
/// Handle() is the whole server-side request dispatch; it never throws
/// and never returns a malformed response — errors travel in
/// Response::status.
///
/// Exactly-once: a request carrying an idempotency key is answered from
/// the WAL-backed request ledger on repeat. For SQL the ledger entry is
/// committed in the same WAL batch as the statement's effects, so a
/// crash lands strictly before (retry re-executes) or strictly after
/// (retry replays the recorded outcome) — never between. For workflow
/// starts the instance id is recorded (kPending) durably *before* the
/// run, so a retry after a crash maps onto the resumed or completed
/// instance instead of starting a second one.
class Session {
 public:
  Session(std::shared_ptr<sql::Database> conn, WorkflowState* wf);

  /// Serialized per session: one statement at a time per connection,
  /// exactly the discipline a Database connection object requires.
  Response Handle(const Request& request);

  /// For sys.connections: transaction state as of the last finished
  /// request. Cached into atomics by the worker thread that ran the
  /// request, so the generator thread reads them without touching the
  /// connection's (single-threaded) internals.
  uint64_t session_txn() const {
    return cached_txn_.load(std::memory_order_relaxed);
  }
  bool in_txn_cached() const {
    return cached_in_txn_.load(std::memory_order_relaxed);
  }

 private:
  Response ExecuteSql(const Request& request);
  Response StartInstance(const Request& request);
  Response InvokeService(const Request& request);
  Response QueryAudit(const Request& request);

  /// Ledger probe; returns true (and fills `out`) when `key` has a
  /// recorded kDone outcome.
  bool ReplayRecorded(const std::string& key, Response* out);

  std::shared_ptr<sql::Database> conn_;
  WorkflowState* wf_;
  std::mutex mutex_;
  std::atomic<uint64_t> cached_txn_{0};
  std::atomic<bool> cached_in_txn_{false};
};

}  // namespace sqlflow::net

#endif  // SQLFLOW_NET_SESSION_H_
