#ifndef SQLFLOW_NET_PROTOCOL_H_
#define SQLFLOW_NET_PROTOCOL_H_

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/eval.h"
#include "sql/fault.h"
#include "sql/result_set.h"
#include "sql/wal.h"

namespace sqlflow::net {

// The wire protocol of the sqlflow server: length-prefixed, CRC-framed
// binary messages over TCP, reusing the WAL's framing discipline and
// primitive codec (sql/wal.h) so the engine has exactly one byte
// format. A frame is `[u32 payload_len][u32 crc32(payload)][payload]`;
// the payload leads with a one-byte message type. The first frame a
// client sends must be a kHello carrying the protocol magic — anything
// else is garbage-before-handshake and the server closes without
// spending further work on the peer.

inline constexpr uint32_t kProtocolMagic = 0x53514657;  // "SQFW"
inline constexpr uint32_t kProtocolVersion = 1;
/// Frames larger than this are refused without being read — the
/// oversized-message guard of the admission layer.
inline constexpr uint32_t kDefaultMaxFrameBytes = 4u << 20;

enum class MessageType : uint8_t {
  // client → server
  kHello = 1,
  kExecuteSql = 2,
  kStartInstance = 3,
  kInvokeService = 4,
  kQueryAudit = 5,
  kPing = 6,
  // server → client
  kHelloOk = 16,
  kResult = 17,
};

/// One client request. `idempotency_key` is the exactly-once handle: a
/// retried request re-sends the same key, and the server answers keyed
/// repeats from its request ledger instead of re-executing (the ledger
/// rides the WAL, so the dedup survives a server crash).
struct Request {
  MessageType type = MessageType::kPing;
  uint64_t request_id = 0;
  std::string idempotency_key;
  // kExecuteSql
  std::string sql;
  sql::Params params;
  // kStartInstance / kInvokeService: target process or service name
  // plus named arguments.
  std::string target;
  std::vector<std::pair<std::string, Value>> args;
  // kQueryAudit
  uint64_t instance_id = 0;
};

/// One server reply: the mirrored request id, the statement/instance
/// outcome, and the result rows (empty on error).
struct Response {
  uint64_t request_id = 0;
  Status status;
  sql::ResultSet result;
};

// --- message codecs --------------------------------------------------------

std::string EncodeHello(std::string_view client_name);
/// Validates magic + version; returns the client name.
Result<std::string> DecodeHello(std::string_view payload);

std::string EncodeHelloOk(std::string_view server_name, uint64_t session_id);
Result<std::pair<std::string, uint64_t>> DecodeHelloOk(
    std::string_view payload);

std::string EncodeRequest(const Request& request);
Result<Request> DecodeRequest(std::string_view payload);

std::string EncodeResponse(const Response& response);
Result<Response> DecodeResponse(std::string_view payload);

/// ResultSet codec, shared by responses and the server's durable
/// request ledger (the recorded response replays byte-identically).
void PutResultSet(std::string& out, const sql::ResultSet& rs);
Result<sql::ResultSet> ReadResultSet(sql::WalReader& reader);

// --- frame I/O -------------------------------------------------------------

/// Per-endpoint frame I/O configuration. The injector (when non-null
/// and armed with FaultLayer::kNetwork) gets a shot at every frame on
/// this endpoint: drop, delay, truncate, or tear down the connection,
/// seed-deterministically.
struct FrameIo {
  int fd = -1;
  /// Once the first byte of a frame is in flight, the rest must arrive
  /// (or drain) within this budget — the slow-loris killer. -1 blocks
  /// forever.
  int deadline_ms = -1;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  sql::FaultInjector* injector = nullptr;
  /// Injector identity: `label` is matched by the database filter,
  /// `side` ("client" / "server") lands in the site description
  /// ("net send server").
  std::string label;
  std::string side;
  /// Byte counters (bumped by payload+header bytes that actually cross
  /// the wire); may be null. Atomic because a connection's reader and
  /// the worker answering it run on different threads.
  std::atomic<uint64_t>* bytes_out = nullptr;
  std::atomic<uint64_t>* bytes_in = nullptr;
};

/// Sends one frame. Injected network faults surface as kUnavailable
/// (the frame did not fully arrive; the connection must be considered
/// dead) after applying their side effect — nothing written, a torn
/// prefix written, or the socket shut down. kTimeout when the write
/// deadline expires.
Status SendFrame(const FrameIo& io, std::string_view payload);

/// Receives one frame. `idle_ms` bounds the wait for the frame's first
/// byte (-1 = forever); io.deadline_ms bounds the rest. A clean EOF at
/// a frame boundary returns kUnavailable with message "eof"; EOF
/// mid-frame is a torn frame (kUnavailable); a CRC mismatch or an
/// oversized length word is kDataLoss (the stream cannot be resynced —
/// close it).
Result<std::string> RecvFrame(const FrameIo& io, int idle_ms);

/// True for the clean-close sentinel RecvFrame returns at EOF.
bool IsCleanEof(const Status& status);

}  // namespace sqlflow::net

#endif  // SQLFLOW_NET_PROTOCOL_H_
