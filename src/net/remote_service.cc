#include "net/remote_service.h"

#include <utility>
#include <vector>

namespace sqlflow::net {

RemoteService::RemoteService(std::string local_name, std::string remote_name,
                             std::shared_ptr<Client> client)
    : local_name_(std::move(local_name)),
      remote_name_(std::move(remote_name)),
      client_(std::move(client)) {}

Result<xml::NodePtr> RemoteService::Invoke(const xml::NodePtr& request) {
  std::vector<std::pair<std::string, Value>> args;
  std::string key;
  for (const xml::NodePtr& child : request->children()) {
    if (!child->is_element() || child->name() != "param") continue;
    auto param_name = child->GetAttribute("name");
    if (!param_name.has_value()) continue;
    SQLFLOW_ASSIGN_OR_RETURN(Value value,
                             wfc::GetRequestParam(request, *param_name));
    if (*param_name == wfc::IdempotentService::kKeyParam) {
      // The dedup key travels as the wire-level idempotency key (and is
      // re-attached by the far server), not as an ordinary argument.
      key = value.AsString();
      continue;
    }
    args.emplace_back(*param_name, std::move(value));
  }
  SQLFLOW_ASSIGN_OR_RETURN(
      Value value,
      client_->InvokeService(remote_name_, std::move(args), std::move(key)));
  return wfc::MakeResponse(value);
}

}  // namespace sqlflow::net
