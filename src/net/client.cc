#include "net/client.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

#include "obs/metrics.h"

namespace sqlflow::net {

Client::Client(ClientOptions options) : options_(std::move(options)) {}

Client::~Client() { Close(); }

void Client::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  session_id_ = 0;
}

ClientStats Client::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

FrameIo Client::Io() const {
  FrameIo io;
  io.fd = fd_;
  io.deadline_ms = options_.response_deadline_ms;
  io.max_frame_bytes = options_.max_frame_bytes;
  io.injector = options_.injector;
  io.label = options_.fault_label;
  io.side = "client";
  io.bytes_out = const_cast<std::atomic<uint64_t>*>(&bytes_out_);
  io.bytes_in = const_cast<std::atomic<uint64_t>*>(&bytes_in_);
  return io;
}

Status Client::ConnectOnce() {
  Close();
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::Unavailable(std::string("socket failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return Status::Unavailable(std::string("connect failed: ") +
                               std::strerror(errno));
  }
  fd_ = fd;

  // The handshake is plain frame I/O: send kHello, expect kHelloOk. An
  // admission refusal arrives as a kResult frame instead — surface its
  // (transient) status so the ladder backs off and retries.
  Status sent = SendFrame(Io(), EncodeHello(options_.client_name));
  if (!sent.ok()) {
    Close();
    return sent;
  }
  auto reply = RecvFrame(Io(), options_.connect_timeout_ms);
  if (!reply.ok()) {
    Close();
    return reply.status();
  }
  if (!reply->empty() &&
      static_cast<MessageType>(static_cast<uint8_t>((*reply)[0])) ==
          MessageType::kResult) {
    auto refusal = DecodeResponse(*reply);
    Close();
    if (refusal.ok()) return refusal->status;
    return refusal.status();
  }
  auto hello_ok = DecodeHelloOk(*reply);
  if (!hello_ok.ok()) {
    Close();
    return hello_ok.status();
  }
  server_name_ = hello_ok->first;
  session_id_ = hello_ok->second;
  return Status::OK();
}

Status Client::Connect() {
  Status last = Status::OK();
  for (int attempt = 1; attempt <= std::max(1, options_.max_attempts);
       ++attempt) {
    if (attempt > 1) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_backoff_ms * attempt));
      std::lock_guard<std::mutex> lock(mutex_);
      stats_.retries += 1;
    }
    last = ConnectOnce();
    if (last.ok()) {
      if (attempt > 1) {
        std::lock_guard<std::mutex> lock(mutex_);
        stats_.reconnects += 1;
      }
      return last;
    }
    if (!last.IsTransient()) return last;
  }
  return last;
}

Result<Response> Client::RoundTrip(const Request& request) {
  SQLFLOW_RETURN_IF_ERROR(SendFrame(Io(), EncodeRequest(request)));
  SQLFLOW_ASSIGN_OR_RETURN(std::string payload,
                           RecvFrame(Io(), options_.response_deadline_ms));
  SQLFLOW_ASSIGN_OR_RETURN(Response response, DecodeResponse(payload));
  if (response.request_id != 0 &&
      response.request_id != request.request_id) {
    return Status::DataLoss("response id " +
                            std::to_string(response.request_id) +
                            " does not match request " +
                            std::to_string(request.request_id));
  }
  return response;
}

bool Client::SafeToRepeat(const Request& request) {
  if (!request.idempotency_key.empty()) return true;
  switch (request.type) {
    case MessageType::kPing:
    case MessageType::kQueryAudit:
      return true;  // read-only
    default:
      return false;
  }
}

Result<Response> Client::Call(Request request) {
  std::lock_guard<std::mutex> lock(mutex_);
  request.request_id = next_request_id_++;
  stats_.requests += 1;

  const int max_attempts = std::max(1, options_.max_attempts);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= max_attempts; ++attempt) {
    if (attempt > 1) {
      stats_.retries += 1;
      obs::MetricsRegistry::Global()
          .GetCounter("net.client.retries")
          .Increment();
      std::this_thread::sleep_for(
          std::chrono::milliseconds(options_.retry_backoff_ms * attempt));
      // A fresh request id per attempt: the server replies under the
      // id it was asked with, and dedup rides the idempotency key.
      request.request_id = next_request_id_++;
    }
    if (fd_ < 0) {
      last = ConnectOnce();
      if (!last.ok()) {
        if (!last.IsTransient()) return last;
        continue;
      }
      if (attempt > 1) stats_.reconnects += 1;
    }
    auto response = RoundTrip(request);
    if (response.ok()) {
      // A transient *response* (shed, queue full) is retried like a
      // transport fault — but on a healthy connection.
      if (response->status.IsTransient() && attempt < max_attempts &&
          SafeToRepeat(request)) {
        last = response->status;
        continue;
      }
      return response;
    }
    // Transport fault: the connection is unusable (torn frame, injected
    // drop, deadline, CRC failure). Tear it down; retry only when a
    // repeat cannot double-execute.
    last = response.status();
    Close();
    if (!last.IsTransient() && last.code() != StatusCode::kDataLoss) {
      return last;
    }
    if (!SafeToRepeat(request)) return last;
  }
  return last;
}

Result<sql::ResultSet> Client::ExecuteSql(std::string_view sql,
                                          const sql::Params& params,
                                          std::string idempotency_key) {
  Request request;
  request.type = MessageType::kExecuteSql;
  request.sql = std::string(sql);
  request.params = params;
  request.idempotency_key = std::move(idempotency_key);
  SQLFLOW_ASSIGN_OR_RETURN(Response response, Call(std::move(request)));
  if (!response.status.ok()) return response.status;
  return std::move(response.result);
}

Result<sql::ResultSet> Client::StartInstance(
    std::string process_name,
    std::vector<std::pair<std::string, Value>> args,
    std::string idempotency_key) {
  Request request;
  request.type = MessageType::kStartInstance;
  request.target = std::move(process_name);
  request.args = std::move(args);
  request.idempotency_key = std::move(idempotency_key);
  SQLFLOW_ASSIGN_OR_RETURN(Response response, Call(std::move(request)));
  if (!response.status.ok()) return response.status;
  return std::move(response.result);
}

Result<Value> Client::InvokeService(
    std::string service_name,
    std::vector<std::pair<std::string, Value>> args,
    std::string idempotency_key) {
  Request request;
  request.type = MessageType::kInvokeService;
  request.target = std::move(service_name);
  request.args = std::move(args);
  request.idempotency_key = std::move(idempotency_key);
  SQLFLOW_ASSIGN_OR_RETURN(Response response, Call(std::move(request)));
  if (!response.status.ok()) return response.status;
  if (response.result.row_count() < 1 ||
      response.result.column_count() < 1) {
    return Status::Internal("service reply carried no value");
  }
  return response.result.rows()[0][0];
}

Result<sql::ResultSet> Client::QueryAudit(uint64_t instance_id) {
  Request request;
  request.type = MessageType::kQueryAudit;
  request.instance_id = instance_id;
  SQLFLOW_ASSIGN_OR_RETURN(Response response, Call(std::move(request)));
  if (!response.status.ok()) return response.status;
  return std::move(response.result);
}

Status Client::Ping() {
  Request request;
  request.type = MessageType::kPing;
  SQLFLOW_ASSIGN_OR_RETURN(Response response, Call(std::move(request)));
  return response.status;
}

}  // namespace sqlflow::net
