#include "net/server.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <utility>

#include "obs/metrics.h"
#include "sql/table.h"

namespace sqlflow::net {

namespace {

/// Reader threads and the accept loop poll in short ticks so Stop() is
/// observed promptly even on otherwise-silent connections.
constexpr int kPollTickMs = 50;

sql::TableSchema MakeSchema(
    std::string name,
    std::vector<std::pair<std::string, ValueType>> cols) {
  std::vector<sql::ColumnDef> defs;
  defs.reserve(cols.size());
  for (auto& [col_name, type] : cols) {
    sql::ColumnDef def;
    def.name = std::move(col_name);
    def.type = type;
    defs.push_back(std::move(def));
  }
  return sql::TableSchema(std::move(name), std::move(defs));
}

}  // namespace

const char* Server::ConnStateName(ConnState state) {
  switch (state) {
    case ConnState::kHandshake:
      return "handshake";
    case ConnState::kIdle:
      return "idle";
    case ConnState::kActive:
      return "active";
    case ConnState::kClosing:
      return "closing";
  }
  return "unknown";
}

Server::Server(sql::Database* db, wfc::WorkflowEngine* engine,
               ServerOptions options)
    : db_(db), options_(std::move(options)) {
  wf_.engine = engine;
}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load()) return Status::ExecutionError("server already running");
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Unavailable(std::string("socket failed: ") +
                               std::strerror(errno));
  }
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("bind failed: ") +
                               std::strerror(errno));
  }
  if (::listen(listen_fd_, 128) != 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::Unavailable(std::string("listen failed: ") +
                               std::strerror(errno));
  }
  socklen_t len = sizeof(addr);
  ::getsockname(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);

  stopping_.store(false);
  running_.store(true);
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  const uint32_t workers = options_.worker_threads == 0
                               ? 1
                               : options_.worker_threads;
  workers_.reserve(workers);
  for (uint32_t i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
  return Status::OK();
}

void Server::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);

  // 1. Stop accepting.
  if (accept_thread_.joinable()) accept_thread_.join();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }

  // 2. Stop reading: reader threads observe stopping_ on their next
  // poll tick and exit, so no new work enters the queue. A reader
  // moves its connection to the zombie list on the way out (inside
  // conns_mutex_), so the snapshot below sees every connection in
  // exactly one of the two containers.
  std::vector<std::shared_ptr<Connection>> all;
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) all.push_back(conn);
    for (auto& conn : zombies_) all.push_back(conn);
  }
  for (auto& conn : all) {
    if (conn->reader.joinable()) conn->reader.join();
  }

  // 3. Drain: workers finish everything still queued (responses flush
  // over the still-open sockets), then exit.
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) {
    if (worker.joinable()) worker.join();
  }
  workers_.clear();

  // 4. Only now do the sockets close.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (auto& [id, conn] : conns_) all.push_back(conn);
    conns_.clear();
    zombies_.clear();
  }
  for (auto& conn : all) {
    int fd = conn->fd.exchange(-1);
    if (fd >= 0) ::close(fd);
  }
}

ServerStats Server::stats() const {
  std::lock_guard<std::mutex> lock(stats_mutex_);
  return stats_;
}

void Server::NoteResumedInstances(
    const std::vector<Result<wfc::InstanceResult>>& resumed) {
  std::lock_guard<std::mutex> lock(wf_.mutex);
  for (const auto& entry : resumed) {
    if (!entry.ok()) continue;
    wf_.results[entry->instance_id] = *entry;
  }
}

FrameIo Server::IoFor(const Connection& conn) const {
  FrameIo io;
  io.fd = conn.fd.load();
  io.deadline_ms = options_.frame_deadline_ms;
  io.max_frame_bytes = options_.max_frame_bytes;
  io.injector = options_.injector;
  io.label = options_.fault_label;
  io.side = "server";
  io.bytes_out = const_cast<std::atomic<uint64_t>*>(&conn.bytes_out);
  io.bytes_in = const_cast<std::atomic<uint64_t>*>(&conn.bytes_in);
  return io;
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    struct pollfd p{};
    p.fd = listen_fd_;
    p.events = POLLIN;
    int rc = ::poll(&p, 1, kPollTickMs);
    if (rc <= 0) continue;
    int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;

    size_t live;
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      live = conns_.size();
    }
    if (live >= options_.max_connections) {
      // Admission refusal: a transient error frame instead of a silent
      // close, so the client backs off and retries rather than
      // diagnosing a dead server.
      // Count the decision before delivering it: a client that has
      // read the refusal frame must already see it in stats().
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.rejected_at_accept += 1;
      }
      obs::MetricsRegistry::Global()
          .GetCounter("net.conn.rejected")
          .Increment();
      Response refusal;
      refusal.status = Status::Unavailable(
          "server at its connection limit (" +
          std::to_string(options_.max_connections) + ")");
      FrameIo io;
      io.fd = fd;
      io.deadline_ms = options_.frame_deadline_ms;
      (void)SendFrame(io, EncodeResponse(refusal));
      ::close(fd);
      continue;
    }

    auto conn = std::make_shared<Connection>();
    conn->fd.store(fd);
    conn->session = std::make_unique<Session>(db_->CreateConnection(),
                                              &wf_);
    {
      std::lock_guard<std::mutex> lock(conns_mutex_);
      conn->id = next_conn_id_++;
      conns_[conn->id] = conn;
    }
    {
      std::lock_guard<std::mutex> lock(stats_mutex_);
      stats_.accepted += 1;
    }
    obs::MetricsRegistry::Global()
        .GetCounter("net.conn.accepted")
        .Increment();
    conn->reader = std::thread([this, conn] { ReaderLoop(conn); });
  }
}

void Server::CloseConnection(const std::shared_ptr<Connection>& conn) {
  conn->state.store(ConnState::kClosing);
  {
    int fd = conn->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  // Leave the live map (sys.connections shows live peers only); the
  // zombie list keeps the thread handle for Stop() to join. One
  // critical section, so Stop's snapshot can't miss the connection.
  {
    std::lock_guard<std::mutex> lock(conns_mutex_);
    auto it = conns_.find(conn->id);
    if (it != conns_.end()) {
      zombies_.push_back(it->second);
      conns_.erase(it);
    }
  }
  MaybeReleaseFd(conn);
}

void Server::MaybeReleaseFd(const std::shared_ptr<Connection>& conn) {
  // The socket may only close once no response can still be written to
  // it: the reader has exited (state kClosing) and no request is queued
  // or executing. Early close would let the kernel recycle the fd
  // number under a worker mid-write — cross-connection corruption.
  if (stopping_.load()) return;  // Stop() owns the ordered teardown
  if (conn->state.load() != ConnState::kClosing) return;
  if (conn->inflight.load() != 0) return;
  int fd = conn->fd.exchange(-1);
  if (fd >= 0) ::close(fd);
}

Status Server::SendResponse(const std::shared_ptr<Connection>& conn,
                            const Response& response) {
  std::lock_guard<std::mutex> lock(conn->write_mutex);
  Status sent = SendFrame(IoFor(*conn), EncodeResponse(response));
  if (!sent.ok()) {
    // The response cannot reach the peer; wake the reader so the
    // connection tears down instead of idling half-dead.
    int fd = conn->fd.load();
    if (fd >= 0) ::shutdown(fd, SHUT_RDWR);
  }
  return sent;
}

void Server::ServeRequest(const std::shared_ptr<Connection>& conn,
                          const Request& request) {
  conn->state.store(ConnState::kActive);
  Response response = conn->session->Handle(request);
  conn->requests.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(stats_mutex_);
    stats_.requests += 1;
  }
  // Settle the state before the response leaves: a client that has
  // read its reply must already see this connection idle in
  // sys.connections.
  if (conn->state.load() == ConnState::kActive) {
    conn->state.store(ConnState::kIdle);
  }
  (void)SendResponse(conn, response);
  conn->inflight.fetch_sub(1);
  MaybeReleaseFd(conn);
}

void Server::WorkerLoop() {
  while (true) {
    WorkItem item;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [this] {
        return stopping_.load() || !queue_.empty();
      });
      if (queue_.empty()) {
        if (stopping_.load()) return;
        continue;
      }
      item = std::move(queue_.front());
      queue_.pop_front();
    }
    ServeRequest(item.conn, item.request);
  }
}

void Server::ReaderLoop(std::shared_ptr<Connection> conn) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();

  // Handshake: the first frame must be a well-formed kHello. Anything
  // else — garbage bytes, a request, a bad magic — is answered with one
  // error frame (best effort) and a close, before any session work.
  // The first byte is awaited in poll ticks (Stop() stays responsive);
  // a peer that connects and sends nothing is cut off after the frame
  // deadline.
  {
    const int budget =
        options_.frame_deadline_ms >= 0 ? options_.frame_deadline_ms : 5000;
    auto started = std::chrono::steady_clock::now();
    bool readable = false;
    while (!stopping_.load()) {
      struct pollfd p{};
      p.fd = conn->fd.load();
      p.events = POLLIN;
      int rc = ::poll(&p, 1, kPollTickMs);
      if (rc > 0) {
        readable = true;
        break;
      }
      auto waited = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - started)
                        .count();
      if (rc < 0 && errno != EINTR) break;
      if (waited >= budget) break;
    }
    if (!readable) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.timeouts += 1;
      }
      CloseConnection(conn);
      return;
    }
    auto first = RecvFrame(IoFor(*conn), options_.frame_deadline_ms);
    Status handshake = first.ok() ? Status::OK() : first.status();
    std::string client_name;
    if (handshake.ok()) {
      auto hello = DecodeHello(*first);
      if (hello.ok()) {
        client_name = std::move(*hello);
      } else {
        handshake = hello.status();
      }
    }
    if (!handshake.ok()) {
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.protocol_errors += 1;
      }
      metrics.GetCounter("net.protocol.errors").Increment();
      Response err;
      err.status = std::move(handshake);
      (void)SendResponse(conn, err);
      CloseConnection(conn);
      return;
    }
    conn->client_name = std::move(client_name);
    std::lock_guard<std::mutex> lock(conn->write_mutex);
    if (!SendFrame(IoFor(*conn),
                   EncodeHelloOk(options_.server_name, conn->id))
             .ok()) {
      CloseConnection(conn);
      return;
    }
  }
  conn->state.store(ConnState::kIdle);

  auto idle_since = std::chrono::steady_clock::now();
  while (!stopping_.load()) {
    // Idle wait in short ticks: reacts to Stop() and enforces the idle
    // budget without committing to a long blocking read.
    struct pollfd p{};
    p.fd = conn->fd.load();
    p.events = POLLIN;
    int rc = ::poll(&p, 1, kPollTickMs);
    if (rc < 0) {
      if (errno == EINTR) continue;
      break;
    }
    if (rc == 0) {
      if (options_.idle_timeout_ms >= 0) {
        auto idle = std::chrono::duration_cast<std::chrono::milliseconds>(
                        std::chrono::steady_clock::now() - idle_since)
                        .count();
        if (idle >= options_.idle_timeout_ms) {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.timeouts += 1;
          break;
        }
      }
      continue;
    }

    // Data (or EOF) is ready: the whole frame must now arrive within
    // frame_deadline_ms — a peer trickling bytes is cut off.
    auto frame = RecvFrame(IoFor(*conn), options_.frame_deadline_ms);
    if (!frame.ok()) {
      const Status& st = frame.status();
      if (IsCleanEof(st)) break;
      if (st.code() == StatusCode::kTimeout) {
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.timeouts += 1;
        }
        metrics.GetCounter("net.timeouts").Increment();
      } else if (st.code() == StatusCode::kDataLoss) {
        // CRC mismatch or oversized frame: the stream cannot be
        // resynced. One error frame, then close.
        {
          std::lock_guard<std::mutex> lock(stats_mutex_);
          stats_.protocol_errors += 1;
        }
        metrics.GetCounter("net.protocol.errors").Increment();
        Response err;
        err.status = st;
        (void)SendResponse(conn, err);
      }
      break;
    }
    idle_since = std::chrono::steady_clock::now();

    auto request = DecodeRequest(*frame);
    if (!request.ok()) {
      // Framing was sound but the payload is not a request the server
      // understands; the stream itself is suspect from here on.
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.protocol_errors += 1;
      }
      metrics.GetCounter("net.protocol.errors").Increment();
      Response err;
      err.status = request.status();
      (void)SendResponse(conn, err);
      break;
    }

    // Load shedding, innermost gates: per-connection in-flight cap,
    // then the bounded global queue. Shed requests are answered
    // immediately with a transient error — cheap for the server, a
    // clear back-off signal for the client.
    bool shed = false;
    std::string reason;
    if (conn->inflight.load() >=
        static_cast<int>(options_.max_inflight_per_conn)) {
      shed = true;
      reason = "connection in-flight cap reached";
    } else {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() >= options_.max_queue_depth) {
        shed = true;
        reason = "server request queue is full";
      } else {
        conn->inflight.fetch_add(1);
        queue_.push_back(WorkItem{conn, std::move(*request)});
      }
    }
    if (shed) {
      conn->shed.fetch_add(1, std::memory_order_relaxed);
      {
        std::lock_guard<std::mutex> lock(stats_mutex_);
        stats_.shed += 1;
      }
      metrics.GetCounter("net.shed").Increment();
      Response busy;
      busy.request_id = request->request_id;
      busy.status = Status::Unavailable(reason + "; retry");
      (void)SendResponse(conn, busy);
    } else {
      queue_cv_.notify_one();
    }
  }
  CloseConnection(conn);
}

Status Server::RegisterSysConnections() {
  // The generator reads only atomics and the conns_ map under its
  // mutex; the server must outlive statements that scan the table.
  auto generator = [this]() {
    std::vector<sql::Row> rows;
    size_t depth;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      depth = queue_.size();
    }
    std::lock_guard<std::mutex> lock(conns_mutex_);
    for (const auto& [id, conn] : conns_) {
      rows.push_back(
          {Value::Integer(static_cast<int64_t>(conn->id)),
           Value::String(conn->client_name),
           Value::String(ConnStateName(conn->state.load())),
           Value::Integer(static_cast<int64_t>(
               conn->session->session_txn())),
           Value::Boolean(conn->session->in_txn_cached()),
           Value::Integer(conn->inflight.load()),
           Value::Integer(static_cast<int64_t>(depth)),
           Value::Integer(static_cast<int64_t>(
               conn->bytes_in.load(std::memory_order_relaxed))),
           Value::Integer(static_cast<int64_t>(
               conn->bytes_out.load(std::memory_order_relaxed))),
           Value::Integer(static_cast<int64_t>(
               conn->requests.load(std::memory_order_relaxed))),
           Value::Integer(static_cast<int64_t>(
               conn->shed.load(std::memory_order_relaxed)))});
    }
    return rows;
  };
  return db_->catalog().RegisterVirtualTable(
      MakeSchema("sys.connections",
                 {{"CONN_ID", ValueType::kInteger},
                  {"CLIENT", ValueType::kString},
                  {"STATE", ValueType::kString},
                  {"SESSION_TXN", ValueType::kInteger},
                  {"IN_TXN", ValueType::kBoolean},
                  {"IN_FLIGHT", ValueType::kInteger},
                  {"QUEUE_DEPTH", ValueType::kInteger},
                  {"BYTES_IN", ValueType::kInteger},
                  {"BYTES_OUT", ValueType::kInteger},
                  {"REQUESTS", ValueType::kInteger},
                  {"SHED", ValueType::kInteger}}),
      std::move(generator));
}

}  // namespace sqlflow::net
