#ifndef SQLFLOW_NET_CLIENT_H_
#define SQLFLOW_NET_CLIENT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/protocol.h"
#include "sql/eval.h"
#include "sql/result_set.h"

namespace sqlflow::net {

struct ClientOptions {
  /// The server listens on loopback only.
  uint16_t port = 0;
  std::string client_name = "client";
  int connect_timeout_ms = 2000;
  /// Budget for one response to arrive (and for sends to drain).
  int response_deadline_ms = 10000;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// Network chaos for client-side frame I/O (FaultLayer::kNetwork).
  sql::FaultInjector* injector = nullptr;
  std::string fault_label = "client";
  /// Transport retry ladder: on a transient failure the client
  /// reconnects and re-sends — but only requests that are safe to
  /// repeat (carrying an idempotency key, or read-only). 1 = no
  /// retries.
  int max_attempts = 1;
  int retry_backoff_ms = 2;
};

/// Monotonic client-side counters.
struct ClientStats {
  uint64_t requests = 0;
  uint64_t retries = 0;     // re-sends after a transient failure
  uint64_t reconnects = 0;  // successful re-handshakes after a drop
};

/// The C++ driver for the sqlflow wire protocol: one TCP connection,
/// one server-side session (its own MVCC connection). Calls are
/// synchronous request/response and serialized per client. Transient
/// failures — dropped connections, shed requests, admission refusals —
/// are absorbed by the retry ladder when the request is safe to repeat;
/// the idempotency key makes a repeat safe by letting the server answer
/// it from the durable request ledger instead of re-executing.
class Client {
 public:
  explicit Client(ClientOptions options);
  ~Client();

  Client(const Client&) = delete;
  Client& operator=(const Client&) = delete;

  /// Connects and handshakes. Transient refusals (admission limit) are
  /// retried through the ladder.
  Status Connect();
  void Close();
  bool connected() const { return fd_ >= 0; }
  uint64_t session_id() const { return session_id_; }
  const std::string& server_name() const { return server_name_; }
  ClientStats stats() const;

  /// One SQL statement. A non-empty `idempotency_key` makes the call
  /// exactly-once across retries and server crashes.
  Result<sql::ResultSet> ExecuteSql(std::string_view sql,
                                    const sql::Params& params = {},
                                    std::string idempotency_key = "");

  /// Starts a workflow instance and waits for it to finish; the result
  /// carries the INSTANCE_ID row. Keyed starts are exactly-once.
  Result<sql::ResultSet> StartInstance(
      std::string process_name,
      std::vector<std::pair<std::string, Value>> args = {},
      std::string idempotency_key = "");

  /// Invokes a registered service; keyed invokes dedupe through the
  /// server's IdempotentService wrapper.
  Result<Value> InvokeService(
      std::string service_name,
      std::vector<std::pair<std::string, Value>> args = {},
      std::string idempotency_key = "");

  /// Audit trail of a finished instance (SEQ, KIND, ACTIVITY, DETAIL,
  /// ATTEMPT).
  Result<sql::ResultSet> QueryAudit(uint64_t instance_id);

  Status Ping();

  /// Low-level round trip with the retry ladder. Assigns the request
  /// id; repeats keep the caller's idempotency key.
  Result<Response> Call(Request request);

 private:
  Status ConnectOnce();
  /// One send/receive on the current connection, no retries.
  Result<Response> RoundTrip(const Request& request);
  FrameIo Io() const;
  static bool SafeToRepeat(const Request& request);

  ClientOptions options_;
  int fd_ = -1;
  uint64_t session_id_ = 0;
  std::string server_name_;
  uint64_t next_request_id_ = 1;
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  mutable std::mutex mutex_;
  ClientStats stats_;
};

}  // namespace sqlflow::net

#endif  // SQLFLOW_NET_CLIENT_H_
