#ifndef SQLFLOW_NET_SERVER_H_
#define SQLFLOW_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/protocol.h"
#include "net/session.h"
#include "sql/database.h"
#include "wfc/engine.h"

namespace sqlflow::net {

struct ServerOptions {
  /// 0 = kernel-assigned ephemeral port; read the result from port().
  uint16_t port = 0;
  /// Admission control, outermost gate: connections beyond this are
  /// turned away at accept time with a transient refusal frame.
  uint32_t max_connections = 64;
  /// Per-connection in-flight cap: requests past it are shed without
  /// executing (kUnavailable), so one pipelining client cannot occupy
  /// every worker.
  uint32_t max_inflight_per_conn = 4;
  /// Bounded global work queue; a full queue sheds load instead of
  /// buffering it (the backpressure gate).
  uint32_t max_queue_depth = 128;
  uint32_t worker_threads = 4;
  /// Budget for a peer to *finish* a frame once its first byte arrived,
  /// and for writes to drain — the slow-loris killer. -1 disables.
  int frame_deadline_ms = 2000;
  /// Budget for a connection to send its next request (-1 = forever).
  int idle_timeout_ms = -1;
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  std::string server_name = "sqlflow";
  /// Network-layer chaos for server-side frame I/O (FaultLayer::kNetwork
  /// must be armed on the injector). The injector's database filter
  /// matches `fault_label`.
  sql::FaultInjector* injector = nullptr;
  std::string fault_label = "server";
};

/// Monotonic counters; snapshot via Server::stats().
struct ServerStats {
  uint64_t accepted = 0;
  uint64_t rejected_at_accept = 0;  // over max_connections
  uint64_t shed = 0;                // in-flight cap or full queue
  uint64_t requests = 0;            // executed (not shed)
  uint64_t protocol_errors = 0;     // framing/CRC/handshake violations
  uint64_t timeouts = 0;            // deadline kills (slow loris / idle)
};

/// The wire-protocol front of one database (+ optional workflow
/// engine): a TCP listener, one reader thread per connection, and a
/// bounded worker pool executing requests through per-connection
/// Sessions. Stop() drains gracefully — accepting stops, queued work
/// finishes, responses flush, then sockets close.
class Server {
 public:
  Server(sql::Database* db, wfc::WorkflowEngine* engine,
         ServerOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  Status Start();
  /// Graceful drain; idempotent.
  void Stop();

  uint16_t port() const { return port_; }
  bool running() const { return running_.load(std::memory_order_acquire); }
  ServerStats stats() const;

  /// Feeds the outcomes of WorkflowEngine::ResumeInstances into the
  /// workflow state, so retried keyed starts map onto the resumed
  /// instances instead of running duplicates. Call after recovery,
  /// before serving.
  void NoteResumedInstances(
      const std::vector<Result<wfc::InstanceResult>>& resumed);

  /// Registers sys.connections on the database: one row per live
  /// connection (CONN_ID, CLIENT, STATE, SESSION_TXN, IN_TXN, IN_FLIGHT,
  /// QUEUE_DEPTH, BYTES_IN, BYTES_OUT, REQUESTS, SHED), joinable with
  /// the other sys.* tables. Safe to call once per database.
  Status RegisterSysConnections();

 private:
  enum class ConnState { kHandshake, kIdle, kActive, kClosing };
  static const char* ConnStateName(ConnState state);

  struct Connection {
    uint64_t id = 0;
    /// Swapped to -1 exactly once when the socket is released (after
    /// the reader exited and the last in-flight response flushed).
    std::atomic<int> fd{-1};
    std::string client_name;
    std::unique_ptr<Session> session;
    std::atomic<ConnState> state{ConnState::kHandshake};
    std::atomic<int> inflight{0};
    std::atomic<uint64_t> bytes_in{0};
    std::atomic<uint64_t> bytes_out{0};
    std::atomic<uint64_t> requests{0};
    std::atomic<uint64_t> shed{0};
    /// Workers and the reader both write frames; one at a time.
    std::mutex write_mutex;
    std::thread reader;
  };

  struct WorkItem {
    std::shared_ptr<Connection> conn;
    Request request;
  };

  void AcceptLoop();
  void ReaderLoop(std::shared_ptr<Connection> conn);
  void WorkerLoop();
  /// Handles one request end-to-end (execute + respond).
  void ServeRequest(const std::shared_ptr<Connection>& conn,
                    const Request& request);
  Status SendResponse(const std::shared_ptr<Connection>& conn,
                      const Response& response);
  FrameIo IoFor(const Connection& conn) const;
  void CloseConnection(const std::shared_ptr<Connection>& conn);
  /// Closes the fd once the connection is closing and nothing is in
  /// flight; safe to call from any thread, idempotent.
  void MaybeReleaseFd(const std::shared_ptr<Connection>& conn);

  sql::Database* db_;
  ServerOptions options_;
  WorkflowState wf_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};
  std::thread accept_thread_;
  std::vector<std::thread> workers_;

  mutable std::mutex conns_mutex_;
  std::map<uint64_t, std::shared_ptr<Connection>> conns_;
  /// Finished connections whose reader threads Stop() still has to
  /// join (a thread cannot join itself on the way out).
  std::vector<std::shared_ptr<Connection>> zombies_;
  uint64_t next_conn_id_ = 1;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<WorkItem> queue_;

  mutable std::mutex stats_mutex_;
  ServerStats stats_;
};

}  // namespace sqlflow::net

#endif  // SQLFLOW_NET_SERVER_H_
