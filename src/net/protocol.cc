#include "net/protocol.h"

#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace sqlflow::net {

namespace {

using sql::WalPutString;
using sql::WalPutU32;
using sql::WalPutU64;
using sql::WalPutValue;
using sql::WalReader;

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutStatus(std::string& out, const Status& status) {
  PutU8(out, static_cast<uint8_t>(status.code()));
  WalPutString(out, status.message());
}

Status ReadStatus(WalReader& r, Status& out) {
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t code, r.U8());
  SQLFLOW_ASSIGN_OR_RETURN(std::string message, r.Str());
  out = Status(static_cast<StatusCode>(code), std::move(message));
  return Status::OK();
}

void PutNamedValues(std::string& out,
                    const std::vector<std::pair<std::string, Value>>& args) {
  WalPutU32(out, static_cast<uint32_t>(args.size()));
  for (const auto& [name, value] : args) {
    WalPutString(out, name);
    WalPutValue(out, value);
  }
}

Result<std::vector<std::pair<std::string, Value>>> ReadNamedValues(
    WalReader& r) {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  std::vector<std::pair<std::string, Value>> args;
  args.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
    SQLFLOW_ASSIGN_OR_RETURN(Value value, r.Val());
    args.emplace_back(std::move(name), std::move(value));
  }
  return args;
}

}  // namespace

// --- message codecs --------------------------------------------------------

std::string EncodeHello(std::string_view client_name) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(MessageType::kHello));
  WalPutU32(out, kProtocolMagic);
  WalPutU32(out, kProtocolVersion);
  WalPutString(out, client_name);
  return out;
}

Result<std::string> DecodeHello(std::string_view payload) {
  WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (static_cast<MessageType>(type) != MessageType::kHello) {
    return Status::InvalidArgument("first frame is not a handshake");
  }
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t magic, r.U32());
  if (magic != kProtocolMagic) {
    return Status::InvalidArgument("bad protocol magic");
  }
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t version, r.U32());
  if (version != kProtocolVersion) {
    return Status::Unsupported("protocol version " +
                               std::to_string(version) + " not supported");
  }
  SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
  return name;
}

std::string EncodeHelloOk(std::string_view server_name,
                          uint64_t session_id) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(MessageType::kHelloOk));
  WalPutString(out, server_name);
  WalPutU64(out, session_id);
  return out;
}

Result<std::pair<std::string, uint64_t>> DecodeHelloOk(
    std::string_view payload) {
  WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (static_cast<MessageType>(type) != MessageType::kHelloOk) {
    return Status::InvalidArgument("handshake reply has wrong type");
  }
  SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
  SQLFLOW_ASSIGN_OR_RETURN(uint64_t session_id, r.U64());
  return std::make_pair(std::move(name), session_id);
}

std::string EncodeRequest(const Request& request) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(request.type));
  WalPutU64(out, request.request_id);
  WalPutString(out, request.idempotency_key);
  switch (request.type) {
    case MessageType::kExecuteSql: {
      WalPutString(out, request.sql);
      WalPutU32(out,
                static_cast<uint32_t>(request.params.positional.size()));
      for (const Value& v : request.params.positional) {
        WalPutValue(out, v);
      }
      WalPutU32(out, static_cast<uint32_t>(request.params.named.size()));
      for (const auto& [name, value] : request.params.named) {
        WalPutString(out, name);
        WalPutValue(out, value);
      }
      break;
    }
    case MessageType::kStartInstance:
    case MessageType::kInvokeService: {
      WalPutString(out, request.target);
      PutNamedValues(out, request.args);
      break;
    }
    case MessageType::kQueryAudit:
      WalPutU64(out, request.instance_id);
      break;
    default:
      break;  // kPing carries no body
  }
  return out;
}

Result<Request> DecodeRequest(std::string_view payload) {
  WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t raw_type, r.U8());
  Request request;
  request.type = static_cast<MessageType>(raw_type);
  switch (request.type) {
    case MessageType::kExecuteSql:
    case MessageType::kStartInstance:
    case MessageType::kInvokeService:
    case MessageType::kQueryAudit:
    case MessageType::kPing:
      break;
    default:
      return Status::InvalidArgument("unknown request type " +
                                     std::to_string(raw_type));
  }
  SQLFLOW_ASSIGN_OR_RETURN(request.request_id, r.U64());
  SQLFLOW_ASSIGN_OR_RETURN(request.idempotency_key, r.Str());
  switch (request.type) {
    case MessageType::kExecuteSql: {
      SQLFLOW_ASSIGN_OR_RETURN(request.sql, r.Str());
      SQLFLOW_ASSIGN_OR_RETURN(uint32_t npos, r.U32());
      for (uint32_t i = 0; i < npos; ++i) {
        SQLFLOW_ASSIGN_OR_RETURN(Value v, r.Val());
        request.params.positional.push_back(std::move(v));
      }
      SQLFLOW_ASSIGN_OR_RETURN(uint32_t nnamed, r.U32());
      for (uint32_t i = 0; i < nnamed; ++i) {
        SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
        SQLFLOW_ASSIGN_OR_RETURN(Value v, r.Val());
        request.params.named[std::move(name)] = std::move(v);
      }
      break;
    }
    case MessageType::kStartInstance:
    case MessageType::kInvokeService: {
      SQLFLOW_ASSIGN_OR_RETURN(request.target, r.Str());
      SQLFLOW_ASSIGN_OR_RETURN(request.args, ReadNamedValues(r));
      break;
    }
    case MessageType::kQueryAudit: {
      SQLFLOW_ASSIGN_OR_RETURN(request.instance_id, r.U64());
      break;
    }
    default:
      break;
  }
  return request;
}

void PutResultSet(std::string& out, const sql::ResultSet& rs) {
  WalPutU32(out, static_cast<uint32_t>(rs.column_count()));
  for (const std::string& name : rs.column_names()) {
    WalPutString(out, name);
  }
  WalPutU64(out, rs.row_count());
  for (const sql::Row& row : rs.rows()) {
    WalPutU32(out, static_cast<uint32_t>(row.size()));
    for (const Value& v : row) WalPutValue(out, v);
  }
  WalPutU64(out, static_cast<uint64_t>(rs.affected_rows()));
}

Result<sql::ResultSet> ReadResultSet(sql::WalReader& reader) {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t ncols, reader.U32());
  std::vector<std::string> names;
  names.reserve(ncols);
  for (uint32_t i = 0; i < ncols; ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(std::string name, reader.Str());
    names.push_back(std::move(name));
  }
  sql::ResultSet rs(std::move(names));
  SQLFLOW_ASSIGN_OR_RETURN(uint64_t nrows, reader.U64());
  for (uint64_t i = 0; i < nrows; ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(uint32_t nvals, reader.U32());
    sql::Row row;
    row.reserve(nvals);
    for (uint32_t j = 0; j < nvals; ++j) {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, reader.Val());
      row.push_back(std::move(v));
    }
    rs.AddRow(std::move(row));
  }
  SQLFLOW_ASSIGN_OR_RETURN(uint64_t affected, reader.U64());
  rs.set_affected_rows(static_cast<int64_t>(affected));
  return rs;
}

std::string EncodeResponse(const Response& response) {
  std::string out;
  PutU8(out, static_cast<uint8_t>(MessageType::kResult));
  WalPutU64(out, response.request_id);
  PutStatus(out, response.status);
  PutResultSet(out, response.result);
  return out;
}

Result<Response> DecodeResponse(std::string_view payload) {
  WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (static_cast<MessageType>(type) != MessageType::kResult) {
    return Status::InvalidArgument("reply frame has wrong type " +
                                   std::to_string(type));
  }
  Response response;
  SQLFLOW_ASSIGN_OR_RETURN(response.request_id, r.U64());
  SQLFLOW_RETURN_IF_ERROR(ReadStatus(r, response.status));
  SQLFLOW_ASSIGN_OR_RETURN(response.result, ReadResultSet(r));
  return response;
}

// --- frame I/O -------------------------------------------------------------

namespace {

constexpr const char* kEofMessage = "eof";

/// Milliseconds left until `deadline` (for poll); -1 when no deadline.
int RemainingMs(
    const std::optional<std::chrono::steady_clock::time_point>& deadline) {
  if (!deadline.has_value()) return -1;
  auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
                  *deadline - std::chrono::steady_clock::now())
                  .count();
  return left <= 0 ? 0 : static_cast<int>(left);
}

Status WaitFor(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd p{};
  p.fd = fd;
  p.events = events;
  while (true) {
    int rc = ::poll(&p, 1, timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::Timeout(std::string(what) + " deadline expired");
    }
    if (errno == EINTR) continue;
    return Status::Unavailable(std::string(what) + " poll failed: " +
                               std::strerror(errno));
  }
}

/// Reads exactly `n` bytes; every wait is bounded by `deadline` (when
/// set). EOF inside the span is a torn frame unless `n_read_at_eof_ok`
/// says byte 0 may be a clean close.
Status ReadFull(
    int fd, char* buf, size_t n,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    bool eof_ok_at_start, std::atomic<uint64_t>* bytes_in,
    int idle_ms_first) {
  size_t got = 0;
  bool first = true;
  while (got < n) {
    int wait_ms = first ? idle_ms_first : RemainingMs(deadline);
    SQLFLOW_RETURN_IF_ERROR(WaitFor(fd, POLLIN, wait_ms, "read"));
    ssize_t r = ::recv(fd, buf + got, n - got, 0);
    if (r < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Status::Unavailable(std::string("read failed: ") +
                                 std::strerror(errno));
    }
    if (r == 0) {
      if (got == 0 && eof_ok_at_start) {
        return Status::Unavailable(kEofMessage);
      }
      return Status::Unavailable("connection closed mid-frame");
    }
    got += static_cast<size_t>(r);
    if (bytes_in != nullptr) {
      bytes_in->fetch_add(static_cast<uint64_t>(r),
                          std::memory_order_relaxed);
    }
    first = false;
  }
  return Status::OK();
}

Status WriteFull(
    int fd, const char* buf, size_t n,
    const std::optional<std::chrono::steady_clock::time_point>& deadline,
    std::atomic<uint64_t>* bytes_out) {
  size_t sent = 0;
  while (sent < n) {
    SQLFLOW_RETURN_IF_ERROR(
        WaitFor(fd, POLLOUT, RemainingMs(deadline), "write"));
    // MSG_NOSIGNAL: a peer that closed mid-exchange must surface as
    // EPIPE, not kill the server process with SIGPIPE.
    ssize_t r = ::send(fd, buf + sent, n - sent, MSG_NOSIGNAL);
    if (r < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) {
        continue;
      }
      return Status::Unavailable(std::string("write failed: ") +
                                 std::strerror(errno));
    }
    sent += static_cast<size_t>(r);
    if (bytes_out != nullptr) {
      bytes_out->fetch_add(static_cast<uint64_t>(r),
                          std::memory_order_relaxed);
    }
  }
  return Status::OK();
}

std::optional<std::chrono::steady_clock::time_point> DeadlineFrom(
    int deadline_ms) {
  if (deadline_ms < 0) return std::nullopt;
  return std::chrono::steady_clock::now() +
         std::chrono::milliseconds(deadline_ms);
}

/// Applies an injected network fault to a frame about to be sent.
/// Returns nullopt when the frame should proceed untouched (possibly
/// after an injected delay); otherwise the transient status the caller
/// must surface, with the socket-side damage already done.
std::optional<Status> ApplySendFault(const FrameIo& io,
                                     std::string_view wire_bytes) {
  if (io.injector == nullptr) return std::nullopt;
  sql::FaultSite site{io.label, "net send " + io.side,
                      sql::FaultLayer::kNetwork};
  auto fault = io.injector->MaybeNetworkFault(site, wire_bytes.size());
  if (!fault.has_value()) return std::nullopt;
  switch (fault->kind) {
    case sql::NetFault::Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault->delay_ms));
      return std::nullopt;
    case sql::NetFault::Kind::kDrop:
      // The frame vanishes en route: nothing reaches the peer, and the
      // sender must treat the connection as dead (its framing state and
      // the peer's have diverged).
      return Status::Unavailable("injected network drop (frame lost)");
    case sql::NetFault::Kind::kPartialWrite: {
      auto deadline = DeadlineFrom(io.deadline_ms);
      (void)WriteFull(io.fd, wire_bytes.data(),
                      static_cast<size_t>(fault->partial_bytes), deadline,
                      io.bytes_out);
      ::shutdown(io.fd, SHUT_RDWR);
      return Status::Unavailable(
          "injected partial write (" +
          std::to_string(fault->partial_bytes) + " of " +
          std::to_string(wire_bytes.size()) + " bytes)");
    }
    case sql::NetFault::Kind::kAbruptClose:
      ::shutdown(io.fd, SHUT_RDWR);
      return Status::Unavailable("injected abrupt close");
  }
  return std::nullopt;
}

std::optional<Status> ApplyRecvFault(const FrameIo& io) {
  if (io.injector == nullptr) return std::nullopt;
  sql::FaultSite site{io.label, "net recv " + io.side,
                      sql::FaultLayer::kNetwork};
  auto fault = io.injector->MaybeNetworkFault(site, 0);
  if (!fault.has_value()) return std::nullopt;
  switch (fault->kind) {
    case sql::NetFault::Kind::kDelay:
      std::this_thread::sleep_for(
          std::chrono::milliseconds(fault->delay_ms));
      return std::nullopt;
    case sql::NetFault::Kind::kDrop:
    case sql::NetFault::Kind::kPartialWrite:
      // Receive-side loss: the frame never arrives; the reader gives up
      // on the connection.
      return Status::Unavailable("injected network drop (recv)");
    case sql::NetFault::Kind::kAbruptClose:
      ::shutdown(io.fd, SHUT_RDWR);
      return Status::Unavailable("injected abrupt close (recv)");
  }
  return std::nullopt;
}

}  // namespace

Status SendFrame(const FrameIo& io, std::string_view payload) {
  std::string wire;
  sql::WalPutU32(wire, static_cast<uint32_t>(payload.size()));
  sql::WalPutU32(wire, sql::WalCrc32(payload.data(), payload.size()));
  wire.append(payload.data(), payload.size());
  if (auto injected = ApplySendFault(io, wire)) return *injected;
  auto deadline = DeadlineFrom(io.deadline_ms);
  return WriteFull(io.fd, wire.data(), wire.size(), deadline,
                   io.bytes_out);
}

Result<std::string> RecvFrame(const FrameIo& io, int idle_ms) {
  if (auto injected = ApplyRecvFault(io)) return *injected;
  char header[8];
  auto deadline = DeadlineFrom(io.deadline_ms);
  SQLFLOW_RETURN_IF_ERROR(ReadFull(io.fd, header, sizeof(header), deadline,
                                   /*eof_ok_at_start=*/true, io.bytes_in,
                                   idle_ms));
  auto read_u32 = [&header](int at) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(header[at + i]))
           << (8 * i);
    }
    return v;
  };
  uint32_t len = read_u32(0);
  uint32_t crc = read_u32(4);
  if (len > io.max_frame_bytes) {
    return Status::DataLoss("frame of " + std::to_string(len) +
                            " bytes exceeds the " +
                            std::to_string(io.max_frame_bytes) +
                            "-byte limit");
  }
  std::string payload(len, '\0');
  SQLFLOW_RETURN_IF_ERROR(ReadFull(io.fd, payload.data(), len, deadline,
                                   /*eof_ok_at_start=*/false, io.bytes_in,
                                   RemainingMs(deadline)));
  if (sql::WalCrc32(payload.data(), payload.size()) != crc) {
    return Status::DataLoss("frame failed CRC check");
  }
  return payload;
}

bool IsCleanEof(const Status& status) {
  return status.code() == StatusCode::kUnavailable &&
         status.message() == kEofMessage;
}

}  // namespace sqlflow::net
