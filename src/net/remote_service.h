#ifndef SQLFLOW_NET_REMOTE_SERVICE_H_
#define SQLFLOW_NET_REMOTE_SERVICE_H_

#include <memory>
#include <string>

#include "net/client.h"
#include "wfc/service.h"

namespace sqlflow::net {

/// A wfc::WebService whose endpoint lives behind another sqlflow
/// server: Invoke() unpacks the XML request, ships it over the wire
/// protocol as a kInvokeService call, and re-wraps the reply — so a
/// workflow binds to a remote service exactly like a local one (the
/// paper's WSDL partner-link stand-in, over a real socket). The
/// request's idempotency-key parameter (wfc::IdempotentService's
/// reserved name) is forwarded as the wire key, which keeps
/// DurableStep's exactly-once contract intact across the network hop.
class RemoteService : public wfc::WebService {
 public:
  /// `local_name` is how this registry lists the service;
  /// `remote_name` is the name it is registered under on the server.
  RemoteService(std::string local_name, std::string remote_name,
                std::shared_ptr<Client> client);

  const std::string& name() const override { return local_name_; }
  Result<xml::NodePtr> Invoke(const xml::NodePtr& request) override;

 private:
  std::string local_name_;
  std::string remote_name_;
  std::shared_ptr<Client> client_;
};

}  // namespace sqlflow::net

#endif  // SQLFLOW_NET_REMOTE_SERVICE_H_
