#include "workflows/order_process.h"

#include "bis/lifecycle.h"
#include "bis/retrieve_set_activity.h"
#include "bis/sql_activity.h"
#include "rowset/xml_rowset.h"
#include "soa/xpath_extensions.h"
#include "wf/cursor.h"
#include "wf/sql_database_activity.h"

namespace sqlflow::workflows {

namespace {

using patterns::Fixture;

constexpr const char* kDsVar = "DS_Orders";

/// The cursor body shared by the BIS and SOA realizations: a
/// Java-Snippet that binds the current row's values to CurrentItemID /
/// CurrentQuantity and advances Pos.
wfc::ActivityPtr MakeRowSetFetchSnippet() {
  return std::make_shared<wfc::SnippetActivity>(
      "JavaSnippet", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                                 ctx.variables().GetXml("SV_ItemList"));
        SQLFLOW_ASSIGN_OR_RETURN(Value pos,
                                 ctx.variables().GetScalar("Pos"));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t index, pos.AsInteger());
        SQLFLOW_ASSIGN_OR_RETURN(
            xml::NodePtr row,
            rowset::GetRow(rowset, static_cast<size_t>(index)));
        SQLFLOW_ASSIGN_OR_RETURN(Value item,
                                 rowset::GetField(row, "ItemID"));
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 rowset::GetField(row, "Quantity"));
        ctx.variables().Set("CurrentItemID", wfc::VarValue(item));
        ctx.variables().Set("CurrentQuantity", wfc::VarValue(qty));
        ctx.variables().Set("Pos",
                            wfc::VarValue(Value::Integer(index + 1)));
        return Status::OK();
      });
}

wfc::ActivityPtr MakeSupplierInvoke() {
  return std::make_shared<wfc::InvokeActivity>(
      "Invoke", "OrderFromSupplier",
      std::vector<std::pair<std::string, std::string>>{
          {"ItemID", "$CurrentItemID"},
          {"Quantity", "$CurrentQuantity"},
      },
      "OrderConfirmation");
}

}  // namespace

Status DeployBisOrderProcess(Fixture* fixture) {
  using bis::RetrieveSetActivity;
  using bis::SetReference;
  using bis::SqlActivity;

  // SQL1: aggregate approved orders into the per-instance result table.
  SqlActivity::Config sql1;
  sql1.data_source_variable = kDsVar;
  sql1.statement =
      "SELECT ItemID, SUM(Quantity) AS Quantity FROM {SR_Orders} "
      "WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID";
  sql1.result_set_reference = "SR_ItemList";

  RetrieveSetActivity::Config retrieve;
  retrieve.data_source_variable = kDsVar;
  retrieve.set_reference = "SR_ItemList";
  retrieve.set_variable = "SV_ItemList";

  // SQL2: record the supplier confirmation persistently.
  SqlActivity::Config sql2;
  sql2.data_source_variable = kDsVar;
  sql2.statement =
      "INSERT INTO {SR_OrderConfirmations} "
      "(ConfirmationID, ItemID, Quantity, Confirmation) "
      "VALUES (NEXTVAL('ConfSeq'), :item, :qty, :conf)";
  sql2.parameters = {
      {"item", "$CurrentItemID"},
      {"qty", "$CurrentQuantity"},
      {"conf", "$OrderConfirmation"},
  };

  std::vector<wfc::ActivityPtr> body_steps{
      MakeRowSetFetchSnippet(), MakeSupplierInvoke(),
      std::make_shared<SqlActivity>("SQL2", sql2)};
  auto body = std::make_shared<wfc::SequenceActivity>(
      "loop-body", std::move(body_steps));
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wfc::Condition::XPath("$Pos < count($SV_ItemList/Row)"),
      body);

  std::vector<wfc::ActivityPtr> steps{
      std::make_shared<SqlActivity>("SQL1", sql1),
      std::make_shared<RetrieveSetActivity>("RetrieveSet", retrieve),
      loop};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));

  auto definition = std::make_shared<wfc::ProcessDefinition>(
      kBisOrderProcess, std::move(root));
  definition->DeclareVariable(
      kDsVar, wfc::VarValue(wfc::ObjectPtr(
                  std::make_shared<bis::DataSourceVariable>(
                      Fixture::kConnection))));
  definition->DeclareVariable(
      "SR_Orders",
      wfc::VarValue(wfc::ObjectPtr(std::make_shared<SetReference>(
          SetReference::Kind::kInput, "Orders"))));
  definition->DeclareVariable(
      "SR_OrderConfirmations",
      wfc::VarValue(wfc::ObjectPtr(std::make_shared<SetReference>(
          SetReference::Kind::kInput, "OrderConfirmations"))));
  definition->DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));

  // SR_ItemList: per-instance temporary result table with lifecycle
  // management (created before the flow, dropped afterwards).
  auto item_list = std::make_shared<SetReference>(
      SetReference::Kind::kResult, "ItemList");
  item_list->SetUniquePerInstance("ItemList");
  item_list->SetPreparation(
      "CREATE TABLE {TABLE} (ItemID INTEGER, Quantity INTEGER)");
  item_list->SetCleanup("DROP TABLE IF EXISTS {TABLE}");
  SQLFLOW_RETURN_IF_ERROR(bis::AttachSetReferenceLifecycle(
      definition.get(), kDsVar,
      {{"SR_ItemList", std::move(item_list)}}));

  fixture->engine->DeployOrReplace(std::move(definition));
  return Status::OK();
}

Status DeployWfOrderProcess(Fixture* fixture) {
  using wf::SqlDatabaseActivity;

  SqlDatabaseActivity::Config sql1;
  sql1.connection_string = Fixture::kConnection;
  sql1.statement =
      "SELECT ItemID, SUM(Quantity) AS Quantity FROM Orders "
      "WHERE Approved = TRUE GROUP BY ItemID ORDER BY ItemID";
  sql1.result_variable = "SV_ItemList";
  sql1.result_table_name = "ItemList";

  SqlDatabaseActivity::Config sql2;
  sql2.connection_string = Fixture::kConnection;
  sql2.statement =
      "INSERT INTO OrderConfirmations "
      "(ConfirmationID, ItemID, Quantity, Confirmation) "
      "VALUES (NEXTVAL('ConfSeq'), :item, :qty, :conf)";
  sql2.parameters = {
      {"item", "$CurrentItemID"},
      {"qty", "$CurrentQuantity"},
      {"conf", "$OrderConfirmation"},
  };

  std::vector<wfc::ActivityPtr> body_steps{
      wf::FetchRowSnippet("Fetch", "SV_ItemList", "Pos",
                          {{"ItemID", "CurrentItemID"},
                           {"Quantity", "CurrentQuantity"}}),
      MakeSupplierInvoke(),
      std::make_shared<SqlDatabaseActivity>("SQLDatabase2", sql2)};
  auto body = std::make_shared<wfc::SequenceActivity>(
      "loop-body", std::move(body_steps));
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wf::DataSetHasMoreRows("SV_ItemList", "Pos"), body);

  std::vector<wfc::ActivityPtr> steps{
      std::make_shared<SqlDatabaseActivity>("SQLDatabase1", sql1), loop};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));

  auto definition = std::make_shared<wfc::ProcessDefinition>(
      kWfOrderProcess, std::move(root));
  definition->DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));
  fixture->engine->DeployOrReplace(std::move(definition));
  return Status::OK();
}

Status DeploySoaOrderProcess(Fixture* fixture) {
  // Register the extension functions once per engine.
  if (fixture->engine->xpath_functions().Find("ora:query-database") ==
      nullptr) {
    soa::SoaConfig config;
    config.data_sources = &fixture->engine->data_sources();
    config.default_connection = Fixture::kConnection;
    SQLFLOW_RETURN_IF_ERROR(soa::RegisterSoaXPathExtensions(
        &fixture->engine->xpath_functions(), config));
  }

  auto assign1 = std::make_shared<wfc::AssignActivity>("Assign1");
  assign1->CopyExpr(
      "ora:query-database('SELECT ItemID, SUM(Quantity) AS Quantity "
      "FROM Orders WHERE Approved = TRUE GROUP BY ItemID ORDER BY "
      "ItemID')",
      "SV_ItemList");

  // Assign2: processXSQL with positional parameters p1..p3. The
  // document text uses &apos; around the sequence name so the XML
  // parser restores the quotes the SQL layer needs.
  auto assign2 = std::make_shared<wfc::AssignActivity>("Assign2");
  assign2->CopyExpr(
      "orcl:processXSQL('<xsql connection=\"memdb://orders\">"
      "<dml>INSERT INTO OrderConfirmations "
      "(ConfirmationID, ItemID, Quantity, Confirmation) "
      "VALUES (NEXTVAL(&apos;ConfSeq&apos;), :p1, :p2, :p3)</dml>"
      "</xsql>', $CurrentItemID, $CurrentQuantity, $OrderConfirmation)",
      "Status");

  std::vector<wfc::ActivityPtr> body_steps{MakeRowSetFetchSnippet(),
                                           MakeSupplierInvoke(), assign2};
  auto body = std::make_shared<wfc::SequenceActivity>(
      "loop-body", std::move(body_steps));
  auto loop = std::make_shared<wfc::WhileActivity>(
      "While", wfc::Condition::XPath("$Pos < count($SV_ItemList/Row)"),
      body);

  std::vector<wfc::ActivityPtr> steps{assign1, loop};
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));

  auto definition = std::make_shared<wfc::ProcessDefinition>(
      kSoaOrderProcess, std::move(root));
  definition->DeclareVariable("Pos", wfc::VarValue(Value::Integer(0)));
  fixture->engine->DeployOrReplace(std::move(definition));
  return Status::OK();
}

Result<Fixture> MakeBisOrderFixture(
    const patterns::OrdersScenario& scenario) {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture,
                           patterns::MakeFixture("bis", scenario));
  SQLFLOW_RETURN_IF_ERROR(DeployBisOrderProcess(&fixture));
  return fixture;
}

Result<Fixture> MakeWfOrderFixture(
    const patterns::OrdersScenario& scenario) {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture,
                           patterns::MakeFixture("wf", scenario));
  SQLFLOW_RETURN_IF_ERROR(DeployWfOrderProcess(&fixture));
  return fixture;
}

Result<Fixture> MakeSoaOrderFixture(
    const patterns::OrdersScenario& scenario) {
  SQLFLOW_ASSIGN_OR_RETURN(Fixture fixture,
                           patterns::MakeFixture("soa", scenario));
  SQLFLOW_RETURN_IF_ERROR(DeploySoaOrderProcess(&fixture));
  return fixture;
}

Result<sql::ResultSet> ReadConfirmations(sql::Database* db) {
  return db->Execute(
      "SELECT ItemID, Quantity, Confirmation FROM OrderConfirmations "
      "ORDER BY ItemID, Quantity");
}

}  // namespace sqlflow::workflows
