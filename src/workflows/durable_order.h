#ifndef SQLFLOW_WORKFLOWS_DURABLE_ORDER_H_
#define SQLFLOW_WORKFLOWS_DURABLE_ORDER_H_

#include <memory>

#include "common/status.h"
#include "sql/database.h"
#include "wfc/engine.h"
#include "wfc/service.h"

namespace sqlflow::workflows {

/// The crash-recoverable variant of the paper's order workflow: three
/// durable steps — reserve the order in a ledger, invoke the supplier
/// (idempotence-keyed), record the confirmation — each an atomic unit
/// of progress whose SQL effects and completion record commit in one
/// WAL batch. Kill the process at any LSN, recover, ResumeInstances:
/// every ledger row lands exactly once and the supplier is invoked
/// exactly once per instance. This is the scenario the kill-at-LSN
/// chaos tests and bench_durability drive.

inline constexpr const char* kDurableOrderProcess = "DurableOrderProcess";
inline constexpr const char* kDurableSupplierService = "ConfirmOrder";

/// Step names, exported so tests can assert journal/audit contents.
inline constexpr const char* kStepReserve = "reserve-order";
inline constexpr const char* kStepInvoke = "invoke-supplier";
inline constexpr const char* kStepRecord = "record-confirmation";

/// Creates the ledger schema (WfLedger + WfLedgerSeq) on `db`. Safe to
/// call on a recovered database: existing objects are kept.
Status PrepareDurableOrderSchema(sql::Database* db);

/// Registers the idempotence-wrapped supplier service and returns the
/// wrapper (tests read duplicates_suppressed / the inner invocation
/// count through it). The same shared service object can be registered
/// on successive engine incarnations to model a remote endpoint that
/// outlives the crashed process image.
std::shared_ptr<wfc::IdempotentService> MakeDurableSupplier();
Status RegisterDurableSupplier(wfc::WorkflowEngine* engine,
                               std::shared_ptr<wfc::IdempotentService>
                                   supplier);

/// Deploys the three-durable-step process onto `engine`, running its
/// SQL against `db`. Inputs: OrderID (integer), Item (string),
/// Quantity (integer).
Status DeployDurableOrderProcess(wfc::WorkflowEngine* engine,
                                 sql::Database* db);

/// Reads back the ledger rows, ordered by entry id.
Result<sql::ResultSet> ReadDurableLedger(sql::Database* db);

}  // namespace sqlflow::workflows

#endif  // SQLFLOW_WORKFLOWS_DURABLE_ORDER_H_
