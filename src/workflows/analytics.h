#ifndef SQLFLOW_WORKFLOWS_ANALYTICS_H_
#define SQLFLOW_WORKFLOWS_ANALYTICS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "patterns/fixture.h"
#include "wfc/audit.h"
#include "wfc/engine.h"

namespace sqlflow::workflows {

/// One finished process instance as captured for analytics: identity,
/// outcome, and the full audit trail (the event log of in-database
/// process management — Calvanese et al.; the relation SIGNAL-style
/// queries run over).
struct InstanceRecord {
  uint64_t instance_id = 0;
  std::string process;
  Status status;
  wfc::AuditTrail audit;
};

/// Accumulates finished instances from a WorkflowEngine so their audit
/// trails can be exposed as the sys.audit_events / sys.instances
/// virtual tables. Attach() installs an instance listener; the store
/// must outlive both the engine and any database the tables are
/// registered on.
class ProcessHistoryStore {
 public:
  /// Captures every instance the engine finishes from now on, labeled
  /// with `process_label` (InstanceResult does not carry the name).
  void Attach(wfc::WorkflowEngine* engine, std::string process_label);

  /// Appends one record directly (benches synthesize large histories
  /// without running real instances).
  void Add(InstanceRecord record) { records_.push_back(std::move(record)); }

  const std::vector<InstanceRecord>& records() const { return records_; }
  std::vector<InstanceRecord>& mutable_records() { return records_; }
  void Clear() { records_.clear(); }

  /// Total audit events across all captured instances.
  size_t event_count() const;

 private:
  std::vector<InstanceRecord> records_;
};

/// Registers the process-analytics virtual tables on `db`:
///
///   sys.audit_events — one row per audit event of every captured
///     instance (INSTANCE_ID, PROCESS, SEQ, KIND, ACTIVITY, DETAIL,
///     TS_NS, DURATION_NS, ATTEMPT). SEQ is the per-instance
///     monotonically increasing sequence number, the stable ordering
///     key for event-sequence predicates.
///   sys.instances — one summary row per instance (INSTANCE_ID,
///     PROCESS, STATUS, FAULT_CODE, EVENTS, FAULTS, RETRIES,
///     COMPENSATIONS, STARTED_NS, COMPLETED_NS, DURATION_NS).
///
/// `store` is captured by pointer and re-read on every statement that
/// references the tables, so new instances appear without re-registering.
Status RegisterAuditTables(sql::Database* db,
                           const ProcessHistoryStore* store);

/// Knobs for the synthetic order-fulfilment history generator.
struct ChaosHistoryOptions {
  /// Number of instances to run (one per synthetic order id 1..N).
  size_t instances = 40;
  /// Seeds both the statement-layer fault schedule and carrier
  /// rejection decisions.
  uint64_t seed = 1;
  /// Per-statement transient-fault probability inside the fulfilment
  /// steps (statement layer only, so every injected fault surfaces to
  /// the wfc retry wrapper and is visible in the audit trail).
  double fault_probability = 0.08;
  /// Retry budget of each fulfilment step (and compensation handler).
  int retry_max_attempts = 4;
  /// Percent of orders the carrier rejects outright — a permanent
  /// (non-transient) fault that triggers compensation.
  int carrier_reject_percent = 15;
};

/// Deterministic carrier-rejection decision for one order under one
/// seed; exposed so tests can recompute the generator's ground truth.
bool CarrierRejectsOrder(uint64_t seed, int64_t order_id,
                         int carrier_reject_percent);

/// Runs `options.instances` synthetic "OrderFulfilment" instances —
/// reserve stock, charge payment, ship — under a seeded
/// statement-layer fault schedule. Transient faults are absorbed by
/// per-step retry wrappers (kRetry audit events with attempt numbers);
/// carrier rejections propagate and undo completed steps through a
/// compensation scope (kCompensation events). Statement-layer replay is
/// disabled and only the fulfilment tables are armed, so counter deltas
/// (sql.fault.injected / wfc.retry.absorbed) correspond one-to-one with
/// kRetry audit events — the property the byte-identity acceptance test
/// checks. Registers sys.audit_events / sys.instances (and the engine
/// sys.* tables) on the fixture database before returning it.
Result<patterns::Fixture> GenerateOrderHistory(
    const ChaosHistoryOptions& options, ProcessHistoryStore* store);

inline constexpr const char* kFulfilmentProcess = "OrderFulfilment";

}  // namespace sqlflow::workflows

#endif  // SQLFLOW_WORKFLOWS_ANALYTICS_H_
