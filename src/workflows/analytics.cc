#include "workflows/analytics.h"

#include <memory>
#include <utility>

#include "common/rand.h"
#include "sql/database.h"
#include "sql/fault.h"
#include "sql/introspect.h"
#include "sql/table.h"
#include "wfc/activities.h"
#include "wfc/process.h"
#include "wfc/robustness.h"

namespace sqlflow::workflows {

namespace {

sql::TableSchema MakeSchema(
    std::string name,
    std::vector<std::pair<std::string, ValueType>> cols) {
  std::vector<sql::ColumnDef> defs;
  defs.reserve(cols.size());
  for (auto& [col_name, type] : cols) {
    sql::ColumnDef def;
    def.name = std::move(col_name);
    def.type = type;
    defs.push_back(std::move(def));
  }
  return sql::TableSchema(std::move(name), std::move(defs));
}

std::vector<sql::Row> AuditEventRows(const ProcessHistoryStore* store) {
  std::vector<sql::Row> rows;
  rows.reserve(store->event_count());
  for (const InstanceRecord& record : store->records()) {
    for (const wfc::AuditEvent& e : record.audit.events()) {
      rows.push_back(
          {Value::Integer(static_cast<int64_t>(record.instance_id)),
           Value::String(record.process),
           Value::Integer(static_cast<int64_t>(e.sequence)),
           Value::String(wfc::AuditEventKindName(e.kind)),
           Value::String(e.activity), Value::String(e.detail),
           Value::Integer(e.timestamp_ns), Value::Integer(e.duration_ns),
           Value::Integer(e.attempt)});
    }
  }
  return rows;
}

std::vector<sql::Row> InstanceRows(const ProcessHistoryStore* store) {
  std::vector<sql::Row> rows;
  rows.reserve(store->records().size());
  for (const InstanceRecord& record : store->records()) {
    const auto& events = record.audit.events();
    int64_t started_ns = events.empty() ? 0 : events.front().timestamp_ns;
    int64_t completed_ns = events.empty() ? 0 : events.back().timestamp_ns;
    rows.push_back(
        {Value::Integer(static_cast<int64_t>(record.instance_id)),
         Value::String(record.process),
         Value::String(record.status.ok() ? "completed" : "faulted"),
         record.status.ok()
             ? Value::Null()
             : Value::String(StatusCodeName(record.status.code())),
         Value::Integer(static_cast<int64_t>(record.audit.size())),
         Value::Integer(static_cast<int64_t>(
             record.audit.CountKind(wfc::AuditEventKind::kFault))),
         Value::Integer(static_cast<int64_t>(
             record.audit.CountKind(wfc::AuditEventKind::kRetry))),
         Value::Integer(static_cast<int64_t>(
             record.audit.CountKind(wfc::AuditEventKind::kCompensation))),
         Value::Integer(started_ns), Value::Integer(completed_ns),
         Value::Integer(completed_ns - started_ns)});
  }
  return rows;
}

/// Reads the instance's OrderID variable as an integer.
Result<int64_t> OrderIdOf(wfc::ProcessContext& ctx) {
  SQLFLOW_ASSIGN_OR_RETURN(Value v,
                           ctx.variables().GetScalar("OrderID"));
  return v.AsInteger();
}

/// A fulfilment step: a SQL snippet wrapped in a retry activity so
/// transient statement faults become kRetry audit events with attempt
/// numbers instead of being replayed invisibly below the engine.
wfc::ActivityPtr RetryStep(const std::string& name, wfc::SnippetActivity::Fn fn,
                           const wfc::BackoffPolicy& policy) {
  return std::make_shared<wfc::RetryActivity>(
      name, std::make_shared<wfc::SnippetActivity>(name + "-sql", std::move(fn)),
      policy);
}

}  // namespace

void ProcessHistoryStore::Attach(wfc::WorkflowEngine* engine,
                                 std::string process_label) {
  engine->AddInstanceListener(
      [this, label = std::move(process_label)](
          const wfc::InstanceResult& result) {
        InstanceRecord record;
        record.instance_id = result.instance_id;
        record.process = label;
        record.status = result.status;
        record.audit = result.audit;
        records_.push_back(std::move(record));
      });
}

size_t ProcessHistoryStore::event_count() const {
  size_t n = 0;
  for (const InstanceRecord& record : records_) n += record.audit.size();
  return n;
}

Status RegisterAuditTables(sql::Database* db,
                           const ProcessHistoryStore* store) {
  sql::Catalog& catalog = db->catalog();

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.audit_events",
                 {{"INSTANCE_ID", ValueType::kInteger},
                  {"PROCESS", ValueType::kString},
                  {"SEQ", ValueType::kInteger},
                  {"KIND", ValueType::kString},
                  {"ACTIVITY", ValueType::kString},
                  {"DETAIL", ValueType::kString},
                  {"TS_NS", ValueType::kInteger},
                  {"DURATION_NS", ValueType::kInteger},
                  {"ATTEMPT", ValueType::kInteger}}),
      [store] { return AuditEventRows(store); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.instances",
                 {{"INSTANCE_ID", ValueType::kInteger},
                  {"PROCESS", ValueType::kString},
                  {"STATUS", ValueType::kString},
                  {"FAULT_CODE", ValueType::kString},
                  {"EVENTS", ValueType::kInteger},
                  {"FAULTS", ValueType::kInteger},
                  {"RETRIES", ValueType::kInteger},
                  {"COMPENSATIONS", ValueType::kInteger},
                  {"STARTED_NS", ValueType::kInteger},
                  {"COMPLETED_NS", ValueType::kInteger},
                  {"DURATION_NS", ValueType::kInteger}}),
      [store] { return InstanceRows(store); }));

  return Status::OK();
}

bool CarrierRejectsOrder(uint64_t seed, int64_t order_id,
                         int carrier_reject_percent) {
  uint64_t draw = SplitMix64(seed ^ (static_cast<uint64_t>(order_id) *
                                     0x9e3779b97f4a7c15ULL));
  return static_cast<int>(draw % 100) < carrier_reject_percent;
}

Result<patterns::Fixture> GenerateOrderHistory(
    const ChaosHistoryOptions& options, ProcessHistoryStore* store) {
  SQLFLOW_ASSIGN_OR_RETURN(
      patterns::Fixture fixture,
      patterns::MakeFixture("analytics-history"));
  std::shared_ptr<sql::Database> db = fixture.db;

  // The fulfilment tables carry a shared prefix so a single injector
  // site filter arms exactly the statements of the fulfilment steps
  // (and nothing else: not the seeding above, not the analytics
  // queries run later).
  SQLFLOW_RETURN_IF_ERROR(db->ExecuteScript(R"sql(
    CREATE TABLE Flow_Reservations (
      OrderID INTEGER NOT NULL,
      Qty     INTEGER NOT NULL
    );
    CREATE TABLE Flow_Payments (
      OrderID INTEGER NOT NULL,
      Amount  INTEGER NOT NULL
    );
    CREATE TABLE Flow_Shipments (
      OrderID INTEGER NOT NULL,
      Carrier VARCHAR(20) NOT NULL
    );
  )sql"));

  wfc::BackoffPolicy policy;
  policy.max_attempts = options.retry_max_attempts;
  policy.jitter_seed = options.seed;

  auto exec = [db](const std::string& sql) -> Status {
    return db->Execute(sql).status();
  };

  auto reserve = [exec](wfc::ProcessContext& ctx) -> Status {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t id, OrderIdOf(ctx));
    return exec("INSERT INTO Flow_Reservations VALUES (" +
                std::to_string(id) + ", " + std::to_string(1 + id % 9) +
                ")");
  };
  auto release = [exec](wfc::ProcessContext& ctx) -> Status {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t id, OrderIdOf(ctx));
    return exec("DELETE FROM Flow_Reservations WHERE OrderID = " +
                std::to_string(id));
  };
  auto charge = [exec](wfc::ProcessContext& ctx) -> Status {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t id, OrderIdOf(ctx));
    return exec("INSERT INTO Flow_Payments VALUES (" +
                std::to_string(id) + ", " +
                std::to_string(10 * (1 + id % 9)) + ")");
  };
  auto refund = [exec](wfc::ProcessContext& ctx) -> Status {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t id, OrderIdOf(ctx));
    return exec("DELETE FROM Flow_Payments WHERE OrderID = " +
                std::to_string(id));
  };
  // Ship verifies the reservation first (a faultable read, so rejected
  // orders can still accumulate retry events on the shipping step),
  // then either hits the carrier's permanent rejection — a
  // non-transient fault the retry wrapper refuses to absorb, which
  // triggers compensation of the completed steps — or records the
  // shipment.
  uint64_t seed = options.seed;
  int reject_percent = options.carrier_reject_percent;
  auto ship = [exec, seed,
               reject_percent](wfc::ProcessContext& ctx) -> Status {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t id, OrderIdOf(ctx));
    SQLFLOW_RETURN_IF_ERROR(
        exec("SELECT COUNT(*) FROM Flow_Reservations WHERE OrderID = " +
             std::to_string(id)));
    if (CarrierRejectsOrder(seed, id, reject_percent)) {
      return Status::ExecutionError("carrier rejected order " +
                                    std::to_string(id));
    }
    return exec("INSERT INTO Flow_Shipments VALUES (" +
                std::to_string(id) + ", 'road')");
  };

  auto scope = std::make_shared<wfc::CompensationScope>("fulfilment");
  scope->AddStep(RetryStep("reserve-stock", reserve, policy),
                 RetryStep("release-stock", release, policy));
  scope->AddStep(RetryStep("charge-payment", charge, policy),
                 RetryStep("refund-payment", refund, policy));
  scope->AddStep(RetryStep("ship-order", ship, policy), nullptr);

  auto process = std::make_shared<wfc::ProcessDefinition>(
      kFulfilmentProcess, scope);
  process->DeclareVariable("OrderID", wfc::VarValue(Value::Integer(0)));
  SQLFLOW_RETURN_IF_ERROR(fixture.engine->Deploy(process));

  store->Attach(fixture.engine.get(), kFulfilmentProcess);

  // Arm statement-layer chaos on the fulfilment tables only, with
  // statement replay disabled: every injected fault surfaces to a
  // retry wrapper, so sql.fault.injected / wfc.retry.absorbed deltas
  // correspond one-to-one with kRetry audit events.
  sql::FaultInjector::Options fault_options;
  fault_options.seed = options.seed;
  fault_options.probability = options.fault_probability;
  fault_options.statement_sites = true;
  fault_options.mid_statement_sites = false;
  fault_options.service_sites = false;
  fault_options.site_filter = "FLOW_";
  db->set_fault_injector(
      std::make_shared<sql::FaultInjector>(fault_options));
  sql::RetryPolicy no_replay;
  no_replay.max_attempts = 1;
  db->set_retry_policy(no_replay);

  for (size_t i = 1; i <= options.instances; ++i) {
    std::map<std::string, wfc::VarValue> inputs;
    inputs["OrderID"] =
        wfc::VarValue(Value::Integer(static_cast<int64_t>(i)));
    SQLFLOW_ASSIGN_OR_RETURN(
        wfc::InstanceResult result,
        fixture.engine->RunProcess(kFulfilmentProcess, inputs));
    (void)result;  // faulted instances are part of the history
  }

  // Disarm before the analytics phase: queries over sys.* must not
  // draw from the fault stream.
  db->set_fault_injector(nullptr);

  SQLFLOW_RETURN_IF_ERROR(sql::RegisterSysTables(db.get()));
  SQLFLOW_RETURN_IF_ERROR(RegisterAuditTables(db.get(), store));
  return fixture;
}

}  // namespace sqlflow::workflows
