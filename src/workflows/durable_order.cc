#include "workflows/durable_order.h"

#include <utility>
#include <vector>

#include "sql/schema.h"
#include "wfc/activities.h"
#include "wfc/persist.h"
#include "wfc/robustness.h"

namespace sqlflow::workflows {

namespace {

/// SQL step body: runs one statement built from the instance's
/// variables against the captured database.
wfc::ActivityPtr MakeLedgerInsert(std::string name, sql::Database* db,
                                  std::string stage,
                                  bool with_confirmation) {
  return std::make_shared<wfc::SnippetActivity>(
      std::move(name),
      [db, stage = std::move(stage),
       with_confirmation](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(Value order_id,
                                 ctx.variables().GetScalar("OrderID"));
        SQLFLOW_ASSIGN_OR_RETURN(Value item,
                                 ctx.variables().GetScalar("Item"));
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 ctx.variables().GetScalar("Quantity"));
        Value conf = Value::Null();
        if (with_confirmation) {
          SQLFLOW_ASSIGN_OR_RETURN(
              conf, ctx.variables().GetScalar("Confirmation"));
        }
        std::string sql =
            "INSERT INTO WfLedger (EntryID, OrderID, Stage, Item, "
            "Quantity, Confirmation) VALUES (NEXTVAL('WfLedgerSeq'), " +
            sql::SqlLiteral(order_id) + ", " +
            sql::SqlLiteral(Value::String(stage)) + ", " +
            sql::SqlLiteral(item) + ", " + sql::SqlLiteral(qty) + ", " +
            sql::SqlLiteral(conf) + ")";
        return db->Execute(sql).status();
      });
}

/// Supplier invocation with the step-scoped idempotency key: the same
/// instance re-running this step after a crash re-sends the same key,
/// and the IdempotentService answers from its cache instead of
/// re-ordering.
wfc::ActivityPtr MakeKeyedSupplierInvoke() {
  return std::make_shared<wfc::SnippetActivity>(
      "call-supplier", [](wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(
            wfc::WebServicePtr service,
            ctx.services()->Find(kDurableSupplierService));
        SQLFLOW_ASSIGN_OR_RETURN(Value item,
                                 ctx.variables().GetScalar("Item"));
        SQLFLOW_ASSIGN_OR_RETURN(Value qty,
                                 ctx.variables().GetScalar("Quantity"));
        xml::NodePtr request = wfc::MakeRequest(
            {{"ItemID", item},
             {"Quantity", qty},
             {wfc::IdempotentService::kKeyParam,
              Value::String(
                  wfc::StepIdempotencyKey(ctx, kStepInvoke))}});
        SQLFLOW_ASSIGN_OR_RETURN(
            xml::NodePtr response,
            wfc::InvokeWithRecovery(*service, request));
        SQLFLOW_ASSIGN_OR_RETURN(Value conf,
                                 wfc::GetResponseValue(response));
        ctx.variables().Set("Confirmation", wfc::VarValue(conf));
        return Status::OK();
      });
}

Status IgnoreAlreadyExists(const Status& st) {
  if (st.ok() || st.code() == StatusCode::kAlreadyExists) {
    return Status::OK();
  }
  return st;
}

}  // namespace

Status PrepareDurableOrderSchema(sql::Database* db) {
  SQLFLOW_RETURN_IF_ERROR(IgnoreAlreadyExists(
      db->Execute("CREATE TABLE WfLedger (EntryID INTEGER, "
                  "OrderID INTEGER, Stage VARCHAR, Item VARCHAR, "
                  "Quantity INTEGER, Confirmation VARCHAR)")
          .status()));
  SQLFLOW_RETURN_IF_ERROR(IgnoreAlreadyExists(
      db->Execute("CREATE SEQUENCE WfLedgerSeq").status()));
  return Status::OK();
}

std::shared_ptr<wfc::IdempotentService> MakeDurableSupplier() {
  auto inner = std::make_shared<wfc::SimpleWebService>(
      kDurableSupplierService,
      std::vector<std::string>{"ItemID", "Quantity"},
      [](const std::vector<Value>& args) -> Result<Value> {
        return Value::String("CONF-" + args[0].AsString() + "-" +
                             args[1].AsString());
      });
  return std::make_shared<wfc::IdempotentService>(std::move(inner));
}

Status RegisterDurableSupplier(
    wfc::WorkflowEngine* engine,
    std::shared_ptr<wfc::IdempotentService> supplier) {
  return engine->services().Register(std::move(supplier));
}

Status DeployDurableOrderProcess(wfc::WorkflowEngine* engine,
                                 sql::Database* db) {
  // Step 2 wraps the supplier call in a retry so pre-crash attempts
  // exercise the journal's attempt accounting; the idempotency key
  // makes both the retries and a post-crash re-run single-effect.
  wfc::BackoffPolicy backoff;
  backoff.max_attempts = 3;
  backoff.initial_delay_ns = 1000;
  auto invoke_with_retry = std::make_shared<wfc::RetryActivity>(
      "supplier-retry", MakeKeyedSupplierInvoke(), backoff, nullptr);

  std::vector<wfc::ActivityPtr> steps{
      wfc::MakeDurableStep(
          kStepReserve,
          MakeLedgerInsert("sql-reserve", db, "reserved",
                           /*with_confirmation=*/false)),
      wfc::MakeDurableStep(kStepInvoke, invoke_with_retry),
      wfc::MakeDurableStep(
          kStepRecord,
          MakeLedgerInsert("sql-record", db, "confirmed",
                           /*with_confirmation=*/true)),
  };
  auto root =
      std::make_shared<wfc::SequenceActivity>("main", std::move(steps));
  auto definition = std::make_shared<wfc::ProcessDefinition>(
      kDurableOrderProcess, std::move(root));
  definition->DeclareVariable("Confirmation",
                              wfc::VarValue(Value::Null()));
  engine->DeployOrReplace(std::move(definition));
  return Status::OK();
}

Result<sql::ResultSet> ReadDurableLedger(sql::Database* db) {
  return db->Execute(
      "SELECT EntryID, OrderID, Stage, Item, Quantity, Confirmation "
      "FROM WfLedger ORDER BY EntryID");
}

}  // namespace sqlflow::workflows
