#ifndef SQLFLOW_WORKFLOWS_ORDER_PROCESS_H_
#define SQLFLOW_WORKFLOWS_ORDER_PROCESS_H_

#include "common/status.h"
#include "patterns/fixture.h"

namespace sqlflow::workflows {

/// Builders for the paper's sample workflow — "aggregate approved orders
/// and determine the required quantity of each item type, order each
/// from the supplier, and record the confirmations" — realized once per
/// product exactly as Figs. 4, 6 and 8 describe:
///
///  - BIS (Fig. 4): SQL activity into a per-instance result table
///    (lifecycle-managed, referenced by SR_ItemList) → retrieve set →
///    while + Java-Snippet cursor → invoke OrderFromSupplier → SQL
///    activity INSERT into the persistent confirmations table.
///  - WF (Fig. 6): SQLDatabase activity with automatic DataSet
///    materialization → while with ADO.NET code condition → invoke →
///    SQLDatabase INSERT.
///  - SOA (Fig. 8): assign with ora:query-database into an XML RowSet →
///    while + Java-Snippet → invoke → assign with orcl:processXSQL
///    INSERT.
///
/// All three leave identical rows in OrderConfirmations for the same
/// seeded scenario, which the integration tests assert.

inline constexpr const char* kBisOrderProcess = "OrderProcessBIS";
inline constexpr const char* kWfOrderProcess = "OrderProcessWF";
inline constexpr const char* kSoaOrderProcess = "OrderProcessSOA";

/// Deploys the Fig. 4 realization onto the fixture's engine.
Status DeployBisOrderProcess(patterns::Fixture* fixture);
/// Deploys the Fig. 6 realization onto the fixture's engine.
Status DeployWfOrderProcess(patterns::Fixture* fixture);
/// Deploys the Fig. 8 realization (registers the ora:/orcl: extension
/// functions if not present yet).
Status DeploySoaOrderProcess(patterns::Fixture* fixture);

/// Fixture + deployed process in one call.
Result<patterns::Fixture> MakeBisOrderFixture(
    const patterns::OrdersScenario& scenario = {});
Result<patterns::Fixture> MakeWfOrderFixture(
    const patterns::OrdersScenario& scenario = {});
Result<patterns::Fixture> MakeSoaOrderFixture(
    const patterns::OrdersScenario& scenario = {});

/// Reads back the confirmations written by a run, ordered by item.
Result<sql::ResultSet> ReadConfirmations(sql::Database* db);

}  // namespace sqlflow::workflows

#endif  // SQLFLOW_WORKFLOWS_ORDER_PROCESS_H_
