#ifndef SQLFLOW_ADAPTER_DATA_ACCESS_SERVICE_H_
#define SQLFLOW_ADAPTER_DATA_ACCESS_SERVICE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "sql/database.h"
#include "wfc/service.h"

namespace sqlflow::adapter {

/// The *adapter technology* of Fig. 1: a service that encapsulates
/// SQL-specific functionality behind a Web-service facade, keeping data
/// management issues outside the process logic.
///
/// Request protocol (see wfc::MakeRequest):
///   param "sql"    — the statement to execute
/// Response:
///   a STRING response whose payload is the *serialized* XML RowSet for
///   queries, or the affected-row count for DML/DDL.
///
/// The serialize/parse round-trip per call is the point: adapters pass
/// data by value through messages, which is exactly the overhead the
/// paper's SQL inline support avoids. Counters expose message volume to
/// the Fig. 1 benchmark.
class DataAccessService : public wfc::WebService {
 public:
  struct TrafficStats {
    uint64_t requests = 0;
    uint64_t request_bytes = 0;
    uint64_t response_bytes = 0;
  };

  DataAccessService(std::string name,
                    std::shared_ptr<sql::Database> database);

  const std::string& name() const override { return name_; }
  Result<xml::NodePtr> Invoke(const xml::NodePtr& request) override;

  const TrafficStats& traffic() const { return traffic_; }

 private:
  std::string name_;
  std::shared_ptr<sql::Database> database_;
  TrafficStats traffic_;
};

/// Client-side helper: calls a DataAccessService and parses the response
/// payload back into a ResultSet (the second half of the by-value cost).
Result<sql::ResultSet> CallDataAccessService(wfc::WebService* service,
                                             const std::string& statement);

}  // namespace sqlflow::adapter

#endif  // SQLFLOW_ADAPTER_DATA_ACCESS_SERVICE_H_
