#include "adapter/data_access_service.h"

#include "rowset/xml_rowset.h"
#include "sql/fault.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace sqlflow::adapter {

DataAccessService::DataAccessService(
    std::string name, std::shared_ptr<sql::Database> database)
    : name_(std::move(name)), database_(std::move(database)) {}

Result<xml::NodePtr> DataAccessService::Invoke(
    const xml::NodePtr& request) {
  ++traffic_.requests;
  traffic_.request_bytes += xml::Serialize(*request).size();

  // Adapter-side chaos site: the request arrived but the bridge to the
  // database "dropped" before any SQL ran, so a caller-side replay is
  // safe. The fault propagates to InvokeWithRecovery as an ordinary
  // transient status.
  if (std::shared_ptr<sql::FaultInjector> injector =
          sql::Database::GlobalFaultInjector()) {
    sql::FaultSite site;
    site.database = "adapter";
    site.description = "adapter " + name_;
    site.layer = sql::FaultLayer::kService;
    if (std::optional<Status> fault = injector->MaybeFault(site)) {
      return *fault;
    }
  }

  SQLFLOW_ASSIGN_OR_RETURN(Value statement,
                           wfc::GetRequestParam(request, "sql"));
  SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                           database_->Execute(statement.AsString()));

  xml::NodePtr response;
  if (result.column_count() > 0) {
    // Serialize the row set into the message payload — the by-value
    // marshalling cost of the adapter approach.
    std::string payload = xml::Serialize(*rowset::ToRowSet(result));
    response = wfc::MakeResponse(Value::String(std::move(payload)));
    response->SetAttribute("kind", "rowset");
  } else {
    response = wfc::MakeResponse(Value::Integer(result.affected_rows()));
    response->SetAttribute("kind", "affected");
  }
  traffic_.response_bytes += xml::Serialize(*response).size();
  return response;
}

Result<sql::ResultSet> CallDataAccessService(wfc::WebService* service,
                                             const std::string& statement) {
  xml::NodePtr request =
      wfc::MakeRequest({{"sql", Value::String(statement)}});
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr response,
                           wfc::InvokeWithRecovery(*service, request));
  std::string kind = response->GetAttribute("kind").value_or("affected");
  if (kind == "rowset") {
    SQLFLOW_ASSIGN_OR_RETURN(Value payload,
                             wfc::GetResponseValue(response));
    SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                             xml::Parse(payload.AsString()));
    return rowset::FromRowSet(rowset);
  }
  SQLFLOW_ASSIGN_OR_RETURN(Value affected,
                           wfc::GetResponseValue(response));
  sql::ResultSet out;
  SQLFLOW_ASSIGN_OR_RETURN(int64_t n, affected.AsInteger());
  out.set_affected_rows(n);
  return out;
}

}  // namespace sqlflow::adapter
