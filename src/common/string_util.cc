#include "common/string_util.h"

#include <cctype>

namespace sqlflow {

std::string ToUpperAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  }
  return out;
}

std::string ToLowerAscii(std::string_view s) {
  std::string out(s);
  for (char& c : out) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return out;
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::toupper(static_cast<unsigned char>(a[i])) !=
        std::toupper(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string Trim(std::string_view s) {
  size_t begin = 0;
  size_t end = s.size();
  while (begin < end &&
         std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return std::string(s.substr(begin, end - begin));
}

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      break;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out += sep;
    out += parts[i];
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() &&
         s.substr(0, prefix.size()) == prefix;
}

std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to) {
  if (from.empty()) return s;
  size_t pos = 0;
  while ((pos = s.find(from, pos)) != std::string::npos) {
    s.replace(pos, from.size(), to);
    pos += to.size();
  }
  return s;
}

}  // namespace sqlflow
