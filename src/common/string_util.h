#ifndef SQLFLOW_COMMON_STRING_UTIL_H_
#define SQLFLOW_COMMON_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

namespace sqlflow {

/// ASCII-only case fold; SQL keywords and identifiers are ASCII here.
std::string ToUpperAscii(std::string_view s);
std::string ToLowerAscii(std::string_view s);

/// Case-insensitive ASCII equality (for SQL identifiers/keywords).
bool EqualsIgnoreCase(std::string_view a, std::string_view b);

/// Strips leading/trailing whitespace.
std::string Trim(std::string_view s);

/// Splits on a single character; keeps empty fields.
std::vector<std::string> Split(std::string_view s, char sep);

/// Joins with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

/// True if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// Replaces all occurrences of `from` with `to`.
std::string ReplaceAll(std::string s, std::string_view from,
                       std::string_view to);

}  // namespace sqlflow

#endif  // SQLFLOW_COMMON_STRING_UTIL_H_
