#include "common/value.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace sqlflow {

namespace {

// Rank used by Compare() for cross-type total ordering.
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBoolean:
      return 1;
    case ValueType::kInteger:
    case ValueType::kDouble:
      return 2;  // numbers compare with each other
    case ValueType::kString:
      return 3;
  }
  return 4;
}

std::string FormatDouble(double v) {
  std::ostringstream os;
  os << v;
  return os.str();
}

}  // namespace

const char* ValueTypeName(ValueType type) {
  switch (type) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBoolean:
      return "BOOLEAN";
    case ValueType::kInteger:
      return "INTEGER";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
  }
  return "UNKNOWN";
}

Result<int64_t> Value::AsInteger() const {
  switch (type_) {
    case ValueType::kInteger:
      return integer();
    case ValueType::kDouble:
      return static_cast<int64_t>(dbl());
    case ValueType::kBoolean:
      return static_cast<int64_t>(boolean() ? 1 : 0);
    case ValueType::kString: {
      const std::string& s = str();
      char* end = nullptr;
      long long v = std::strtoll(s.c_str(), &end, 10);
      if (end == s.c_str() || *end != '\0') {
        return Status::TypeError("cannot convert '" + s + "' to INTEGER");
      }
      return static_cast<int64_t>(v);
    }
    case ValueType::kNull:
      return Status::TypeError("cannot convert NULL to INTEGER");
  }
  return Status::Internal("bad value type");
}

Result<double> Value::AsDouble() const {
  switch (type_) {
    case ValueType::kDouble:
      return dbl();
    case ValueType::kInteger:
      return static_cast<double>(integer());
    case ValueType::kBoolean:
      return boolean() ? 1.0 : 0.0;
    case ValueType::kString: {
      const std::string& s = str();
      char* end = nullptr;
      double v = std::strtod(s.c_str(), &end);
      if (end == s.c_str() || *end != '\0') {
        return Status::TypeError("cannot convert '" + s + "' to DOUBLE");
      }
      return v;
    }
    case ValueType::kNull:
      return Status::TypeError("cannot convert NULL to DOUBLE");
  }
  return Status::Internal("bad value type");
}

Result<bool> Value::AsBoolean() const {
  switch (type_) {
    case ValueType::kBoolean:
      return boolean();
    case ValueType::kInteger:
      return integer() != 0;
    case ValueType::kDouble:
      return dbl() != 0.0;
    case ValueType::kString: {
      const std::string& s = str();
      if (s == "true" || s == "TRUE" || s == "1") return true;
      if (s == "false" || s == "FALSE" || s == "0") return false;
      return Status::TypeError("cannot convert '" + s + "' to BOOLEAN");
    }
    case ValueType::kNull:
      return Status::TypeError("cannot convert NULL to BOOLEAN");
  }
  return Status::Internal("bad value type");
}

std::string Value::AsString() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kBoolean:
      return boolean() ? "true" : "false";
    case ValueType::kInteger:
      return std::to_string(integer());
    case ValueType::kDouble:
      return FormatDouble(dbl());
    case ValueType::kString:
      return str();
  }
  return "";
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBoolean:
      return boolean() ? "TRUE" : "FALSE";
    default:
      return AsString();
  }
}

bool Value::Equals(const Value& other) const { return Compare(other) == 0; }

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type_);
  int rb = TypeRank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (type_) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBoolean: {
      bool a = boolean();
      bool b = other.boolean();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kInteger:
    case ValueType::kDouble: {
      // Mixed numeric comparison goes through double; exact for the
      // magnitudes the workloads use.
      if (type_ == ValueType::kInteger &&
          other.type_ == ValueType::kInteger) {
        int64_t a = integer();
        int64_t b = other.integer();
        return a == b ? 0 : (a < b ? -1 : 1);
      }
      double a = type_ == ValueType::kInteger
                     ? static_cast<double>(integer())
                     : dbl();
      double b = other.type_ == ValueType::kInteger
                     ? static_cast<double>(other.integer())
                     : other.dbl();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    case ValueType::kString:
      return str().compare(other.str()) == 0
                 ? 0
                 : (str() < other.str() ? -1 : 1);
  }
  return 0;
}

}  // namespace sqlflow
