#ifndef SQLFLOW_COMMON_RAND_H_
#define SQLFLOW_COMMON_RAND_H_

#include <cstdint>

namespace sqlflow {

/// splitmix64 (Steele/Lea/Flood): tiny, seed-deterministic,
/// platform-stable. The one mixer every deterministic schedule in the
/// repo draws from — the fault injector's site stream, the backoff
/// policy's keyed jitter, test workload generators — so that a seed
/// means the same thing everywhere.
///
/// `SplitMix64(x)` is the stateless form: a pure function of `x`, used
/// for keyed draws (jitter for attempt k is SplitMix64(f(seed, k))).
/// `SplitMix64Next(&state)` is the stream form: advances `state` by the
/// golden-gamma increment and returns the mixed value, matching the
/// canonical generator.
inline uint64_t SplitMix64(uint64_t x) {
  uint64_t z = x + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t SplitMix64Next(uint64_t* state) {
  uint64_t r = SplitMix64(*state);
  *state += 0x9e3779b97f4a7c15ULL;
  return r;
}

}  // namespace sqlflow

#endif  // SQLFLOW_COMMON_RAND_H_
