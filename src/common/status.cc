#include "common/status.h"

namespace sqlflow {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kSyntaxError:
      return "SyntaxError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kConstraintError:
      return "ConstraintError";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kExecutionError:
      return "ExecutionError";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kTimeout:
      return "Timeout";
    case StatusCode::kDataLoss:
      return "DataLoss";
  }
  return "Unknown";
}

bool IsTransientCode(StatusCode code) {
  return code == StatusCode::kUnavailable ||
         code == StatusCode::kDeadlock || code == StatusCode::kTimeout;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace sqlflow
