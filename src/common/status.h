#ifndef SQLFLOW_COMMON_STATUS_H_
#define SQLFLOW_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <utility>

namespace sqlflow {

/// Error categories used across all sqlflow modules. Mirrors the
/// coarse-grained code sets of Arrow/RocksDB-style status objects.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,   // caller passed something malformed
  kNotFound,          // named entity (table, variable, service...) missing
  kAlreadyExists,     // entity with that name already present
  kSyntaxError,       // SQL / XPath / XML / XOML parse failure
  kTypeError,         // value of the wrong type for an operation
  kConstraintError,   // schema or integrity constraint violated
  kUnsupported,       // feature intentionally outside this engine's scope
  kExecutionError,    // runtime failure while executing a statement/activity
  kInternal,          // invariant violation inside sqlflow itself
  kUnavailable,       // transient: connection lost / backend unreachable
  kDeadlock,          // transient: statement chosen as deadlock victim
  kTimeout,           // transient: statement or scope deadline expired
  kDataLoss,          // durable log corrupt/unwritable; NOT transient —
                      // replaying against a dead WAL cannot succeed
};

/// Returns a stable human-readable name, e.g. "InvalidArgument".
const char* StatusCodeName(StatusCode code);

/// Transient/permanent split of the fault taxonomy: transient faults
/// (connection lost, deadlock victim, timeout) are expected to succeed
/// on replay and are the ones retry layers absorb; everything else is
/// permanent and must propagate (and, inside a transaction, roll back).
bool IsTransientCode(StatusCode code);

/// Operation outcome carried by value. `Status::OK()` is the success
/// singleton; error statuses carry a code and a message. No exceptions are
/// used anywhere in sqlflow: fallible functions return `Status` or
/// `Result<T>`.
class Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status SyntaxError(std::string msg) {
    return Status(StatusCode::kSyntaxError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status ConstraintError(std::string msg) {
    return Status(StatusCode::kConstraintError, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status ExecutionError(std::string msg) {
    return Status(StatusCode::kExecutionError, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  /// True for faults a retry can absorb (see IsTransientCode).
  bool IsTransient() const { return IsTransientCode(code_); }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing `value()` on an
/// error result is a programming error (asserted in debug builds).
template <typename T>
class Result {
 public:
  // Implicit conversions from both alternatives keep call sites terse:
  //   Result<int> F() { if (bad) return Status::InvalidArgument("..."); return 42; }
  Result(T value) : value_(std::move(value)) {}          // NOLINT
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() & { return *value_; }
  const T& value() const& { return *value_; }
  T&& value() && { return std::move(*value_); }

  T& operator*() & { return *value_; }
  const T& operator*() const& { return *value_; }
  T* operator->() { return &*value_; }
  const T* operator->() const { return &*value_; }

  /// Moves the value out, or returns `fallback` on error.
  T value_or(T fallback) && {
    return ok() ? std::move(*value_) : std::move(fallback);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

}  // namespace sqlflow

/// Propagates a non-OK Status from an expression to the caller.
#define SQLFLOW_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::sqlflow::Status _st = (expr);              \
    if (!_st.ok()) return _st;                   \
  } while (false)

/// Evaluates a Result<T> expression; on success binds the value to `lhs`,
/// on error returns the Status to the caller.
#define SQLFLOW_ASSIGN_OR_RETURN(lhs, expr)      \
  SQLFLOW_ASSIGN_OR_RETURN_IMPL(                 \
      SQLFLOW_CONCAT_(_res_, __LINE__), lhs, expr)

#define SQLFLOW_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

#define SQLFLOW_CONCAT_(a, b) SQLFLOW_CONCAT_IMPL_(a, b)
#define SQLFLOW_CONCAT_IMPL_(a, b) a##b

#endif  // SQLFLOW_COMMON_STATUS_H_
