#ifndef SQLFLOW_COMMON_VALUE_H_
#define SQLFLOW_COMMON_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "common/status.h"

namespace sqlflow {

/// Scalar SQL / process-variable types shared by every sqlflow layer.
enum class ValueType {
  kNull = 0,
  kBoolean,
  kInteger,  // 64-bit signed
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

/// A dynamically typed scalar value: the unit of data exchanged between
/// the SQL engine, XML RowSets, DataSets, and workflow variables.
///
/// Semantics follow SQL: NULL compares as unknown in expressions (the SQL
/// executor handles that); `Equals`/`Compare` here implement *total*
/// ordering with NULL < everything, which storage and tests rely on.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Boolean(bool v) { return Value(ValueType::kBoolean, v); }
  static Value Integer(int64_t v) { return Value(ValueType::kInteger, v); }
  static Value Double(double v) { return Value(ValueType::kDouble, v); }
  static Value String(std::string v) {
    return Value(ValueType::kString, std::move(v));
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }

  /// Typed accessors. Calling the wrong accessor is a programming error;
  /// use the As*() coercions for dynamically typed inputs.
  bool boolean() const { return std::get<bool>(payload_); }
  int64_t integer() const { return std::get<int64_t>(payload_); }
  double dbl() const { return std::get<double>(payload_); }
  const std::string& str() const { return std::get<std::string>(payload_); }

  /// Coercions with SQL-ish semantics (string "12" → 12, bool → 0/1...).
  Result<int64_t> AsInteger() const;
  Result<double> AsDouble() const;
  Result<bool> AsBoolean() const;
  /// Never fails: NULL renders as "" here; use ToString() for display.
  std::string AsString() const;

  /// Display form: NULL, TRUE/FALSE, numbers, or the raw string.
  std::string ToString() const;

  /// Total-order equality (NULL == NULL). Numeric types compare by value
  /// across int/double.
  bool Equals(const Value& other) const;
  /// Total order: NULL < booleans < numbers < strings; -1/0/+1.
  int Compare(const Value& other) const;

  bool operator==(const Value& other) const { return Equals(other); }

 private:
  using Payload = std::variant<std::monostate, bool, int64_t, double,
                               std::string>;

  template <typename T>
  Value(ValueType type, T payload)
      : type_(type), payload_(std::move(payload)) {}

  ValueType type_;
  Payload payload_;
};

}  // namespace sqlflow

#endif  // SQLFLOW_COMMON_VALUE_H_
