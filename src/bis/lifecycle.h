#ifndef SQLFLOW_BIS_LIFECYCLE_H_
#define SQLFLOW_BIS_LIFECYCLE_H_

#include <string>
#include <vector>

#include "bis/set_reference.h"
#include "wfc/process.h"

namespace sqlflow::bis {

/// One set-reference variable of a process, declared from a template.
/// Each instance gets its own clone, so per-instance rebinding (unique
/// result table names) never leaks across instances.
struct SetReferenceDecl {
  std::string variable_name;
  SetReferencePtr reference;  // template
};

/// Installs WID/WPS-style lifecycle management on a process definition
/// (Table I's "Lifecycle Management for DB Entities"):
///  - at instance start, each declared reference is cloned into its
///    variable; references with a unique base are bound to
///    "<base>_<instance-id>"; preparation DDL (with `{TABLE}` expanded)
///    runs against the data source;
///  - at completion (also after a fault), cleanup DDL runs.
Status AttachSetReferenceLifecycle(wfc::ProcessDefinition* definition,
                                   std::string data_source_variable,
                                   std::vector<SetReferenceDecl> decls);

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_LIFECYCLE_H_
