#ifndef SQLFLOW_BIS_SQL_ACTIVITY_H_
#define SQLFLOW_BIS_SQL_ACTIVITY_H_

#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "bis/data_source_variable.h"
#include "sql/ast.h"
#include "bis/set_reference.h"
#include "wfc/activity.h"

namespace sqlflow::bis {

/// BIS's *SQL activity* (information service activity, Sec. III-B):
/// embeds one SQL statement — query, DML, DDL, or CALL — executed on the
/// database bound through a data source variable.
///
/// Set references appear in the statement as `{VariableName}`
/// placeholders and are expanded to the referenced table's current name
/// at runtime. Scalar process values enter as named parameters
/// (`:name`), each bound from an XPath expression over the variable pool.
///
/// A query's (or procedure's) result set is **not** passed into the
/// process space: when `result_set_reference` names a result
/// SetReference variable, the rows are stored into that table inside the
/// database, and only the reference travels onward.
class SqlActivity : public wfc::Activity {
 public:
  struct Config {
    /// Variable holding the DataSourceVariable to execute against.
    std::string data_source_variable;
    /// SQL text; may contain `{SetRefVar}` placeholders.
    std::string statement;
    /// name → XPath source for `:name` parameters.
    std::vector<std::pair<std::string, std::string>> parameters;
    /// Variable holding the result SetReference (queries/CALL only).
    std::string result_set_reference;
    /// Optional scalar variable receiving the affected-row count.
    std::string affected_variable;
  };

  SqlActivity(std::string name, Config config);

  std::string TypeName() const override { return "sql"; }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override;

 private:
  Config config_;
  // Parse cache keyed by the set-reference-expanded statement text:
  // reparsing only happens when a reference was rebound to a different
  // table. Activities are shared between concurrent instances, so the
  // cache hands out shared_ptr copies under a mutex — an instance keeps
  // its statement alive even when another instance's expansion replaces
  // the cached entry mid-execution.
  std::mutex compile_mutex_;
  std::string compiled_text_;
  std::shared_ptr<const sql::Statement> compiled_;
};

/// Expands `{VarName}` placeholders against SetReference variables in
/// `ctx`; unknown variables or non-SetReference variables are errors.
/// Exposed for reuse by RetrieveSetActivity and tests.
Result<std::string> ExpandSetReferences(const std::string& statement,
                                        wfc::ProcessContext& ctx);

/// Stores `result` into `table_name` inside `db`, creating the table
/// (schema inferred from the result) when it does not exist yet.
Status MaterializeResultIntoTable(sql::Database* db,
                                  const std::string& table_name,
                                  const sql::ResultSet& result);

/// Resolves the Database bound to the DataSourceVariable held in
/// variable `var_name`.
Result<std::shared_ptr<sql::Database>> ResolveDataSource(
    wfc::ProcessContext& ctx, const std::string& var_name);

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_SQL_ACTIVITY_H_
