#ifndef SQLFLOW_BIS_COMPENSATION_H_
#define SQLFLOW_BIS_COMPENSATION_H_

#include <string>
#include <vector>

#include "bis/sql_activity.h"
#include "sql/inverse.h"
#include "wfc/activity.h"
#include "wfc/object.h"

namespace sqlflow::bis {

/// Process-space holder for a step's auto-generated compensation
/// program (the step's inverse SQL). Lives in an instance variable
/// (`"__inverse_" + step name`), never in the activity — activities are
/// shared between instances.
class InverseProgramVariable : public wfc::Object {
 public:
  std::string TypeName() const override { return "InverseProgram"; }
  std::string Describe() const override;

  std::vector<sql::InverseStatement> program;
};

/// An action/compensation activity pair for wfc::CompensationScope where
/// the compensation is *derived*, not hand-written: the action runs
/// `config`'s SQL statement with effect capture armed, builds the
/// inverse program from what the statement actually wrote (see
/// sql/inverse.h), and parks it in the instance's variable pool; the
/// compensation activity replays that program against the same data
/// source if the scope later faults. A step whose effects cannot be
/// inverted (e.g. it dropped a table) fails at action time — an
/// uncompensable step inside a compensation scope is a deployment bug,
/// not a runtime surprise.
struct CompensableStep {
  wfc::ActivityPtr action;
  wfc::ActivityPtr compensation;
};

CompensableStep MakeCompensableSqlStep(const std::string& name,
                                       SqlActivity::Config config);

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_COMPENSATION_H_
