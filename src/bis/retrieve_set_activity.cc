#include "bis/retrieve_set_activity.h"

#include "bis/set_reference.h"
#include "bis/sql_activity.h"
#include "rowset/xml_rowset.h"
#include "sql/table.h"

namespace sqlflow::bis {

RetrieveSetActivity::RetrieveSetActivity(std::string name, Config config)
    : Activity(std::move(name)), config_(std::move(config)) {}

Status RetrieveSetActivity::Execute(wfc::ProcessContext& ctx) {
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<sql::Database> db,
      ResolveDataSource(ctx, config_.data_source_variable));
  SQLFLOW_ASSIGN_OR_RETURN(
      SetReferencePtr ref,
      ctx.variables().GetObjectAs<SetReference>(config_.set_reference));
  SQLFLOW_ASSIGN_OR_RETURN(sql::Table * table,
                           db->catalog().GetTable(ref->table_name()));

  sql::ResultSet result = table->Scan();
  db->MutableStats()->rows_read += result.row_count();
  db->MutableStats()->bytes_materialized += result.ApproxByteSize();

  xml::NodePtr rowset = rowset::ToRowSet(result);
  ctx.variables().Set(config_.set_variable,
                      wfc::VarValue(std::move(rowset)));
  ctx.audit().Record(
      wfc::AuditEventKind::kNote, name(),
      "materialized " + std::to_string(result.row_count()) +
          " rows from " + ref->table_name() + " into set variable " +
          config_.set_variable);
  return Status::OK();
}

}  // namespace sqlflow::bis
