#ifndef SQLFLOW_BIS_RETRIEVE_SET_ACTIVITY_H_
#define SQLFLOW_BIS_RETRIEVE_SET_ACTIVITY_H_

#include <string>

#include "wfc/activity.h"

namespace sqlflow::bis {

/// BIS's *retrieve set* activity: the explicit materialization step that
/// bridges external and internal data processing (Set Retrieval
/// pattern). Loads the table denoted by a set reference into a set
/// variable as an XML RowSet, "preserving the relational structure of
/// the table in an appropriate XML structure".
class RetrieveSetActivity : public wfc::Activity {
 public:
  struct Config {
    std::string data_source_variable;
    /// Variable holding the SetReference to materialize.
    std::string set_reference;
    /// Target set variable receiving the XML RowSet.
    std::string set_variable;
  };

  RetrieveSetActivity(std::string name, Config config);

  std::string TypeName() const override { return "retrieve-set"; }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override;

 private:
  Config config_;
};

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_RETRIEVE_SET_ACTIVITY_H_
