#include "bis/atomic_sql_sequence.h"

#include "bis/sql_activity.h"

namespace sqlflow::bis {

AtomicSqlSequence::AtomicSqlSequence(std::string name,
                                     std::string data_source_variable,
                                     std::vector<wfc::ActivityPtr> children)
    : Activity(std::move(name)),
      data_source_variable_(std::move(data_source_variable)),
      children_(std::move(children)) {}

Status AtomicSqlSequence::Execute(wfc::ProcessContext& ctx) {
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<sql::Database> db,
      ResolveDataSource(ctx, data_source_variable_));

  SQLFLOW_RETURN_IF_ERROR(db->Begin());
  ctx.audit().Record(wfc::AuditEventKind::kNote, name(),
                     "transaction started on " + db->name());
  for (const wfc::ActivityPtr& child : children_) {
    Status st = child->Run(ctx);
    if (!st.ok()) {
      Status rollback = db->Rollback();
      ctx.audit().Record(
          wfc::AuditEventKind::kNote, name(),
          rollback.ok() ? "transaction rolled back"
                        : "rollback failed: " + rollback.ToString());
      return st;
    }
    if (ctx.terminate_requested()) break;
  }
  SQLFLOW_RETURN_IF_ERROR(db->Commit());
  ctx.audit().Record(wfc::AuditEventKind::kNote, name(),
                     "transaction committed");
  return Status::OK();
}

}  // namespace sqlflow::bis
