#ifndef SQLFLOW_BIS_SET_REFERENCE_H_
#define SQLFLOW_BIS_SET_REFERENCE_H_

#include <memory>
#include <string>

#include "wfc/object.h"

namespace sqlflow::bis {

/// WID's set reference variable (Sec. III-B): a handle to an *external*
/// table, used in information service activities in place of a static
/// table name. Passing a SetReference between activities passes the data
/// **by reference** — the rows never leave the database.
///
/// An *input* set reference names a table an activity reads or changes;
/// a *result* set reference names the table that receives a query's (or
/// procedure call's) result. Result references typically point at
/// per-instance temporary tables whose lifecycle is controlled by
/// preparation/cleanup statements (see lifecycle.h).
class SetReference : public wfc::Object {
 public:
  enum class Kind { kInput, kResult };

  SetReference(Kind kind, std::string table_name)
      : kind_(kind), table_name_(std::move(table_name)) {}

  std::string TypeName() const override { return "SetReference"; }
  std::string Describe() const override {
    return std::string(kind_ == Kind::kInput ? "InputSetReference("
                                             : "ResultSetReference(") +
           table_name_ + ")";
  }

  Kind kind() const { return kind_; }
  const std::string& table_name() const { return table_name_; }

  /// Dynamic (re)binding: which table this reference denotes can change
  /// at deployment time or at runtime without touching the process model.
  void BindTable(std::string table_name) {
    table_name_ = std::move(table_name);
  }

  /// A result reference may be redefined as the input reference of a
  /// consecutive activity (the paper's cross-activity passing): same
  /// table, input role.
  std::shared_ptr<SetReference> AsInputReference() const {
    return std::make_shared<SetReference>(Kind::kInput, table_name_);
  }

  // --- lifecycle statements (Sec. III-B "Additional Features") --------------
  /// DDL run before the owning process starts; `{TABLE}` expands to the
  /// bound table name.
  void SetPreparation(std::string ddl) { preparation_ = std::move(ddl); }
  /// DDL run after the owning process completes (even on fault).
  void SetCleanup(std::string ddl) { cleanup_ = std::move(ddl); }
  const std::string& preparation() const { return preparation_; }
  const std::string& cleanup() const { return cleanup_; }

  /// When set, the lifecycle hook binds the reference to
  /// "<base>_<instance-id>" at instance start — the paper's "table
  /// created with a generated unique name for each workflow instance".
  void SetUniquePerInstance(std::string base_name) {
    unique_base_ = std::move(base_name);
  }
  const std::string& unique_base() const { return unique_base_; }

  std::shared_ptr<SetReference> Clone() const {
    auto copy = std::make_shared<SetReference>(kind_, table_name_);
    copy->preparation_ = preparation_;
    copy->cleanup_ = cleanup_;
    copy->unique_base_ = unique_base_;
    return copy;
  }

 private:
  Kind kind_;
  std::string table_name_;
  std::string preparation_;
  std::string cleanup_;
  std::string unique_base_;
};

using SetReferencePtr = std::shared_ptr<SetReference>;

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_SET_REFERENCE_H_
