#ifndef SQLFLOW_BIS_ATOMIC_SQL_SEQUENCE_H_
#define SQLFLOW_BIS_ATOMIC_SQL_SEQUENCE_H_

#include <string>
#include <vector>

#include "wfc/activity.h"

namespace sqlflow::bis {

/// BIS's *atomic SQL sequence* activity: embeds a sequence of SQL and
/// retrieve-set activities that executes as a single transaction on the
/// bound data source — the paper's mechanism for defining transaction
/// boundaries in long-running processes. A fault in any child rolls the
/// whole sequence back and propagates.
class AtomicSqlSequence : public wfc::Activity {
 public:
  AtomicSqlSequence(std::string name, std::string data_source_variable,
                    std::vector<wfc::ActivityPtr> children);

  std::string TypeName() const override { return "atomic-sql-sequence"; }
  void Append(wfc::ActivityPtr child) {
    children_.push_back(std::move(child));
  }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override;

 private:
  std::string data_source_variable_;
  std::vector<wfc::ActivityPtr> children_;
};

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_ATOMIC_SQL_SEQUENCE_H_
