#include "bis/lifecycle.h"

#include "bis/sql_activity.h"
#include "common/string_util.h"

namespace sqlflow::bis {

namespace {

Status RunLifecycleDdl(wfc::ProcessContext& ctx,
                       const std::string& data_source_variable,
                       const SetReference& ref, const std::string& ddl) {
  if (ddl.empty()) return Status::OK();
  SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                           ResolveDataSource(ctx, data_source_variable));
  std::string statement = ReplaceAll(ddl, "{TABLE}", ref.table_name());
  ctx.audit().Record(wfc::AuditEventKind::kSqlExecuted, "lifecycle",
                     statement);
  auto result = db->Execute(statement);
  if (!result.ok()) return result.status();
  return Status::OK();
}

}  // namespace

Status AttachSetReferenceLifecycle(wfc::ProcessDefinition* definition,
                                   std::string data_source_variable,
                                   std::vector<SetReferenceDecl> decls) {
  for (const SetReferenceDecl& decl : decls) {
    if (decl.reference == nullptr) {
      return Status::InvalidArgument("set reference declaration '" +
                                     decl.variable_name + "' is null");
    }
  }

  definition->OnStart([data_source_variable,
                       decls](wfc::ProcessContext& ctx) -> Status {
    for (const SetReferenceDecl& decl : decls) {
      SetReferencePtr instance_ref = decl.reference->Clone();
      if (!instance_ref->unique_base().empty()) {
        instance_ref->BindTable(instance_ref->unique_base() + "_" +
                                std::to_string(ctx.instance_id()));
      }
      ctx.variables().Set(decl.variable_name,
                          wfc::VarValue(wfc::ObjectPtr(instance_ref)));
      SQLFLOW_RETURN_IF_ERROR(RunLifecycleDdl(ctx, data_source_variable,
                                              *instance_ref,
                                              instance_ref->preparation()));
    }
    return Status::OK();
  });

  definition->OnComplete([data_source_variable,
                          decls](wfc::ProcessContext& ctx) -> Status {
    Status first_error = Status::OK();
    for (const SetReferenceDecl& decl : decls) {
      auto ref =
          ctx.variables().GetObjectAs<SetReference>(decl.variable_name);
      if (!ref.ok()) continue;  // variable replaced mid-flow; skip
      Status st = RunLifecycleDdl(ctx, data_source_variable, **ref,
                                  (*ref)->cleanup());
      if (first_error.ok() && !st.ok()) first_error = st;
    }
    return first_error;
  });
  return Status::OK();
}

}  // namespace sqlflow::bis
