#include "bis/sql_activity.h"

#include "sql/parser.h"
#include "wfc/activities.h"

namespace sqlflow::bis {

Result<std::string> ExpandSetReferences(const std::string& statement,
                                        wfc::ProcessContext& ctx) {
  std::string out;
  out.reserve(statement.size());
  size_t i = 0;
  while (i < statement.size()) {
    char c = statement[i];
    if (c != '{') {
      out += c;
      ++i;
      continue;
    }
    size_t close = statement.find('}', i);
    if (close == std::string::npos) {
      return Status::InvalidArgument("unbalanced '{' in SQL statement");
    }
    std::string var_name = statement.substr(i + 1, close - i - 1);
    SQLFLOW_ASSIGN_OR_RETURN(
        SetReferencePtr ref,
        ctx.variables().GetObjectAs<SetReference>(var_name));
    out += ref->table_name();
    i = close + 1;
  }
  return out;
}

namespace {

Status MaterializeResultIntoTableLocked(sql::Database* db,
                                        const std::string& table_name,
                                        const sql::ResultSet& result) {
  sql::Table* table = db->catalog().FindTable(table_name);
  if (table == nullptr) {
    // Infer a schema: first non-null value per column decides the type;
    // all-null columns fall back to VARCHAR.
    std::vector<sql::ColumnDef> columns;
    for (size_t c = 0; c < result.column_count(); ++c) {
      sql::ColumnDef col;
      col.name = result.column_names()[c];
      col.type = ValueType::kString;
      for (const sql::Row& row : result.rows()) {
        if (c < row.size() && !row[c].is_null()) {
          col.type = row[c].type();
          break;
        }
      }
      columns.push_back(std::move(col));
    }
    SQLFLOW_RETURN_IF_ERROR(db->catalog().CreateTable(
        sql::TableSchema(table_name, std::move(columns))));
    table = db->catalog().FindTable(table_name);
  } else {
    if (table->schema().column_count() != result.column_count()) {
      return Status::ExecutionError(
          "result shape does not match existing table '" + table_name +
          "'");
    }
    table->Clear(db->active_undo());
  }
  for (const sql::Row& row : result.rows()) {
    SQLFLOW_RETURN_IF_ERROR(table->Insert(row, db->active_undo()));
  }
  return Status::OK();
}

}  // namespace

Status MaterializeResultIntoTable(sql::Database* db,
                                  const std::string& table_name,
                                  const sql::ResultSet& result) {
  // Writes through the catalog outside the statement path, so in
  // concurrent mode it must hold the writers' latch itself.
  return db->WithExclusiveStatementLatch([&]() -> Status {
    return MaterializeResultIntoTableLocked(db, table_name, result);
  });
}

Result<std::shared_ptr<sql::Database>> ResolveDataSource(
    wfc::ProcessContext& ctx, const std::string& var_name) {
  SQLFLOW_ASSIGN_OR_RETURN(
      DataSourceVariablePtr ds,
      ctx.variables().GetObjectAs<DataSourceVariable>(var_name));
  return ds->Resolve(ctx.data_sources());
}

SqlActivity::SqlActivity(std::string name, Config config)
    : Activity(std::move(name)), config_(std::move(config)) {}

Status SqlActivity::Execute(wfc::ProcessContext& ctx) {
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<sql::Database> db,
      ResolveDataSource(ctx, config_.data_source_variable));

  SQLFLOW_ASSIGN_OR_RETURN(std::string statement,
                           ExpandSetReferences(config_.statement, ctx));

  sql::Params params;
  for (const auto& [param_name, source_expr] : config_.parameters) {
    SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue v,
                             ctx.EvalXPath(source_expr));
    params.Set(param_name, wfc::XPathValueToScalar(v));
  }

  std::shared_ptr<const sql::Statement> stmt;
  {
    std::lock_guard<std::mutex> lock(compile_mutex_);
    if (compiled_ == nullptr || compiled_text_ != statement) {
      SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<sql::Statement> parsed,
                               sql::ParseStatement(statement));
      compiled_ = std::move(parsed);
      compiled_text_ = statement;
    }
    stmt = compiled_;
  }
  ctx.audit().Record(wfc::AuditEventKind::kSqlExecuted, name(), statement);
  SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                           db->ExecuteStatement(*stmt, params));

  if (!config_.affected_variable.empty()) {
    ctx.variables().Set(
        config_.affected_variable,
        wfc::VarValue(Value::Integer(result.affected_rows())));
  }

  if (!config_.result_set_reference.empty()) {
    SQLFLOW_ASSIGN_OR_RETURN(
        SetReferencePtr ref,
        ctx.variables().GetObjectAs<SetReference>(
            config_.result_set_reference));
    if (ref->kind() != SetReference::Kind::kResult) {
      return Status::InvalidArgument(
          "variable '" + config_.result_set_reference +
          "' is not a result set reference");
    }
    SQLFLOW_RETURN_IF_ERROR(
        MaterializeResultIntoTable(db.get(), ref->table_name(), result));
    ctx.audit().Record(
        wfc::AuditEventKind::kNote, name(),
        "result stored externally in " + ref->table_name() + " (" +
            std::to_string(result.row_count()) + " rows, by reference)");
  }
  return Status::OK();
}

}  // namespace sqlflow::bis
