#include "bis/compensation.h"

#include <memory>
#include <utility>

#include "obs/metrics.h"
#include "sql/database.h"
#include "wfc/audit.h"

namespace sqlflow::bis {

namespace {

std::string StateVariableName(const std::string& step_name) {
  return "__inverse_" + step_name;
}

/// Runs the wrapped SQL activity with effect capture armed on its data
/// source, then turns the captured effects into the step's compensation
/// program.
class CapturingSqlAction : public wfc::Activity {
 public:
  CapturingSqlAction(std::string name, SqlActivity::Config config)
      : Activity(std::move(name)),
        data_source_variable_(config.data_source_variable),
        inner_(std::make_shared<SqlActivity>(this->name() + ".sql",
                                             std::move(config))) {}

  std::string TypeName() const override { return "sql-compensable"; }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override {
    SQLFLOW_ASSIGN_OR_RETURN(
        std::shared_ptr<sql::Database> db,
        ResolveDataSource(ctx, data_source_variable_));
    // Arm capture for exactly this step; drain anything a previous
    // (non-compensable) statement may have left behind, and restore the
    // caller's capture mode afterwards.
    bool previous = db->capture_effects();
    db->set_capture_effects(true);
    (void)db->TakeCapturedEffects();
    Status st = inner_->Run(ctx);
    std::vector<sql::UndoEntry> effects = db->TakeCapturedEffects();
    db->set_capture_effects(previous);
    SQLFLOW_RETURN_IF_ERROR(st);
    SQLFLOW_ASSIGN_OR_RETURN(
        std::vector<sql::InverseStatement> program,
        sql::BuildInverseStatements(*db, effects));
    auto holder = std::make_shared<InverseProgramVariable>();
    holder->program = std::move(program);
    ctx.audit().Record(wfc::AuditEventKind::kNote, name(),
                       "captured " + holder->Describe());
    ctx.variables().Set(StateVariableName(name()),
                        wfc::VarValue(wfc::ObjectPtr(std::move(holder))));
    return Status::OK();
  }

 private:
  std::string data_source_variable_;
  wfc::ActivityPtr inner_;
};

/// Replays the inverse program parked by the matching
/// CapturingSqlAction. A step that never ran (or wrote nothing) has no
/// variable / an empty program — both compensate to a no-op.
class InverseCompensation : public wfc::Activity {
 public:
  InverseCompensation(std::string name, std::string step_name,
                      std::string data_source_variable)
      : Activity(std::move(name)),
        step_name_(std::move(step_name)),
        data_source_variable_(std::move(data_source_variable)) {}

  std::string TypeName() const override { return "sql-inverse"; }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override {
    const std::string var = StateVariableName(step_name_);
    if (!ctx.variables().Has(var)) return Status::OK();
    SQLFLOW_ASSIGN_OR_RETURN(
        auto holder,
        ctx.variables().GetObjectAs<InverseProgramVariable>(var));
    if (holder->program.empty()) return Status::OK();
    SQLFLOW_ASSIGN_OR_RETURN(
        std::shared_ptr<sql::Database> db,
        ResolveDataSource(ctx, data_source_variable_));
    ctx.audit().Record(wfc::AuditEventKind::kCompensation, name(),
                       "applying " + holder->Describe());
    obs::MetricsRegistry::Global()
        .GetCounter("wfc.compensation.inverse")
        .Increment();
    Status st = sql::ApplyInverseStatements(*db, holder->program);
    if (st.ok()) holder->program.clear();  // idempotent re-compensation
    return st;
  }

 private:
  std::string step_name_;
  std::string data_source_variable_;
};

}  // namespace

std::string InverseProgramVariable::Describe() const {
  std::string out = "inverse program (" +
                    std::to_string(program.size()) + " statement" +
                    (program.size() == 1 ? "" : "s") + ")";
  for (const sql::InverseStatement& inv : program) {
    out += "; " + inv.sql;
  }
  return out;
}

CompensableStep MakeCompensableSqlStep(const std::string& name,
                                       SqlActivity::Config config) {
  std::string data_source = config.data_source_variable;
  CompensableStep step;
  step.action =
      std::make_shared<CapturingSqlAction>(name, std::move(config));
  step.compensation = std::make_shared<InverseCompensation>(
      name + ".inverse", name, std::move(data_source));
  return step;
}

}  // namespace sqlflow::bis
