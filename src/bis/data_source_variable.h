#ifndef SQLFLOW_BIS_DATA_SOURCE_VARIABLE_H_
#define SQLFLOW_BIS_DATA_SOURCE_VARIABLE_H_

#include <memory>
#include <string>

#include "sql/data_source.h"
#include "wfc/object.h"

namespace sqlflow::bis {

/// WID's data source variable: holds the connection string an
/// information service activity resolves at runtime. Rebinding the
/// variable switches the target database — test ⇄ production — without
/// redeploying the process (the *dynamic* cell of Table I's "Reference
/// to External Data Source" row).
class DataSourceVariable : public wfc::Object {
 public:
  explicit DataSourceVariable(std::string connection_string)
      : connection_string_(std::move(connection_string)) {}

  std::string TypeName() const override { return "DataSourceVariable"; }
  std::string Describe() const override {
    return "DataSource(" + connection_string_ + ")";
  }

  const std::string& connection_string() const {
    return connection_string_;
  }
  void Rebind(std::string connection_string) {
    connection_string_ = std::move(connection_string);
  }

  Result<std::shared_ptr<sql::Database>> Resolve(
      sql::DataSourceRegistry* registry) const {
    if (registry == nullptr) {
      return Status::ExecutionError("no data source registry available");
    }
    return registry->Open(connection_string_);
  }

 private:
  std::string connection_string_;
};

using DataSourceVariablePtr = std::shared_ptr<DataSourceVariable>;

}  // namespace sqlflow::bis

#endif  // SQLFLOW_BIS_DATA_SOURCE_VARIABLE_H_
