#ifndef SQLFLOW_ROWSET_XML_ROWSET_H_
#define SQLFLOW_ROWSET_XML_ROWSET_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/result_set.h"
#include "xml/node.h"

namespace sqlflow::rowset {

/// The "proprietary XML RowSet" representation used by the IBM and
/// Oracle analogues (Table I): a materialized result set as an XML tree
/// in the process space, holding no connection to the data source.
///
/// Layout:
///   <RowSet columns="A,B">
///     <Row num="1"><A type="INTEGER">1</A><B type="STRING">x</B></Row>
///     ...
///   </RowSet>
///
/// The `type` attribute preserves SQL types across the XML round-trip;
/// `num` attributes are maintained by the tuple-IUD helpers below.

/// Materializes a ResultSet as a RowSet document.
xml::NodePtr ToRowSet(const sql::ResultSet& result);

/// Parses a RowSet document back into a ResultSet (exact inverse).
Result<sql::ResultSet> FromRowSet(const xml::NodePtr& rowset);

/// Number of <Row> children.
size_t RowCount(const xml::NodePtr& rowset);

/// Column names declared by the RowSet.
std::vector<std::string> ColumnNames(const xml::NodePtr& rowset);

// --- random access (Set Access pattern) -------------------------------------

/// 0-based row lookup.
Result<xml::NodePtr> GetRow(const xml::NodePtr& rowset, size_t index);

/// Typed cell read from a <Row> element.
Result<Value> GetField(const xml::NodePtr& row, const std::string& column);

// --- tuple IUD (Tuple IUD pattern; Oracle bpelx-style local ops) --------------

/// Overwrites one cell (type attribute updated to the new value's type).
Status UpdateField(const xml::NodePtr& rowset, size_t row_index,
                   const std::string& column, const Value& value);

/// Appends a row; `values` must match the RowSet's column order.
Status InsertRow(const xml::NodePtr& rowset,
                 const std::vector<Value>& values);

/// Removes a row and renumbers the remaining `num` attributes.
Status DeleteRow(const xml::NodePtr& rowset, size_t row_index);

// --- sequential access (cursor workaround of Sec. III-C) -----------------------

/// Forward cursor over <Row> elements, the while + snippet idiom both
/// BPEL-based products need for sequential set access. Iteration is
/// O(1) per step (the cursor walks the child list once); it must not be
/// used across structural mutations of the RowSet (re-create or Reset
/// after InsertRow/DeleteRow).
class RowSetCursor {
 public:
  explicit RowSetCursor(xml::NodePtr rowset);

  bool HasNext() const;
  /// The next <Row>; ExecutionError when exhausted.
  Result<xml::NodePtr> Next();
  void Reset();
  size_t position() const { return position_; }
  size_t size() const;

 private:
  void SkipToNextRow();

  xml::NodePtr rowset_;
  size_t position_ = 0;     // rows consumed so far
  size_t child_index_ = 0;  // index of the next <Row> in children()
};

}  // namespace sqlflow::rowset

#endif  // SQLFLOW_ROWSET_XML_ROWSET_H_
