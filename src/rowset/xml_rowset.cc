#include "rowset/xml_rowset.h"

#include "common/string_util.h"

namespace sqlflow::rowset {

namespace {

void SetCell(const xml::NodePtr& row, const std::string& column,
             const Value& value) {
  xml::NodePtr cell = row->FindFirst(column);
  if (cell == nullptr) {
    cell = row->AddElement(column, "");
  }
  cell->SetAttribute("type", ValueTypeName(value.type()));
  cell->SetTextContent(value.is_null() ? "" : value.AsString());
}

Result<Value> DecodeCell(const xml::NodePtr& cell) {
  std::string type = cell->GetAttribute("type").value_or("STRING");
  std::string text = cell->TextContent();
  if (type == "NULL") return Value::Null();
  if (type == "INTEGER") {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t v, Value::String(text).AsInteger());
    return Value::Integer(v);
  }
  if (type == "DOUBLE") {
    SQLFLOW_ASSIGN_OR_RETURN(double v, Value::String(text).AsDouble());
    return Value::Double(v);
  }
  if (type == "BOOLEAN") {
    SQLFLOW_ASSIGN_OR_RETURN(bool v, Value::String(text).AsBoolean());
    return Value::Boolean(v);
  }
  return Value::String(text);
}

void Renumber(const xml::NodePtr& rowset) {
  size_t num = 1;
  for (const xml::NodePtr& child : rowset->children()) {
    if (child->is_element() && child->name() == "Row") {
      child->SetAttribute("num", std::to_string(num++));
    }
  }
}

}  // namespace

xml::NodePtr ToRowSet(const sql::ResultSet& result) {
  xml::NodePtr rowset = xml::Node::Element("RowSet");
  rowset->SetAttribute("columns", Join(result.column_names(), ","));
  size_t num = 1;
  for (const sql::Row& row : result.rows()) {
    xml::NodePtr row_node = xml::Node::Element("Row");
    row_node->SetAttribute("num", std::to_string(num++));
    for (size_t c = 0; c < result.column_names().size(); ++c) {
      const Value& v =
          c < row.size() ? row[c] : Value::Null();
      xml::NodePtr cell =
          row_node->AddElement(result.column_names()[c], "");
      cell->SetAttribute("type", ValueTypeName(v.type()));
      cell->SetTextContent(v.is_null() ? "" : v.AsString());
    }
    rowset->AppendChild(std::move(row_node));
  }
  return rowset;
}

Result<sql::ResultSet> FromRowSet(const xml::NodePtr& rowset) {
  if (rowset == nullptr || rowset->name() != "RowSet") {
    return Status::InvalidArgument("not a RowSet document");
  }
  std::vector<std::string> columns =
      Split(rowset->GetAttribute("columns").value_or(""), ',');
  if (columns.size() == 1 && columns[0].empty()) columns.clear();
  sql::ResultSet out(columns);
  for (const xml::NodePtr& child : rowset->children()) {
    if (!child->is_element() || child->name() != "Row") continue;
    sql::Row row;
    row.reserve(columns.size());
    for (const std::string& column : columns) {
      xml::NodePtr cell = child->FindFirst(column);
      if (cell == nullptr) {
        row.push_back(Value::Null());
        continue;
      }
      SQLFLOW_ASSIGN_OR_RETURN(Value v, DecodeCell(cell));
      row.push_back(std::move(v));
    }
    out.AddRow(std::move(row));
  }
  return out;
}

size_t RowCount(const xml::NodePtr& rowset) {
  if (rowset == nullptr) return 0;
  size_t n = 0;
  for (const xml::NodePtr& child : rowset->children()) {
    if (child->is_element() && child->name() == "Row") ++n;
  }
  return n;
}

std::vector<std::string> ColumnNames(const xml::NodePtr& rowset) {
  if (rowset == nullptr) return {};
  std::vector<std::string> columns =
      Split(rowset->GetAttribute("columns").value_or(""), ',');
  if (columns.size() == 1 && columns[0].empty()) columns.clear();
  return columns;
}

Result<xml::NodePtr> GetRow(const xml::NodePtr& rowset, size_t index) {
  size_t i = 0;
  for (const xml::NodePtr& child : rowset->children()) {
    if (!child->is_element() || child->name() != "Row") continue;
    if (i == index) return child;
    ++i;
  }
  return Status::InvalidArgument("row index " + std::to_string(index) +
                                 " out of range (" + std::to_string(i) +
                                 " rows)");
}

Result<Value> GetField(const xml::NodePtr& row, const std::string& column) {
  xml::NodePtr cell = row->FindFirst(column);
  if (cell == nullptr) {
    return Status::NotFound("row has no column '" + column + "'");
  }
  return DecodeCell(cell);
}

Status UpdateField(const xml::NodePtr& rowset, size_t row_index,
                   const std::string& column, const Value& value) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row, GetRow(rowset, row_index));
  if (row->FindFirst(column) == nullptr) {
    return Status::NotFound("RowSet has no column '" + column + "'");
  }
  SetCell(row, column, value);
  return Status::OK();
}

Status InsertRow(const xml::NodePtr& rowset,
                 const std::vector<Value>& values) {
  std::vector<std::string> columns = ColumnNames(rowset);
  if (values.size() != columns.size()) {
    return Status::InvalidArgument(
        "InsertRow got " + std::to_string(values.size()) +
        " values for " + std::to_string(columns.size()) + " columns");
  }
  xml::NodePtr row = xml::Node::Element("Row");
  for (size_t i = 0; i < columns.size(); ++i) {
    SetCell(row, columns[i], values[i]);
  }
  rowset->AppendChild(std::move(row));
  Renumber(rowset);
  return Status::OK();
}

Status DeleteRow(const xml::NodePtr& rowset, size_t row_index) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr row, GetRow(rowset, row_index));
  SQLFLOW_RETURN_IF_ERROR(rowset->RemoveChild(row));
  Renumber(rowset);
  return Status::OK();
}

RowSetCursor::RowSetCursor(xml::NodePtr rowset)
    : rowset_(std::move(rowset)) {
  SkipToNextRow();
}

void RowSetCursor::SkipToNextRow() {
  if (rowset_ == nullptr) return;
  const auto& children = rowset_->children();
  while (child_index_ < children.size() &&
         !(children[child_index_]->is_element() &&
           children[child_index_]->name() == "Row")) {
    ++child_index_;
  }
}

bool RowSetCursor::HasNext() const {
  return rowset_ != nullptr && child_index_ < rowset_->child_count();
}

Result<xml::NodePtr> RowSetCursor::Next() {
  if (!HasNext()) {
    return Status::ExecutionError("cursor exhausted");
  }
  xml::NodePtr row = rowset_->children()[child_index_++];
  ++position_;
  SkipToNextRow();
  return row;
}

void RowSetCursor::Reset() {
  position_ = 0;
  child_index_ = 0;
  SkipToNextRow();
}

size_t RowSetCursor::size() const { return RowCount(rowset_); }

}  // namespace sqlflow::rowset
