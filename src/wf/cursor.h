#ifndef SQLFLOW_WF_CURSOR_H_
#define SQLFLOW_WF_CURSOR_H_

#include <string>
#include <vector>

#include "wfc/activities.h"

namespace sqlflow::wf {

/// Helpers codifying the paper's WF iteration idiom (Sec. IV-C): a while
/// activity whose condition is ADO.NET-based code, plus a code activity
/// that fetches the current row into host variables.

/// Condition `position < row count` over the DataSet in `dataset_variable`
/// (sole table), reading the 0-based position from scalar
/// `position_variable` (declare it initialized to 0).
wfc::Condition DataSetHasMoreRows(std::string dataset_variable,
                                  std::string position_variable);

/// Code activity that copies the current row's columns into scalar
/// variables (`column` → `target_variable`) and advances the position.
/// Skips rows marked deleted.
wfc::ActivityPtr FetchRowSnippet(
    std::string activity_name, std::string dataset_variable,
    std::string position_variable,
    std::vector<std::pair<std::string, std::string>> column_to_variable);

}  // namespace sqlflow::wf

#endif  // SQLFLOW_WF_CURSOR_H_
