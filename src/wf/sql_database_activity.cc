#include "wf/sql_database_activity.h"

#include "sql/parser.h"
#include "wfc/activities.h"

namespace sqlflow::wf {

SqlDatabaseActivity::SqlDatabaseActivity(std::string name, Config config)
    : Activity(std::move(name)), config_(std::move(config)) {}

Status SqlDatabaseActivity::Execute(wfc::ProcessContext& ctx) {
  if (config_.before != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(config_.before(ctx));
  }

  if (ctx.data_sources() == nullptr) {
    return Status::ExecutionError("no data source registry available");
  }
  // Static connection: opened for this statement, conceptually closed
  // again afterwards (Sec. IV-B).
  SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                           ctx.data_sources()->Open(
                               config_.connection_string));

  sql::Params params;
  for (const auto& [param_name, source_expr] : config_.parameters) {
    SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue v,
                             ctx.EvalXPath(source_expr));
    params.Set(param_name, wfc::XPathValueToScalar(v));
  }

  std::shared_ptr<const sql::Statement> stmt;
  {
    std::lock_guard<std::mutex> lock(compile_mutex_);
    if (compiled_ == nullptr) {
      SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<sql::Statement> parsed,
                               sql::ParseStatement(config_.statement));
      compiled_ = std::move(parsed);
    }
    stmt = compiled_;
  }
  ctx.audit().Record(wfc::AuditEventKind::kSqlExecuted, name(),
                     config_.statement);
  SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                           db->ExecuteStatement(*stmt, params));

  if (config_.after != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(config_.after(ctx, result));
  }

  if (!config_.affected_variable.empty()) {
    ctx.variables().Set(
        config_.affected_variable,
        wfc::VarValue(Value::Integer(result.affected_rows())));
  }

  // Automatic materialization into a DataSet for statements that
  // produced rows (queries and procedure calls).
  if (!config_.result_variable.empty() && result.column_count() > 0) {
    auto data_set = std::make_shared<dataset::DataSet>();
    SQLFLOW_ASSIGN_OR_RETURN(
        dataset::DataTablePtr table,
        data_set->AddTable(config_.result_table_name,
                           result.column_names()));
    for (const sql::Row& row : result.rows()) {
      table->LoadRow(row);
    }
    db->MutableStats()->bytes_materialized += result.ApproxByteSize();
    ctx.variables().Set(config_.result_variable,
                        wfc::VarValue(wfc::ObjectPtr(data_set)));
    ctx.audit().Record(
        wfc::AuditEventKind::kNote, name(),
        "materialized " + std::to_string(result.row_count()) +
            " rows into DataSet variable " + config_.result_variable);
  }
  return Status::OK();
}

Status RegisterSqlDatabaseXomlActivity(wfc::XomlLoader* loader) {
  return loader->RegisterActivityType(
      "SqlDatabase",
      [](const xml::Node& element,
         wfc::XomlLoader&) -> Result<wfc::ActivityPtr> {
        std::optional<std::string> connection =
            element.GetAttribute("connection");
        std::optional<std::string> statement =
            element.GetAttribute("statement");
        if (!connection.has_value() || !statement.has_value()) {
          return Status::InvalidArgument(
              "<SqlDatabase> requires connection= and statement=");
        }
        SqlDatabaseActivity::Config config;
        config.connection_string = *connection;
        config.statement = *statement;
        config.result_variable = element.GetAttribute("result").value_or("");
        config.result_table_name =
            element.GetAttribute("resultTable").value_or("Result");
        config.affected_variable =
            element.GetAttribute("affected").value_or("");
        for (const xml::NodePtr& child : element.children()) {
          if (!child->is_element()) continue;
          if (child->name() != "Param") {
            return Status::InvalidArgument(
                "<SqlDatabase> children must be <Param>");
          }
          std::optional<std::string> param = child->GetAttribute("name");
          std::optional<std::string> expr = child->GetAttribute("expr");
          if (!param.has_value() || !expr.has_value()) {
            return Status::InvalidArgument(
                "<Param> requires name= and expr=");
          }
          config.parameters.emplace_back(*param, *expr);
        }
        return wfc::ActivityPtr(std::make_shared<SqlDatabaseActivity>(
            element.GetAttribute("name").value_or("sql-database"),
            std::move(config)));
      });
}

}  // namespace sqlflow::wf
