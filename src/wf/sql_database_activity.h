#ifndef SQLFLOW_WF_SQL_DATABASE_ACTIVITY_H_
#define SQLFLOW_WF_SQL_DATABASE_ACTIVITY_H_

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "dataset/data_set.h"
#include "sql/ast.h"
#include "wfc/activity.h"
#include "wfc/xoml.h"

namespace sqlflow::wf {

/// The customized *SQL database activity* of WF's custom activity
/// library (Sec. IV-B): executes one SQL statement — query, DML, DDL, or
/// CALL — over a **static** connection string, with host-variable input
/// parameters. Table names are a static part of the statement (no set
/// references).
///
/// Query (and CALL) execution "is always aligned with a consecutive
/// materialization step": the result set is imported into the process
/// space as a DataSet object stored in `result_variable` — a client-side
/// cache holding no connection to the original data.
///
/// `before`/`after` are the activity's event handlers: arbitrary code run
/// around the statement (e.g. to initialize parameter values or to
/// post-process result data).
class SqlDatabaseActivity : public wfc::Activity {
 public:
  struct Config {
    /// Static connection string, resolved (and "closed") per execution.
    std::string connection_string;
    std::string statement;
    /// name → XPath source for `:name` host variables.
    std::vector<std::pair<std::string, std::string>> parameters;
    /// Variable receiving the DataSet (queries/CALL only).
    std::string result_variable;
    /// Name of the DataSet's table (defaults to "Result").
    std::string result_table_name = "Result";
    /// Optional scalar variable receiving the affected-row count.
    std::string affected_variable;
    /// Event handlers.
    std::function<Status(wfc::ProcessContext&)> before;
    std::function<Status(wfc::ProcessContext&, sql::ResultSet&)> after;
  };

  SqlDatabaseActivity(std::string name, Config config);

  std::string TypeName() const override { return "sql-database"; }

 protected:
  Status Execute(wfc::ProcessContext& ctx) override;

 private:
  Config config_;
  // Statement text is static (Sec. IV-B), so it is parsed once on first
  // execution and reused. Activities are shared between concurrent
  // instances: first-compile is serialized by the mutex, and readers
  // take a shared_ptr copy so the statement outlives any re-entry.
  std::mutex compile_mutex_;
  std::shared_ptr<const sql::Statement> compiled_;
};

/// Registers the `<SqlDatabase>` element with a XOML loader — the markup
/// face of augmenting the custom activity library. Attributes:
/// connection=, statement=, result=, resultTable=, affected=; children:
/// `<Param name= expr=/>`.
Status RegisterSqlDatabaseXomlActivity(wfc::XomlLoader* loader);

}  // namespace sqlflow::wf

#endif  // SQLFLOW_WF_SQL_DATABASE_ACTIVITY_H_
