#include "wf/cursor.h"

#include "dataset/data_set.h"

namespace sqlflow::wf {

namespace {

Result<dataset::DataTablePtr> SoleTableOf(wfc::ProcessContext& ctx,
                                          const std::string& variable) {
  SQLFLOW_ASSIGN_OR_RETURN(
      std::shared_ptr<dataset::DataSet> data_set,
      ctx.variables().GetObjectAs<dataset::DataSet>(variable));
  return data_set->SoleTable();
}

}  // namespace

wfc::Condition DataSetHasMoreRows(std::string dataset_variable,
                                  std::string position_variable) {
  return wfc::Condition::Native(
      [dataset_variable = std::move(dataset_variable),
       position_variable = std::move(position_variable)](
          wfc::ProcessContext& ctx) -> Result<bool> {
        SQLFLOW_ASSIGN_OR_RETURN(dataset::DataTablePtr table,
                                 SoleTableOf(ctx, dataset_variable));
        SQLFLOW_ASSIGN_OR_RETURN(
            Value pos, ctx.variables().GetScalar(position_variable));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t position, pos.AsInteger());
        return static_cast<size_t>(position) < table->rows().size();
      });
}

wfc::ActivityPtr FetchRowSnippet(
    std::string activity_name, std::string dataset_variable,
    std::string position_variable,
    std::vector<std::pair<std::string, std::string>> column_to_variable) {
  return std::make_shared<wfc::SnippetActivity>(
      std::move(activity_name),
      [dataset_variable = std::move(dataset_variable),
       position_variable = std::move(position_variable),
       column_to_variable = std::move(column_to_variable)](
          wfc::ProcessContext& ctx) -> Status {
        SQLFLOW_ASSIGN_OR_RETURN(dataset::DataTablePtr table,
                                 SoleTableOf(ctx, dataset_variable));
        SQLFLOW_ASSIGN_OR_RETURN(
            Value pos, ctx.variables().GetScalar(position_variable));
        SQLFLOW_ASSIGN_OR_RETURN(int64_t position, pos.AsInteger());
        // Advance past deleted rows.
        size_t index = static_cast<size_t>(position);
        while (index < table->rows().size() &&
               table->rows()[index].state ==
                   dataset::RowState::kDeleted) {
          ++index;
        }
        if (index >= table->rows().size()) {
          return Status::ExecutionError(
              "DataSet cursor advanced past the last row");
        }
        for (const auto& [column, target] : column_to_variable) {
          SQLFLOW_ASSIGN_OR_RETURN(Value v, table->Get(index, column));
          ctx.variables().Set(target, wfc::VarValue(std::move(v)));
        }
        ctx.variables().Set(
            position_variable,
            wfc::VarValue(Value::Integer(static_cast<int64_t>(index) + 1)));
        return Status::OK();
      });
}

}  // namespace sqlflow::wf
