#include "dataset/data_adapter.h"

#include "common/string_util.h"
#include "sql/table.h"

namespace sqlflow::dataset {

namespace {

// Builds "col1 = ?, col2 = ?" style fragments with positional parameters.
std::string Placeholders(size_t n) {
  std::string out;
  for (size_t i = 0; i < n; ++i) {
    if (i > 0) out += ", ";
    out += "?";
  }
  return out;
}

}  // namespace

DataAdapter::DataAdapter(std::shared_ptr<sql::Database> database,
                         std::string source_table)
    : database_(std::move(database)),
      source_table_(std::move(source_table)) {}

Result<std::string> DataAdapter::KeyColumn() const {
  const sql::Table* table = database_->catalog().FindTable(source_table_);
  if (table == nullptr) {
    return Status::NotFound("no source table '" + source_table_ + "'");
  }
  int pk = table->schema().primary_key_index();
  size_t index = pk >= 0 ? static_cast<size_t>(pk) : 0;
  return table->schema().columns()[index].name;
}

Result<DataTablePtr> DataAdapter::Fill(DataSet* target,
                                       const std::string& select_sql) {
  SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                           database_->Execute(select_sql));
  SQLFLOW_ASSIGN_OR_RETURN(
      DataTablePtr table,
      target->AddTable(source_table_, result.column_names()));
  for (const sql::Row& row : result.rows()) {
    table->LoadRow(row);
  }
  return table;
}

Result<DataAdapter::UpdateCounts> DataAdapter::Update(DataTable* table) {
  SQLFLOW_ASSIGN_OR_RETURN(std::string key_column, KeyColumn());
  int key_index = table->FindColumn(key_column);
  if (key_index < 0) {
    return Status::ExecutionError(
        "cached table lacks the source key column '" + key_column + "'");
  }

  UpdateCounts counts;
  SQLFLOW_RETURN_IF_ERROR(database_->Begin());
  auto fail = [&](const Status& st) -> Status {
    (void)database_->Rollback();
    return st;
  };

  for (const DataRow& row : table->rows()) {
    switch (row.state) {
      case RowState::kUnchanged:
        break;
      case RowState::kAdded: {
        std::string sql = "INSERT INTO " + source_table_ + " (" +
                          Join(table->columns(), ", ") + ") VALUES (" +
                          Placeholders(row.values.size()) + ")";
        sql::Params params;
        for (const Value& v : row.values) params.Add(v);
        auto result = database_->Execute(sql, params);
        if (!result.ok()) return fail(result.status());
        ++counts.inserted;
        break;
      }
      case RowState::kModified: {
        std::string sql = "UPDATE " + source_table_ + " SET ";
        sql::Params params;
        for (size_t i = 0; i < table->columns().size(); ++i) {
          if (i > 0) sql += ", ";
          sql += table->columns()[i] + " = ?";
          params.Add(row.values[i]);
        }
        sql += " WHERE " + key_column + " = ?";
        params.Add(row.original[static_cast<size_t>(key_index)]);
        auto result = database_->Execute(sql, params);
        if (!result.ok()) return fail(result.status());
        if (result->affected_rows() == 0) {
          return fail(Status::ExecutionError(
              "synchronization conflict: source row with " + key_column +
              " = " +
              row.original[static_cast<size_t>(key_index)].ToString() +
              " no longer exists"));
        }
        ++counts.updated;
        break;
      }
      case RowState::kDeleted: {
        std::string sql = "DELETE FROM " + source_table_ + " WHERE " +
                          key_column + " = ?";
        sql::Params params;
        params.Add(row.original[static_cast<size_t>(key_index)]);
        auto result = database_->Execute(sql, params);
        if (!result.ok()) return fail(result.status());
        ++counts.deleted;
        break;
      }
    }
  }
  SQLFLOW_RETURN_IF_ERROR(database_->Commit());
  table->AcceptChanges();
  return counts;
}

}  // namespace sqlflow::dataset
