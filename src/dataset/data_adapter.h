#ifndef SQLFLOW_DATASET_DATA_ADAPTER_H_
#define SQLFLOW_DATASET_DATA_ADAPTER_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "dataset/data_set.h"
#include "sql/database.h"

namespace sqlflow::dataset {

/// Synchronizes a disconnected DataTable with its source database table —
/// the ADO.NET DataAdapter analogue that realizes the paper's
/// *Synchronization Pattern* for the WF product.
///
/// Update() pushes pending changes back: kAdded rows become INSERTs,
/// kModified rows UPDATEs, kDeleted rows DELETEs. Modified/deleted rows
/// are addressed in the source by their *original* key value (optimistic,
/// key-based addressing; the key column is the source table's PRIMARY
/// KEY, or the first column when none is declared).
class DataAdapter {
 public:
  struct UpdateCounts {
    size_t inserted = 0;
    size_t updated = 0;
    size_t deleted = 0;
  };

  DataAdapter(std::shared_ptr<sql::Database> database,
              std::string source_table);

  /// Runs `select_sql` and loads the result into a new table named after
  /// the source table inside `target` (AcceptChanges state).
  Result<DataTablePtr> Fill(DataSet* target, const std::string& select_sql);

  /// Pushes pending changes of `table` to the source, then accepts them.
  /// All statements run in one transaction; any failure rolls back and
  /// leaves the DataTable's change state untouched.
  Result<UpdateCounts> Update(DataTable* table);

 private:
  Result<std::string> KeyColumn() const;

  std::shared_ptr<sql::Database> database_;
  std::string source_table_;
};

}  // namespace sqlflow::dataset

#endif  // SQLFLOW_DATASET_DATA_ADAPTER_H_
