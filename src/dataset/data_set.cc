#include "dataset/data_set.h"

#include "common/string_util.h"

namespace sqlflow::dataset {

const char* RowStateName(RowState state) {
  switch (state) {
    case RowState::kUnchanged:
      return "Unchanged";
    case RowState::kAdded:
      return "Added";
    case RowState::kModified:
      return "Modified";
    case RowState::kDeleted:
      return "Deleted";
  }
  return "Unknown";
}

DataTable::DataTable(std::string name, std::vector<std::string> columns)
    : name_(std::move(name)), columns_(std::move(columns)) {}

int DataTable::FindColumn(const std::string& column) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i], column)) return static_cast<int>(i);
  }
  return -1;
}

size_t DataTable::ActiveRowCount() const {
  size_t n = 0;
  for (const DataRow& row : rows_) {
    if (row.state != RowState::kDeleted) ++n;
  }
  return n;
}

void DataTable::LoadRow(std::vector<Value> values) {
  DataRow row;
  row.original = values;
  row.values = std::move(values);
  row.state = RowState::kUnchanged;
  rows_.push_back(std::move(row));
}

Status DataTable::AddRow(std::vector<Value> values) {
  if (values.size() != columns_.size()) {
    return Status::InvalidArgument(
        "AddRow got " + std::to_string(values.size()) + " values for " +
        std::to_string(columns_.size()) + " columns");
  }
  DataRow row;
  row.values = std::move(values);
  row.state = RowState::kAdded;
  rows_.push_back(std::move(row));
  return Status::OK();
}

Status DataTable::UpdateValue(size_t row_index, const std::string& column,
                              const Value& value) {
  if (row_index >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  int col = FindColumn(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in table '" +
                            name_ + "'");
  }
  DataRow& row = rows_[row_index];
  if (row.state == RowState::kDeleted) {
    return Status::ExecutionError("cannot update a deleted row");
  }
  row.values[static_cast<size_t>(col)] = value;
  if (row.state == RowState::kUnchanged) {
    row.state = RowState::kModified;
  }
  return Status::OK();
}

Status DataTable::MarkDeleted(size_t row_index) {
  if (row_index >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  DataRow& row = rows_[row_index];
  if (row.state == RowState::kAdded) {
    // A row that never existed in the source simply disappears.
    rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(row_index));
    return Status::OK();
  }
  row.state = RowState::kDeleted;
  return Status::OK();
}

Result<Value> DataTable::Get(size_t row_index,
                             const std::string& column) const {
  if (row_index >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  int col = FindColumn(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in table '" +
                            name_ + "'");
  }
  return rows_[row_index].values[static_cast<size_t>(col)];
}

Result<std::vector<Value>> DataTable::GetRowValues(size_t row_index) const {
  if (row_index >= rows_.size()) {
    return Status::InvalidArgument("row index out of range");
  }
  return rows_[row_index].values;
}

std::vector<size_t> DataTable::Select(
    const std::function<bool(const std::vector<Value>&)>& predicate) const {
  std::vector<size_t> matches;
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (rows_[i].state == RowState::kDeleted) continue;
    if (predicate(rows_[i].values)) matches.push_back(i);
  }
  return matches;
}

void DataTable::AcceptChanges() {
  std::vector<DataRow> kept;
  kept.reserve(rows_.size());
  for (DataRow& row : rows_) {
    if (row.state == RowState::kDeleted) continue;
    row.original = row.values;
    row.state = RowState::kUnchanged;
    kept.push_back(std::move(row));
  }
  rows_ = std::move(kept);
}

void DataTable::RejectChanges() {
  std::vector<DataRow> kept;
  kept.reserve(rows_.size());
  for (DataRow& row : rows_) {
    switch (row.state) {
      case RowState::kAdded:
        break;  // never existed upstream; drop
      case RowState::kModified:
      case RowState::kDeleted:
        row.values = row.original;
        row.state = RowState::kUnchanged;
        kept.push_back(std::move(row));
        break;
      case RowState::kUnchanged:
        kept.push_back(std::move(row));
        break;
    }
  }
  rows_ = std::move(kept);
}

bool DataTable::HasChanges() const {
  for (const DataRow& row : rows_) {
    if (row.state != RowState::kUnchanged) return true;
  }
  return false;
}

size_t DataTable::CountState(RowState state) const {
  size_t n = 0;
  for (const DataRow& row : rows_) {
    if (row.state == state) ++n;
  }
  return n;
}

sql::ResultSet DataTable::ToResultSet() const {
  sql::ResultSet out(columns_);
  for (const DataRow& row : rows_) {
    if (row.state == RowState::kDeleted) continue;
    out.AddRow(row.values);
  }
  return out;
}

std::string DataSet::Describe() const {
  std::string out = "DataSet{";
  bool first = true;
  for (const auto& [name, table] : tables_) {
    if (!first) out += ", ";
    first = false;
    out += name + ":" + std::to_string(table->ActiveRowCount()) + " rows";
  }
  out += "}";
  return out;
}

Result<DataTablePtr> DataSet::AddTable(std::string name,
                                       std::vector<std::string> columns) {
  std::string key = ToUpperAscii(name);
  if (tables_.count(key) > 0) {
    return Status::AlreadyExists("DataSet already has table '" + name +
                                 "'");
  }
  auto table =
      std::make_shared<DataTable>(std::move(name), std::move(columns));
  tables_.emplace(std::move(key), table);
  return table;
}

Result<DataTablePtr> DataSet::GetTable(const std::string& name) const {
  auto it = tables_.find(ToUpperAscii(name));
  if (it == tables_.end()) {
    return Status::NotFound("DataSet has no table '" + name + "'");
  }
  return it->second;
}

bool DataSet::HasTable(const std::string& name) const {
  return tables_.count(ToUpperAscii(name)) > 0;
}

std::vector<std::string> DataSet::TableNames() const {
  std::vector<std::string> names;
  names.reserve(tables_.size());
  for (const auto& [key, table] : tables_) names.push_back(table->name());
  return names;
}

Result<DataTablePtr> DataSet::SoleTable() const {
  if (tables_.size() != 1) {
    return Status::ExecutionError(
        "DataSet holds " + std::to_string(tables_.size()) +
        " tables; expected exactly one");
  }
  return tables_.begin()->second;
}

}  // namespace sqlflow::dataset
