#ifndef SQLFLOW_DATASET_DATA_SET_H_
#define SQLFLOW_DATASET_DATA_SET_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/result_set.h"
#include "wfc/object.h"

namespace sqlflow::dataset {

/// Change-tracking state of one cached row, mirroring ADO.NET's
/// DataRowState.
enum class RowState { kUnchanged, kAdded, kModified, kDeleted };

const char* RowStateName(RowState state);

/// One cached row: current values, the original values as fetched (used
/// by the DataAdapter to address the source row during synchronization),
/// and the change state.
struct DataRow {
  std::vector<Value> values;
  std::vector<Value> original;  // empty for kAdded rows
  RowState state = RowState::kUnchanged;
};

/// A disconnected, in-memory table of a DataSet. Supports the paper's
/// internal-data patterns: sequential iteration, random access, tuple
/// insert/update/delete, all tracked for later synchronization.
class DataTable {
 public:
  DataTable(std::string name, std::vector<std::string> columns);

  const std::string& name() const { return name_; }
  const std::vector<std::string>& columns() const { return columns_; }
  int FindColumn(const std::string& column) const;

  /// All rows including deleted ones (check `state`).
  const std::vector<DataRow>& rows() const { return rows_; }
  /// Rows not marked deleted.
  size_t ActiveRowCount() const;

  /// Loads a fetched row as kUnchanged (used by DataAdapter::Fill).
  void LoadRow(std::vector<Value> values);

  /// Tuple IUD pattern -------------------------------------------------------
  Status AddRow(std::vector<Value> values);            // state kAdded
  Status UpdateValue(size_t row_index, const std::string& column,
                     const Value& value);              // → kModified
  Status MarkDeleted(size_t row_index);                // → kDeleted

  /// Random access ------------------------------------------------------------
  Result<Value> Get(size_t row_index, const std::string& column) const;
  Result<std::vector<Value>> GetRowValues(size_t row_index) const;

  /// Linear scan with a predicate over (row values) — ADO.NET's
  /// DataTable.Select analogue.
  std::vector<size_t> Select(
      const std::function<bool(const std::vector<Value>&)>& predicate)
      const;

  /// Change management ---------------------------------------------------------
  /// Accepts all pending changes: drops deleted rows, promotes
  /// added/modified rows to kUnchanged, refreshes originals.
  void AcceptChanges();
  /// Discards all pending changes, restoring the last accepted state.
  void RejectChanges();
  bool HasChanges() const;
  size_t CountState(RowState state) const;

  /// Converts active rows to a ResultSet (current values).
  sql::ResultSet ToResultSet() const;

 private:
  std::string name_;
  std::vector<std::string> columns_;
  std::vector<DataRow> rows_;
};

using DataTablePtr = std::shared_ptr<DataTable>;

/// The client-side cache object stored in a workflow variable by the WF
/// analogue's SQL database activity ("a cache for relational data on the
/// client side that holds no connection to the original data").
class DataSet : public wfc::Object {
 public:
  DataSet() = default;

  std::string TypeName() const override { return "DataSet"; }
  std::string Describe() const override;

  Result<DataTablePtr> AddTable(std::string name,
                                std::vector<std::string> columns);
  Result<DataTablePtr> GetTable(const std::string& name) const;
  bool HasTable(const std::string& name) const;
  std::vector<std::string> TableNames() const;

  /// The single table of typical single-result usage; error if the set
  /// holds zero or several tables.
  Result<DataTablePtr> SoleTable() const;

 private:
  std::map<std::string, DataTablePtr> tables_;
};

using DataSetPtr = std::shared_ptr<DataSet>;

}  // namespace sqlflow::dataset

#endif  // SQLFLOW_DATASET_DATA_SET_H_
