#include "xpath/evaluator.h"

#include <cmath>
#include <set>

#include "xpath/parser.h"

namespace sqlflow::xpath {

namespace {

using xml::Node;
using xml::NodePtr;

NodePtr RootOf(const NodePtr& node) {
  NodePtr current = node;
  while (current != nullptr && current->parent() != nullptr) {
    current = current->parent();
  }
  return current;
}

void CollectDescendantsOrSelf(const NodePtr& node,
                              std::vector<NodePtr>* out) {
  out->push_back(node);
  for (const NodePtr& child : node->children()) {
    CollectDescendantsOrSelf(child, out);
  }
}

class Evaluator {
 public:
  explicit Evaluator(const EvalEnv& env) : env_(env) {}

  Result<XPathValue> Eval(const XExpr& e, const NodePtr& context,
                          size_t position, size_t size) {
    switch (e.kind) {
      case XExprKind::kStringLiteral:
        return XPathValue::String(e.string_value);
      case XExprKind::kNumberLiteral:
        return XPathValue::Number(e.number_value);
      case XExprKind::kVariable: {
        if (!env_.variable_resolver) {
          return Status::ExecutionError(
              "XPath variable $" + e.name +
              " used but no variable resolver is installed");
        }
        return env_.variable_resolver(e.name);
      }
      case XExprKind::kUnaryNeg: {
        SQLFLOW_ASSIGN_OR_RETURN(
            XPathValue v, Eval(*e.children[0], context, position, size));
        return XPathValue::Number(-v.ToNumber());
      }
      case XExprKind::kFunctionCall:
        return EvalFunction(e, context, position, size);
      case XExprKind::kBinary:
        return EvalBinary(e, context, position, size);
      case XExprKind::kPath:
        return EvalPath(e, context, position, size);
    }
    return Status::Internal("bad XPath expression kind");
  }

 private:
  Result<XPathValue> EvalBinary(const XExpr& e, const NodePtr& context,
                                size_t position, size_t size) {
    // Short-circuit logicals.
    if (e.op == XBinaryOp::kOr || e.op == XBinaryOp::kAnd) {
      SQLFLOW_ASSIGN_OR_RETURN(
          XPathValue a, Eval(*e.children[0], context, position, size));
      bool av = a.ToBool();
      if (e.op == XBinaryOp::kOr && av) return XPathValue::Boolean(true);
      if (e.op == XBinaryOp::kAnd && !av) {
        return XPathValue::Boolean(false);
      }
      SQLFLOW_ASSIGN_OR_RETURN(
          XPathValue b, Eval(*e.children[1], context, position, size));
      return XPathValue::Boolean(b.ToBool());
    }

    SQLFLOW_ASSIGN_OR_RETURN(XPathValue a,
                             Eval(*e.children[0], context, position, size));
    SQLFLOW_ASSIGN_OR_RETURN(XPathValue b,
                             Eval(*e.children[1], context, position, size));

    switch (e.op) {
      case XBinaryOp::kAdd:
        return XPathValue::Number(a.ToNumber() + b.ToNumber());
      case XBinaryOp::kSub:
        return XPathValue::Number(a.ToNumber() - b.ToNumber());
      case XBinaryOp::kMul:
        return XPathValue::Number(a.ToNumber() * b.ToNumber());
      case XBinaryOp::kDiv:
        return XPathValue::Number(a.ToNumber() / b.ToNumber());
      case XBinaryOp::kMod:
        return XPathValue::Number(std::fmod(a.ToNumber(), b.ToNumber()));
      case XBinaryOp::kUnion: {
        if (!a.is_node_set() || !b.is_node_set()) {
          return Status::TypeError("XPath '|' requires node-sets");
        }
        std::vector<NodePtr> merged = a.nodes();
        std::set<const Node*> seen;
        for (const NodePtr& n : merged) seen.insert(n.get());
        for (const NodePtr& n : b.nodes()) {
          if (seen.insert(n.get()).second) merged.push_back(n);
        }
        return XPathValue::NodeSet(std::move(merged));
      }
      case XBinaryOp::kEq:
      case XBinaryOp::kNotEq:
      case XBinaryOp::kLt:
      case XBinaryOp::kLtEq:
      case XBinaryOp::kGt:
      case XBinaryOp::kGtEq:
        return Compare(e.op, a, b);
      default:
        return Status::Internal("bad XPath binary op");
    }
  }

  static bool CompareNumbers(XBinaryOp op, double x, double y) {
    switch (op) {
      case XBinaryOp::kEq:
        return x == y;
      case XBinaryOp::kNotEq:
        return x != y;
      case XBinaryOp::kLt:
        return x < y;
      case XBinaryOp::kLtEq:
        return x <= y;
      case XBinaryOp::kGt:
        return x > y;
      case XBinaryOp::kGtEq:
        return x >= y;
      default:
        return false;
    }
  }

  static bool CompareStrings(XBinaryOp op, const std::string& x,
                             const std::string& y) {
    if (op == XBinaryOp::kEq) return x == y;
    if (op == XBinaryOp::kNotEq) return x != y;
    // Relational comparisons always go through numbers in XPath 1.0.
    return CompareNumbers(op, XPathValue::String(x).ToNumber(),
                          XPathValue::String(y).ToNumber());
  }

  static Result<XPathValue> Compare(XBinaryOp op, const XPathValue& a,
                                    const XPathValue& b) {
    bool relational = op != XBinaryOp::kEq && op != XBinaryOp::kNotEq;
    // Node-set vs node-set: existential over string-values.
    if (a.is_node_set() && b.is_node_set()) {
      for (const NodePtr& na : a.nodes()) {
        for (const NodePtr& nb : b.nodes()) {
          bool hit = relational
                         ? CompareNumbers(
                               op,
                               XPathValue::String(na->TextContent())
                                   .ToNumber(),
                               XPathValue::String(nb->TextContent())
                                   .ToNumber())
                         : CompareStrings(op, na->TextContent(),
                                          nb->TextContent());
          if (hit) return XPathValue::Boolean(true);
        }
      }
      return XPathValue::Boolean(false);
    }
    // One node-set: existential against the scalar.
    if (a.is_node_set() || b.is_node_set()) {
      const XPathValue& set = a.is_node_set() ? a : b;
      const XPathValue& scalar = a.is_node_set() ? b : a;
      bool flipped = !a.is_node_set();  // scalar OP node
      for (const NodePtr& n : set.nodes()) {
        std::string sv = n->TextContent();
        bool hit;
        if (scalar.kind() == XPathValue::Kind::kNumber || relational) {
          double nodeside = XPathValue::String(sv).ToNumber();
          double other = scalar.ToNumber();
          hit = flipped ? CompareNumbers(op, other, nodeside)
                        : CompareNumbers(op, nodeside, other);
        } else if (scalar.kind() == XPathValue::Kind::kBoolean) {
          bool setb = !set.nodes().empty();
          hit = CompareNumbers(op, setb ? 1 : 0,
                               scalar.ToBool() ? 1 : 0);
        } else {
          hit = flipped ? CompareStrings(op, scalar.ToStringValue(), sv)
                        : CompareStrings(op, sv, scalar.ToStringValue());
        }
        if (hit) return XPathValue::Boolean(true);
      }
      return XPathValue::Boolean(false);
    }
    // Scalar vs scalar.
    if (!relational && (a.kind() == XPathValue::Kind::kBoolean ||
                        b.kind() == XPathValue::Kind::kBoolean)) {
      bool eq = a.ToBool() == b.ToBool();
      return XPathValue::Boolean(op == XBinaryOp::kEq ? eq : !eq);
    }
    if (relational || a.kind() == XPathValue::Kind::kNumber ||
        b.kind() == XPathValue::Kind::kNumber) {
      return XPathValue::Boolean(
          CompareNumbers(op, a.ToNumber(), b.ToNumber()));
    }
    return XPathValue::Boolean(
        CompareStrings(op, a.ToStringValue(), b.ToStringValue()));
  }

  Result<XPathValue> EvalFunction(const XExpr& e, const NodePtr& context,
                                  size_t position, size_t size) {
    const std::string& name = e.name;

    // Context-sensitive core functions first.
    if (name == "position") return XPathValue::Number(
        static_cast<double>(position));
    if (name == "last") return XPathValue::Number(
        static_cast<double>(size));

    std::vector<XPathValue> args;
    args.reserve(e.children.size());
    for (const XExprPtr& child : e.children) {
      SQLFLOW_ASSIGN_OR_RETURN(XPathValue v,
                               Eval(*child, context, position, size));
      args.push_back(std::move(v));
    }
    auto want = [&](size_t n) -> Status {
      if (args.size() != n) {
        return Status::InvalidArgument(
            "XPath function " + name + " expects " + std::to_string(n) +
            " arguments, got " + std::to_string(args.size()));
      }
      return Status::OK();
    };

    if (name == "count") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      if (!args[0].is_node_set()) {
        return Status::TypeError("count() requires a node-set");
      }
      return XPathValue::Number(
          static_cast<double>(args[0].nodes().size()));
    }
    if (name == "sum") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      if (!args[0].is_node_set()) {
        return Status::TypeError("sum() requires a node-set");
      }
      double total = 0;
      for (const NodePtr& node : args[0].nodes()) {
        total += XPathValue::String(node->TextContent()).ToNumber();
      }
      return XPathValue::Number(total);
    }
    if (name == "floor") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      return XPathValue::Number(std::floor(args[0].ToNumber()));
    }
    if (name == "ceiling") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      return XPathValue::Number(std::ceil(args[0].ToNumber()));
    }
    if (name == "round") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      // XPath round(): half rounds toward +infinity.
      return XPathValue::Number(std::floor(args[0].ToNumber() + 0.5));
    }
    if (name == "substring-before" || name == "substring-after") {
      SQLFLOW_RETURN_IF_ERROR(want(2));
      std::string s = args[0].ToStringValue();
      std::string sep = args[1].ToStringValue();
      size_t pos = s.find(sep);
      if (pos == std::string::npos) return XPathValue::String("");
      return XPathValue::String(name == "substring-before"
                                    ? s.substr(0, pos)
                                    : s.substr(pos + sep.size()));
    }
    if (name == "translate") {
      SQLFLOW_RETURN_IF_ERROR(want(3));
      std::string s = args[0].ToStringValue();
      std::string from = args[1].ToStringValue();
      std::string to = args[2].ToStringValue();
      std::string out;
      out.reserve(s.size());
      for (char c : s) {
        size_t pos = from.find(c);
        if (pos == std::string::npos) {
          out += c;
        } else if (pos < to.size()) {
          out += to[pos];
        }  // else: mapped to nothing, dropped
      }
      return XPathValue::String(out);
    }
    if (name == "string") {
      if (args.empty()) {
        return XPathValue::String(
            context == nullptr ? "" : context->TextContent());
      }
      return XPathValue::String(args[0].ToStringValue());
    }
    if (name == "number") {
      if (args.empty()) {
        return XPathValue::Number(
            XPathValue::String(
                context == nullptr ? "" : context->TextContent())
                .ToNumber());
      }
      return XPathValue::Number(args[0].ToNumber());
    }
    if (name == "boolean") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      return XPathValue::Boolean(args[0].ToBool());
    }
    if (name == "not") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      return XPathValue::Boolean(!args[0].ToBool());
    }
    if (name == "true") return XPathValue::Boolean(true);
    if (name == "false") return XPathValue::Boolean(false);
    if (name == "concat") {
      std::string out;
      for (const XPathValue& arg : args) out += arg.ToStringValue();
      return XPathValue::String(out);
    }
    if (name == "contains") {
      SQLFLOW_RETURN_IF_ERROR(want(2));
      return XPathValue::Boolean(args[0].ToStringValue().find(
                                     args[1].ToStringValue()) !=
                                 std::string::npos);
    }
    if (name == "starts-with") {
      SQLFLOW_RETURN_IF_ERROR(want(2));
      const std::string s = args[0].ToStringValue();
      const std::string prefix = args[1].ToStringValue();
      return XPathValue::Boolean(s.rfind(prefix, 0) == 0);
    }
    if (name == "string-length") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      return XPathValue::Number(
          static_cast<double>(args[0].ToStringValue().size()));
    }
    if (name == "normalize-space") {
      SQLFLOW_RETURN_IF_ERROR(want(1));
      std::string s = args[0].ToStringValue();
      std::string out;
      bool in_space = true;
      for (char c : s) {
        if (std::isspace(static_cast<unsigned char>(c))) {
          if (!in_space) {
            out += ' ';
            in_space = true;
          }
        } else {
          out += c;
          in_space = false;
        }
      }
      while (!out.empty() && out.back() == ' ') out.pop_back();
      return XPathValue::String(out);
    }
    if (name == "substring") {
      if (args.size() < 2 || args.size() > 3) {
        return Status::InvalidArgument("substring expects 2 or 3 args");
      }
      std::string s = args[0].ToStringValue();
      double start = std::round(args[1].ToNumber());
      double len = args.size() == 3
                       ? std::round(args[2].ToNumber())
                       : static_cast<double>(s.size()) + 1;
      // XPath: positions are 1-based; handle out-of-range per spec-ish.
      long long begin = static_cast<long long>(start) - 1;
      long long count = static_cast<long long>(len);
      if (begin < 0) {
        count += begin;
        begin = 0;
      }
      if (count <= 0 || begin >= static_cast<long long>(s.size())) {
        return XPathValue::String("");
      }
      return XPathValue::String(
          s.substr(static_cast<size_t>(begin),
                   static_cast<size_t>(count)));
    }
    if (name == "name") {
      if (args.empty()) {
        return XPathValue::String(
            context == nullptr ? "" : context->name());
      }
      NodePtr n = args[0].FirstNode();
      return XPathValue::String(n == nullptr ? "" : n->name());
    }

    // Extension registry (Oracle-style ora:/orcl:/bpws: functions).
    if (env_.functions != nullptr) {
      const ExtensionFunction* fn = env_.functions->Find(name);
      if (fn != nullptr) return (*fn)(args);
    }
    return Status::NotFound("unknown XPath function '" + name + "'");
  }

  Result<XPathValue> EvalPath(const XExpr& e, const NodePtr& context,
                              size_t position, size_t size) {
    std::vector<NodePtr> current;
    if (e.base != nullptr) {
      SQLFLOW_ASSIGN_OR_RETURN(XPathValue base,
                               Eval(*e.base, context, position, size));
      if (!base.is_node_set()) {
        return Status::TypeError(
            "XPath path applied to a non-node-set value");
      }
      current = base.nodes();
    } else if (e.absolute) {
      NodePtr root = RootOf(context);
      if (root != nullptr) current.push_back(root);
      // Absolute paths start at the (virtual) document root; our model
      // uses the root *element*, so a leading step naming the root
      // element must match it (handled below via a self-match fallback).
      if (!e.steps.empty() && !current.empty()) {
        const Step& first = e.steps[0];
        if (first.axis == Axis::kChild && !first.text_test &&
            (first.name == "*" || first.name == current[0]->name())) {
          // Treat the first child step as matching the root element.
          SQLFLOW_ASSIGN_OR_RETURN(
              std::vector<NodePtr> filtered,
              ApplyPredicates(first, current));
          current = std::move(filtered);
          return ContinueSteps(e, 1, std::move(current));
        }
      }
    } else {
      if (context != nullptr) current.push_back(context);
    }
    return ContinueSteps(e, 0, std::move(current));
  }

  Result<XPathValue> ContinueSteps(const XExpr& e, size_t first_step,
                                   std::vector<NodePtr> current) {
    for (size_t si = first_step; si < e.steps.size(); ++si) {
      const Step& step = e.steps[si];
      std::vector<NodePtr> next;
      std::set<const Node*> seen;
      for (const NodePtr& node : current) {
        SQLFLOW_ASSIGN_OR_RETURN(std::vector<NodePtr> candidates,
                                 StepCandidates(step, node));
        SQLFLOW_ASSIGN_OR_RETURN(candidates,
                                 ApplyPredicates(step, candidates));
        for (NodePtr& c : candidates) {
          if (seen.insert(c.get()).second) next.push_back(std::move(c));
        }
      }
      current = std::move(next);
    }
    return XPathValue::NodeSet(std::move(current));
  }

  Result<std::vector<NodePtr>> StepCandidates(const Step& step,
                                              const NodePtr& node) {
    std::vector<NodePtr> out;
    switch (step.axis) {
      case Axis::kSelf:
        out.push_back(node);
        break;
      case Axis::kParent: {
        NodePtr p = node->parent();
        if (p != nullptr) out.push_back(p);
        break;
      }
      case Axis::kChild:
        for (const NodePtr& child : node->children()) {
          if (step.text_test) {
            if (child->is_text()) out.push_back(child);
          } else if (child->is_element() &&
                     (step.name == "*" || child->name() == step.name)) {
            out.push_back(child);
          }
        }
        break;
      case Axis::kAttribute: {
        // Attributes surface as synthetic text nodes so downstream
        // string/number conversion works; they are read-only views.
        if (step.name == "*") {
          for (const auto& [attr_name, value] : node->attributes()) {
            out.push_back(Node::Text(value));
          }
        } else {
          std::optional<std::string> v = node->GetAttribute(step.name);
          if (v.has_value()) out.push_back(Node::Text(*v));
        }
        break;
      }
      case Axis::kDescendantOrSelf:
        CollectDescendantsOrSelf(node, &out);
        break;
    }
    return out;
  }

  Result<std::vector<NodePtr>> ApplyPredicates(
      const Step& step, std::vector<NodePtr> candidates) {
    for (const XExprPtr& pred : step.predicates) {
      std::vector<NodePtr> kept;
      size_t total = candidates.size();
      for (size_t i = 0; i < candidates.size(); ++i) {
        SQLFLOW_ASSIGN_OR_RETURN(
            XPathValue v, Eval(*pred, candidates[i], i + 1, total));
        bool keep = v.kind() == XPathValue::Kind::kNumber
                        ? v.ToNumber() == static_cast<double>(i + 1)
                        : v.ToBool();
        if (keep) kept.push_back(candidates[i]);
      }
      candidates = std::move(kept);
    }
    return candidates;
  }

  const EvalEnv& env_;
};

}  // namespace

Result<XPathValue> EvaluateXPath(const XExpr& expr,
                                 const xml::NodePtr& context,
                                 const EvalEnv& env) {
  Evaluator evaluator(env);
  return evaluator.Eval(expr, context, 1, 1);
}

Result<XPathValue> EvaluateXPath(std::string_view expr,
                                 const xml::NodePtr& context,
                                 const EvalEnv& env) {
  SQLFLOW_ASSIGN_OR_RETURN(XExprPtr compiled, ParseXPath(expr));
  return EvaluateXPath(*compiled, context, env);
}

Result<std::vector<xml::NodePtr>> SelectNodes(std::string_view expr,
                                              const xml::NodePtr& context,
                                              const EvalEnv& env) {
  SQLFLOW_ASSIGN_OR_RETURN(XPathValue v,
                           EvaluateXPath(expr, context, env));
  if (!v.is_node_set()) {
    return Status::TypeError("XPath expression did not yield a node-set");
  }
  return v.nodes();
}

Result<xml::NodePtr> SelectSingleNode(std::string_view expr,
                                      const xml::NodePtr& context,
                                      const EvalEnv& env) {
  SQLFLOW_ASSIGN_OR_RETURN(std::vector<xml::NodePtr> nodes,
                           SelectNodes(expr, context, env));
  if (nodes.empty()) {
    return Status::NotFound("XPath selected no nodes");
  }
  return nodes[0];
}

}  // namespace sqlflow::xpath
