#include "xpath/value.h"

#include <cmath>
#include <cstdlib>
#include <sstream>

namespace sqlflow::xpath {

std::string FormatXPathNumber(double n) {
  if (std::isnan(n)) return "NaN";
  if (n == static_cast<double>(static_cast<long long>(n)) &&
      std::fabs(n) < 1e15) {
    return std::to_string(static_cast<long long>(n));
  }
  std::ostringstream os;
  os << n;
  return os.str();
}

std::string XPathValue::ToStringValue() const {
  switch (kind_) {
    case Kind::kNodeSet:
      return nodes_.empty() ? "" : nodes_[0]->TextContent();
    case Kind::kString:
      return string_;
    case Kind::kNumber:
      return FormatXPathNumber(number_);
    case Kind::kBoolean:
      return boolean_ ? "true" : "false";
  }
  return "";
}

double XPathValue::ToNumber() const {
  switch (kind_) {
    case Kind::kNodeSet:
    case Kind::kString: {
      std::string s = ToStringValue();
      // Trim whitespace, then strtod; partial parses are NaN per XPath.
      size_t begin = s.find_first_not_of(" \t\r\n");
      if (begin == std::string::npos) return std::nan("");
      size_t end = s.find_last_not_of(" \t\r\n");
      std::string trimmed = s.substr(begin, end - begin + 1);
      char* parse_end = nullptr;
      double v = std::strtod(trimmed.c_str(), &parse_end);
      if (parse_end != trimmed.c_str() + trimmed.size() ||
          trimmed.empty()) {
        return std::nan("");
      }
      return v;
    }
    case Kind::kNumber:
      return number_;
    case Kind::kBoolean:
      return boolean_ ? 1.0 : 0.0;
  }
  return std::nan("");
}

bool XPathValue::ToBool() const {
  switch (kind_) {
    case Kind::kNodeSet:
      return !nodes_.empty();
    case Kind::kString:
      return !string_.empty();
    case Kind::kNumber:
      return number_ != 0.0 && !std::isnan(number_);
    case Kind::kBoolean:
      return boolean_;
  }
  return false;
}

}  // namespace sqlflow::xpath
