#ifndef SQLFLOW_XPATH_VALUE_H_
#define SQLFLOW_XPATH_VALUE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "xml/node.h"

namespace sqlflow::xpath {

/// The four XPath 1.0 value types. Node-sets keep document order as
/// produced by the evaluator.
class XPathValue {
 public:
  enum class Kind { kNodeSet, kString, kNumber, kBoolean };

  XPathValue() : kind_(Kind::kNodeSet) {}

  static XPathValue NodeSet(std::vector<xml::NodePtr> nodes) {
    XPathValue v;
    v.kind_ = Kind::kNodeSet;
    v.nodes_ = std::move(nodes);
    return v;
  }
  static XPathValue String(std::string s) {
    XPathValue v;
    v.kind_ = Kind::kString;
    v.string_ = std::move(s);
    return v;
  }
  static XPathValue Number(double n) {
    XPathValue v;
    v.kind_ = Kind::kNumber;
    v.number_ = n;
    return v;
  }
  static XPathValue Boolean(bool b) {
    XPathValue v;
    v.kind_ = Kind::kBoolean;
    v.boolean_ = b;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_node_set() const { return kind_ == Kind::kNodeSet; }

  const std::vector<xml::NodePtr>& nodes() const { return nodes_; }

  /// XPath string(): first node's string-value, the string itself,
  /// number formatting (integers without decimal point), or true/false.
  std::string ToStringValue() const;

  /// XPath number(): NaN for non-numeric strings / empty node-sets.
  double ToNumber() const;

  /// XPath boolean(): non-empty node-set / non-empty string / non-zero,
  /// non-NaN number.
  bool ToBool() const;

  /// First node of a node-set, or nullptr (also for non-node-sets).
  xml::NodePtr FirstNode() const {
    return nodes_.empty() ? nullptr : nodes_[0];
  }

 private:
  Kind kind_;
  std::vector<xml::NodePtr> nodes_;
  std::string string_;
  double number_ = 0.0;
  bool boolean_ = false;
};

/// Formats like XPath string(number): integral values without a decimal
/// point, NaN as "NaN".
std::string FormatXPathNumber(double n);

}  // namespace sqlflow::xpath

#endif  // SQLFLOW_XPATH_VALUE_H_
