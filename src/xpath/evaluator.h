#ifndef SQLFLOW_XPATH_EVALUATOR_H_
#define SQLFLOW_XPATH_EVALUATOR_H_

#include <functional>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "xpath/ast.h"
#include "xpath/functions.h"
#include "xpath/value.h"

namespace sqlflow::xpath {

/// Everything evaluation may reach beyond the context node: `$variable`
/// resolution and extension functions. Both are optional.
struct EvalEnv {
  std::function<Result<XPathValue>(const std::string&)> variable_resolver;
  const FunctionRegistry* functions = nullptr;
};

/// Evaluates a compiled expression against a context node (may be null
/// for expressions that touch no path, e.g. pure function calls).
Result<XPathValue> EvaluateXPath(const XExpr& expr,
                                 const xml::NodePtr& context,
                                 const EvalEnv& env);

/// Compile-and-evaluate convenience.
Result<XPathValue> EvaluateXPath(std::string_view expr,
                                 const xml::NodePtr& context,
                                 const EvalEnv& env = EvalEnv());

/// Evaluates and requires a node-set result.
Result<std::vector<xml::NodePtr>> SelectNodes(std::string_view expr,
                                              const xml::NodePtr& context,
                                              const EvalEnv& env = EvalEnv());

/// First node of SelectNodes; NotFound when the node-set is empty.
Result<xml::NodePtr> SelectSingleNode(std::string_view expr,
                                      const xml::NodePtr& context,
                                      const EvalEnv& env = EvalEnv());

}  // namespace sqlflow::xpath

#endif  // SQLFLOW_XPATH_EVALUATOR_H_
