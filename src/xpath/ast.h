#ifndef SQLFLOW_XPATH_AST_H_
#define SQLFLOW_XPATH_AST_H_

#include <memory>
#include <string>
#include <vector>

namespace sqlflow::xpath {

enum class XExprKind {
  kStringLiteral,
  kNumberLiteral,
  kVariable,      // $name
  kFunctionCall,  // name(args) — possibly namespaced ("ora:query-database")
  kBinary,
  kUnaryNeg,
  kPath,          // location path, optionally rooted at a base expression
};

enum class XBinaryOp {
  kOr, kAnd,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAdd, kSub, kMul, kDiv, kMod,
  kUnion,
};

enum class Axis {
  kChild,
  kAttribute,          // yields synthetic text nodes holding the value
  kSelf,               // '.'
  kParent,             // '..'
  kDescendantOrSelf,   // '//'
};

struct XExpr;
using XExprPtr = std::unique_ptr<XExpr>;

struct Step {
  Axis axis = Axis::kChild;
  std::string name;        // element/attribute name; "*" = wildcard
  bool text_test = false;  // text() node test
  std::vector<XExprPtr> predicates;
};

struct XExpr {
  XExprKind kind;

  std::string string_value;  // kStringLiteral
  double number_value = 0;   // kNumberLiteral
  std::string name;          // kVariable / kFunctionCall

  XBinaryOp op = XBinaryOp::kOr;   // kBinary
  std::vector<XExprPtr> children;  // binary operands / function args /
                                   // unary operand

  // kPath:
  bool absolute = false;   // starts with '/'
  XExprPtr base;           // filter expression the path applies to, if any
  std::vector<Step> steps;
};

}  // namespace sqlflow::xpath

#endif  // SQLFLOW_XPATH_AST_H_
