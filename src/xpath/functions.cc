#include "xpath/functions.h"

namespace sqlflow::xpath {

Status FunctionRegistry::Register(const std::string& name,
                                  ExtensionFunction fn) {
  if (functions_.count(name) > 0) {
    return Status::AlreadyExists("XPath function '" + name +
                                 "' already registered");
  }
  functions_.emplace(name, std::move(fn));
  return Status::OK();
}

void FunctionRegistry::RegisterOrReplace(const std::string& name,
                                         ExtensionFunction fn) {
  functions_[name] = std::move(fn);
}

const ExtensionFunction* FunctionRegistry::Find(
    const std::string& name) const {
  auto it = functions_.find(name);
  return it == functions_.end() ? nullptr : &it->second;
}

std::vector<std::string> FunctionRegistry::FunctionNames() const {
  std::vector<std::string> names;
  names.reserve(functions_.size());
  for (const auto& [name, fn] : functions_) names.push_back(name);
  return names;
}

}  // namespace sqlflow::xpath
