#include "xpath/parser.h"

#include <cctype>
#include <cstdlib>

namespace sqlflow::xpath {

namespace {

enum class TokKind {
  kEnd,
  kName,       // possibly namespaced: ora:query-database
  kNumber,
  kString,
  kVariable,   // $name
  kSlash,
  kDoubleSlash,
  kLBracket,
  kRBracket,
  kLParen,
  kRParen,
  kComma,
  kAt,
  kDot,
  kDotDot,
  kStar,
  kPipe,
  kPlus,
  kMinus,
  kEq,
  kNotEq,
  kLt,
  kLtEq,
  kGt,
  kGtEq,
};

struct Tok {
  TokKind kind = TokKind::kEnd;
  std::string text;
  double number = 0;
  size_t pos = 0;
};

bool IsNameStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}
bool IsNameChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '.' || c == ':';
}

Result<std::vector<Tok>> Lex(std::string_view in) {
  std::vector<Tok> out;
  size_t i = 0;
  auto push = [&](TokKind k, size_t pos) {
    Tok t;
    t.kind = k;
    t.pos = pos;
    out.push_back(std::move(t));
  };
  while (i < in.size()) {
    char c = in[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    size_t start = i;
    if (IsNameStart(c)) {
      while (i < in.size() && IsNameChar(in[i])) ++i;
      Tok t;
      t.kind = TokKind::kName;
      t.text = std::string(in.substr(start, i - start));
      t.pos = start;
      out.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < in.size() &&
         std::isdigit(static_cast<unsigned char>(in[i + 1])))) {
      while (i < in.size() &&
             (std::isdigit(static_cast<unsigned char>(in[i])) ||
              in[i] == '.')) {
        ++i;
      }
      Tok t;
      t.kind = TokKind::kNumber;
      t.number =
          std::strtod(std::string(in.substr(start, i - start)).c_str(),
                      nullptr);
      t.pos = start;
      out.push_back(std::move(t));
      continue;
    }
    if (c == '\'' || c == '"') {
      ++i;
      size_t body = i;
      while (i < in.size() && in[i] != c) ++i;
      if (i >= in.size()) {
        return Status::SyntaxError("XPath: unterminated string literal");
      }
      Tok t;
      t.kind = TokKind::kString;
      t.text = std::string(in.substr(body, i - body));
      t.pos = start;
      out.push_back(std::move(t));
      ++i;
      continue;
    }
    if (c == '$') {
      ++i;
      size_t body = i;
      if (i >= in.size() || !IsNameStart(in[i])) {
        return Status::SyntaxError("XPath: expected name after '$'");
      }
      while (i < in.size() && IsNameChar(in[i])) ++i;
      Tok t;
      t.kind = TokKind::kVariable;
      t.text = std::string(in.substr(body, i - body));
      t.pos = start;
      out.push_back(std::move(t));
      continue;
    }
    switch (c) {
      case '/':
        if (i + 1 < in.size() && in[i + 1] == '/') {
          push(TokKind::kDoubleSlash, start);
          i += 2;
        } else {
          push(TokKind::kSlash, start);
          ++i;
        }
        break;
      case '[':
        push(TokKind::kLBracket, start);
        ++i;
        break;
      case ']':
        push(TokKind::kRBracket, start);
        ++i;
        break;
      case '(':
        push(TokKind::kLParen, start);
        ++i;
        break;
      case ')':
        push(TokKind::kRParen, start);
        ++i;
        break;
      case ',':
        push(TokKind::kComma, start);
        ++i;
        break;
      case '@':
        push(TokKind::kAt, start);
        ++i;
        break;
      case '.':
        if (i + 1 < in.size() && in[i + 1] == '.') {
          push(TokKind::kDotDot, start);
          i += 2;
        } else {
          push(TokKind::kDot, start);
          ++i;
        }
        break;
      case '*':
        push(TokKind::kStar, start);
        ++i;
        break;
      case '|':
        push(TokKind::kPipe, start);
        ++i;
        break;
      case '+':
        push(TokKind::kPlus, start);
        ++i;
        break;
      case '-':
        push(TokKind::kMinus, start);
        ++i;
        break;
      case '=':
        push(TokKind::kEq, start);
        ++i;
        break;
      case '!':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kNotEq, start);
          i += 2;
        } else {
          return Status::SyntaxError("XPath: unexpected '!'");
        }
        break;
      case '<':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kLtEq, start);
          i += 2;
        } else {
          push(TokKind::kLt, start);
          ++i;
        }
        break;
      case '>':
        if (i + 1 < in.size() && in[i + 1] == '=') {
          push(TokKind::kGtEq, start);
          i += 2;
        } else {
          push(TokKind::kGt, start);
          ++i;
        }
        break;
      default:
        return Status::SyntaxError(
            std::string("XPath: unexpected character '") + c + "'");
    }
  }
  push(TokKind::kEnd, in.size());
  return out;
}

class XPathParser {
 public:
  explicit XPathParser(std::vector<Tok> toks) : toks_(std::move(toks)) {}

  Result<XExprPtr> Parse() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr e, ParseOr());
    if (Peek().kind != TokKind::kEnd) {
      return Status::SyntaxError("XPath: trailing input at offset " +
                                 std::to_string(Peek().pos));
    }
    return e;
  }

 private:
  const Tok& Peek() const { return toks_[pos_]; }
  const Tok& PeekAhead(size_t k) const {
    size_t i = pos_ + k;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Tok& Advance() { return toks_[pos_++]; }
  bool Accept(TokKind k) {
    if (Peek().kind == k) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool AcceptName(const char* word) {
    if (Peek().kind == TokKind::kName && Peek().text == word) {
      ++pos_;
      return true;
    }
    return false;
  }
  Status Error(const std::string& msg) const {
    return Status::SyntaxError("XPath: " + msg + " at offset " +
                               std::to_string(Peek().pos));
  }

  static XExprPtr Binary(XBinaryOp op, XExprPtr a, XExprPtr b) {
    auto e = std::make_unique<XExpr>();
    e->kind = XExprKind::kBinary;
    e->op = op;
    e->children.push_back(std::move(a));
    e->children.push_back(std::move(b));
    return e;
  }

  Result<XExprPtr> ParseOr() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseAnd());
    while (AcceptName("or")) {
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseAnd());
      lhs = Binary(XBinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseAnd() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseEquality());
    while (AcceptName("and")) {
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseEquality());
      lhs = Binary(XBinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseEquality() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseRelational());
    while (true) {
      XBinaryOp op;
      if (Accept(TokKind::kEq)) {
        op = XBinaryOp::kEq;
      } else if (Accept(TokKind::kNotEq)) {
        op = XBinaryOp::kNotEq;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseRelational());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseRelational() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseAdditive());
    while (true) {
      XBinaryOp op;
      if (Accept(TokKind::kLt)) {
        op = XBinaryOp::kLt;
      } else if (Accept(TokKind::kLtEq)) {
        op = XBinaryOp::kLtEq;
      } else if (Accept(TokKind::kGt)) {
        op = XBinaryOp::kGt;
      } else if (Accept(TokKind::kGtEq)) {
        op = XBinaryOp::kGtEq;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseAdditive());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseAdditive() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseMultiplicative());
    while (true) {
      XBinaryOp op;
      if (Accept(TokKind::kPlus)) {
        op = XBinaryOp::kAdd;
      } else if (Accept(TokKind::kMinus)) {
        op = XBinaryOp::kSub;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseMultiplicative());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseMultiplicative() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParseUnary());
    while (true) {
      XBinaryOp op;
      if (Accept(TokKind::kStar)) {
        op = XBinaryOp::kMul;
      } else if (AcceptName("div")) {
        op = XBinaryOp::kDiv;
      } else if (AcceptName("mod")) {
        op = XBinaryOp::kMod;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParseUnary());
      lhs = Binary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<XExprPtr> ParseUnary() {
    if (Accept(TokKind::kMinus)) {
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr operand, ParseUnary());
      auto e = std::make_unique<XExpr>();
      e->kind = XExprKind::kUnaryNeg;
      e->children.push_back(std::move(operand));
      return XExprPtr(std::move(e));
    }
    return ParseUnion();
  }

  Result<XExprPtr> ParseUnion() {
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr lhs, ParsePathExpr());
    while (Accept(TokKind::kPipe)) {
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr rhs, ParsePathExpr());
      lhs = Binary(XBinaryOp::kUnion, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  // A path expression: either a location path, or a primary (filter)
  // expression optionally followed by '/...'.
  Result<XExprPtr> ParsePathExpr() {
    TokKind k = Peek().kind;
    // Pure location path starts.
    if (k == TokKind::kSlash || k == TokKind::kDoubleSlash ||
        k == TokKind::kAt || k == TokKind::kDot ||
        k == TokKind::kDotDot ||
        (k == TokKind::kName && !IsFunctionCallAhead())) {
      return ParseLocationPath(/*base=*/nullptr, /*absolute_allowed=*/true);
    }
    if (k == TokKind::kStar) {
      // `*` as a name test (child wildcard step).
      return ParseLocationPath(nullptr, true);
    }
    SQLFLOW_ASSIGN_OR_RETURN(XExprPtr primary, ParsePrimary());
    if (Peek().kind == TokKind::kSlash ||
        Peek().kind == TokKind::kDoubleSlash ||
        Peek().kind == TokKind::kLBracket) {
      return ParseLocationPath(std::move(primary),
                               /*absolute_allowed=*/false);
    }
    return primary;
  }

  bool IsFunctionCallAhead() const {
    return Peek().kind == TokKind::kName &&
           PeekAhead(1).kind == TokKind::kLParen &&
           // text() is a node test, not a function call.
           Peek().text != "text";
  }

  Result<XExprPtr> ParsePrimary() {
    const Tok& t = Peek();
    switch (t.kind) {
      case TokKind::kString: {
        Advance();
        auto e = std::make_unique<XExpr>();
        e->kind = XExprKind::kStringLiteral;
        e->string_value = t.text;
        return XExprPtr(std::move(e));
      }
      case TokKind::kNumber: {
        Advance();
        auto e = std::make_unique<XExpr>();
        e->kind = XExprKind::kNumberLiteral;
        e->number_value = t.number;
        return XExprPtr(std::move(e));
      }
      case TokKind::kVariable: {
        Advance();
        auto e = std::make_unique<XExpr>();
        e->kind = XExprKind::kVariable;
        e->name = t.text;
        return XExprPtr(std::move(e));
      }
      case TokKind::kLParen: {
        Advance();
        SQLFLOW_ASSIGN_OR_RETURN(XExprPtr inner, ParseOr());
        if (!Accept(TokKind::kRParen)) return Error("expected ')'");
        return inner;
      }
      case TokKind::kName: {
        if (PeekAhead(1).kind == TokKind::kLParen) {
          std::string fn_name = Advance().text;
          Advance();  // '('
          auto e = std::make_unique<XExpr>();
          e->kind = XExprKind::kFunctionCall;
          e->name = std::move(fn_name);
          if (Peek().kind != TokKind::kRParen) {
            while (true) {
              SQLFLOW_ASSIGN_OR_RETURN(XExprPtr arg, ParseOr());
              e->children.push_back(std::move(arg));
              if (!Accept(TokKind::kComma)) break;
            }
          }
          if (!Accept(TokKind::kRParen)) return Error("expected ')'");
          return XExprPtr(std::move(e));
        }
        return Error("unexpected name in primary expression");
      }
      default:
        return Error("expected a primary expression");
    }
  }

  Result<Step> ParseStep() {
    Step step;
    if (Accept(TokKind::kDot)) {
      step.axis = Axis::kSelf;
      step.name = "*";
    } else if (Accept(TokKind::kDotDot)) {
      step.axis = Axis::kParent;
      step.name = "*";
    } else {
      if (Accept(TokKind::kAt)) {
        step.axis = Axis::kAttribute;
      }
      if (Accept(TokKind::kStar)) {
        step.name = "*";
      } else if (Peek().kind == TokKind::kName) {
        std::string name = Advance().text;
        if (name == "text" && Accept(TokKind::kLParen)) {
          if (!Accept(TokKind::kRParen)) return Error("expected ')'");
          step.text_test = true;
        } else {
          step.name = std::move(name);
        }
      } else {
        return Error("expected a step");
      }
    }
    while (Accept(TokKind::kLBracket)) {
      SQLFLOW_ASSIGN_OR_RETURN(XExprPtr pred, ParseOr());
      step.predicates.push_back(std::move(pred));
      if (!Accept(TokKind::kRBracket)) return Error("expected ']'");
    }
    return step;
  }

  Result<XExprPtr> ParseLocationPath(XExprPtr base, bool absolute_allowed) {
    auto path = std::make_unique<XExpr>();
    path->kind = XExprKind::kPath;
    path->base = std::move(base);

    // Filter expression with immediate predicates: `$v[1]`.
    if (path->base != nullptr && Peek().kind == TokKind::kLBracket) {
      Step self_step;
      self_step.axis = Axis::kSelf;
      self_step.name = "*";
      while (Accept(TokKind::kLBracket)) {
        SQLFLOW_ASSIGN_OR_RETURN(XExprPtr pred, ParseOr());
        self_step.predicates.push_back(std::move(pred));
        if (!Accept(TokKind::kRBracket)) return Error("expected ']'");
      }
      path->steps.push_back(std::move(self_step));
    }

    bool need_step = path->base == nullptr;
    if (Accept(TokKind::kDoubleSlash)) {
      if (path->base == nullptr && absolute_allowed) {
        path->absolute = true;
      }
      Step ds;
      ds.axis = Axis::kDescendantOrSelf;
      ds.name = "*";
      path->steps.push_back(std::move(ds));
      need_step = true;
    } else if (Accept(TokKind::kSlash)) {
      if (path->base == nullptr && absolute_allowed) {
        path->absolute = true;
        // Bare '/' selects the root.
        if (Peek().kind == TokKind::kEnd) return XExprPtr(std::move(path));
      }
      need_step = true;
    }

    if (need_step) {
      SQLFLOW_ASSIGN_OR_RETURN(Step s, ParseStep());
      path->steps.push_back(std::move(s));
    }

    while (true) {
      if (Accept(TokKind::kDoubleSlash)) {
        Step ds;
        ds.axis = Axis::kDescendantOrSelf;
        ds.name = "*";
        path->steps.push_back(std::move(ds));
      } else if (!Accept(TokKind::kSlash)) {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(Step s, ParseStep());
      path->steps.push_back(std::move(s));
    }
    return XExprPtr(std::move(path));
  }

  std::vector<Tok> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<XExprPtr> ParseXPath(std::string_view input) {
  SQLFLOW_ASSIGN_OR_RETURN(std::vector<Tok> toks, Lex(input));
  XPathParser parser(std::move(toks));
  return parser.Parse();
}

}  // namespace sqlflow::xpath
