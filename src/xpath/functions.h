#ifndef SQLFLOW_XPATH_FUNCTIONS_H_
#define SQLFLOW_XPATH_FUNCTIONS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "xpath/value.h"

namespace sqlflow::xpath {

/// Signature of a registered (extension) function: evaluated argument
/// values in, one XPath value out. Extension functions see no node
/// context — exactly like Oracle's ora:/orcl: functions, which operate on
/// their string/number arguments only.
using ExtensionFunction =
    std::function<Result<XPathValue>(const std::vector<XPathValue>&)>;

/// Name → function map consulted for any call the evaluator's built-in
/// core library doesn't know. Names may carry a namespace prefix
/// ("ora:query-database"). This registry is the hook through which the
/// Oracle SOA analogue injects its SQL support into assign activities.
class FunctionRegistry {
 public:
  Status Register(const std::string& name, ExtensionFunction fn);
  /// Replaces any existing registration.
  void RegisterOrReplace(const std::string& name, ExtensionFunction fn);
  const ExtensionFunction* Find(const std::string& name) const;
  std::vector<std::string> FunctionNames() const;

 private:
  std::map<std::string, ExtensionFunction> functions_;
};

}  // namespace sqlflow::xpath

#endif  // SQLFLOW_XPATH_FUNCTIONS_H_
