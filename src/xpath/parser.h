#ifndef SQLFLOW_XPATH_PARSER_H_
#define SQLFLOW_XPATH_PARSER_H_

#include <string_view>

#include "common/status.h"
#include "xpath/ast.h"

namespace sqlflow::xpath {

/// Compiles an XPath 1.0 (subset) expression into an AST. Supported:
/// location paths with child/attribute/self/parent axes and `//`,
/// predicates (positional and boolean), `$variable` references, function
/// calls (namespaced names allowed), the full operator set (or and = !=
/// < <= > >= + - * div mod |), string and number literals, and filter
/// expressions like `$v/Row[2]`.
Result<XExprPtr> ParseXPath(std::string_view input);

}  // namespace sqlflow::xpath

#endif  // SQLFLOW_XPATH_PARSER_H_
