#include "wfc/audit.h"

#include <sstream>

namespace sqlflow::wfc {

const char* AuditEventKindName(AuditEventKind kind) {
  switch (kind) {
    case AuditEventKind::kInstanceStarted:
      return "instance-started";
    case AuditEventKind::kInstanceCompleted:
      return "instance-completed";
    case AuditEventKind::kInstanceFaulted:
      return "instance-faulted";
    case AuditEventKind::kActivityStarted:
      return "activity-started";
    case AuditEventKind::kActivityCompleted:
      return "activity-completed";
    case AuditEventKind::kActivityFaulted:
      return "activity-faulted";
    case AuditEventKind::kServiceInvoked:
      return "service-invoked";
    case AuditEventKind::kSqlExecuted:
      return "sql-executed";
    case AuditEventKind::kNote:
      return "note";
  }
  return "unknown";
}

void AuditTrail::Record(AuditEventKind kind, const std::string& activity,
                        const std::string& detail) {
  AuditEvent e;
  e.sequence = next_sequence_++;
  e.kind = kind;
  e.activity = activity;
  e.detail = detail;
  events_.push_back(std::move(e));
}

size_t AuditTrail::CountKind(AuditEventKind kind) const {
  size_t n = 0;
  for (const AuditEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::string AuditTrail::ToString() const {
  std::ostringstream os;
  for (const AuditEvent& e : events_) {
    os << e.sequence << " " << AuditEventKindName(e.kind) << " "
       << e.activity;
    if (!e.detail.empty()) os << " :: " << e.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace sqlflow::wfc
