#include "wfc/audit.h"

#include <cstdio>
#include <sstream>

#include "obs/trace.h"

namespace sqlflow::wfc {

const char* AuditEventKindName(AuditEventKind kind) {
  switch (kind) {
    case AuditEventKind::kInstanceStarted:
      return "instance-started";
    case AuditEventKind::kInstanceCompleted:
      return "instance-completed";
    case AuditEventKind::kInstanceFaulted:
      return "instance-faulted";
    case AuditEventKind::kActivityStarted:
      return "activity-started";
    case AuditEventKind::kActivityCompleted:
      return "activity-completed";
    case AuditEventKind::kActivityFaulted:
      return "activity-faulted";
    case AuditEventKind::kServiceInvoked:
      return "service-invoked";
    case AuditEventKind::kSqlExecuted:
      return "sql-executed";
    case AuditEventKind::kFault:
      return "fault";
    case AuditEventKind::kRetry:
      return "retry";
    case AuditEventKind::kCompensation:
      return "compensation";
    case AuditEventKind::kNote:
      return "note";
  }
  return "unknown";
}

void AuditTrail::Record(AuditEventKind kind, const std::string& activity,
                        const std::string& detail, int64_t duration_ns,
                        int64_t attempt) {
  AuditEvent e;
  e.sequence = next_sequence_++;
  e.kind = kind;
  e.activity = activity;
  e.detail = detail;
  e.timestamp_ns = obs::NowNanos();
  e.duration_ns = duration_ns;
  e.attempt = attempt;
  events_.push_back(std::move(e));
}

size_t AuditTrail::CountKind(AuditEventKind kind) const {
  size_t n = 0;
  for (const AuditEvent& e : events_) {
    if (e.kind == kind) ++n;
  }
  return n;
}

std::vector<AuditEvent> AuditTrail::FilterKind(AuditEventKind kind) const {
  std::vector<AuditEvent> out;
  for (const AuditEvent& e : events_) {
    if (e.kind == kind) out.push_back(e);
  }
  return out;
}

std::string AuditTrail::ToString() const {
  // Timestamps print relative to the trail's first event, so a trail
  // reads as "time into this instance" rather than process uptime.
  int64_t base_ns = events_.empty() ? 0 : events_.front().timestamp_ns;
  std::ostringstream os;
  char buf[48];
  for (const AuditEvent& e : events_) {
    std::snprintf(buf, sizeof buf, "%+.3fms",
                  (e.timestamp_ns - base_ns) / 1e6);
    os << e.sequence << " " << buf << " " << AuditEventKindName(e.kind)
       << " " << e.activity;
    if (e.duration_ns >= 0) {
      std::snprintf(buf, sizeof buf, " (%.3fms)", e.duration_ns / 1e6);
      os << buf;
    }
    if (!e.detail.empty()) os << " :: " << e.detail;
    os << "\n";
  }
  return os.str();
}

}  // namespace sqlflow::wfc
