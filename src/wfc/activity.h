#ifndef SQLFLOW_WFC_ACTIVITY_H_
#define SQLFLOW_WFC_ACTIVITY_H_

#include <memory>
#include <string>

#include "common/status.h"
#include "wfc/context.h"

namespace sqlflow::wfc {

/// One discrete processing step of a workflow (BPEL's central
/// abstraction). Concrete activities override Execute(); Run() wraps it
/// with audit events and termination handling. Activities are shared
/// between process instances, so Execute must keep per-instance state in
/// the ProcessContext, never in members.
class Activity {
 public:
  explicit Activity(std::string name) : name_(std::move(name)) {}
  virtual ~Activity() = default;

  Activity(const Activity&) = delete;
  Activity& operator=(const Activity&) = delete;

  const std::string& name() const { return name_; }

  /// Activity type tag for audit/tooling ("sequence", "sql", ...).
  virtual std::string TypeName() const = 0;

  /// Executes with audit bracketing; skipped when termination was
  /// requested earlier in the instance.
  Status Run(ProcessContext& ctx);

 protected:
  virtual Status Execute(ProcessContext& ctx) = 0;

 private:
  std::string name_;
};

using ActivityPtr = std::shared_ptr<Activity>;

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_ACTIVITY_H_
