#include "wfc/activity.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqlflow::wfc {

Status Activity::Run(ProcessContext& ctx) {
  // Activity boundaries are the interleaving points of the deterministic
  // scheduler: yield *before* any audit/trace side effect so a context
  // switch here leaves the instance in a clean between-activities state.
  ctx.SchedulerYield();
  if (ctx.terminate_requested()) {
    return Status::OK();  // silently skip the rest of the flow
  }
  obs::Span span("activity " + name_);
  span.Set("type", TypeName());
  ctx.audit().Record(AuditEventKind::kActivityStarted, name_, TypeName());
  // Deadline propagation: once the tightest enclosing TimeoutScope has
  // expired (on the instance's virtual clock), no further activity in
  // that scope starts — it faults with the transient kTimeout instead.
  Status st = ctx.DeadlineExceeded()
                  ? Status::Timeout("deadline expired before activity '" +
                                    name_ + "'")
                  : Execute(ctx);
  int64_t elapsed_ns = span.ElapsedNanos();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("wfc.activities").Increment();
  metrics.GetHistogram("wfc.activity")
      .Record(static_cast<uint64_t>(elapsed_ns));
  if (st.ok()) {
    ctx.audit().Record(AuditEventKind::kActivityCompleted, name_, "",
                       elapsed_ns);
  } else {
    span.Set("error", st.ToString());
    ctx.audit().Record(AuditEventKind::kActivityFaulted, name_,
                       st.ToString(), elapsed_ns);
  }
  return st;
}

}  // namespace sqlflow::wfc
