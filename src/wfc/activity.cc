#include "wfc/activity.h"

namespace sqlflow::wfc {

Status Activity::Run(ProcessContext& ctx) {
  if (ctx.terminate_requested()) {
    return Status::OK();  // silently skip the rest of the flow
  }
  ctx.audit().Record(AuditEventKind::kActivityStarted, name_, TypeName());
  Status st = Execute(ctx);
  if (st.ok()) {
    ctx.audit().Record(AuditEventKind::kActivityCompleted, name_);
  } else {
    ctx.audit().Record(AuditEventKind::kActivityFaulted, name_,
                       st.ToString());
  }
  return st;
}

}  // namespace sqlflow::wfc
