#include "wfc/service.h"

#include <algorithm>

#include "obs/metrics.h"
#include "sql/database.h"
#include "sql/fault.h"

namespace sqlflow::wfc {

namespace {

ServiceRetryPolicy& ServiceRetryPolicyRef() {
  static ServiceRetryPolicy policy;
  return policy;
}

}  // namespace

void SetServiceRetryPolicyDefault(ServiceRetryPolicy policy) {
  ServiceRetryPolicyRef() = policy;
}

ServiceRetryPolicy GetServiceRetryPolicyDefault() {
  return ServiceRetryPolicyRef();
}

Result<xml::NodePtr> InvokeWithRecovery(WebService& service,
                                        const xml::NodePtr& request,
                                        int max_attempts_override) {
  std::shared_ptr<sql::FaultInjector> injector =
      sql::Database::GlobalFaultInjector();
  int max_attempts = max_attempts_override > 0
                         ? max_attempts_override
                         : std::max(1, ServiceRetryPolicyRef().max_attempts);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  for (int attempt = 1;; ++attempt) {
    Result<xml::NodePtr> result = [&]() -> Result<xml::NodePtr> {
      if (injector != nullptr) {
        sql::FaultSite site;
        site.database = "service";
        site.description = "invoke " + service.name();
        site.layer = sql::FaultLayer::kService;
        if (std::optional<Status> fault = injector->MaybeFault(site)) {
          return *fault;
        }
      }
      return service.Invoke(request);
    }();
    if (result.ok()) {
      if (attempt > 1) {
        metrics.GetCounter("svc.fault.absorbed").Increment();
      }
      return result;
    }
    if (!result.status().IsTransient() || attempt >= max_attempts) {
      return result;
    }
    metrics.GetCounter("svc.retry.attempts").Increment();
  }
}

xml::NodePtr MakeRequest(
    const std::vector<std::pair<std::string, Value>>& params) {
  xml::NodePtr request = xml::Node::Element("request");
  for (const auto& [name, value] : params) {
    xml::NodePtr param = request->AddElement("param", value.AsString());
    param->SetAttribute("name", name);
    param->SetAttribute("type", ValueTypeName(value.type()));
  }
  return request;
}

namespace {

Result<Value> DecodeTypedText(const std::string& type,
                              const std::string& text) {
  if (type == "NULL") return Value::Null();
  if (type == "INTEGER") {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t v, Value::String(text).AsInteger());
    return Value::Integer(v);
  }
  if (type == "DOUBLE") {
    SQLFLOW_ASSIGN_OR_RETURN(double v, Value::String(text).AsDouble());
    return Value::Double(v);
  }
  if (type == "BOOLEAN") {
    SQLFLOW_ASSIGN_OR_RETURN(bool v, Value::String(text).AsBoolean());
    return Value::Boolean(v);
  }
  return Value::String(text);
}

}  // namespace

Result<Value> GetRequestParam(const xml::NodePtr& request,
                              const std::string& name) {
  for (const xml::NodePtr& child : request->children()) {
    if (!child->is_element() || child->name() != "param") continue;
    std::optional<std::string> param_name = child->GetAttribute("name");
    if (!param_name.has_value() || *param_name != name) continue;
    std::string type = child->GetAttribute("type").value_or("STRING");
    return DecodeTypedText(type, child->TextContent());
  }
  return Status::NotFound("request has no parameter '" + name + "'");
}

xml::NodePtr MakeResponse(const Value& value) {
  xml::NodePtr response = xml::Node::Element("response");
  response->SetAttribute("type", ValueTypeName(value.type()));
  response->SetTextContent(value.AsString());
  return response;
}

Result<Value> GetResponseValue(const xml::NodePtr& response) {
  std::string type = response->GetAttribute("type").value_or("STRING");
  return DecodeTypedText(type, response->TextContent());
}

SimpleWebService::SimpleWebService(std::string name,
                                   std::vector<std::string> param_names,
                                   Handler handler)
    : name_(std::move(name)),
      param_names_(std::move(param_names)),
      handler_(std::move(handler)) {}

Result<xml::NodePtr> SimpleWebService::Invoke(
    const xml::NodePtr& request) {
  ++invocation_count_;
  std::vector<Value> args;
  args.reserve(param_names_.size());
  for (const std::string& param : param_names_) {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, GetRequestParam(request, param));
    args.push_back(std::move(v));
  }
  SQLFLOW_ASSIGN_OR_RETURN(Value out, handler_(args));
  return MakeResponse(out);
}

const char* IdempotentService::kKeyParam = "idempotency_key";

IdempotentService::IdempotentService(WebServicePtr inner)
    : inner_(std::move(inner)) {}

const std::string& IdempotentService::name() const {
  return inner_->name();
}

Result<xml::NodePtr> IdempotentService::Invoke(
    const xml::NodePtr& request) {
  Result<Value> key_param = GetRequestParam(request, kKeyParam);
  if (!key_param.ok()) {
    inner_invocations_.fetch_add(1, std::memory_order_relaxed);
    // No key: caller opted out of dedup for this call.
    return inner_->Invoke(request);
  }
  const std::string key = key_param->AsString();
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = responses_.find(key);
    if (it != responses_.end()) {
      duplicates_suppressed_.fetch_add(1, std::memory_order_relaxed);
      obs::MetricsRegistry::Global()
          .GetCounter("svc.idempotent.suppressed")
          .Increment();
      return it->second;
    }
  }
  inner_invocations_.fetch_add(1, std::memory_order_relaxed);
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr response,
                           inner_->Invoke(request));
  std::lock_guard<std::mutex> lock(mutex_);
  responses_.emplace(key, response);
  return response;
}

Status ServiceRegistry::Register(WebServicePtr service) {
  const std::string& name = service->name();
  if (services_.count(name) > 0) {
    return Status::AlreadyExists("service '" + name +
                                 "' already registered");
  }
  services_.emplace(name, std::move(service));
  return Status::OK();
}

Result<WebServicePtr> ServiceRegistry::Find(const std::string& name) const {
  auto it = services_.find(name);
  if (it == services_.end()) {
    return Status::NotFound("no service '" + name + "'");
  }
  return it->second;
}

std::vector<std::string> ServiceRegistry::ServiceNames() const {
  std::vector<std::string> names;
  names.reserve(services_.size());
  for (const auto& [name, service] : services_) names.push_back(name);
  return names;
}

}  // namespace sqlflow::wfc
