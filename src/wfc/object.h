#ifndef SQLFLOW_WFC_OBJECT_H_
#define SQLFLOW_WFC_OBJECT_H_

#include <memory>
#include <string>

namespace sqlflow::wfc {

/// Base for engine-specific process-space objects held in workflow
/// variables (ADO.NET-style DataSets, BIS set references, ...). The
/// TypeName doubles as the runtime type check when a variable is read
/// back as a concrete type.
class Object {
 public:
  virtual ~Object() = default;

  /// Stable type tag, e.g. "DataSet", "SetReference".
  virtual std::string TypeName() const = 0;

  /// One-line human-readable summary for audit trails and debugging.
  virtual std::string Describe() const { return TypeName(); }
};

using ObjectPtr = std::shared_ptr<Object>;

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_OBJECT_H_
