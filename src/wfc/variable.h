#ifndef SQLFLOW_WFC_VARIABLE_H_
#define SQLFLOW_WFC_VARIABLE_H_

#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "wfc/object.h"
#include "xml/node.h"

namespace sqlflow::wfc {

/// A workflow variable's payload: unset, a scalar, an XML tree (BPEL
/// message / XML RowSet), or an engine-specific object handle.
using VarValue =
    std::variant<std::monostate, Value, xml::NodePtr, ObjectPtr>;

/// Human-readable one-liner ("42", "<RowSet> (3 children)", "DataSet").
std::string DescribeVarValue(const VarValue& v);

/// The variable pool of one process instance. Variables must be declared
/// (by the process definition or an engine mechanism) before they can be
/// read; writes to undeclared names implicitly declare them, mirroring
/// the permissive binding of the surveyed engines' host environments.
class VariableSet {
 public:
  VariableSet() = default;

  Status Declare(const std::string& name, VarValue initial = VarValue{});
  bool Has(const std::string& name) const;
  std::vector<std::string> Names() const;

  /// Replaces (declaring if needed).
  void Set(const std::string& name, VarValue value);

  Result<VarValue> Get(const std::string& name) const;

  // Typed helpers ------------------------------------------------------------
  Status SetScalar(const std::string& name, Value v);
  Result<Value> GetScalar(const std::string& name) const;

  Status SetXml(const std::string& name, xml::NodePtr node);
  Result<xml::NodePtr> GetXml(const std::string& name) const;

  Status SetObject(const std::string& name, ObjectPtr object);
  Result<ObjectPtr> GetObject(const std::string& name) const;

  /// GetObject + dynamic_cast to the expected type.
  template <typename T>
  Result<std::shared_ptr<T>> GetObjectAs(const std::string& name) const {
    SQLFLOW_ASSIGN_OR_RETURN(ObjectPtr obj, GetObject(name));
    if (obj == nullptr) {
      return Status::TypeError("variable '" + name +
                               "' holds a null object");
    }
    auto typed = std::dynamic_pointer_cast<T>(obj);
    if (typed == nullptr) {
      return Status::TypeError("variable '" + name +
                               "' holds an object of type '" +
                               obj->TypeName() + "'");
    }
    return typed;
  }

 private:
  std::map<std::string, VarValue> variables_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_VARIABLE_H_
