#include "wfc/process.h"

namespace sqlflow::wfc {

ProcessDefinition& ProcessDefinition::DeclareVariable(std::string name,
                                                      VarValue initial) {
  variables_.emplace_back(std::move(name), std::move(initial));
  return *this;
}

ProcessDefinition& ProcessDefinition::OnStart(Hook hook) {
  start_hooks_.push_back(std::move(hook));
  return *this;
}

ProcessDefinition& ProcessDefinition::OnComplete(Hook hook) {
  complete_hooks_.push_back(std::move(hook));
  return *this;
}

}  // namespace sqlflow::wfc
