#include "wfc/robustness.h"

#include <algorithm>
#include <cmath>

#include "common/rand.h"
#include "obs/metrics.h"
#include "wfc/persist.h"

namespace sqlflow::wfc {

int64_t BackoffPolicy::DelayForAttempt(int attempt) const {
  if (attempt < 1) attempt = 1;
  double base = static_cast<double>(initial_delay_ns) *
                std::pow(multiplier, attempt - 1);
  base = std::min(base, static_cast<double>(max_delay_ns));
  // Keyed jitter (not a shared stream): the delay for attempt k is a
  // pure function of (seed, k), so tests can assert trajectories and a
  // resumed schedule cannot drift.
  double u = static_cast<double>(
                 SplitMix64(jitter_seed * 0x100000001b3ULL + attempt) >>
                 11) *
             0x1.0p-53;
  double jittered = base * (1.0 + jitter * u);
  return static_cast<int64_t>(jittered);
}

// --- RetryActivity ----------------------------------------------------------

RetryActivity::RetryActivity(std::string name, ActivityPtr body,
                             BackoffPolicy policy, RetryPredicate retry_on)
    : Activity(std::move(name)),
      body_(std::move(body)),
      policy_(policy),
      retry_on_(std::move(retry_on)) {}

Status RetryActivity::Execute(ProcessContext& ctx) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  int max_attempts = std::max(1, policy_.max_attempts);
  // Attempts burned before a crash stay burned: the journal remembers
  // the highest attempt recorded pre-crash, and the resumed loop picks
  // up from there instead of granting the step a fresh budget.
  InstanceJournal* journal = ctx.journal();
  int first_attempt = 1;
  if (journal != nullptr) {
    first_attempt = std::max(1, journal->PriorAttempts(name()) + 1);
    first_attempt = std::min(first_attempt, max_attempts);
  }
  for (int attempt = first_attempt;; ++attempt) {
    if (journal != nullptr) {
      // Standalone append; a failure (crashed WAL) must not block the
      // attempt itself — worst case a resumed run re-grants it.
      (void)journal->RecordAttempt(name(), attempt);
    }
    Status st = body_->Run(ctx);
    if (st.ok()) {
      if (attempt > 1) {
        metrics.GetCounter("wfc.retry.absorbed").Increment();
        ctx.audit().Record(AuditEventKind::kRetry, name(),
                           "absorbed after " + std::to_string(attempt) +
                               " attempts",
                           /*duration_ns=*/-1, attempt);
      }
      return st;
    }
    bool retryable =
        retry_on_ != nullptr ? retry_on_(st) : st.IsTransient();
    if (!retryable) return st;
    if (attempt >= max_attempts) {
      metrics.GetCounter("wfc.retry.exhausted").Increment();
      ctx.audit().Record(AuditEventKind::kRetry, name(),
                         "exhausted after " + std::to_string(attempt) +
                             " attempts: " + st.ToString(),
                         /*duration_ns=*/-1, attempt);
      return st;
    }
    int64_t delay = policy_.DelayForAttempt(attempt);
    int64_t deadline = ctx.EffectiveDeadlineNs();
    if (deadline != ProcessContext::kNoDeadline &&
        ctx.virtual_now_ns() + delay >= deadline) {
      ctx.audit().Record(
          AuditEventKind::kRetry, name(),
          "deadline forbids retry (backoff " + std::to_string(delay) +
              "ns would overshoot): " + st.ToString(),
          /*duration_ns=*/-1, attempt);
      return Status::Timeout("deadline expired while backing off in '" +
                             name() + "' after: " + st.ToString());
    }
    ctx.AdvanceVirtualTime(delay);
    metrics.GetCounter("wfc.retry.attempts").Increment();
    ctx.audit().Record(AuditEventKind::kRetry, name(),
                       "attempt " + std::to_string(attempt) + "/" +
                           std::to_string(max_attempts) + " faulted (" +
                           st.ToString() + "), backing off " +
                           std::to_string(delay) + "ns",
                       /*duration_ns=*/-1, attempt);
  }
}

// --- TimeoutScope -----------------------------------------------------------

TimeoutScope::TimeoutScope(std::string name, ActivityPtr body,
                           int64_t budget_ns)
    : Activity(std::move(name)),
      body_(std::move(body)),
      budget_ns_(budget_ns) {}

Status TimeoutScope::Execute(ProcessContext& ctx) {
  ctx.PushDeadline(ctx.virtual_now_ns() + budget_ns_);
  Status st = body_->Run(ctx);
  ctx.PopDeadline();
  if (!st.ok() && st.code() == StatusCode::kTimeout) {
    obs::MetricsRegistry::Global()
        .GetCounter("wfc.timeout.expired")
        .Increment();
    ctx.audit().Record(AuditEventKind::kFault, name(),
                       "timeout budget " + std::to_string(budget_ns_) +
                           "ns exceeded: " + st.message());
  }
  return st;
}

// --- CompensationScope ------------------------------------------------------

CompensationScope::CompensationScope(std::string name)
    : Activity(std::move(name)) {}

CompensationScope& CompensationScope::AddStep(ActivityPtr action,
                                              ActivityPtr compensation) {
  steps_.push_back(Step{std::move(action), std::move(compensation)});
  return *this;
}

Status CompensationScope::Execute(ProcessContext& ctx) {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  std::vector<const Step*> completed;
  completed.reserve(steps_.size());
  for (const Step& step : steps_) {
    Status st = step.action->Run(ctx);
    if (st.ok()) {
      completed.push_back(&step);
      if (ctx.terminate_requested()) break;
      continue;
    }
    // Downstream fault: undo committed steps in reverse order, then
    // propagate the original fault (BPEL: compensation completes the
    // scope's fault handling but does not swallow the fault).
    ExposeFault(ctx, name(), st);
    metrics.GetCounter("wfc.compensation.triggered").Increment();
    for (auto it = completed.rbegin(); it != completed.rend(); ++it) {
      const Step* done = *it;
      if (done->compensation == nullptr) continue;
      ctx.audit().Record(AuditEventKind::kCompensation, name(),
                         "compensating '" + done->action->name() +
                             "' via '" + done->compensation->name() +
                             "'");
      metrics.GetCounter("wfc.compensation.handlers").Increment();
      Status comp = done->compensation->Run(ctx);
      if (!comp.ok()) {
        // A failing compensation handler is recorded but does not stop
        // the remaining handlers — partial undo is worse than noisy
        // undo — and the original fault still propagates.
        ctx.audit().Record(AuditEventKind::kCompensation, name(),
                           "compensation '" +
                               done->compensation->name() +
                               "' failed: " + comp.ToString());
        metrics.GetCounter("wfc.compensation.failed").Increment();
      }
    }
    return st;
  }
  return Status::OK();
}

// --- fault exposure ---------------------------------------------------------

void ExposeFault(ProcessContext& ctx, const std::string& scope_name,
                 const Status& fault) {
  ctx.variables().Set("fault", VarValue(Value::String(fault.message())));
  ctx.variables().Set(
      "faultCode", VarValue(Value::String(StatusCodeName(fault.code()))));
  ctx.audit().Record(AuditEventKind::kFault, scope_name,
                     fault.ToString());
}

}  // namespace sqlflow::wfc
