#ifndef SQLFLOW_WFC_AUDIT_H_
#define SQLFLOW_WFC_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqlflow::wfc {

enum class AuditEventKind {
  kInstanceStarted,
  kInstanceCompleted,
  kInstanceFaulted,
  kActivityStarted,
  kActivityCompleted,
  kActivityFaulted,
  kServiceInvoked,
  kSqlExecuted,
  kFault,         // a fault was caught (scope/compensation boundary)
  kRetry,         // a retry decision: backoff taken, or exhaustion
  kCompensation,  // one compensation handler ran
  kNote,
};

const char* AuditEventKindName(AuditEventKind kind);

/// One event of an instance's execution history (the paper's "monitoring"
/// / "tracking" runtime services). Timestamps are on the obs trace
/// clock (obs::NowNanos), so audit events line up with tracer spans.
struct AuditEvent {
  uint64_t sequence = 0;
  AuditEventKind kind = AuditEventKind::kNote;
  std::string activity;  // activity or component name
  std::string detail;
  int64_t timestamp_ns = 0;   // when the event was recorded
  int64_t duration_ns = -1;   // completed/faulted events; -1 = not timed
  int64_t attempt = 0;        // retry ordinal (1-based); 0 = not a retry
};

/// Append-only execution trace of one process instance.
class AuditTrail {
 public:
  void Record(AuditEventKind kind, const std::string& activity,
              const std::string& detail = "", int64_t duration_ns = -1,
              int64_t attempt = 0);
  const std::vector<AuditEvent>& events() const { return events_; }
  size_t size() const { return events_.size(); }

  /// Number of events of one kind (e.g. how many SQL statements ran).
  size_t CountKind(AuditEventKind kind) const;

  /// All events of one kind, in sequence order.
  std::vector<AuditEvent> FilterKind(AuditEventKind kind) const;

  std::string ToString() const;

 private:
  std::vector<AuditEvent> events_;
  uint64_t next_sequence_ = 1;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_AUDIT_H_
