#ifndef SQLFLOW_WFC_ENGINE_H_
#define SQLFLOW_WFC_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "sql/wal.h"
#include "wfc/process.h"

namespace sqlflow::wfc {

/// Outcome of one process instance: final status, variable snapshot, and
/// the audit trail (monitoring data).
struct InstanceResult {
  uint64_t instance_id = 0;
  Status status;
  VariableSet variables;
  AuditTrail audit;

  bool ok() const { return status.ok(); }
};

/// One unit of work for RunConcurrent: which process to start, with
/// which inputs. Results come back in request order, under instance ids
/// assigned in request order — so a run's outputs are addressable no
/// matter how the instances interleaved.
struct InstanceRequest {
  std::string process_name;
  std::map<std::string, VarValue> inputs;
};

/// How RunConcurrent schedules its instances.
struct ConcurrencyOptions {
  /// Worker threads for the free-running pool (clamped to the request
  /// count; 0 behaves as 1). Ignored in deterministic mode, which runs
  /// exactly one instance at a time by construction.
  size_t workers = 4;
  /// Replay a seed-derived interleaving instead of racing the workers:
  /// one instance holds the execution token at a time, and at every
  /// activity boundary the next runnable instance is drawn from a
  /// splitmix64 stream. Same seed + same requests = same interleaving,
  /// which is what makes concurrency bugs replayable in tests.
  bool deterministic = false;
  /// Seed for the deterministic interleaving stream.
  uint64_t seed = 1;
  /// Give each instance its own connection per data source
  /// (sql::Database::CreateConnection): statements from different
  /// instances then run in separate sessions with snapshot isolation
  /// and write-write conflict detection, instead of sharing one
  /// connection's transaction state.
  bool private_sessions = true;
};

/// The process server: deploy process models, run instances. One engine
/// owns the shared runtime services the paper's architecture figures
/// show — the service registry (WSDL binding / SOA core stand-in), the
/// data-source registry, and the XPath extension-function registry
/// (Oracle's integration services).
class WorkflowEngine {
 public:
  /// Counters are atomic because RunConcurrent finishes instances on
  /// many worker threads at once; reads through `stats()` still look
  /// like plain integers at call sites.
  struct EngineStats {
    std::atomic<uint64_t> instances_started{0};
    std::atomic<uint64_t> instances_completed{0};
    std::atomic<uint64_t> instances_faulted{0};
    /// Fed from each finished instance's audit trail, so engine-level
    /// stats agree with the per-instance monitoring data (and with the
    /// obs::MetricsRegistry counters the hooks maintain).
    std::atomic<uint64_t> activities_executed{0};
    std::atomic<uint64_t> sql_statements_executed{0};
  };

  explicit WorkflowEngine(std::string name);

  const std::string& name() const { return name_; }
  ServiceRegistry& services() { return services_; }
  sql::DataSourceRegistry& data_sources() { return data_sources_; }
  xpath::FunctionRegistry& xpath_functions() { return xpath_functions_; }

  /// Installs a process model; error if the name is taken.
  Status Deploy(ProcessDefinitionPtr definition);
  /// Replaces an existing deployment (re-deploy).
  void DeployOrReplace(ProcessDefinitionPtr definition);
  Status Undeploy(const std::string& process_name);
  bool IsDeployed(const std::string& process_name) const;
  std::vector<std::string> DeployedProcessNames() const;

  /// Runs one instance to completion; `inputs` overwrite declared
  /// variables before the flow starts. The returned InstanceResult
  /// carries the fault (if any) in `status` — the call itself only fails
  /// for an unknown process name.
  Result<InstanceResult> RunProcess(
      const std::string& process_name,
      const std::map<std::string, VarValue>& inputs = {});

  /// Draws the next instance id *without* starting a run, so a caller
  /// can durably correlate external state (e.g. the wire server's
  /// request ledger) with the instance before its first WAL record
  /// exists. Pair with RunAllocatedInstance.
  uint64_t AllocateInstanceId() { return next_instance_id_.fetch_add(1); }

  /// RunProcess under an id drawn earlier by AllocateInstanceId. The id
  /// must not have been run before; ids from other sources collide with
  /// the internal counter.
  Result<InstanceResult> RunAllocatedInstance(
      uint64_t instance_id, const std::string& process_name,
      const std::map<std::string, VarValue>& inputs = {});

  /// Runs `requests.size()` instances concurrently and returns their
  /// results in request order (an entry only carries an error Status
  /// for an unknown process name — instance faults travel inside the
  /// InstanceResult, as with RunProcess). Free-running mode races a
  /// worker pool over the requests; deterministic mode replays the
  /// seed-derived interleaving one activity at a time. Either way
  /// instance ids are pre-assigned in request order.
  std::vector<Result<InstanceResult>> RunConcurrent(
      const std::vector<InstanceRequest>& requests,
      const ConcurrencyOptions& options = {});

  /// Monitoring hook (the paper's process-monitoring tooling): called
  /// with every finished instance, after its hooks ran, before
  /// RunProcess returns. Listeners observe; they cannot veto. During
  /// RunConcurrent, listener invocations are serialized under a mutex —
  /// a listener sees one finished instance at a time.
  using InstanceListener = std::function<void(const InstanceResult&)>;
  void AddInstanceListener(InstanceListener listener) {
    std::lock_guard<std::mutex> lock(listeners_mutex_);
    listeners_.push_back(std::move(listener));
  }

  const EngineStats& stats() const { return stats_; }

  // --- durability -------------------------------------------------------------
  /// Attaches the engine to a durability-enabled database (one with
  /// sql::Database::EnableDurability already called): every instance run
  /// from then on dehydrates start / durable-step / retry-attempt / end
  /// records into the database's WAL, and the instance-id counter jumps
  /// past any ids recovered from the log so resumed and fresh instances
  /// never collide. Durable recording is designed for sequential
  /// RunProcess use — the journal queues records on the database's
  /// primary connection. Fails if the database has no WAL.
  Status EnableDurability(sql::Database* db);

  /// Rehydrates every instance the recovered WAL shows as started but
  /// not ended, and runs each to completion. Already-recorded durable
  /// steps are skipped (their SQL effects were restored by WAL replay);
  /// execution continues from the first unrecorded step — the
  /// exactly-once resume the surveyed engines' dehydration store
  /// provides. Returns one entry per resumed instance, in instance-id
  /// order; an empty vector when nothing was interrupted.
  std::vector<Result<InstanceResult>> ResumeInstances();

 private:
  /// The shared body of RunProcess / RunConcurrent: one instance, start
  /// to finish. `yield` (nullable) is the deterministic scheduler's
  /// token hand-off, installed on the context; `private_session` routes
  /// the instance's data-source lookups through a per-instance session
  /// view.
  Result<InstanceResult> RunInstance(uint64_t instance_id,
                                     const std::string& process_name,
                                     const std::map<std::string, VarValue>&
                                         inputs,
                                     bool private_session,
                                     std::function<void()> yield);

  std::string name_;
  ServiceRegistry services_;
  sql::DataSourceRegistry data_sources_;
  xpath::FunctionRegistry xpath_functions_;
  /// Guards the deployment map: RunConcurrent workers resolve process
  /// names while a coordinator may still be deploying.
  mutable std::mutex processes_mutex_;
  std::map<std::string, ProcessDefinitionPtr> processes_;
  std::mutex listeners_mutex_;
  std::vector<InstanceListener> listeners_;
  std::atomic<uint64_t> next_instance_id_{1};
  EngineStats stats_;
  /// Durability attachment (EnableDurability); null = ephemeral engine.
  sql::Database* durable_db_ = nullptr;
  /// Recovered per-instance logs awaiting rehydration, keyed by
  /// instance id; RunInstance preloads the journal from here (and
  /// erases the entry) when resuming.
  std::map<uint64_t, sql::WfInstanceLog> resume_state_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_ENGINE_H_
