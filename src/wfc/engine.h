#ifndef SQLFLOW_WFC_ENGINE_H_
#define SQLFLOW_WFC_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "wfc/process.h"

namespace sqlflow::wfc {

/// Outcome of one process instance: final status, variable snapshot, and
/// the audit trail (monitoring data).
struct InstanceResult {
  uint64_t instance_id = 0;
  Status status;
  VariableSet variables;
  AuditTrail audit;

  bool ok() const { return status.ok(); }
};

/// The process server: deploy process models, run instances. One engine
/// owns the shared runtime services the paper's architecture figures
/// show — the service registry (WSDL binding / SOA core stand-in), the
/// data-source registry, and the XPath extension-function registry
/// (Oracle's integration services).
class WorkflowEngine {
 public:
  struct EngineStats {
    uint64_t instances_started = 0;
    uint64_t instances_completed = 0;
    uint64_t instances_faulted = 0;
    /// Fed from each finished instance's audit trail, so engine-level
    /// stats agree with the per-instance monitoring data (and with the
    /// obs::MetricsRegistry counters the hooks maintain).
    uint64_t activities_executed = 0;
    uint64_t sql_statements_executed = 0;
  };

  explicit WorkflowEngine(std::string name);

  const std::string& name() const { return name_; }
  ServiceRegistry& services() { return services_; }
  sql::DataSourceRegistry& data_sources() { return data_sources_; }
  xpath::FunctionRegistry& xpath_functions() { return xpath_functions_; }

  /// Installs a process model; error if the name is taken.
  Status Deploy(ProcessDefinitionPtr definition);
  /// Replaces an existing deployment (re-deploy).
  void DeployOrReplace(ProcessDefinitionPtr definition);
  Status Undeploy(const std::string& process_name);
  bool IsDeployed(const std::string& process_name) const;
  std::vector<std::string> DeployedProcessNames() const;

  /// Runs one instance to completion; `inputs` overwrite declared
  /// variables before the flow starts. The returned InstanceResult
  /// carries the fault (if any) in `status` — the call itself only fails
  /// for an unknown process name.
  Result<InstanceResult> RunProcess(
      const std::string& process_name,
      const std::map<std::string, VarValue>& inputs = {});

  /// Monitoring hook (the paper's process-monitoring tooling): called
  /// with every finished instance, after its hooks ran, before
  /// RunProcess returns. Listeners observe; they cannot veto.
  using InstanceListener = std::function<void(const InstanceResult&)>;
  void AddInstanceListener(InstanceListener listener) {
    listeners_.push_back(std::move(listener));
  }

  const EngineStats& stats() const { return stats_; }

 private:
  std::string name_;
  ServiceRegistry services_;
  sql::DataSourceRegistry data_sources_;
  xpath::FunctionRegistry xpath_functions_;
  std::map<std::string, ProcessDefinitionPtr> processes_;
  std::vector<InstanceListener> listeners_;
  uint64_t next_instance_id_ = 1;
  EngineStats stats_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_ENGINE_H_
