#ifndef SQLFLOW_WFC_XOML_H_
#define SQLFLOW_WFC_XOML_H_

#include <functional>
#include <map>
#include <string>
#include <string_view>

#include "wfc/engine.h"
#include "xml/node.h"

namespace sqlflow::wfc {

/// Markup authoring mode (Microsoft's XOML, Sec. IV-A): builds process
/// definitions from an XML description. The activity-type table is
/// extensible — custom activity libraries (e.g. the WF module's
/// SqlDatabase activity) register their own element names, which is the
/// markup-side mirror of augmenting the CAL.
///
/// Schema (all activity elements take a `name` attribute):
///   <Process name="P">
///     <Variables>
///       <Variable name="N" type="integer|double|boolean|string" value="..."/>
///       <Variable name="Doc" type="xml"> <AnyRoot/> </Variable>
///     </Variables>
///     <Sequence> ...children... </Sequence>
///   </Process>
///
/// Built-in activity elements: Sequence, While (condition=XPath),
/// IfElse (condition= + <Then>/<Else> wrappers), Assign (<Copy to=
/// [toNode=] and one of value=/expr=>), Invoke (service=, output=,
/// <Input param= expr=/>), Empty, Terminate, and the robustness
/// wrappers: Retry (maxAttempts=, backoffMs=, multiplier=, jitter=,
/// seed=, retryOn="transient|any"), TimeoutScope (budgetMs=), and
/// CompensationScope (<Step><Action>…</Action>
/// <Compensation>…</Compensation></Step>).
class XomlLoader {
 public:
  using ActivityBuilder = std::function<Result<ActivityPtr>(
      const xml::Node& element, XomlLoader& loader)>;

  XomlLoader();

  /// Registers a custom activity element; error if the name is taken.
  Status RegisterActivityType(const std::string& element_name,
                              ActivityBuilder builder);

  /// Parses markup and builds the process definition.
  Result<ProcessDefinitionPtr> LoadProcess(std::string_view markup);

  /// Builds one activity from its element (dispatching on element name);
  /// used recursively by builders.
  Result<ActivityPtr> BuildActivity(const xml::Node& element);

  /// Builds all element children; a single child is returned as-is,
  /// several are wrapped in an implicit sequence.
  Result<ActivityPtr> BuildBody(const xml::Node& parent,
                                const std::string& implicit_name);

  std::vector<std::string> RegisteredActivityTypes() const;

 private:
  std::map<std::string, ActivityBuilder> builders_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_XOML_H_
