#ifndef SQLFLOW_WFC_PERSIST_H_
#define SQLFLOW_WFC_PERSIST_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/database.h"
#include "sql/wal.h"
#include "wfc/activity.h"
#include "wfc/variable.h"

namespace sqlflow::wfc {

// Workflow dehydration: instance lifecycle and step-completion records
// written into the SQL engine's WAL (sql/wal.h kWf* record types), so a
// crash-interrupted instance can be rehydrated by
// WorkflowEngine::ResumeInstances and continued exactly-once. This is
// the paper's Table I persistence column — the surveyed engines park
// instance state in the database so a host restart resumes rather than
// restarts the flow.

// --- record payload codecs --------------------------------------------------
// Every payload leads with [u8 type][u64 instance_id]; the builders
// return the bytes ready for Database::AddWalAttachment. VarValues
// encode as [u8 tag]: 0 unset, 1 scalar (wal Value codec), 2 XML
// (serialized markup). Object handles (tag 0 on write) do not
// dehydrate — they are engine-local pointers; a resumed instance sees
// such variables unset.

std::string WfStartRecord(uint64_t instance_id,
                          const std::string& process_name,
                          const std::map<std::string, VarValue>& inputs);
std::string WfStepRecord(uint64_t instance_id, const std::string& step_name,
                         uint32_t seq, const VariableSet& variables);
std::string WfAttemptRecord(uint64_t instance_id,
                            const std::string& step_name, uint32_t attempt);
std::string WfEndRecord(uint64_t instance_id);

/// Decoded kWfStart: what ResumeInstances needs to re-run the instance.
struct WfStartInfo {
  uint64_t instance_id = 0;
  std::string process_name;
  std::map<std::string, VarValue> inputs;
};
/// `payload` is WfInstanceLog::start_payload (tag stripped, id included).
Result<WfStartInfo> DecodeWfStart(const std::string& payload);

/// One recorded step completion, rehydrated from a kWfStep payload.
struct RecordedStep {
  std::string step_name;
  uint32_t seq = 0;
  std::map<std::string, VarValue> variables;  // snapshot at completion
};
Result<RecordedStep> DecodeWfStep(const std::string& payload);

// --- the per-instance journal -----------------------------------------------

class ProcessContext;

/// The dehydration cursor of one instance. Fresh instances record; a
/// resumed instance first *replays*: DurableStep consults the journal,
/// and a step whose completion record predates the crash is skipped —
/// its SQL effects were already recovered by WAL replay — with its
/// variable snapshot restored instead of re-executed. That skip is what
/// makes resumption exactly-once.
class InstanceJournal {
 public:
  InstanceJournal(sql::Database* db, uint64_t instance_id)
      : db_(db), instance_id_(instance_id) {}

  /// Loads the recovered per-instance state (resume path). Returns an
  /// error if a recorded payload does not decode.
  Status Preload(const sql::WfInstanceLog& log);

  /// If the next recorded step matches `step_name`: restores its
  /// variable snapshot into `ctx`, advances the cursor, returns true.
  bool ConsumeIfRecorded(const std::string& step_name, ProcessContext& ctx);

  /// Appends this step's completion record (with the live variable
  /// snapshot). Inside an open transaction the record is queued and
  /// commits atomically with the step's SQL; DurableStep arranges that.
  Status RecordStep(const std::string& step_name, ProcessContext& ctx);

  /// Retry bookkeeping: attempts recorded pre-crash reduce the budget a
  /// resumed RetryActivity has left.
  int PriorAttempts(const std::string& step_name) const;
  Status RecordAttempt(const std::string& step_name, int attempt);

  Status RecordStart(const std::string& process_name,
                     const std::map<std::string, VarValue>& inputs);
  Status RecordEnd();

  sql::Database* db() const { return db_; }
  uint64_t instance_id() const { return instance_id_; }
  size_t steps_replayed() const { return cursor_; }
  size_t steps_pending_replay() const { return recorded_.size() - cursor_; }

 private:
  sql::Database* db_;
  uint64_t instance_id_;
  std::vector<RecordedStep> recorded_;  // from recovery, replay order
  size_t cursor_ = 0;
  std::map<std::string, int> prior_attempts_;  // step → max attempt seen
  uint32_t next_seq_ = 0;
};

// --- the durable step wrapper -----------------------------------------------

/// Wraps an activity as one exactly-once unit of progress. Without a
/// journal on the context it is transparent. With one: an already-
/// recorded step is skipped (variables restored from the snapshot);
/// otherwise the body runs inside a transaction on the journal's
/// database — opened here unless one is already open — and the step's
/// completion record rides the same atomic WAL commit batch as the
/// step's SQL. A crash therefore lands strictly before (step re-runs,
/// no effects made it) or strictly after (step skips, all effects
/// recovered) — never in between. Service invocations inside the body
/// are not transactional; pair them with IdempotentService keyed on
/// StepIdempotencyKey to get the same guarantee.
class DurableStep : public Activity {
 public:
  DurableStep(std::string name, ActivityPtr body);
  std::string TypeName() const override { return "durable-step"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  ActivityPtr body_;
};

ActivityPtr MakeDurableStep(std::string name, ActivityPtr body);

/// The canonical idempotence key for a service call made from within
/// the named durable step of an instance: stable across a crash/resume
/// of the same instance, distinct across instances.
std::string StepIdempotencyKey(const ProcessContext& ctx,
                               const std::string& step_name);

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_PERSIST_H_
