#ifndef SQLFLOW_WFC_ROBUSTNESS_H_
#define SQLFLOW_WFC_ROBUSTNESS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "wfc/activity.h"

namespace sqlflow::wfc {

/// Exponential backoff with deterministic jitter, on the instance's
/// virtual clock. delay(k) = min(max_delay, initial * multiplier^(k-1))
/// scaled by (1 + jitter * u) with u in [0,1) drawn from a splitmix64
/// stream keyed on (jitter_seed, attempt) — the same seed always yields
/// the same trajectory, and with multiplier >= 1 + jitter the delays are
/// strictly non-decreasing across attempts.
struct BackoffPolicy {
  int max_attempts = 3;
  int64_t initial_delay_ns = 1'000'000;        // 1ms (virtual)
  double multiplier = 2.0;
  int64_t max_delay_ns = 60'000'000'000;       // 60s (virtual)
  double jitter = 0.25;
  uint64_t jitter_seed = 1;

  /// The jittered delay taken after failed attempt `attempt` (1-based).
  int64_t DelayForAttempt(int attempt) const;
};

/// The Oracle BPEL PM retry analogue (Table I: "failed partner-link
/// invocations are retried under a configurable policy"), generalized to
/// wrap any activity. Re-runs the body on faults matching `retry_on`
/// (default: transient codes), advancing the virtual clock by the
/// backoff delay between attempts; gives up when attempts are exhausted
/// or the enclosing deadline would expire during the wait. Emits
/// `wfc.retry.attempts` / `wfc.retry.absorbed` / `wfc.retry.exhausted`
/// counters and kRetry audit events.
class RetryActivity : public Activity {
 public:
  using RetryPredicate = std::function<bool(const Status&)>;

  RetryActivity(std::string name, ActivityPtr body,
                BackoffPolicy policy = {},
                RetryPredicate retry_on = {});  // {} = transient codes
  std::string TypeName() const override { return "retry"; }

  const BackoffPolicy& policy() const { return policy_; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  ActivityPtr body_;
  BackoffPolicy policy_;
  RetryPredicate retry_on_;
};

/// BPEL scope-with-onAlarm analogue: the body runs under a deadline of
/// `budget_ns` virtual nanoseconds. Deadlines nest (the effective one
/// is the tightest enclosing), propagate through Activity::Run (an
/// expired deadline fails activities before they start with kTimeout),
/// and stop retry loops whose next backoff would overshoot.
class TimeoutScope : public Activity {
 public:
  TimeoutScope(std::string name, ActivityPtr body, int64_t budget_ns);
  std::string TypeName() const override { return "timeout-scope"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  ActivityPtr body_;
  int64_t budget_ns_;
};

/// BPEL compensation analogue: an ordered list of steps, each pairing a
/// forward action with an optional compensation handler. Steps run in
/// order; when one faults, the compensation handlers of every
/// *completed* step run in reverse order (undoing committed work), then
/// the original fault propagates. Emits `wfc.compensation.*` counters
/// and kFault/kCompensation audit events.
class CompensationScope : public Activity {
 public:
  explicit CompensationScope(std::string name);
  std::string TypeName() const override { return "compensation-scope"; }

  /// `compensation` may be null for steps with nothing to undo.
  CompensationScope& AddStep(ActivityPtr action,
                             ActivityPtr compensation = nullptr);

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  struct Step {
    ActivityPtr action;
    ActivityPtr compensation;
  };
  std::vector<Step> steps_;
};

/// Records the caught fault in the audit trail (kFault) and exposes it
/// to downstream activities as the process variables `fault` (message)
/// and `faultCode` (stable code name) — shared by ScopeActivity's fault
/// handler and CompensationScope.
void ExposeFault(ProcessContext& ctx, const std::string& scope_name,
                 const Status& fault);

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_ROBUSTNESS_H_
