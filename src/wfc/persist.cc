#include "wfc/persist.h"

#include <utility>

#include "obs/metrics.h"
#include "wfc/context.h"
#include "xml/parser.h"
#include "xml/serializer.h"

namespace sqlflow::wfc {

namespace {

// VarValue wire tags (see persist.h header comment).
constexpr uint8_t kVarUnset = 0;
constexpr uint8_t kVarScalar = 1;
constexpr uint8_t kVarXml = 2;

void EncodeVarValue(std::string& out, const VarValue& v) {
  if (const Value* scalar = std::get_if<Value>(&v)) {
    out.push_back(static_cast<char>(kVarScalar));
    sql::WalPutValue(out, *scalar);
    return;
  }
  if (const xml::NodePtr* node = std::get_if<xml::NodePtr>(&v)) {
    if (*node != nullptr) {
      out.push_back(static_cast<char>(kVarXml));
      sql::WalPutString(out, xml::Serialize(**node));
      return;
    }
  }
  // monostate, null XML, and ObjectPtr (engine-local handle — not
  // dehydratable) all land here.
  out.push_back(static_cast<char>(kVarUnset));
}

Result<VarValue> DecodeVarValue(sql::WalReader& r) {
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t tag, r.U8());
  switch (tag) {
    case kVarUnset:
      return VarValue{};
    case kVarScalar: {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, r.Val());
      return VarValue{std::move(v)};
    }
    case kVarXml: {
      SQLFLOW_ASSIGN_OR_RETURN(std::string markup, r.Str());
      SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr node, xml::Parse(markup));
      return VarValue{std::move(node)};
    }
    default:
      return Status::DataLoss("workflow record has bad variable tag " +
                              std::to_string(tag));
  }
}

Result<std::map<std::string, VarValue>> DecodeVarMap(sql::WalReader& r) {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t n, r.U32());
  std::map<std::string, VarValue> vars;
  for (uint32_t i = 0; i < n; ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
    SQLFLOW_ASSIGN_OR_RETURN(VarValue value, DecodeVarValue(r));
    vars.emplace(std::move(name), std::move(value));
  }
  return vars;
}

std::string TaggedHeader(sql::WalRecordType type, uint64_t instance_id) {
  std::string out;
  out.push_back(static_cast<char>(type));
  sql::WalPutU64(out, instance_id);
  return out;
}

}  // namespace

std::string WfStartRecord(uint64_t instance_id,
                          const std::string& process_name,
                          const std::map<std::string, VarValue>& inputs) {
  std::string out =
      TaggedHeader(sql::WalRecordType::kWfStart, instance_id);
  sql::WalPutString(out, process_name);
  sql::WalPutU32(out, static_cast<uint32_t>(inputs.size()));
  for (const auto& [name, value] : inputs) {
    sql::WalPutString(out, name);
    EncodeVarValue(out, value);
  }
  return out;
}

std::string WfStepRecord(uint64_t instance_id, const std::string& step_name,
                         uint32_t seq, const VariableSet& variables) {
  std::string out = TaggedHeader(sql::WalRecordType::kWfStep, instance_id);
  sql::WalPutString(out, step_name);
  sql::WalPutU32(out, seq);
  std::vector<std::string> names = variables.Names();
  sql::WalPutU32(out, static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    sql::WalPutString(out, name);
    auto value = variables.Get(name);
    EncodeVarValue(out, value.ok() ? *value : VarValue{});
  }
  return out;
}

std::string WfAttemptRecord(uint64_t instance_id,
                            const std::string& step_name,
                            uint32_t attempt) {
  std::string out =
      TaggedHeader(sql::WalRecordType::kWfAttempt, instance_id);
  sql::WalPutString(out, step_name);
  sql::WalPutU32(out, attempt);
  return out;
}

std::string WfEndRecord(uint64_t instance_id) {
  return TaggedHeader(sql::WalRecordType::kWfEnd, instance_id);
}

Result<WfStartInfo> DecodeWfStart(const std::string& payload) {
  sql::WalReader r(payload);
  WfStartInfo info;
  SQLFLOW_ASSIGN_OR_RETURN(info.instance_id, r.U64());
  SQLFLOW_ASSIGN_OR_RETURN(info.process_name, r.Str());
  SQLFLOW_ASSIGN_OR_RETURN(info.inputs, DecodeVarMap(r));
  return info;
}

Result<RecordedStep> DecodeWfStep(const std::string& payload) {
  sql::WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(uint64_t instance_id, r.U64());
  (void)instance_id;
  RecordedStep step;
  SQLFLOW_ASSIGN_OR_RETURN(step.step_name, r.Str());
  SQLFLOW_ASSIGN_OR_RETURN(step.seq, r.U32());
  SQLFLOW_ASSIGN_OR_RETURN(step.variables, DecodeVarMap(r));
  return step;
}

// --- InstanceJournal --------------------------------------------------------

Status InstanceJournal::Preload(const sql::WfInstanceLog& log) {
  for (const std::string& payload : log.steps) {
    SQLFLOW_ASSIGN_OR_RETURN(RecordedStep step, DecodeWfStep(payload));
    recorded_.push_back(std::move(step));
  }
  for (const std::string& payload : log.attempts) {
    sql::WalReader r(payload);
    SQLFLOW_ASSIGN_OR_RETURN(uint64_t id, r.U64());
    (void)id;
    SQLFLOW_ASSIGN_OR_RETURN(std::string step_name, r.Str());
    SQLFLOW_ASSIGN_OR_RETURN(uint32_t attempt, r.U32());
    int& prior = prior_attempts_[step_name];
    prior = std::max(prior, static_cast<int>(attempt));
  }
  // New records continue the recorded sequence.
  next_seq_ = recorded_.empty() ? 0 : recorded_.back().seq + 1;
  return Status::OK();
}

bool InstanceJournal::ConsumeIfRecorded(const std::string& step_name,
                                        ProcessContext& ctx) {
  if (cursor_ >= recorded_.size()) return false;
  const RecordedStep& step = recorded_[cursor_];
  if (step.step_name != step_name) return false;
  for (const auto& [name, value] : step.variables) {
    ctx.variables().Set(name, value);
  }
  ++cursor_;
  return true;
}

Status InstanceJournal::RecordStep(const std::string& step_name,
                                   ProcessContext& ctx) {
  return db_->AddWalAttachment(
      WfStepRecord(instance_id_, step_name, next_seq_++, ctx.variables()));
}

int InstanceJournal::PriorAttempts(const std::string& step_name) const {
  auto it = prior_attempts_.find(step_name);
  return it == prior_attempts_.end() ? 0 : it->second;
}

Status InstanceJournal::RecordAttempt(const std::string& step_name,
                                      int attempt) {
  return db_->AddWalAttachment(WfAttemptRecord(
      instance_id_, step_name, static_cast<uint32_t>(attempt)));
}

Status InstanceJournal::RecordStart(
    const std::string& process_name,
    const std::map<std::string, VarValue>& inputs) {
  return db_->AddWalAttachment(
      WfStartRecord(instance_id_, process_name, inputs));
}

Status InstanceJournal::RecordEnd() {
  return db_->AddWalAttachment(WfEndRecord(instance_id_));
}

// --- DurableStep ------------------------------------------------------------

DurableStep::DurableStep(std::string name, ActivityPtr body)
    : Activity(std::move(name)), body_(std::move(body)) {}

Status DurableStep::Execute(ProcessContext& ctx) {
  InstanceJournal* journal = ctx.journal();
  if (journal == nullptr) return body_->Run(ctx);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  if (journal->ConsumeIfRecorded(name(), ctx)) {
    // Completed before the crash: its SQL effects were recovered by WAL
    // replay and its variable snapshot was just restored. Re-running
    // would double them.
    metrics.GetCounter("wfc.resume.steps_skipped").Increment();
    ctx.audit().Record(AuditEventKind::kActivityCompleted, name(),
                       "replayed from journal");
    return Status::OK();
  }
  sql::Database* db = journal->db();
  if (db->in_transaction()) {
    // An enclosing scope owns the transaction; the step record rides
    // its commit batch.
    SQLFLOW_RETURN_IF_ERROR(body_->Run(ctx));
    return journal->RecordStep(name(), ctx);
  }
  SQLFLOW_RETURN_IF_ERROR(db->Begin());
  Status st = body_->Run(ctx);
  if (st.ok()) st = journal->RecordStep(name(), ctx);
  if (!st.ok()) {
    (void)db->Rollback();
    return st;
  }
  // The atomic durability point: step SQL + completion record in one
  // WAL batch. A crash here either tears the batch (step re-runs from
  // scratch) or lands after it (step skips on resume).
  return db->Commit();
}

ActivityPtr MakeDurableStep(std::string name, ActivityPtr body) {
  return std::make_shared<DurableStep>(std::move(name), std::move(body));
}

std::string StepIdempotencyKey(const ProcessContext& ctx,
                               const std::string& step_name) {
  return ctx.process_name() + "#" + std::to_string(ctx.instance_id()) +
         "#" + step_name;
}

}  // namespace sqlflow::wfc
