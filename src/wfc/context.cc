#include "wfc/context.h"

namespace sqlflow::wfc {

ProcessContext::ProcessContext(uint64_t instance_id,
                               std::string process_name,
                               ServiceRegistry* services,
                               sql::DataSourceRegistry* data_sources,
                               const xpath::FunctionRegistry* xpath_functions)
    : instance_id_(instance_id),
      process_name_(std::move(process_name)),
      services_(services),
      data_sources_(data_sources),
      xpath_functions_(xpath_functions) {}

xpath::EvalEnv ProcessContext::XPathEnv() const {
  xpath::EvalEnv env;
  env.functions = xpath_functions_;
  const VariableSet* vars = &variables_;
  env.variable_resolver =
      [vars](const std::string& name) -> Result<xpath::XPathValue> {
    SQLFLOW_ASSIGN_OR_RETURN(VarValue v, vars->Get(name));
    if (std::holds_alternative<xml::NodePtr>(v)) {
      xml::NodePtr node = std::get<xml::NodePtr>(v);
      if (node == nullptr) return xpath::XPathValue::NodeSet({});
      return xpath::XPathValue::NodeSet({std::move(node)});
    }
    if (std::holds_alternative<Value>(v)) {
      const Value& scalar = std::get<Value>(v);
      switch (scalar.type()) {
        case ValueType::kBoolean:
          return xpath::XPathValue::Boolean(scalar.boolean());
        case ValueType::kInteger:
          return xpath::XPathValue::Number(
              static_cast<double>(scalar.integer()));
        case ValueType::kDouble:
          return xpath::XPathValue::Number(scalar.dbl());
        default:
          return xpath::XPathValue::String(scalar.AsString());
      }
    }
    if (std::holds_alternative<std::monostate>(v)) {
      return xpath::XPathValue::String("");
    }
    return Status::TypeError("variable '" + name +
                             "' holds an engine object; it is not "
                             "addressable from XPath");
  };
  return env;
}

Result<xpath::XPathValue> ProcessContext::EvalXPath(
    const std::string& expr) const {
  return xpath::EvaluateXPath(expr, nullptr, XPathEnv());
}

Result<bool> ProcessContext::EvalCondition(const std::string& expr) const {
  SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue v, EvalXPath(expr));
  return v.ToBool();
}

}  // namespace sqlflow::wfc
