#include "wfc/variable.h"

namespace sqlflow::wfc {

std::string DescribeVarValue(const VarValue& v) {
  if (std::holds_alternative<std::monostate>(v)) return "(unset)";
  if (std::holds_alternative<Value>(v)) {
    return std::get<Value>(v).ToString();
  }
  if (std::holds_alternative<xml::NodePtr>(v)) {
    const xml::NodePtr& node = std::get<xml::NodePtr>(v);
    if (node == nullptr) return "(null xml)";
    return "<" + node->name() + "> (" +
           std::to_string(node->child_count()) + " children)";
  }
  const ObjectPtr& obj = std::get<ObjectPtr>(v);
  return obj == nullptr ? "(null object)" : obj->Describe();
}

Status VariableSet::Declare(const std::string& name, VarValue initial) {
  if (variables_.count(name) > 0) {
    return Status::AlreadyExists("variable '" + name +
                                 "' already declared");
  }
  variables_.emplace(name, std::move(initial));
  return Status::OK();
}

bool VariableSet::Has(const std::string& name) const {
  return variables_.count(name) > 0;
}

std::vector<std::string> VariableSet::Names() const {
  std::vector<std::string> names;
  names.reserve(variables_.size());
  for (const auto& [name, value] : variables_) names.push_back(name);
  return names;
}

void VariableSet::Set(const std::string& name, VarValue value) {
  variables_[name] = std::move(value);
}

Result<VarValue> VariableSet::Get(const std::string& name) const {
  auto it = variables_.find(name);
  if (it == variables_.end()) {
    return Status::NotFound("no variable '" + name + "'");
  }
  return it->second;
}

Status VariableSet::SetScalar(const std::string& name, Value v) {
  Set(name, VarValue(std::move(v)));
  return Status::OK();
}

Result<Value> VariableSet::GetScalar(const std::string& name) const {
  SQLFLOW_ASSIGN_OR_RETURN(VarValue v, Get(name));
  if (!std::holds_alternative<Value>(v)) {
    return Status::TypeError("variable '" + name + "' is not a scalar");
  }
  return std::get<Value>(v);
}

Status VariableSet::SetXml(const std::string& name, xml::NodePtr node) {
  Set(name, VarValue(std::move(node)));
  return Status::OK();
}

Result<xml::NodePtr> VariableSet::GetXml(const std::string& name) const {
  SQLFLOW_ASSIGN_OR_RETURN(VarValue v, Get(name));
  if (!std::holds_alternative<xml::NodePtr>(v)) {
    return Status::TypeError("variable '" + name + "' is not XML");
  }
  return std::get<xml::NodePtr>(v);
}

Status VariableSet::SetObject(const std::string& name, ObjectPtr object) {
  Set(name, VarValue(std::move(object)));
  return Status::OK();
}

Result<ObjectPtr> VariableSet::GetObject(const std::string& name) const {
  SQLFLOW_ASSIGN_OR_RETURN(VarValue v, Get(name));
  if (!std::holds_alternative<ObjectPtr>(v)) {
    return Status::TypeError("variable '" + name + "' is not an object");
  }
  return std::get<ObjectPtr>(v);
}

}  // namespace sqlflow::wfc
