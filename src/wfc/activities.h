#ifndef SQLFLOW_WFC_ACTIVITIES_H_
#define SQLFLOW_WFC_ACTIVITIES_H_

#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "wfc/activity.h"

namespace sqlflow::wfc {

/// Boolean guard for While/IfElse: either a native callback or an XPath
/// expression over the instance's variables.
class Condition {
 public:
  using Fn = std::function<Result<bool>(ProcessContext&)>;

  Condition() = default;
  /// From an XPath expression, e.g. "$HasMore = 'true'".
  static Condition XPath(std::string expr);
  /// From a native callback (the "code condition" of WF).
  static Condition Native(Fn fn);

  Result<bool> Evaluate(ProcessContext& ctx) const;
  bool valid() const { return fn_ != nullptr || !xpath_.empty(); }
  const std::string& xpath_text() const { return xpath_; }

 private:
  Fn fn_;
  std::string xpath_;
};

/// Runs children in order; stops at the first fault or termination.
class SequenceActivity : public Activity {
 public:
  SequenceActivity(std::string name, std::vector<ActivityPtr> children);
  std::string TypeName() const override { return "sequence"; }
  void Append(ActivityPtr child) { children_.push_back(std::move(child)); }
  const std::vector<ActivityPtr>& children() const { return children_; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  std::vector<ActivityPtr> children_;
};

/// Repeats the body while the condition holds (guarded against runaway
/// loops via max_iterations).
class WhileActivity : public Activity {
 public:
  WhileActivity(std::string name, Condition condition, ActivityPtr body,
                uint64_t max_iterations = 1000000);
  std::string TypeName() const override { return "while"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  Condition condition_;
  ActivityPtr body_;
  uint64_t max_iterations_;
};

/// BPEL flow: concurrent branches. This single-threaded engine executes
/// branches in declaration order (the observable semantics of a flow
/// whose branches are data-independent); a fault in any branch faults
/// the flow after all branches were attempted, mirroring BPEL's
/// join behaviour for unsynchronized links.
class FlowActivity : public Activity {
 public:
  FlowActivity(std::string name, std::vector<ActivityPtr> branches);
  std::string TypeName() const override { return "flow"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  std::vector<ActivityPtr> branches_;
};

/// BPEL repeatUntil: runs the body, then repeats while the condition is
/// *false* (the body always executes at least once).
class RepeatUntilActivity : public Activity {
 public:
  RepeatUntilActivity(std::string name, ActivityPtr body,
                      Condition until, uint64_t max_iterations = 1000000);
  std::string TypeName() const override { return "repeat-until"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  ActivityPtr body_;
  Condition until_;
  uint64_t max_iterations_;
};

/// Two-armed conditional; either arm may be null (no-op).
class IfElseActivity : public Activity {
 public:
  IfElseActivity(std::string name, Condition condition,
                 ActivityPtr then_activity, ActivityPtr else_activity);
  std::string TypeName() const override { return "ifelse"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  Condition condition_;
  ActivityPtr then_activity_;
  ActivityPtr else_activity_;
};

/// BPEL assign: a list of copy specifications evaluated in order. The
/// source is a literal, an XPath expression over the variable pool, or a
/// native function; the target is a variable (replaced wholesale) or a
/// node inside an XML variable selected by an XPath expression.
class AssignActivity : public Activity {
 public:
  struct Copy {
    // Exactly one source:
    std::optional<Value> literal;
    std::string from_xpath;
    std::function<Result<VarValue>(ProcessContext&)> from_fn;
    // Target:
    std::string to_variable;
    std::string to_xpath;  // optional; selects a node within to_variable
  };

  explicit AssignActivity(std::string name);
  std::string TypeName() const override { return "assign"; }

  AssignActivity& CopyLiteral(Value v, std::string to_variable);
  AssignActivity& CopyExpr(std::string from_xpath, std::string to_variable);
  /// Writes the source's string-value into the node selected by
  /// `to_xpath` (which should address into `$to_variable`'s document).
  AssignActivity& CopyExprToNode(std::string from_xpath,
                                 std::string to_variable,
                                 std::string to_xpath);
  AssignActivity& CopyFn(std::function<Result<VarValue>(ProcessContext&)> fn,
                         std::string to_variable);

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  std::vector<Copy> copies_;
};

/// Calls a registered web service: inputs are (parameter name, XPath
/// source) pairs; the response value lands in `output_variable` (if
/// non-empty). Invocations go through InvokeWithRecovery, so transient
/// transport faults planted by the chaos harness are absorbed here;
/// `retry_attempts` overrides the process-wide ServiceRetryPolicy
/// default when > 0.
class InvokeActivity : public Activity {
 public:
  InvokeActivity(std::string name, std::string service_name,
                 std::vector<std::pair<std::string, std::string>> inputs,
                 std::string output_variable, int retry_attempts = 0);
  std::string TypeName() const override { return "invoke"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  std::string service_name_;
  std::vector<std::pair<std::string, std::string>> inputs_;
  std::string output_variable_;
  int retry_attempts_;
};

/// Embedded native code: IBM's Java-Snippet / WF's code activity. The
/// escape hatch the paper's "workaround" rows rely on.
class SnippetActivity : public Activity {
 public:
  using Fn = std::function<Status(ProcessContext&)>;
  SnippetActivity(std::string name, Fn fn);
  std::string TypeName() const override { return "snippet"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  Fn fn_;
};

/// No-op placeholder.
class EmptyActivity : public Activity {
 public:
  explicit EmptyActivity(std::string name) : Activity(std::move(name)) {}
  std::string TypeName() const override { return "empty"; }

 protected:
  Status Execute(ProcessContext&) override { return Status::OK(); }
};

/// Requests instance termination; subsequent activities are skipped.
class TerminateActivity : public Activity {
 public:
  explicit TerminateActivity(std::string name)
      : Activity(std::move(name)) {}
  std::string TypeName() const override { return "terminate"; }

 protected:
  Status Execute(ProcessContext& ctx) override {
    ctx.RequestTerminate();
    return Status::OK();
  }
};

/// Runs the body; on fault, runs the fault handler (if any) and reports
/// success if the handler succeeded.
class ScopeActivity : public Activity {
 public:
  ScopeActivity(std::string name, ActivityPtr body,
                ActivityPtr fault_handler);
  std::string TypeName() const override { return "scope"; }

 protected:
  Status Execute(ProcessContext& ctx) override;

 private:
  ActivityPtr body_;
  ActivityPtr fault_handler_;
};

/// Converts an XPath value into a variable value: node-sets become XML
/// (clone of the first node), numbers become INTEGER when integral else
/// DOUBLE, booleans/strings map directly.
VarValue XPathValueToVarValue(const xpath::XPathValue& v);

/// Converts an XPath value to a scalar Value (node-sets via string-value).
Value XPathValueToScalar(const xpath::XPathValue& v);

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_ACTIVITIES_H_
