#include "wfc/engine.h"

#include "obs/metrics.h"
#include "obs/trace.h"

namespace sqlflow::wfc {

WorkflowEngine::WorkflowEngine(std::string name)
    : name_(std::move(name)) {}

Status WorkflowEngine::Deploy(ProcessDefinitionPtr definition) {
  const std::string& process_name = definition->name();
  if (processes_.count(process_name) > 0) {
    return Status::AlreadyExists("process '" + process_name +
                                 "' already deployed");
  }
  processes_.emplace(process_name, std::move(definition));
  return Status::OK();
}

void WorkflowEngine::DeployOrReplace(ProcessDefinitionPtr definition) {
  processes_[definition->name()] = std::move(definition);
}

Status WorkflowEngine::Undeploy(const std::string& process_name) {
  if (processes_.erase(process_name) == 0) {
    return Status::NotFound("no deployed process '" + process_name + "'");
  }
  return Status::OK();
}

bool WorkflowEngine::IsDeployed(const std::string& process_name) const {
  return processes_.count(process_name) > 0;
}

std::vector<std::string> WorkflowEngine::DeployedProcessNames() const {
  std::vector<std::string> names;
  names.reserve(processes_.size());
  for (const auto& [name, definition] : processes_) {
    names.push_back(name);
  }
  return names;
}

Result<InstanceResult> WorkflowEngine::RunProcess(
    const std::string& process_name,
    const std::map<std::string, VarValue>& inputs) {
  auto it = processes_.find(process_name);
  if (it == processes_.end()) {
    return Status::NotFound("no deployed process '" + process_name + "'");
  }
  const ProcessDefinition& def = *it->second;

  obs::Span span("process " + process_name);
  span.Set("engine", name_);
  span.Set("process", process_name);

  ProcessContext ctx(next_instance_id_++, process_name, &services_,
                     &data_sources_, &xpath_functions_);
  span.Set("instance", std::to_string(ctx.instance_id()));
  for (const auto& [var_name, initial] : def.variables()) {
    ctx.variables().Set(var_name, initial);
  }
  for (const auto& [var_name, value] : inputs) {
    ctx.variables().Set(var_name, value);
  }

  stats_.instances_started++;
  ctx.audit().Record(AuditEventKind::kInstanceStarted, process_name);

  Status st = Status::OK();
  for (const ProcessDefinition::Hook& hook : def.start_hooks()) {
    st = hook(ctx);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    st = def.root()->Run(ctx);
  }
  // Cleanup hooks run regardless of the flow's outcome (BIS drops its
  // per-instance result tables even on fault); a hook failure is only
  // surfaced when the flow itself succeeded.
  for (const ProcessDefinition::Hook& hook : def.complete_hooks()) {
    Status hook_status = hook(ctx);
    if (st.ok() && !hook_status.ok()) st = hook_status;
  }

  if (st.ok()) {
    stats_.instances_completed++;
    ctx.audit().Record(AuditEventKind::kInstanceCompleted, process_name,
                       "", span.ElapsedNanos());
  } else {
    stats_.instances_faulted++;
    span.Set("error", st.ToString());
    ctx.audit().Record(AuditEventKind::kInstanceFaulted, process_name,
                       st.ToString(), span.ElapsedNanos());
  }
  // Roll the instance's monitoring data up into engine-level stats; the
  // audit trail is the single source of truth for both counters.
  stats_.activities_executed +=
      ctx.audit().CountKind(AuditEventKind::kActivityStarted);
  stats_.sql_statements_executed +=
      ctx.audit().CountKind(AuditEventKind::kSqlExecuted);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("wfc.instances").Increment();
  metrics.GetHistogram("wfc.instance")
      .Record(static_cast<uint64_t>(span.ElapsedNanos()));

  InstanceResult result;
  result.instance_id = ctx.instance_id();
  result.status = st;
  result.variables = ctx.variables();
  result.audit = ctx.audit();
  for (const InstanceListener& listener : listeners_) {
    listener(result);
  }
  return result;
}

}  // namespace sqlflow::wfc
