#include "wfc/engine.h"

#include <algorithm>
#include <condition_variable>
#include <set>
#include <thread>
#include <utility>

#include "common/rand.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/data_source.h"
#include "sql/database.h"
#include "wfc/persist.h"

namespace sqlflow::wfc {

namespace {

/// Token-passing scheduler for deterministic interleavings: exactly one
/// instance holds the token (runs) at any moment; at every yield point
/// the next holder is drawn from a splitmix64 stream over the runnable
/// set. Because only the holder ever calls Yield/Finish, the sequence
/// of draws — and therefore the whole interleaving — is a pure function
/// of the seed and the instances' activity structure. One instance at a
/// time also means the interleaving itself is race-free: the scheduler
/// explores orderings of activities (and of the SQL transactions under
/// them), not torn memory.
class DeterministicScheduler {
 public:
  explicit DeterministicScheduler(uint64_t seed)
      : rng_state_(seed == 0 ? 0x9e3779b97f4a7c15ULL : seed) {}

  /// Adds an instance to the runnable set. Call for every instance
  /// before Start().
  void Register(uint64_t id) {
    std::lock_guard<std::mutex> lock(mutex_);
    runnable_.insert(id);
  }

  /// Grants the token for the first time; instance threads may already
  /// be parked in WaitForTurn.
  void Start() {
    std::lock_guard<std::mutex> lock(mutex_);
    started_ = true;
    GrantNextLocked();
    cv_.notify_all();
  }

  /// Blocks until `id` holds the token (each instance thread's entry
  /// gate).
  void WaitForTurn(uint64_t id) {
    std::unique_lock<std::mutex> lock(mutex_);
    cv_.wait(lock, [&] { return started_ && current_ == id; });
  }

  /// The holder offers the token back: re-enters the runnable set, a new
  /// holder is drawn (possibly `id` again), and the call returns when
  /// `id` next holds the token.
  void Yield(uint64_t id) {
    std::unique_lock<std::mutex> lock(mutex_);
    runnable_.insert(id);
    GrantNextLocked();
    if (current_ != id) {
      cv_.notify_all();
      cv_.wait(lock, [&] { return current_ == id; });
    }
  }

  /// The holder is done: the token moves on permanently.
  void Finish(uint64_t /*id*/) {
    std::lock_guard<std::mutex> lock(mutex_);
    GrantNextLocked();
    cv_.notify_all();
  }

 private:
  /// Draws the next holder from the runnable set; caller holds mutex_.
  /// An empty set parks the token (current_ = 0; instance ids start at
  /// 1, so 0 never matches a waiter).
  void GrantNextLocked() {
    if (runnable_.empty()) {
      current_ = 0;
      return;
    }
    size_t index = static_cast<size_t>(SplitMix64Next(&rng_state_) %
                                       runnable_.size());
    auto it = runnable_.begin();
    std::advance(it, index);
    current_ = *it;
    runnable_.erase(it);
  }

  std::mutex mutex_;
  std::condition_variable cv_;
  std::set<uint64_t> runnable_;
  uint64_t current_ = 0;
  bool started_ = false;
  uint64_t rng_state_;
};

}  // namespace

WorkflowEngine::WorkflowEngine(std::string name)
    : name_(std::move(name)) {}

Status WorkflowEngine::Deploy(ProcessDefinitionPtr definition) {
  const std::string& process_name = definition->name();
  std::lock_guard<std::mutex> lock(processes_mutex_);
  if (processes_.count(process_name) > 0) {
    return Status::AlreadyExists("process '" + process_name +
                                 "' already deployed");
  }
  processes_.emplace(process_name, std::move(definition));
  return Status::OK();
}

void WorkflowEngine::DeployOrReplace(ProcessDefinitionPtr definition) {
  std::lock_guard<std::mutex> lock(processes_mutex_);
  processes_[definition->name()] = std::move(definition);
}

Status WorkflowEngine::Undeploy(const std::string& process_name) {
  std::lock_guard<std::mutex> lock(processes_mutex_);
  if (processes_.erase(process_name) == 0) {
    return Status::NotFound("no deployed process '" + process_name + "'");
  }
  return Status::OK();
}

bool WorkflowEngine::IsDeployed(const std::string& process_name) const {
  std::lock_guard<std::mutex> lock(processes_mutex_);
  return processes_.count(process_name) > 0;
}

std::vector<std::string> WorkflowEngine::DeployedProcessNames() const {
  std::lock_guard<std::mutex> lock(processes_mutex_);
  std::vector<std::string> names;
  names.reserve(processes_.size());
  for (const auto& [name, definition] : processes_) {
    names.push_back(name);
  }
  return names;
}

Result<InstanceResult> WorkflowEngine::RunProcess(
    const std::string& process_name,
    const std::map<std::string, VarValue>& inputs) {
  return RunInstance(next_instance_id_.fetch_add(1), process_name, inputs,
                     /*private_session=*/false, /*yield=*/nullptr);
}

Result<InstanceResult> WorkflowEngine::RunAllocatedInstance(
    uint64_t instance_id, const std::string& process_name,
    const std::map<std::string, VarValue>& inputs) {
  return RunInstance(instance_id, process_name, inputs,
                     /*private_session=*/false, /*yield=*/nullptr);
}

Result<InstanceResult> WorkflowEngine::RunInstance(
    uint64_t instance_id, const std::string& process_name,
    const std::map<std::string, VarValue>& inputs, bool private_session,
    std::function<void()> yield) {
  ProcessDefinitionPtr definition;
  {
    std::lock_guard<std::mutex> lock(processes_mutex_);
    auto it = processes_.find(process_name);
    if (it == processes_.end()) {
      return Status::NotFound("no deployed process '" + process_name +
                              "'");
    }
    definition = it->second;
  }
  const ProcessDefinition& def = *definition;

  obs::Span span("process " + process_name);
  span.Set("engine", name_);
  span.Set("process", process_name);

  // A private session gives this instance its own connection per data
  // source: same storage, separate transaction state. The session view
  // only lives for the instance; its connections drop with it.
  std::unique_ptr<sql::DataSourceRegistry> session;
  sql::DataSourceRegistry* sources = &data_sources_;
  if (private_session) {
    session = data_sources_.CreateSession();
    sources = session.get();
  }

  ProcessContext ctx(instance_id, process_name, &services_, sources,
                     &xpath_functions_);
  if (yield) ctx.SetSchedulerYield(std::move(yield));
  span.Set("instance", std::to_string(ctx.instance_id()));
  for (const auto& [var_name, initial] : def.variables()) {
    ctx.variables().Set(var_name, initial);
  }
  for (const auto& [var_name, value] : inputs) {
    ctx.variables().Set(var_name, value);
  }

  // Dehydration journal: a fresh durable instance records its start
  // before anything runs (so a crash anywhere later can resume it); a
  // resumed one preloads the recovered log instead — the start record
  // is already in the WAL.
  std::unique_ptr<InstanceJournal> journal;
  if (durable_db_ != nullptr) {
    journal = std::make_unique<InstanceJournal>(durable_db_, instance_id);
    auto resume_it = resume_state_.find(instance_id);
    if (resume_it != resume_state_.end()) {
      Status preload = journal->Preload(resume_it->second);
      resume_state_.erase(resume_it);
      if (!preload.ok()) return preload;
    } else {
      Status started = journal->RecordStart(process_name, inputs);
      if (!started.ok()) return started;
    }
    ctx.SetJournal(journal.get());
  }

  stats_.instances_started++;
  ctx.audit().Record(AuditEventKind::kInstanceStarted, process_name);

  Status st = Status::OK();
  for (const ProcessDefinition::Hook& hook : def.start_hooks()) {
    st = hook(ctx);
    if (!st.ok()) break;
  }
  if (st.ok()) {
    st = def.root()->Run(ctx);
  }
  // Cleanup hooks run regardless of the flow's outcome (BIS drops its
  // per-instance result tables even on fault); a hook failure is only
  // surfaced when the flow itself succeeded.
  for (const ProcessDefinition::Hook& hook : def.complete_hooks()) {
    Status hook_status = hook(ctx);
    if (st.ok() && !hook_status.ok()) st = hook_status;
  }

  // The end record closes the instance in the log; it is attempted even
  // on fault (a faulted instance is finished, not resumable). On a
  // crashed WAL the append fails silently here — exactly the case where
  // the instance must stay open so the next incarnation resumes it.
  if (journal != nullptr) (void)journal->RecordEnd();

  if (st.ok()) {
    stats_.instances_completed++;
    ctx.audit().Record(AuditEventKind::kInstanceCompleted, process_name,
                       "", span.ElapsedNanos());
  } else {
    stats_.instances_faulted++;
    span.Set("error", st.ToString());
    ctx.audit().Record(AuditEventKind::kInstanceFaulted, process_name,
                       st.ToString(), span.ElapsedNanos());
  }
  // Roll the instance's monitoring data up into engine-level stats; the
  // audit trail is the single source of truth for both counters.
  stats_.activities_executed +=
      ctx.audit().CountKind(AuditEventKind::kActivityStarted);
  stats_.sql_statements_executed +=
      ctx.audit().CountKind(AuditEventKind::kSqlExecuted);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("wfc.instances").Increment();
  metrics.GetHistogram("wfc.instance")
      .Record(static_cast<uint64_t>(span.ElapsedNanos()));

  InstanceResult result;
  result.instance_id = ctx.instance_id();
  result.status = st;
  result.variables = ctx.variables();
  result.audit = ctx.audit();
  {
    std::lock_guard<std::mutex> lock(listeners_mutex_);
    for (const InstanceListener& listener : listeners_) {
      listener(result);
    }
  }
  return result;
}

Status WorkflowEngine::EnableDurability(sql::Database* db) {
  if (db == nullptr || db->wal() == nullptr) {
    return Status::InvalidArgument(
        "engine durability needs a database with EnableDurability "
        "already called");
  }
  durable_db_ = db;
  // Jump the id counter past everything in the recovered log, ended or
  // not — fresh instances must never reuse a logged id.
  uint64_t max_seen = 0;
  for (const auto& [id, log] : db->wal()->WfState()) {
    max_seen = std::max(max_seen, id);
  }
  uint64_t expected = next_instance_id_.load();
  while (expected <= max_seen &&
         !next_instance_id_.compare_exchange_weak(expected, max_seen + 1)) {
  }
  return Status::OK();
}

std::vector<Result<InstanceResult>> WorkflowEngine::ResumeInstances() {
  std::vector<Result<InstanceResult>> results;
  if (durable_db_ == nullptr || durable_db_->wal() == nullptr) {
    return results;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  // std::map iteration gives instance-id order, so multi-instance
  // recovery is deterministic.
  for (auto& [id, log] : durable_db_->wal()->WfState()) {
    if (log.ended || log.start_payload.empty()) continue;
    Result<WfStartInfo> start = DecodeWfStart(log.start_payload);
    if (!start.ok()) {
      results.push_back(start.status());
      continue;
    }
    resume_state_[id] = std::move(log);
    metrics.GetCounter("wfc.resume.instances").Increment();
    results.push_back(RunInstance(id, start->process_name, start->inputs,
                                  /*private_session=*/false,
                                  /*yield=*/nullptr));
    resume_state_.erase(id);  // RunInstance erases on preload; belt and braces
  }
  return results;
}

std::vector<Result<InstanceResult>> WorkflowEngine::RunConcurrent(
    const std::vector<InstanceRequest>& requests,
    const ConcurrencyOptions& options) {
  const size_t n = requests.size();
  std::vector<Result<InstanceResult>> results(
      n, Result<InstanceResult>(
             Status::Internal("instance was never scheduled")));
  if (n == 0) return results;
  // Pre-assign ids in request order: audit trails, per-instance table
  // names, and rows keyed by the instance id come out identical no
  // matter which interleaving or worker count ran the batch.
  const uint64_t base_id = next_instance_id_.fetch_add(n);

  if (options.deterministic) {
    DeterministicScheduler scheduler(options.seed);
    for (size_t i = 0; i < n; ++i) scheduler.Register(base_id + i);
    std::vector<std::thread> threads;
    threads.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      threads.emplace_back([this, &scheduler, &requests, &results, base_id,
                            &options, i] {
        const uint64_t id = base_id + i;
        scheduler.WaitForTurn(id);
        results[i] = RunInstance(
            id, requests[i].process_name, requests[i].inputs,
            options.private_sessions,
            [&scheduler, id] { scheduler.Yield(id); });
        scheduler.Finish(id);
      });
    }
    scheduler.Start();
    for (std::thread& t : threads) t.join();
    return results;
  }

  const size_t workers =
      std::min(std::max<size_t>(options.workers, 1), n);
  std::atomic<size_t> next_request{0};
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (size_t w = 0; w < workers; ++w) {
    threads.emplace_back([this, &requests, &results, &next_request,
                          base_id, &options, n] {
      for (size_t i = next_request.fetch_add(1); i < n;
           i = next_request.fetch_add(1)) {
        results[i] = RunInstance(base_id + i, requests[i].process_name,
                                 requests[i].inputs,
                                 options.private_sessions,
                                 /*yield=*/nullptr);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  return results;
}

}  // namespace sqlflow::wfc
