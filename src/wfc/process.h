#ifndef SQLFLOW_WFC_PROCESS_H_
#define SQLFLOW_WFC_PROCESS_H_

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "wfc/activities.h"
#include "wfc/activity.h"

namespace sqlflow::wfc {

/// Deployable process model: a name, declared variables, the activity
/// tree, and lifecycle hooks. Hooks run inside the instance (with its
/// context) before the root activity and after completion — the BIS
/// module uses them for preparation/cleanup statements.
class ProcessDefinition {
 public:
  using Hook = std::function<Status(ProcessContext&)>;

  ProcessDefinition(std::string name, ActivityPtr root)
      : name_(std::move(name)), root_(std::move(root)) {}

  const std::string& name() const { return name_; }
  const ActivityPtr& root() const { return root_; }

  /// Declares a variable with an initial value.
  ProcessDefinition& DeclareVariable(std::string name,
                                     VarValue initial = VarValue{});

  /// Registers a hook run before the root activity / after completion
  /// (cleanup hooks run even when the flow faulted).
  ProcessDefinition& OnStart(Hook hook);
  ProcessDefinition& OnComplete(Hook hook);

  const std::vector<std::pair<std::string, VarValue>>& variables() const {
    return variables_;
  }
  const std::vector<Hook>& start_hooks() const { return start_hooks_; }
  const std::vector<Hook>& complete_hooks() const {
    return complete_hooks_;
  }

 private:
  std::string name_;
  ActivityPtr root_;
  std::vector<std::pair<std::string, VarValue>> variables_;
  std::vector<Hook> start_hooks_;
  std::vector<Hook> complete_hooks_;
};

using ProcessDefinitionPtr = std::shared_ptr<ProcessDefinition>;

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_PROCESS_H_
