#include "wfc/xoml.h"

#include "common/string_util.h"
#include "wfc/robustness.h"
#include "xml/parser.h"

namespace sqlflow::wfc {

namespace {

std::string NameAttr(const xml::Node& element, const char* fallback) {
  return element.GetAttribute("name").value_or(fallback);
}

Result<int64_t> IntAttr(const xml::Node& element, const char* attr,
                        int64_t fallback) {
  std::optional<std::string> raw = element.GetAttribute(attr);
  if (!raw.has_value()) return fallback;
  return Value::String(*raw).AsInteger();
}

Result<double> DoubleAttr(const xml::Node& element, const char* attr,
                          double fallback) {
  std::optional<std::string> raw = element.GetAttribute(attr);
  if (!raw.has_value()) return fallback;
  return Value::String(*raw).AsDouble();
}

Result<ActivityPtr> BuildSequence(const xml::Node& element,
                                  XomlLoader& loader) {
  std::vector<ActivityPtr> children;
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr activity,
                             loader.BuildActivity(*child));
    children.push_back(std::move(activity));
  }
  return ActivityPtr(std::make_shared<SequenceActivity>(
      NameAttr(element, "sequence"), std::move(children)));
}

Result<ActivityPtr> BuildFlow(const xml::Node& element,
                              XomlLoader& loader) {
  std::vector<ActivityPtr> branches;
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr branch,
                             loader.BuildActivity(*child));
    branches.push_back(std::move(branch));
  }
  return ActivityPtr(std::make_shared<FlowActivity>(
      NameAttr(element, "flow"), std::move(branches)));
}

Result<ActivityPtr> BuildRepeatUntil(const xml::Node& element,
                                     XomlLoader& loader) {
  std::optional<std::string> until = element.GetAttribute("until");
  if (!until.has_value()) {
    return Status::InvalidArgument("<RepeatUntil> requires until=");
  }
  SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr body,
                           loader.BuildBody(element, "repeat-body"));
  return ActivityPtr(std::make_shared<RepeatUntilActivity>(
      NameAttr(element, "repeat-until"), std::move(body),
      Condition::XPath(*until)));
}

Result<ActivityPtr> BuildWhile(const xml::Node& element,
                               XomlLoader& loader) {
  std::optional<std::string> condition = element.GetAttribute("condition");
  if (!condition.has_value()) {
    return Status::InvalidArgument("<While> requires condition=");
  }
  SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr body,
                           loader.BuildBody(element, "while-body"));
  return ActivityPtr(std::make_shared<WhileActivity>(
      NameAttr(element, "while"), Condition::XPath(*condition),
      std::move(body)));
}

Result<ActivityPtr> BuildIfElse(const xml::Node& element,
                                XomlLoader& loader) {
  std::optional<std::string> condition = element.GetAttribute("condition");
  if (!condition.has_value()) {
    return Status::InvalidArgument("<IfElse> requires condition=");
  }
  ActivityPtr then_activity;
  ActivityPtr else_activity;
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    if (child->name() == "Then") {
      SQLFLOW_ASSIGN_OR_RETURN(then_activity,
                               loader.BuildBody(*child, "then"));
    } else if (child->name() == "Else") {
      SQLFLOW_ASSIGN_OR_RETURN(else_activity,
                               loader.BuildBody(*child, "else"));
    } else {
      return Status::InvalidArgument(
          "<IfElse> children must be <Then>/<Else>, got <" +
          child->name() + ">");
    }
  }
  return ActivityPtr(std::make_shared<IfElseActivity>(
      NameAttr(element, "ifelse"), Condition::XPath(*condition),
      std::move(then_activity), std::move(else_activity)));
}

Result<ActivityPtr> BuildAssign(const xml::Node& element, XomlLoader&) {
  auto assign =
      std::make_shared<AssignActivity>(NameAttr(element, "assign"));
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    if (child->name() != "Copy") {
      return Status::InvalidArgument("<Assign> children must be <Copy>");
    }
    std::optional<std::string> to = child->GetAttribute("to");
    if (!to.has_value()) {
      return Status::InvalidArgument("<Copy> requires to=");
    }
    std::optional<std::string> to_node = child->GetAttribute("toNode");
    std::optional<std::string> expr = child->GetAttribute("expr");
    std::optional<std::string> value = child->GetAttribute("value");
    if (expr.has_value() == value.has_value()) {
      return Status::InvalidArgument(
          "<Copy> requires exactly one of expr=/value=");
    }
    if (value.has_value()) {
      assign->CopyLiteral(Value::String(*value), *to);
    } else if (to_node.has_value()) {
      assign->CopyExprToNode(*expr, *to, *to_node);
    } else {
      assign->CopyExpr(*expr, *to);
    }
  }
  return ActivityPtr(std::move(assign));
}

Result<ActivityPtr> BuildInvoke(const xml::Node& element, XomlLoader&) {
  std::optional<std::string> service = element.GetAttribute("service");
  if (!service.has_value()) {
    return Status::InvalidArgument("<Invoke> requires service=");
  }
  std::vector<std::pair<std::string, std::string>> inputs;
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    if (child->name() != "Input") {
      return Status::InvalidArgument("<Invoke> children must be <Input>");
    }
    std::optional<std::string> param = child->GetAttribute("param");
    std::optional<std::string> expr = child->GetAttribute("expr");
    if (!param.has_value() || !expr.has_value()) {
      return Status::InvalidArgument("<Input> requires param= and expr=");
    }
    inputs.emplace_back(*param, *expr);
  }
  SQLFLOW_ASSIGN_OR_RETURN(int64_t retry_attempts,
                           IntAttr(element, "retryAttempts", 0));
  return ActivityPtr(std::make_shared<InvokeActivity>(
      NameAttr(element, "invoke"), *service, std::move(inputs),
      element.GetAttribute("output").value_or(""),
      static_cast<int>(retry_attempts)));
}

Result<ActivityPtr> BuildEmpty(const xml::Node& element, XomlLoader&) {
  return ActivityPtr(
      std::make_shared<EmptyActivity>(NameAttr(element, "empty")));
}

Result<ActivityPtr> BuildTerminate(const xml::Node& element, XomlLoader&) {
  return ActivityPtr(
      std::make_shared<TerminateActivity>(NameAttr(element, "terminate")));
}

// <Retry maxAttempts="3" backoffMs="1" multiplier="2" jitter="0.25"
//        seed="1" retryOn="transient|any"> body </Retry>
Result<ActivityPtr> BuildRetry(const xml::Node& element,
                               XomlLoader& loader) {
  BackoffPolicy policy;
  SQLFLOW_ASSIGN_OR_RETURN(
      int64_t max_attempts,
      IntAttr(element, "maxAttempts", policy.max_attempts));
  policy.max_attempts = static_cast<int>(max_attempts);
  SQLFLOW_ASSIGN_OR_RETURN(
      int64_t backoff_ms,
      IntAttr(element, "backoffMs", policy.initial_delay_ns / 1'000'000));
  policy.initial_delay_ns = backoff_ms * 1'000'000;
  SQLFLOW_ASSIGN_OR_RETURN(
      policy.multiplier,
      DoubleAttr(element, "multiplier", policy.multiplier));
  SQLFLOW_ASSIGN_OR_RETURN(policy.jitter,
                           DoubleAttr(element, "jitter", policy.jitter));
  SQLFLOW_ASSIGN_OR_RETURN(
      int64_t seed,
      IntAttr(element, "seed",
              static_cast<int64_t>(policy.jitter_seed)));
  policy.jitter_seed = static_cast<uint64_t>(seed);
  std::string retry_on =
      element.GetAttribute("retryOn").value_or("transient");
  RetryActivity::RetryPredicate predicate;  // default: transient codes
  if (retry_on == "any") {
    predicate = [](const Status&) { return true; };
  } else if (retry_on != "transient") {
    return Status::InvalidArgument(
        "<Retry> retryOn must be 'transient' or 'any', got '" + retry_on +
        "'");
  }
  SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr body,
                           loader.BuildBody(element, "retry-body"));
  return ActivityPtr(std::make_shared<RetryActivity>(
      NameAttr(element, "retry"), std::move(body), policy,
      std::move(predicate)));
}

// <TimeoutScope budgetMs="100"> body </TimeoutScope>
Result<ActivityPtr> BuildTimeoutScope(const xml::Node& element,
                                      XomlLoader& loader) {
  std::optional<std::string> budget = element.GetAttribute("budgetMs");
  if (!budget.has_value()) {
    return Status::InvalidArgument("<TimeoutScope> requires budgetMs=");
  }
  SQLFLOW_ASSIGN_OR_RETURN(int64_t budget_ms,
                           Value::String(*budget).AsInteger());
  SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr body,
                           loader.BuildBody(element, "timeout-body"));
  return ActivityPtr(std::make_shared<TimeoutScope>(
      NameAttr(element, "timeout-scope"), std::move(body),
      budget_ms * 1'000'000));
}

// <CompensationScope>
//   <Step> <Action>one activity</Action>
//          <Compensation>one activity</Compensation>? </Step>*
// </CompensationScope>
Result<ActivityPtr> BuildCompensationScope(const xml::Node& element,
                                           XomlLoader& loader) {
  auto scope = std::make_shared<CompensationScope>(
      NameAttr(element, "compensation-scope"));
  for (const xml::NodePtr& child : element.children()) {
    if (!child->is_element()) continue;
    if (child->name() != "Step") {
      return Status::InvalidArgument(
          "<CompensationScope> children must be <Step>, got <" +
          child->name() + ">");
    }
    ActivityPtr action;
    ActivityPtr compensation;
    for (const xml::NodePtr& part : child->children()) {
      if (!part->is_element()) continue;
      if (part->name() == "Action") {
        SQLFLOW_ASSIGN_OR_RETURN(action,
                                 loader.BuildBody(*part, "step-action"));
      } else if (part->name() == "Compensation") {
        SQLFLOW_ASSIGN_OR_RETURN(
            compensation, loader.BuildBody(*part, "step-compensation"));
      } else {
        return Status::InvalidArgument(
            "<Step> children must be <Action>/<Compensation>, got <" +
            part->name() + ">");
      }
    }
    if (action == nullptr) {
      return Status::InvalidArgument("<Step> requires an <Action>");
    }
    scope->AddStep(std::move(action), std::move(compensation));
  }
  return ActivityPtr(std::move(scope));
}

Result<VarValue> ParseVariableValue(const xml::Node& element) {
  std::string type = element.GetAttribute("type").value_or("string");
  if (type == "xml") {
    for (const xml::NodePtr& child : element.children()) {
      if (child->is_element()) {
        return VarValue(child->Clone());
      }
    }
    return Status::InvalidArgument("xml variable '" +
                                   NameAttr(element, "?") +
                                   "' has no element content");
  }
  std::string raw = element.GetAttribute("value").value_or("");
  if (type == "string") return VarValue(Value::String(raw));
  Value as_string = Value::String(raw);
  if (type == "integer") {
    SQLFLOW_ASSIGN_OR_RETURN(int64_t v, as_string.AsInteger());
    return VarValue(Value::Integer(v));
  }
  if (type == "double") {
    SQLFLOW_ASSIGN_OR_RETURN(double v, as_string.AsDouble());
    return VarValue(Value::Double(v));
  }
  if (type == "boolean") {
    SQLFLOW_ASSIGN_OR_RETURN(bool v, as_string.AsBoolean());
    return VarValue(Value::Boolean(v));
  }
  return Status::InvalidArgument("unknown variable type '" + type + "'");
}

}  // namespace

XomlLoader::XomlLoader() {
  builders_["Sequence"] = BuildSequence;
  builders_["Flow"] = BuildFlow;
  builders_["RepeatUntil"] = BuildRepeatUntil;
  builders_["While"] = BuildWhile;
  builders_["IfElse"] = BuildIfElse;
  builders_["Assign"] = BuildAssign;
  builders_["Invoke"] = BuildInvoke;
  builders_["Empty"] = BuildEmpty;
  builders_["Terminate"] = BuildTerminate;
  builders_["Retry"] = BuildRetry;
  builders_["TimeoutScope"] = BuildTimeoutScope;
  builders_["CompensationScope"] = BuildCompensationScope;
}

Status XomlLoader::RegisterActivityType(const std::string& element_name,
                                        ActivityBuilder builder) {
  if (builders_.count(element_name) > 0) {
    return Status::AlreadyExists("activity type <" + element_name +
                                 "> already registered");
  }
  builders_.emplace(element_name, std::move(builder));
  return Status::OK();
}

Result<ActivityPtr> XomlLoader::BuildActivity(const xml::Node& element) {
  auto it = builders_.find(element.name());
  if (it == builders_.end()) {
    return Status::NotFound("unknown activity element <" + element.name() +
                            ">");
  }
  return it->second(element, *this);
}

Result<ActivityPtr> XomlLoader::BuildBody(const xml::Node& parent,
                                          const std::string& implicit_name) {
  std::vector<ActivityPtr> children;
  for (const xml::NodePtr& child : parent.children()) {
    if (!child->is_element()) continue;
    SQLFLOW_ASSIGN_OR_RETURN(ActivityPtr activity, BuildActivity(*child));
    children.push_back(std::move(activity));
  }
  if (children.empty()) {
    return Status::InvalidArgument("<" + parent.name() +
                                   "> has no activity children");
  }
  if (children.size() == 1) return children[0];
  return ActivityPtr(std::make_shared<SequenceActivity>(
      implicit_name, std::move(children)));
}

Result<ProcessDefinitionPtr> XomlLoader::LoadProcess(
    std::string_view markup) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr root, xml::Parse(markup));
  if (root->name() != "Process") {
    return Status::InvalidArgument("XOML root must be <Process>, got <" +
                                   root->name() + ">");
  }
  std::optional<std::string> process_name = root->GetAttribute("name");
  if (!process_name.has_value()) {
    return Status::InvalidArgument("<Process> requires name=");
  }

  std::vector<std::pair<std::string, VarValue>> variables;
  ActivityPtr body;
  for (const xml::NodePtr& child : root->children()) {
    if (!child->is_element()) continue;
    if (child->name() == "Variables") {
      for (const xml::NodePtr& var : child->children()) {
        if (!var->is_element()) continue;
        if (var->name() != "Variable") {
          return Status::InvalidArgument(
              "<Variables> children must be <Variable>");
        }
        std::optional<std::string> var_name = var->GetAttribute("name");
        if (!var_name.has_value()) {
          return Status::InvalidArgument("<Variable> requires name=");
        }
        SQLFLOW_ASSIGN_OR_RETURN(VarValue initial,
                                 ParseVariableValue(*var));
        variables.emplace_back(*var_name, std::move(initial));
      }
      continue;
    }
    if (body != nullptr) {
      return Status::InvalidArgument(
          "<Process> must contain exactly one root activity");
    }
    SQLFLOW_ASSIGN_OR_RETURN(body, BuildActivity(*child));
  }
  if (body == nullptr) {
    return Status::InvalidArgument("<Process> has no root activity");
  }
  auto definition =
      std::make_shared<ProcessDefinition>(*process_name, std::move(body));
  for (auto& [var_name, initial] : variables) {
    definition->DeclareVariable(var_name, std::move(initial));
  }
  return definition;
}

std::vector<std::string> XomlLoader::RegisteredActivityTypes() const {
  std::vector<std::string> names;
  names.reserve(builders_.size());
  for (const auto& [name, builder] : builders_) names.push_back(name);
  return names;
}

}  // namespace sqlflow::wfc
