#include "wfc/activities.h"

#include <cmath>

#include "wfc/robustness.h"

namespace sqlflow::wfc {

// --- Condition --------------------------------------------------------------

Condition Condition::XPath(std::string expr) {
  Condition c;
  c.xpath_ = std::move(expr);
  return c;
}

Condition Condition::Native(Fn fn) {
  Condition c;
  c.fn_ = std::move(fn);
  return c;
}

Result<bool> Condition::Evaluate(ProcessContext& ctx) const {
  if (fn_ != nullptr) return fn_(ctx);
  if (!xpath_.empty()) return ctx.EvalCondition(xpath_);
  return Status::InvalidArgument("empty condition");
}

// --- value conversions --------------------------------------------------------

VarValue XPathValueToVarValue(const xpath::XPathValue& v) {
  if (v.is_node_set()) {
    xml::NodePtr first = v.FirstNode();
    if (first == nullptr) return VarValue(Value::Null());
    return VarValue(first->Clone());
  }
  return VarValue(XPathValueToScalar(v));
}

Value XPathValueToScalar(const xpath::XPathValue& v) {
  switch (v.kind()) {
    case xpath::XPathValue::Kind::kBoolean:
      return Value::Boolean(v.ToBool());
    case xpath::XPathValue::Kind::kNumber: {
      double d = v.ToNumber();
      if (!std::isnan(d) &&
          d == static_cast<double>(static_cast<int64_t>(d))) {
        return Value::Integer(static_cast<int64_t>(d));
      }
      return Value::Double(d);
    }
    default:
      return Value::String(v.ToStringValue());
  }
}

// --- SequenceActivity ---------------------------------------------------------

SequenceActivity::SequenceActivity(std::string name,
                                   std::vector<ActivityPtr> children)
    : Activity(std::move(name)), children_(std::move(children)) {}

Status SequenceActivity::Execute(ProcessContext& ctx) {
  for (const ActivityPtr& child : children_) {
    SQLFLOW_RETURN_IF_ERROR(child->Run(ctx));
    if (ctx.terminate_requested()) break;
  }
  return Status::OK();
}

// --- WhileActivity --------------------------------------------------------------

WhileActivity::WhileActivity(std::string name, Condition condition,
                             ActivityPtr body, uint64_t max_iterations)
    : Activity(std::move(name)),
      condition_(std::move(condition)),
      body_(std::move(body)),
      max_iterations_(max_iterations) {}

Status WhileActivity::Execute(ProcessContext& ctx) {
  uint64_t iterations = 0;
  while (true) {
    if (ctx.terminate_requested()) return Status::OK();
    SQLFLOW_ASSIGN_OR_RETURN(bool keep_going, condition_.Evaluate(ctx));
    if (!keep_going) return Status::OK();
    if (++iterations > max_iterations_) {
      return Status::ExecutionError(
          "while activity '" + name() + "' exceeded " +
          std::to_string(max_iterations_) + " iterations");
    }
    SQLFLOW_RETURN_IF_ERROR(body_->Run(ctx));
  }
}

// --- FlowActivity ---------------------------------------------------------------

FlowActivity::FlowActivity(std::string name,
                           std::vector<ActivityPtr> branches)
    : Activity(std::move(name)), branches_(std::move(branches)) {}

Status FlowActivity::Execute(ProcessContext& ctx) {
  Status first_fault = Status::OK();
  for (const ActivityPtr& branch : branches_) {
    if (ctx.terminate_requested()) break;
    Status st = branch->Run(ctx);
    if (first_fault.ok() && !st.ok()) first_fault = st;
  }
  return first_fault;
}

// --- RepeatUntilActivity ---------------------------------------------------------

RepeatUntilActivity::RepeatUntilActivity(std::string name,
                                         ActivityPtr body, Condition until,
                                         uint64_t max_iterations)
    : Activity(std::move(name)),
      body_(std::move(body)),
      until_(std::move(until)),
      max_iterations_(max_iterations) {}

Status RepeatUntilActivity::Execute(ProcessContext& ctx) {
  uint64_t iterations = 0;
  while (true) {
    if (ctx.terminate_requested()) return Status::OK();
    if (++iterations > max_iterations_) {
      return Status::ExecutionError(
          "repeatUntil activity '" + name() + "' exceeded " +
          std::to_string(max_iterations_) + " iterations");
    }
    SQLFLOW_RETURN_IF_ERROR(body_->Run(ctx));
    if (ctx.terminate_requested()) return Status::OK();
    SQLFLOW_ASSIGN_OR_RETURN(bool done, until_.Evaluate(ctx));
    if (done) return Status::OK();
  }
}

// --- IfElseActivity -------------------------------------------------------------

IfElseActivity::IfElseActivity(std::string name, Condition condition,
                               ActivityPtr then_activity,
                               ActivityPtr else_activity)
    : Activity(std::move(name)),
      condition_(std::move(condition)),
      then_activity_(std::move(then_activity)),
      else_activity_(std::move(else_activity)) {}

Status IfElseActivity::Execute(ProcessContext& ctx) {
  SQLFLOW_ASSIGN_OR_RETURN(bool cond, condition_.Evaluate(ctx));
  if (cond) {
    if (then_activity_ != nullptr) return then_activity_->Run(ctx);
  } else {
    if (else_activity_ != nullptr) return else_activity_->Run(ctx);
  }
  return Status::OK();
}

// --- AssignActivity -------------------------------------------------------------

AssignActivity::AssignActivity(std::string name)
    : Activity(std::move(name)) {}

AssignActivity& AssignActivity::CopyLiteral(Value v,
                                            std::string to_variable) {
  Copy c;
  c.literal = std::move(v);
  c.to_variable = std::move(to_variable);
  copies_.push_back(std::move(c));
  return *this;
}

AssignActivity& AssignActivity::CopyExpr(std::string from_xpath,
                                         std::string to_variable) {
  Copy c;
  c.from_xpath = std::move(from_xpath);
  c.to_variable = std::move(to_variable);
  copies_.push_back(std::move(c));
  return *this;
}

AssignActivity& AssignActivity::CopyExprToNode(std::string from_xpath,
                                               std::string to_variable,
                                               std::string to_xpath) {
  Copy c;
  c.from_xpath = std::move(from_xpath);
  c.to_variable = std::move(to_variable);
  c.to_xpath = std::move(to_xpath);
  copies_.push_back(std::move(c));
  return *this;
}

AssignActivity& AssignActivity::CopyFn(
    std::function<Result<VarValue>(ProcessContext&)> fn,
    std::string to_variable) {
  Copy c;
  c.from_fn = std::move(fn);
  c.to_variable = std::move(to_variable);
  copies_.push_back(std::move(c));
  return *this;
}

Status AssignActivity::Execute(ProcessContext& ctx) {
  for (const Copy& copy : copies_) {
    // 1. Produce the source value.
    VarValue source;
    std::optional<xpath::XPathValue> source_xpath_value;
    if (copy.literal.has_value()) {
      source = VarValue(*copy.literal);
    } else if (copy.from_fn != nullptr) {
      SQLFLOW_ASSIGN_OR_RETURN(source, copy.from_fn(ctx));
    } else if (!copy.from_xpath.empty()) {
      SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue v,
                               ctx.EvalXPath(copy.from_xpath));
      source_xpath_value = v;
      source = XPathValueToVarValue(v);
    } else {
      return Status::InvalidArgument("assign copy has no source");
    }

    // 2. Write to the target.
    if (copy.to_xpath.empty()) {
      ctx.variables().Set(copy.to_variable, std::move(source));
      continue;
    }
    // Node-targeted write: locate the node inside the target variable's
    // document and replace its content.
    SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr doc,
                             ctx.variables().GetXml(copy.to_variable));
    (void)doc;  // the path itself addresses via $variable
    SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue target,
                             ctx.EvalXPath(copy.to_xpath));
    xml::NodePtr target_node = target.FirstNode();
    if (target_node == nullptr) {
      return Status::NotFound("assign target '" + copy.to_xpath +
                              "' selected no node");
    }
    if (source_xpath_value.has_value() &&
        source_xpath_value->is_node_set() &&
        source_xpath_value->FirstNode() != nullptr) {
      // Replace children with a clone of the source node's content.
      xml::NodePtr src = source_xpath_value->FirstNode();
      target_node->ClearChildren();
      for (const xml::NodePtr& child : src->children()) {
        target_node->AppendChild(child->Clone());
      }
    } else {
      std::string text;
      if (std::holds_alternative<Value>(source)) {
        text = std::get<Value>(source).AsString();
      } else if (std::holds_alternative<xml::NodePtr>(source)) {
        text = std::get<xml::NodePtr>(source)->TextContent();
      }
      target_node->SetTextContent(text);
    }
  }
  return Status::OK();
}

// --- InvokeActivity --------------------------------------------------------------

InvokeActivity::InvokeActivity(
    std::string name, std::string service_name,
    std::vector<std::pair<std::string, std::string>> inputs,
    std::string output_variable, int retry_attempts)
    : Activity(std::move(name)),
      service_name_(std::move(service_name)),
      inputs_(std::move(inputs)),
      output_variable_(std::move(output_variable)),
      retry_attempts_(retry_attempts) {}

Status InvokeActivity::Execute(ProcessContext& ctx) {
  if (ctx.services() == nullptr) {
    return Status::ExecutionError("no service registry available");
  }
  SQLFLOW_ASSIGN_OR_RETURN(WebServicePtr service,
                           ctx.services()->Find(service_name_));
  std::vector<std::pair<std::string, Value>> params;
  params.reserve(inputs_.size());
  for (const auto& [param_name, source_expr] : inputs_) {
    SQLFLOW_ASSIGN_OR_RETURN(xpath::XPathValue v,
                             ctx.EvalXPath(source_expr));
    params.emplace_back(param_name, XPathValueToScalar(v));
  }
  xml::NodePtr request = MakeRequest(params);
  ctx.audit().Record(AuditEventKind::kServiceInvoked, name(),
                     service_name_);
  SQLFLOW_ASSIGN_OR_RETURN(
      xml::NodePtr response,
      InvokeWithRecovery(*service, request, retry_attempts_));
  if (!output_variable_.empty()) {
    SQLFLOW_ASSIGN_OR_RETURN(Value out, GetResponseValue(response));
    ctx.variables().Set(output_variable_, VarValue(std::move(out)));
  }
  return Status::OK();
}

// --- SnippetActivity --------------------------------------------------------------

SnippetActivity::SnippetActivity(std::string name, Fn fn)
    : Activity(std::move(name)), fn_(std::move(fn)) {}

Status SnippetActivity::Execute(ProcessContext& ctx) {
  if (fn_ == nullptr) {
    return Status::InvalidArgument("snippet activity '" + name() +
                                   "' has no code");
  }
  return fn_(ctx);
}

// --- ScopeActivity ----------------------------------------------------------------

ScopeActivity::ScopeActivity(std::string name, ActivityPtr body,
                             ActivityPtr fault_handler)
    : Activity(std::move(name)),
      body_(std::move(body)),
      fault_handler_(std::move(fault_handler)) {}

Status ScopeActivity::Execute(ProcessContext& ctx) {
  Status st = body_->Run(ctx);
  if (st.ok()) return st;
  if (fault_handler_ == nullptr) return st;
  // The caught fault must not vanish into the handler: expose its
  // code/message as $fault / $faultCode and record a dedicated kFault
  // event, so handlers can branch on what went wrong and monitoring can
  // count faults instead of inferring them from notes.
  ExposeFault(ctx, name(), st);
  return fault_handler_->Run(ctx);
}

}  // namespace sqlflow::wfc
