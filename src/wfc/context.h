#ifndef SQLFLOW_WFC_CONTEXT_H_
#define SQLFLOW_WFC_CONTEXT_H_

#include <algorithm>
#include <cstdint>
#include <functional>
#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sql/data_source.h"
#include "wfc/audit.h"
#include "wfc/service.h"
#include "wfc/variable.h"
#include "xpath/evaluator.h"

namespace sqlflow::wfc {

class InstanceJournal;

/// Execution state of one running process instance, passed to every
/// activity. Bundles the variable pool, the engine's shared facilities
/// (services, data sources, XPath extension functions), and the audit
/// trail.
class ProcessContext {
 public:
  ProcessContext(uint64_t instance_id, std::string process_name,
                 ServiceRegistry* services,
                 sql::DataSourceRegistry* data_sources,
                 const xpath::FunctionRegistry* xpath_functions);

  uint64_t instance_id() const { return instance_id_; }
  const std::string& process_name() const { return process_name_; }

  VariableSet& variables() { return variables_; }
  const VariableSet& variables() const { return variables_; }

  ServiceRegistry* services() { return services_; }
  sql::DataSourceRegistry* data_sources() { return data_sources_; }
  const xpath::FunctionRegistry* xpath_functions() const {
    return xpath_functions_;
  }

  AuditTrail& audit() { return audit_; }
  const AuditTrail& audit() const { return audit_; }

  bool terminate_requested() const { return terminate_requested_; }
  void RequestTerminate() { terminate_requested_ = true; }

  /// Dehydration journal (wfc/persist.h), set by a durability-enabled
  /// engine; null when the instance is not persisted. Not owned.
  InstanceJournal* journal() const { return journal_; }
  void SetJournal(InstanceJournal* journal) { journal_ = journal; }

  // --- cooperative scheduling ------------------------------------------------
  /// Installed by the engine's deterministic scheduler; called at every
  /// activity boundary (Activity::Run entry) so the scheduler can hand
  /// the execution token to another instance. Instances run by the
  /// plain engine (or the free-running pool) have no yield function and
  /// pay nothing here.
  void SetSchedulerYield(std::function<void()> yield) {
    scheduler_yield_ = std::move(yield);
  }
  void SchedulerYield() {
    if (scheduler_yield_) scheduler_yield_();
  }

  // --- simulated time & deadlines --------------------------------------------
  // The instance clock is *virtual*: it only advances when a robustness
  // wrapper simulates a wait (retry backoff). That keeps every fault
  // schedule, backoff trajectory, and timeout decision deterministic —
  // the precondition for seed-reproducible chaos runs.
  static constexpr int64_t kNoDeadline =
      std::numeric_limits<int64_t>::max();

  int64_t virtual_now_ns() const { return virtual_now_ns_; }
  void AdvanceVirtualTime(int64_t ns) {
    if (ns > 0) virtual_now_ns_ += ns;
  }

  /// Deadlines nest (BPEL scopes with onAlarm): the effective deadline
  /// is the tightest enclosing one, so an inner TimeoutScope can never
  /// outlive its parent. PushDeadline clamps to the current effective
  /// deadline for that reason.
  void PushDeadline(int64_t absolute_ns) {
    deadlines_.push_back(std::min(absolute_ns, EffectiveDeadlineNs()));
  }
  void PopDeadline() {
    if (!deadlines_.empty()) deadlines_.pop_back();
  }
  int64_t EffectiveDeadlineNs() const {
    return deadlines_.empty() ? kNoDeadline : deadlines_.back();
  }
  bool DeadlineExceeded() const {
    return EffectiveDeadlineNs() != kNoDeadline &&
           virtual_now_ns_ >= EffectiveDeadlineNs();
  }

  /// XPath environment whose `$name` resolves to this instance's
  /// variables: XML variables become node-sets, scalars become
  /// strings/numbers/booleans.
  xpath::EvalEnv XPathEnv() const;

  /// Evaluates an XPath expression against the variable pool (no
  /// context node; paths must start from `$variable`).
  Result<xpath::XPathValue> EvalXPath(const std::string& expr) const;

  /// Evaluates an XPath expression to a boolean (while/if conditions).
  Result<bool> EvalCondition(const std::string& expr) const;

 private:
  uint64_t instance_id_;
  std::string process_name_;
  VariableSet variables_;
  ServiceRegistry* services_;
  sql::DataSourceRegistry* data_sources_;
  const xpath::FunctionRegistry* xpath_functions_;
  AuditTrail audit_;
  InstanceJournal* journal_ = nullptr;
  std::function<void()> scheduler_yield_;
  bool terminate_requested_ = false;
  int64_t virtual_now_ns_ = 0;
  std::vector<int64_t> deadlines_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_CONTEXT_H_
