#ifndef SQLFLOW_WFC_CONTEXT_H_
#define SQLFLOW_WFC_CONTEXT_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "sql/data_source.h"
#include "wfc/audit.h"
#include "wfc/service.h"
#include "wfc/variable.h"
#include "xpath/evaluator.h"

namespace sqlflow::wfc {

/// Execution state of one running process instance, passed to every
/// activity. Bundles the variable pool, the engine's shared facilities
/// (services, data sources, XPath extension functions), and the audit
/// trail.
class ProcessContext {
 public:
  ProcessContext(uint64_t instance_id, std::string process_name,
                 ServiceRegistry* services,
                 sql::DataSourceRegistry* data_sources,
                 const xpath::FunctionRegistry* xpath_functions);

  uint64_t instance_id() const { return instance_id_; }
  const std::string& process_name() const { return process_name_; }

  VariableSet& variables() { return variables_; }
  const VariableSet& variables() const { return variables_; }

  ServiceRegistry* services() { return services_; }
  sql::DataSourceRegistry* data_sources() { return data_sources_; }
  const xpath::FunctionRegistry* xpath_functions() const {
    return xpath_functions_;
  }

  AuditTrail& audit() { return audit_; }
  const AuditTrail& audit() const { return audit_; }

  bool terminate_requested() const { return terminate_requested_; }
  void RequestTerminate() { terminate_requested_ = true; }

  /// XPath environment whose `$name` resolves to this instance's
  /// variables: XML variables become node-sets, scalars become
  /// strings/numbers/booleans.
  xpath::EvalEnv XPathEnv() const;

  /// Evaluates an XPath expression against the variable pool (no
  /// context node; paths must start from `$variable`).
  Result<xpath::XPathValue> EvalXPath(const std::string& expr) const;

  /// Evaluates an XPath expression to a boolean (while/if conditions).
  Result<bool> EvalCondition(const std::string& expr) const;

 private:
  uint64_t instance_id_;
  std::string process_name_;
  VariableSet variables_;
  ServiceRegistry* services_;
  sql::DataSourceRegistry* data_sources_;
  const xpath::FunctionRegistry* xpath_functions_;
  AuditTrail audit_;
  bool terminate_requested_ = false;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_CONTEXT_H_
