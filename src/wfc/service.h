#ifndef SQLFLOW_WFC_SERVICE_H_
#define SQLFLOW_WFC_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "xml/node.h"

namespace sqlflow::wfc {

/// A callable service endpoint. Requests and responses are XML messages
/// (`<request><param name="..">..</param></request>` /
/// `<response>..</response>`), which is what makes the adapter-vs-inline
/// comparison of Fig. 1 meaningful: going through a service costs
/// marshalling even in-process.
class WebService {
 public:
  virtual ~WebService() = default;
  virtual const std::string& name() const = 0;
  virtual Result<xml::NodePtr> Invoke(const xml::NodePtr& request) = 0;
};

using WebServicePtr = std::shared_ptr<WebService>;

/// Builds `<request>` messages and reads `<response>` messages.
xml::NodePtr MakeRequest(
    const std::vector<std::pair<std::string, Value>>& params);
Result<Value> GetRequestParam(const xml::NodePtr& request,
                              const std::string& name);
xml::NodePtr MakeResponse(const Value& value);
Result<Value> GetResponseValue(const xml::NodePtr& response);

/// Wraps a plain function `(args in declared order) → value` as a
/// WebService. The stand-in for the paper's remote services
/// (OrderFromSupplier et al.).
class SimpleWebService : public WebService {
 public:
  using Handler =
      std::function<Result<Value>(const std::vector<Value>& args)>;

  SimpleWebService(std::string name, std::vector<std::string> param_names,
                   Handler handler);

  const std::string& name() const override { return name_; }
  Result<xml::NodePtr> Invoke(const xml::NodePtr& request) override;

  uint64_t invocation_count() const {
    return invocation_count_.load(std::memory_order_relaxed);
  }

 private:
  std::string name_;
  std::vector<std::string> param_names_;
  Handler handler_;
  /// Concurrent instances share one registry entry, so the counter is
  /// bumped from every worker thread at once.
  std::atomic<uint64_t> invocation_count_{0};
};

/// Exactly-once decorator for a service endpoint across crash/resume:
/// requests carrying an `idempotency_key` parameter are answered from a
/// response cache on repeat, without re-invoking the inner service.
/// The cache lives in the service object — which survives a simulated
/// crash (only the database process image is rebuilt) — so a resumed
/// workflow step that re-sends the same key gets the recorded response
/// while the real side effect happened once. Mirrors the dedup tables
/// real engines keep next to their dehydration store. Requests without
/// the key pass straight through.
class IdempotentService : public WebService {
 public:
  /// The reserved request-parameter name. Forwarded as-is: services
  /// read only their declared parameters, so the extra one is inert.
  static const char* kKeyParam;

  explicit IdempotentService(WebServicePtr inner);

  const std::string& name() const override;
  Result<xml::NodePtr> Invoke(const xml::NodePtr& request) override;

  uint64_t duplicates_suppressed() const {
    return duplicates_suppressed_.load(std::memory_order_relaxed);
  }
  /// Calls that actually reached the wrapped service — the real side
  /// effect count the exactly-once tests assert on.
  uint64_t inner_invocations() const {
    return inner_invocations_.load(std::memory_order_relaxed);
  }

 private:
  WebServicePtr inner_;
  std::mutex mutex_;
  std::map<std::string, xml::NodePtr> responses_;  // key → cached reply
  std::atomic<uint64_t> duplicates_suppressed_{0};
  std::atomic<uint64_t> inner_invocations_{0};
};

/// Connection-layer retry for service invocations, the `Invoke`-side
/// analogue of sql::RetryPolicy. Applied by InvokeWithRecovery.
struct ServiceRetryPolicy {
  int max_attempts = 1;  // 1 = retries disabled
};

/// Process-wide default consulted by InvokeWithRecovery when no
/// per-call override is given (the chaos harness arms this the same way
/// it arms Database::SetRetryPolicyDefault).
void SetServiceRetryPolicyDefault(ServiceRetryPolicy policy);
ServiceRetryPolicy GetServiceRetryPolicyDefault();

/// Invokes `service` through the chaos harness: consults the
/// process-wide sql::FaultInjector (FaultLayer::kService, site
/// "invoke <name>" on database "service") *before* the call — the fault
/// models a transport failure en route, so no service work happened and
/// a replay cannot double-invoke — and absorbs transient faults by
/// retrying up to the policy's max_attempts
/// (`max_attempts_override > 0` replaces the process default).
/// Counters: svc.retry.attempts per replay, svc.fault.absorbed when a
/// retry eventually succeeds. Faults *returned by the service itself*
/// are also retried when transient: the adapter layer plants its own
/// kService sites inside DataAccessService (see src/adapter), and those
/// propagate here as ordinary transient statuses.
Result<xml::NodePtr> InvokeWithRecovery(WebService& service,
                                        const xml::NodePtr& request,
                                        int max_attempts_override = 0);

/// Name → endpoint map, shared by all process instances of an engine.
class ServiceRegistry {
 public:
  Status Register(WebServicePtr service);
  Result<WebServicePtr> Find(const std::string& name) const;
  std::vector<std::string> ServiceNames() const;

 private:
  std::map<std::string, WebServicePtr> services_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_SERVICE_H_
