#ifndef SQLFLOW_WFC_SERVICE_H_
#define SQLFLOW_WFC_SERVICE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "xml/node.h"

namespace sqlflow::wfc {

/// A callable service endpoint. Requests and responses are XML messages
/// (`<request><param name="..">..</param></request>` /
/// `<response>..</response>`), which is what makes the adapter-vs-inline
/// comparison of Fig. 1 meaningful: going through a service costs
/// marshalling even in-process.
class WebService {
 public:
  virtual ~WebService() = default;
  virtual const std::string& name() const = 0;
  virtual Result<xml::NodePtr> Invoke(const xml::NodePtr& request) = 0;
};

using WebServicePtr = std::shared_ptr<WebService>;

/// Builds `<request>` messages and reads `<response>` messages.
xml::NodePtr MakeRequest(
    const std::vector<std::pair<std::string, Value>>& params);
Result<Value> GetRequestParam(const xml::NodePtr& request,
                              const std::string& name);
xml::NodePtr MakeResponse(const Value& value);
Result<Value> GetResponseValue(const xml::NodePtr& response);

/// Wraps a plain function `(args in declared order) → value` as a
/// WebService. The stand-in for the paper's remote services
/// (OrderFromSupplier et al.).
class SimpleWebService : public WebService {
 public:
  using Handler =
      std::function<Result<Value>(const std::vector<Value>& args)>;

  SimpleWebService(std::string name, std::vector<std::string> param_names,
                   Handler handler);

  const std::string& name() const override { return name_; }
  Result<xml::NodePtr> Invoke(const xml::NodePtr& request) override;

  uint64_t invocation_count() const { return invocation_count_; }

 private:
  std::string name_;
  std::vector<std::string> param_names_;
  Handler handler_;
  uint64_t invocation_count_ = 0;
};

/// Name → endpoint map, shared by all process instances of an engine.
class ServiceRegistry {
 public:
  Status Register(WebServicePtr service);
  Result<WebServicePtr> Find(const std::string& name) const;
  std::vector<std::string> ServiceNames() const;

 private:
  std::map<std::string, WebServicePtr> services_;
};

}  // namespace sqlflow::wfc

#endif  // SQLFLOW_WFC_SERVICE_H_
