#ifndef SQLFLOW_OBS_TRACE_H_
#define SQLFLOW_OBS_TRACE_H_

#include <cstdint>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace sqlflow::obs {

/// Nanoseconds on the process-wide monotonic trace clock (zero at the
/// first observability call of the process). All span timestamps and
/// audit timestamps share this clock, so the tracer and the audit trail
/// tell one consistent story.
int64_t NowNanos();

/// One finished span: a named, timed section of execution with
/// parent-child nesting and string attributes. Spans model the paper's
/// monitoring runtime service (IBM BIS monitoring, Oracle BPEL audit
/// pages) as structured data instead of log lines.
struct SpanRecord {
  uint64_t id = 0;
  uint64_t parent_id = 0;  // 0 = root
  uint32_t depth = 0;      // root spans have depth 0
  std::string name;
  int64_t start_ns = 0;     // trace-clock time of construction
  int64_t duration_ns = 0;  // filled when the guard closes
  std::vector<std::pair<std::string, std::string>> attributes;

  const std::string* FindAttribute(const std::string& key) const;
};

/// Process-wide buffer of completed spans. Appends are mutex-protected
/// and bounded: past `capacity()` new spans are dropped (and counted)
/// rather than growing without limit inside benchmark loops.
class TraceBuffer {
 public:
  static TraceBuffer& Global();

  void Append(SpanRecord record);
  std::vector<SpanRecord> Snapshot() const;
  void Clear();

  size_t size() const;
  uint64_t dropped() const;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  size_t capacity() const { return capacity_; }
  void set_capacity(size_t capacity) { capacity_ = capacity; }

 private:
  TraceBuffer() = default;

  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  uint64_t dropped_ = 0;
  bool enabled_ = true;
  size_t capacity_ = 1 << 16;
};

/// RAII span guard: opens a span on construction, measures with the
/// monotonic clock, and appends the finished record to the global
/// TraceBuffer on destruction. Nesting is tracked per thread — a Span
/// constructed while another is open becomes its child. Stack-only.
class Span {
 public:
  explicit Span(std::string name);
  ~Span();

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attaches a key-value attribute (exported into Chrome-trace args).
  void Set(const std::string& key, std::string value);

  /// Nanoseconds since this span opened.
  int64_t ElapsedNanos() const;

  uint64_t id() const { return record_.id; }

 private:
  SpanRecord record_;
  Span* parent_;  // thread-local stack link
};

// --- exporters --------------------------------------------------------------

/// Writes the buffer as Chrome trace_event JSON ("X" complete events,
/// attributes as args) — loadable in chrome://tracing / Perfetto.
void WriteChromeTrace(const std::vector<SpanRecord>& spans,
                      std::ostream& os);

/// Convenience: snapshot the global buffer into `path`.
Status WriteChromeTraceFile(const std::string& path);

/// Compact indented text rendering of the span forest, in start order:
///   process scenario 1.23ms (engine=bis)
///     activity SQL1 0.80ms
///       sql.exec 0.41ms (kind=select rows=5)
std::string RenderSpanTree(const std::vector<SpanRecord>& spans);

/// JSON string escaping shared by the exporters (and the metrics dump).
std::string JsonEscape(const std::string& s);

}  // namespace sqlflow::obs

#endif  // SQLFLOW_OBS_TRACE_H_
