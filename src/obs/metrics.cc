#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sqlflow::obs {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  int width = std::bit_width(value);  // 5..64
  uint64_t sub = (value >> (width - 4)) - 8;  // top 3 bits below the MSB
  return 16 + static_cast<size_t>(width - 5) * 8 +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 16) return index;
  size_t rel = index - 16;
  int width = 5 + static_cast<int>(rel / 8);
  uint64_t sub = rel % 8;
  uint64_t lower = (8 + sub) << (width - 4);
  return lower + ((uint64_t{1} << (width - 4)) - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ValueAtPercentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return *slot;
}

Histogram& MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return *slot;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " = " << counter->value() << "\n";
  }
  char buf[160];
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "histogram %s: count=%llu p50=%.3fms p95=%.3fms "
                  "p99=%.3fms max=%.3fms\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->count()),
                  histogram->p50() / 1e6, histogram->p95() / 1e6,
                  histogram->p99() / 1e6, histogram->max() / 1e6);
    os << buf;
  }
  return os.str();
}

}  // namespace sqlflow::obs
