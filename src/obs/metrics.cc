#include "obs/metrics.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstdio>
#include <sstream>

namespace sqlflow::obs {

size_t Histogram::BucketIndex(uint64_t value) {
  if (value < 16) return static_cast<size_t>(value);
  int width = std::bit_width(value);  // 5..64
  uint64_t sub = (value >> (width - 4)) - 8;  // top 3 bits below the MSB
  return 16 + static_cast<size_t>(width - 5) * 8 +
         static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < 16) return index;
  size_t rel = index - 16;
  int width = 5 + static_cast<int>(rel / 8);
  uint64_t sub = rel % 8;
  uint64_t lower = (8 + sub) << (width - 4);
  return lower + ((uint64_t{1} << (width - 4)) - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketIndex(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t prev = max_.load(std::memory_order_relaxed);
  while (prev < value &&
         !max_.compare_exchange_weak(prev, value,
                                     std::memory_order_relaxed)) {
  }
}

double Histogram::mean() const {
  uint64_t n = count();
  return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

uint64_t Histogram::ValueAtPercentile(double p) const {
  uint64_t n = count();
  if (n == 0) return 0;
  p = std::clamp(p, 0.0, 100.0);
  uint64_t target = static_cast<uint64_t>(
      std::ceil(p / 100.0 * static_cast<double>(n)));
  if (target == 0) target = 1;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= target) {
      return std::min(BucketUpperBound(i), max());
    }
  }
  return max();
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  // Heterogeneous find: the common (already-registered) path never
  // materializes a std::string key.
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return *it->second;
}

Histogram& MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return *it->second;
}

std::vector<std::string> MetricsRegistry::CounterNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) names.push_back(name);
  return names;
}

std::vector<std::string> MetricsRegistry::HistogramNames() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) names.push_back(name);
  return names;
}

std::vector<CounterSnapshot> MetricsRegistry::SnapshotCounters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<CounterSnapshot> out;
  out.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    out.push_back({name, counter->value()});
  }
  return out;
}

std::vector<HistogramSnapshot> MetricsRegistry::SnapshotHistograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    out.push_back({name, h->count(), h->sum(), h->p50(), h->p95(), h->p99(),
                   h->max()});
  }
  return out;
}

std::string MetricsRegistry::ToString() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::ostringstream os;
  for (const auto& [name, counter] : counters_) {
    os << "counter " << name << " = " << counter->value() << "\n";
  }
  char buf[160];
  for (const auto& [name, histogram] : histograms_) {
    std::snprintf(buf, sizeof buf,
                  "histogram %s: count=%llu p50=%.3fms p95=%.3fms "
                  "p99=%.3fms max=%.3fms\n",
                  name.c_str(),
                  static_cast<unsigned long long>(histogram->count()),
                  histogram->p50() / 1e6, histogram->p95() / 1e6,
                  histogram->p99() / 1e6, histogram->max() / 1e6);
    os << buf;
  }
  return os.str();
}

std::string MetricsRegistry::ToJson() const {
  // Metric names are dotted ASCII identifiers; escape quotes/backslashes
  // anyway so the document stays well-formed for any name.
  auto escape = [](const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      if (c == '"' || c == '\\') out.push_back('\\');
      out.push_back(c);
    }
    return out;
  };
  std::vector<CounterSnapshot> counters = SnapshotCounters();
  std::vector<HistogramSnapshot> histograms = SnapshotHistograms();
  std::ostringstream os;
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const CounterSnapshot& c : counters) {
    os << (first ? "" : ",") << "\n    \"" << escape(c.name)
       << "\": " << c.value;
    first = false;
  }
  os << (counters.empty() ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const HistogramSnapshot& h : histograms) {
    os << (first ? "" : ",") << "\n    \"" << escape(h.name)
       << "\": {\"count\": " << h.count << ", \"sum\": " << h.sum
       << ", \"p50\": " << h.p50 << ", \"p95\": " << h.p95
       << ", \"p99\": " << h.p99 << ", \"max\": " << h.max << "}";
    first = false;
  }
  os << (histograms.empty() ? "" : "\n  ") << "}\n}\n";
  return os.str();
}

}  // namespace sqlflow::obs
