#ifndef SQLFLOW_OBS_METRICS_H_
#define SQLFLOW_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace sqlflow::obs {

/// Monotonic named counter. Cheap enough (one relaxed atomic add) to
/// stay enabled inside benchmark loops.
class Counter {
 public:
  void Increment(uint64_t delta = 1) {
    value_.fetch_add(delta, std::memory_order_relaxed);
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

/// Fixed-bucket log-scale latency histogram. Values 0..15 are recorded
/// exactly; larger values land in one of 8 sub-buckets per power of two,
/// bounding the relative quantile error at 12.5%. Recording is lock-free
/// (relaxed atomics); accessors fold the buckets on demand.
class Histogram {
 public:
  // 16 exact buckets + 8 sub-buckets for each power of two 2^4..2^63.
  static constexpr size_t kNumBuckets = 16 + 60 * 8;

  void Record(uint64_t value);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }
  double mean() const;

  /// Upper bound of the bucket holding the p-th percentile sample
  /// (p in [0, 100]); 0 when empty. Exact for values < 16, within 12.5%
  /// above that.
  uint64_t ValueAtPercentile(double p) const;

  uint64_t p50() const { return ValueAtPercentile(50); }
  uint64_t p95() const { return ValueAtPercentile(95); }
  uint64_t p99() const { return ValueAtPercentile(99); }

  /// Bucket mapping, exposed for tests.
  static size_t BucketIndex(uint64_t value);
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::array<std::atomic<uint64_t>, kNumBuckets> buckets_{};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
};

/// Point-in-time view of one counter.
struct CounterSnapshot {
  std::string name;
  uint64_t value = 0;
};

/// Point-in-time view of one histogram (quantiles pre-folded).
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t p50 = 0;
  uint64_t p95 = 0;
  uint64_t p99 = 0;
  uint64_t max = 0;
};

/// Process-wide registry of named counters and histograms. Lookup takes
/// a mutex; returned references stay valid for the process lifetime, so
/// hot paths can cache them. Lookups are heterogeneous (std::less<>),
/// so a string_view name probes the map without allocating — only a
/// first-time registration pays for the key copy.
class MetricsRegistry {
 public:
  static MetricsRegistry& Global();

  Counter& GetCounter(std::string_view name);
  Histogram& GetHistogram(std::string_view name);

  std::vector<std::string> CounterNames() const;
  std::vector<std::string> HistogramNames() const;

  /// Consistent snapshot of every registered counter/histogram, in name
  /// order (the backing store for `sys.metrics` and --metrics dumps).
  std::vector<CounterSnapshot> SnapshotCounters() const;
  std::vector<HistogramSnapshot> SnapshotHistograms() const;

  /// Human-readable dump: one line per counter, one per histogram with
  /// count / p50 / p95 / p99 / max (histogram samples are nanoseconds,
  /// printed as milliseconds).
  std::string ToString() const;

  /// Whole-registry JSON document:
  /// {"counters": {name: value, ...},
  ///  "histograms": {name: {count, sum, p50, p95, p99, max}, ...}}
  std::string ToJson() const;

 private:
  MetricsRegistry() = default;

  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace sqlflow::obs

#endif  // SQLFLOW_OBS_METRICS_H_
