#include "obs/trace.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <ostream>
#include <sstream>

namespace sqlflow::obs {

namespace {

std::chrono::steady_clock::time_point TraceEpoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

std::atomic<uint64_t> g_next_span_id{1};

thread_local Span* g_current_span = nullptr;

}  // namespace

int64_t NowNanos() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - TraceEpoch())
      .count();
}

const std::string* SpanRecord::FindAttribute(const std::string& key) const {
  for (const auto& [k, v] : attributes) {
    if (k == key) return &v;
  }
  return nullptr;
}

TraceBuffer& TraceBuffer::Global() {
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

void TraceBuffer::Append(SpanRecord record) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (spans_.size() >= capacity_) {
    ++dropped_;
    return;
  }
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> TraceBuffer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

void TraceBuffer::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  spans_.clear();
  dropped_ = 0;
}

size_t TraceBuffer::size() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

uint64_t TraceBuffer::dropped() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return dropped_;
}

Span::Span(std::string name) : parent_(g_current_span) {
  record_.id = g_next_span_id.fetch_add(1, std::memory_order_relaxed);
  record_.name = std::move(name);
  if (parent_ != nullptr) {
    record_.parent_id = parent_->record_.id;
    record_.depth = parent_->record_.depth + 1;
  }
  record_.start_ns = NowNanos();
  g_current_span = this;
}

Span::~Span() {
  record_.duration_ns = NowNanos() - record_.start_ns;
  g_current_span = parent_;
  TraceBuffer& buffer = TraceBuffer::Global();
  if (buffer.enabled()) buffer.Append(std::move(record_));
}

void Span::Set(const std::string& key, std::string value) {
  record_.attributes.emplace_back(key, std::move(value));
}

int64_t Span::ElapsedNanos() const {
  return NowNanos() - record_.start_ns;
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 8);
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void WriteChromeTrace(const std::vector<SpanRecord>& spans,
                      std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SpanRecord& span : spans) {
    if (!first) os << ",";
    first = false;
    // Chrome's ts/dur are microseconds; keep fractions for sub-us spans.
    os << "\n{\"name\":\"" << JsonEscape(span.name)
       << "\",\"ph\":\"X\",\"pid\":1,\"tid\":1"
       << ",\"ts\":" << span.start_ns / 1e3
       << ",\"dur\":" << span.duration_ns / 1e3 << ",\"args\":{";
    os << "\"span_id\":" << span.id << ",\"parent_id\":" << span.parent_id;
    for (const auto& [key, value] : span.attributes) {
      os << ",\"" << JsonEscape(key) << "\":\"" << JsonEscape(value)
         << "\"";
    }
    os << "}}";
  }
  os << "\n],\"displayTimeUnit\":\"ms\"}\n";
}

Status WriteChromeTraceFile(const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::ExecutionError("cannot open trace file '" + path + "'");
  }
  WriteChromeTrace(TraceBuffer::Global().Snapshot(), out);
  out.flush();
  if (!out) {
    return Status::ExecutionError("failed writing trace file '" + path +
                                  "'");
  }
  return Status::OK();
}

namespace {

std::string FormatMillis(int64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.3fms", ns / 1e6);
  return buf;
}

void RenderNode(const SpanRecord& span,
                const std::multimap<uint64_t, const SpanRecord*>& children,
                int indent, std::ostringstream* os) {
  *os << std::string(static_cast<size_t>(indent) * 2, ' ') << span.name
      << ' ' << FormatMillis(span.duration_ns);
  if (!span.attributes.empty()) {
    *os << " (";
    for (size_t i = 0; i < span.attributes.size(); ++i) {
      if (i > 0) *os << ' ';
      *os << span.attributes[i].first << '=' << span.attributes[i].second;
    }
    *os << ')';
  }
  *os << '\n';
  auto [begin, end] = children.equal_range(span.id);
  for (auto it = begin; it != end; ++it) {
    RenderNode(*it->second, children, indent + 1, os);
  }
}

}  // namespace

std::string RenderSpanTree(const std::vector<SpanRecord>& spans) {
  std::vector<const SpanRecord*> ordered;
  ordered.reserve(spans.size());
  for (const SpanRecord& span : spans) ordered.push_back(&span);
  std::stable_sort(ordered.begin(), ordered.end(),
                   [](const SpanRecord* a, const SpanRecord* b) {
                     return a->start_ns < b->start_ns;
                   });
  std::multimap<uint64_t, const SpanRecord*> children;
  for (const SpanRecord* span : ordered) {
    if (span->parent_id != 0) children.emplace(span->parent_id, span);
  }
  std::ostringstream os;
  for (const SpanRecord* span : ordered) {
    if (span->parent_id == 0) RenderNode(*span, children, 0, &os);
  }
  return os.str();
}

}  // namespace sqlflow::obs
