#ifndef SQLFLOW_SOA_XPATH_EXTENSIONS_H_
#define SQLFLOW_SOA_XPATH_EXTENSIONS_H_

#include <string>

#include "common/status.h"
#include "sql/data_source.h"
#include "xpath/functions.h"

namespace sqlflow::soa {

/// Configuration for BPEL PM's proprietary XPath extension functions:
/// the registry resolving connection strings and the default (static)
/// connection used when a function is not given one explicitly.
struct SoaConfig {
  sql::DataSourceRegistry* data_sources = nullptr;
  std::string default_connection;  // e.g. "memdb://orders"
};

/// Registers the Sec. V-B functions into `registry`:
///
///  - `ora:query-database(sql [, connection])` → node-set holding one
///    RowSet with the query result.
///  - `ora:sequence-next-val(sequence [, connection])` → number.
///  - `ora:lookup-table(outputColumn, table, inputColumn, key
///    [, connection])` → string; executes the generated
///    SELECT outputColumn FROM table WHERE inputColumn = key.
///  - `orcl:processXSQL(xsqlDocument)` → node-set holding
///    <xsql-results>; the argument is an XSQL document node-set or its
///    markup as a string.
Status RegisterSoaXPathExtensions(xpath::FunctionRegistry* registry,
                                  SoaConfig config);

}  // namespace sqlflow::soa

#endif  // SQLFLOW_SOA_XPATH_EXTENSIONS_H_
