#include "soa/bpelx.h"

#include "rowset/xml_rowset.h"

namespace sqlflow::soa {

Status BpelxInsertRow(wfc::ProcessContext& ctx,
                      const std::string& rowset_variable,
                      const std::vector<Value>& values) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           ctx.variables().GetXml(rowset_variable));
  return rowset::InsertRow(rowset, values);
}

Status BpelxUpdateField(wfc::ProcessContext& ctx,
                        const std::string& rowset_variable,
                        size_t row_index, const std::string& column,
                        const Value& value) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           ctx.variables().GetXml(rowset_variable));
  return rowset::UpdateField(rowset, row_index, column, value);
}

Status BpelxDeleteRow(wfc::ProcessContext& ctx,
                      const std::string& rowset_variable,
                      size_t row_index) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr rowset,
                           ctx.variables().GetXml(rowset_variable));
  return rowset::DeleteRow(rowset, row_index);
}

}  // namespace sqlflow::soa
