#include "soa/xsql.h"

#include "rowset/xml_rowset.h"
#include "xml/parser.h"

namespace sqlflow::soa {

Result<xml::NodePtr> ExecuteXsql(
    const xml::NodePtr& document, sql::DataSourceRegistry* registry,
    const std::map<std::string, Value>& params) {
  if (document == nullptr || document->name() != "xsql") {
    return Status::InvalidArgument("XSQL root must be <xsql>");
  }
  if (registry == nullptr) {
    return Status::ExecutionError("no data source registry available");
  }
  std::optional<std::string> connection =
      document->GetAttribute("connection");
  if (!connection.has_value()) {
    return Status::InvalidArgument("<xsql> requires connection=");
  }
  SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                           registry->Open(*connection));

  // Defaults from <param> children, overridden by caller bindings.
  sql::Params bound;
  for (const xml::NodePtr& child : document->children()) {
    if (child->is_element() && child->name() == "param") {
      std::optional<std::string> name = child->GetAttribute("name");
      if (!name.has_value()) {
        return Status::InvalidArgument("<param> requires name=");
      }
      bound.Set(*name,
                Value::String(child->GetAttribute("value").value_or("")));
    }
  }
  for (const auto& [name, value] : params) {
    bound.Set(name, value);
  }

  xml::NodePtr results = xml::Node::Element("xsql-results");
  for (const xml::NodePtr& child : document->children()) {
    if (!child->is_element()) continue;
    const std::string& kind = child->name();
    if (kind == "param") continue;
    if (kind != "query" && kind != "dml" && kind != "call") {
      return Status::InvalidArgument("unknown XSQL element <" + kind +
                                     ">");
    }
    std::string statement = child->TextContent();
    SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                             db->Execute(statement, bound));
    if (result.column_count() > 0) {
      results->AppendChild(rowset::ToRowSet(result));
    } else {
      xml::NodePtr r = xml::Node::Element("result");
      r->SetAttribute("affected", std::to_string(result.affected_rows()));
      results->AppendChild(std::move(r));
    }
  }
  return results;
}

Result<xml::NodePtr> ExecuteXsqlMarkup(
    const std::string& markup, sql::DataSourceRegistry* registry,
    const std::map<std::string, Value>& params) {
  SQLFLOW_ASSIGN_OR_RETURN(xml::NodePtr document, xml::Parse(markup));
  return ExecuteXsql(document, registry, params);
}

}  // namespace sqlflow::soa
