#ifndef SQLFLOW_SOA_XSQL_H_
#define SQLFLOW_SOA_XSQL_H_

#include <map>
#include <string>

#include "common/status.h"
#include "common/value.h"
#include "sql/data_source.h"
#include "xml/node.h"

namespace sqlflow::soa {

/// Minimal XSQL framework (Sec. V-B): executes the SQL statements
/// embedded in an XSQL document and returns XML results. "It generates
/// XML results from parameterized SQL queries and supports DML and DDL
/// operations as well as stored procedures."
///
/// Document format:
///   <xsql connection="memdb://db">
///     <param name="p" value="literal"/>        <!-- optional defaults -->
///     <query>SELECT ... WHERE x = :p</query>
///     <dml>INSERT INTO ... VALUES (:p)</dml>   <!-- or UPDATE/DELETE/DDL -->
///     <call>CALL proc(:p)</call>
///   </xsql>
///
/// Statements execute in document order. The result is
///   <xsql-results>
///     <RowSet .../>                 per row-producing statement
///     <result affected="n"/>        per DML/DDL statement
///   </xsql-results>
///
/// `params` override same-named `<param>` defaults.
Result<xml::NodePtr> ExecuteXsql(const xml::NodePtr& document,
                                 sql::DataSourceRegistry* registry,
                                 const std::map<std::string, Value>& params =
                                     {});

/// Parses `markup` and executes it.
Result<xml::NodePtr> ExecuteXsqlMarkup(
    const std::string& markup, sql::DataSourceRegistry* registry,
    const std::map<std::string, Value>& params = {});

}  // namespace sqlflow::soa

#endif  // SQLFLOW_SOA_XSQL_H_
