#ifndef SQLFLOW_SOA_BPELX_H_
#define SQLFLOW_SOA_BPELX_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "wfc/context.h"

namespace sqlflow::soa {

/// Oracle's bpelx-namespace assign extensions (Sec. V-C): local XML data
/// manipulation that covers the complete Tuple IUD pattern at the
/// abstract level — the capability edge SOA Suite has over BIS in
/// Table II. All three operate on an XML RowSet held in a process
/// variable.

/// bpelx:insertAfter analogue — appends a row to the RowSet variable.
Status BpelxInsertRow(wfc::ProcessContext& ctx,
                      const std::string& rowset_variable,
                      const std::vector<Value>& values);

/// bpelx:copy analogue for one cell — updates row `row_index` (0-based).
Status BpelxUpdateField(wfc::ProcessContext& ctx,
                        const std::string& rowset_variable,
                        size_t row_index, const std::string& column,
                        const Value& value);

/// bpelx:remove analogue — deletes row `row_index` (0-based).
Status BpelxDeleteRow(wfc::ProcessContext& ctx,
                      const std::string& rowset_variable,
                      size_t row_index);

}  // namespace sqlflow::soa

#endif  // SQLFLOW_SOA_BPELX_H_
