#include "soa/xpath_extensions.h"

#include "rowset/xml_rowset.h"
#include "soa/xsql.h"
#include "xml/parser.h"

namespace sqlflow::soa {

namespace {

using xpath::XPathValue;

Result<std::shared_ptr<sql::Database>> OpenFor(
    const SoaConfig& config, const std::vector<XPathValue>& args,
    size_t connection_arg_index) {
  std::string connection = config.default_connection;
  if (args.size() > connection_arg_index) {
    connection = args[connection_arg_index].ToStringValue();
  }
  if (config.data_sources == nullptr) {
    return Status::ExecutionError("SOA config has no data source registry");
  }
  if (connection.empty()) {
    return Status::InvalidArgument(
        "no connection string (neither default nor argument)");
  }
  return config.data_sources->Open(connection);
}

}  // namespace

Status RegisterSoaXPathExtensions(xpath::FunctionRegistry* registry,
                                  SoaConfig config) {
  if (registry == nullptr) {
    return Status::InvalidArgument("null function registry");
  }

  SQLFLOW_RETURN_IF_ERROR(registry->Register(
      "ora:query-database",
      [config](const std::vector<XPathValue>& args)
          -> Result<XPathValue> {
        if (args.empty()) {
          return Status::InvalidArgument(
              "ora:query-database requires an SQL string");
        }
        SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                                 OpenFor(config, args, 1));
        SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                                 db->Execute(args[0].ToStringValue()));
        db->MutableStats()->bytes_materialized += result.ApproxByteSize();
        return XPathValue::NodeSet({rowset::ToRowSet(result)});
      }));

  SQLFLOW_RETURN_IF_ERROR(registry->Register(
      "ora:sequence-next-val",
      [config](const std::vector<XPathValue>& args)
          -> Result<XPathValue> {
        if (args.empty()) {
          return Status::InvalidArgument(
              "ora:sequence-next-val requires a sequence name");
        }
        SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                                 OpenFor(config, args, 1));
        SQLFLOW_ASSIGN_OR_RETURN(
            int64_t value,
            db->catalog().SequenceNextValue(args[0].ToStringValue()));
        return XPathValue::Number(static_cast<double>(value));
      }));

  SQLFLOW_RETURN_IF_ERROR(registry->Register(
      "ora:lookup-table",
      [config](const std::vector<XPathValue>& args)
          -> Result<XPathValue> {
        if (args.size() < 4) {
          return Status::InvalidArgument(
              "ora:lookup-table requires (outputColumn, table, "
              "inputColumn, key)");
        }
        SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<sql::Database> db,
                                 OpenFor(config, args, 4));
        // Generated query per Sec. V-B:
        //   SELECT outputColumn FROM table WHERE inputColumn = key
        std::string statement = "SELECT " + args[0].ToStringValue() +
                                " FROM " + args[1].ToStringValue() +
                                " WHERE " + args[2].ToStringValue() +
                                " = :key";
        sql::Params params;
        const XPathValue& key = args[3];
        if (key.kind() == XPathValue::Kind::kNumber) {
          double d = key.ToNumber();
          if (d == static_cast<double>(static_cast<int64_t>(d))) {
            params.Set("key", Value::Integer(static_cast<int64_t>(d)));
          } else {
            params.Set("key", Value::Double(d));
          }
        } else {
          params.Set("key", Value::String(key.ToStringValue()));
        }
        SQLFLOW_ASSIGN_OR_RETURN(sql::ResultSet result,
                                 db->Execute(statement, params));
        if (result.row_count() != 1) {
          return Status::ExecutionError(
              "ora:lookup-table expected exactly one row, got " +
              std::to_string(result.row_count()));
        }
        return XPathValue::String(result.rows()[0][0].AsString());
      }));

  SQLFLOW_RETURN_IF_ERROR(registry->Register(
      "orcl:processXSQL",
      [config](const std::vector<XPathValue>& args)
          -> Result<XPathValue> {
        if (args.empty()) {
          return Status::InvalidArgument(
              "orcl:processXSQL requires an XSQL document");
        }
        xml::NodePtr document;
        if (args[0].is_node_set()) {
          document = args[0].FirstNode();
          if (document == nullptr) {
            return Status::InvalidArgument(
                "orcl:processXSQL got an empty node-set");
          }
        } else {
          SQLFLOW_ASSIGN_OR_RETURN(document,
                                   xml::Parse(args[0].ToStringValue()));
        }
        // Remaining string args bind as p1, p2, ... parameters.
        std::map<std::string, Value> params;
        for (size_t i = 1; i < args.size(); ++i) {
          params.emplace("p" + std::to_string(i),
                         Value::String(args[i].ToStringValue()));
        }
        SQLFLOW_ASSIGN_OR_RETURN(
            xml::NodePtr results,
            ExecuteXsql(document, config.data_sources, params));
        return XPathValue::NodeSet({std::move(results)});
      }));

  return Status::OK();
}

}  // namespace sqlflow::soa
