#ifndef SQLFLOW_SQL_INVERSE_H_
#define SQLFLOW_SQL_INVERSE_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/eval.h"
#include "sql/transaction.h"

namespace sqlflow::sql {

class Database;

/// One compensating statement: parameterized SQL plus positional
/// bindings, ready for Database::Execute. Generated, never hand-written
/// — the SQL text doubles as the audit-trail record of what the
/// compensation did.
struct InverseStatement {
  std::string sql;
  Params params;
};

/// Turns effects captured at execution time (Database::
/// set_capture_effects + TakeCapturedEffects) into the compensation
/// program that undoes them on a *committed* database:
///
///   INSERT → DELETE keyed by the table's first unique constraint
///            (primary key), falling back to all columns when the table
///            has none; NULL key values compare with IS NULL;
///   DELETE → re-INSERT of the captured row;
///   UPDATE → UPDATE restoring every captured old value, keyed by the
///            *new* row (that is what the committed table contains);
///   TRUNCATE → re-INSERT of every captured row, in order;
///   CREATE TABLE/SEQUENCE/INDEX/VIEW → the corresponding DROP.
///
/// Statements are emitted in reverse execution order, so applying them
/// front-to-back unwinds the step the way a rollback would have.
/// Sequence advances are deliberately *not* inverted: burned sequence
/// numbers stay burned, matching every surveyed product. DROP effects
/// are refused (recreating a dropped object belongs to DDL migration,
/// not compensation).
///
/// Caveat (documented, not fixed): with the all-columns fallback on a
/// keyless table holding duplicate rows, the DELETE inverse of an
/// INSERT removes every duplicate, not just one.
Result<std::vector<InverseStatement>> BuildInverseStatements(
    const Database& db, const std::vector<UndoEntry>& effects);

/// Runs a compensation program front-to-back; stops at the first error.
Status ApplyInverseStatements(Database& db,
                              const std::vector<InverseStatement>& program);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_INVERSE_H_
