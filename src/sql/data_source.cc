#include "sql/data_source.h"

#include "common/string_util.h"

namespace sqlflow::sql {

Result<ConnectionString> ConnectionString::Parse(const std::string& raw) {
  size_t sep = raw.find("://");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("malformed connection string '" + raw +
                                   "' (expected scheme://database)");
  }
  ConnectionString cs;
  cs.scheme = ToLowerAscii(raw.substr(0, sep));
  cs.database = raw.substr(sep + 3);
  if (cs.scheme != "memdb") {
    return Status::Unsupported("unsupported scheme '" + cs.scheme +
                               "' (this build supports memdb://)");
  }
  if (cs.database.empty()) {
    return Status::InvalidArgument("connection string names no database");
  }
  return cs;
}

Result<std::shared_ptr<Database>> DataSourceRegistry::CreateDatabase(
    const std::string& name) {
  std::string key = ToUpperAscii(name);
  if (databases_.count(key) > 0) {
    return Status::AlreadyExists("database '" + name + "' already exists");
  }
  auto db = std::make_shared<Database>(name);
  ApplyFaultConfig(db.get());
  databases_.emplace(std::move(key), db);
  return db;
}

Result<std::shared_ptr<Database>> DataSourceRegistry::Open(
    const std::string& connection_string) {
  SQLFLOW_ASSIGN_OR_RETURN(ConnectionString cs,
                           ConnectionString::Parse(connection_string));
  std::string key = ToUpperAscii(cs.database);
  auto it = databases_.find(key);
  if (it != databases_.end()) return it->second;
  auto db = std::make_shared<Database>(cs.database);
  ApplyFaultConfig(db.get());
  databases_.emplace(std::move(key), db);
  return db;
}

void DataSourceRegistry::InstallFaultInjector(
    std::shared_ptr<FaultInjector> injector, RetryPolicy retry_policy) {
  fault_injector_ = std::move(injector);
  retry_policy_ = retry_policy;
  for (auto& [key, db] : databases_) ApplyFaultConfig(db.get());
}

void DataSourceRegistry::ApplyFaultConfig(Database* db) {
  if (fault_injector_ != nullptr) db->set_fault_injector(fault_injector_);
  if (retry_policy_.has_value()) db->set_retry_policy(*retry_policy_);
}

Result<std::shared_ptr<Database>> DataSourceRegistry::Get(
    const std::string& name) const {
  auto it = databases_.find(ToUpperAscii(name));
  if (it == databases_.end()) {
    return Status::NotFound("no database '" + name + "'");
  }
  return it->second;
}

bool DataSourceRegistry::Exists(const std::string& name) const {
  return databases_.count(ToUpperAscii(name)) > 0;
}

std::vector<std::string> DataSourceRegistry::DatabaseNames() const {
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [key, db] : databases_) names.push_back(db->name());
  return names;
}

}  // namespace sqlflow::sql
