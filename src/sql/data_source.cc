#include "sql/data_source.h"

#include "common/string_util.h"

namespace sqlflow::sql {

Result<ConnectionString> ConnectionString::Parse(const std::string& raw) {
  size_t sep = raw.find("://");
  if (sep == std::string::npos) {
    return Status::InvalidArgument("malformed connection string '" + raw +
                                   "' (expected scheme://database)");
  }
  ConnectionString cs;
  cs.scheme = ToLowerAscii(raw.substr(0, sep));
  cs.database = raw.substr(sep + 3);
  if (cs.scheme != "memdb") {
    return Status::Unsupported("unsupported scheme '" + cs.scheme +
                               "' (this build supports memdb://)");
  }
  if (cs.database.empty()) {
    return Status::InvalidArgument("connection string names no database");
  }
  return cs;
}

std::unique_ptr<DataSourceRegistry> DataSourceRegistry::CreateSession() {
  auto session = std::make_unique<DataSourceRegistry>();
  session->parent_ = this;
  return session;
}

std::shared_ptr<Database> DataSourceRegistry::SessionConnectionLocked(
    const std::string& key,
    const std::shared_ptr<Database>& primary) const {
  auto it = databases_.find(key);
  if (it != databases_.end()) return it->second;
  std::shared_ptr<Database> connection = primary->CreateConnection();
  databases_.emplace(key, connection);
  return connection;
}

Result<std::shared_ptr<Database>> DataSourceRegistry::CreateDatabase(
    const std::string& name) {
  std::string key = ToUpperAscii(name);
  if (parent_ != nullptr) {
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Database> primary,
                             parent_->CreateDatabase(name));
    std::lock_guard<std::mutex> lock(mutex_);
    return SessionConnectionLocked(key, primary);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (databases_.count(key) > 0) {
    return Status::AlreadyExists("database '" + name + "' already exists");
  }
  auto db = std::make_shared<Database>(name);
  ApplyFaultConfig(db.get());
  databases_.emplace(std::move(key), db);
  return db;
}

Result<std::shared_ptr<Database>> DataSourceRegistry::Open(
    const std::string& connection_string) {
  SQLFLOW_ASSIGN_OR_RETURN(ConnectionString cs,
                           ConnectionString::Parse(connection_string));
  std::string key = ToUpperAscii(cs.database);
  if (parent_ != nullptr) {
    // Resolve in the parent first (it creates on first open), then hand
    // out this session's private connection to that database.
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Database> primary,
                             parent_->Open(connection_string));
    std::lock_guard<std::mutex> lock(mutex_);
    return SessionConnectionLocked(key, primary);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = databases_.find(key);
  if (it != databases_.end()) return it->second;
  auto db = std::make_shared<Database>(cs.database);
  ApplyFaultConfig(db.get());
  databases_.emplace(std::move(key), db);
  return db;
}

void DataSourceRegistry::InstallFaultInjector(
    std::shared_ptr<FaultInjector> injector, RetryPolicy retry_policy) {
  if (parent_ != nullptr) {
    // Sessions share the parent's databases (and their SharedState), so
    // the injector belongs on the parent.
    parent_->InstallFaultInjector(std::move(injector), retry_policy);
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  fault_injector_ = std::move(injector);
  retry_policy_ = retry_policy;
  for (auto& [key, db] : databases_) ApplyFaultConfig(db.get());
}

void DataSourceRegistry::ApplyFaultConfig(Database* db) {
  if (fault_injector_ != nullptr) db->set_fault_injector(fault_injector_);
  if (retry_policy_.has_value()) db->set_retry_policy(*retry_policy_);
}

Result<std::shared_ptr<Database>> DataSourceRegistry::Get(
    const std::string& name) const {
  if (parent_ != nullptr) {
    SQLFLOW_ASSIGN_OR_RETURN(std::shared_ptr<Database> primary,
                             parent_->Get(name));
    std::lock_guard<std::mutex> lock(mutex_);
    return SessionConnectionLocked(ToUpperAscii(name), primary);
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = databases_.find(ToUpperAscii(name));
  if (it == databases_.end()) {
    return Status::NotFound("no database '" + name + "'");
  }
  return it->second;
}

bool DataSourceRegistry::Exists(const std::string& name) const {
  if (parent_ != nullptr) return parent_->Exists(name);
  std::lock_guard<std::mutex> lock(mutex_);
  return databases_.count(ToUpperAscii(name)) > 0;
}

std::vector<std::string> DataSourceRegistry::DatabaseNames() const {
  if (parent_ != nullptr) return parent_->DatabaseNames();
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> names;
  names.reserve(databases_.size());
  for (const auto& [key, db] : databases_) names.push_back(db->name());
  return names;
}

}  // namespace sqlflow::sql
