#include "sql/database.h"

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/executor.h"
#include "sql/parser.h"

namespace sqlflow::sql {

Database::Database(std::string name) : name_(std::move(name)) {}

Database::~Database() = default;

Result<ResultSet> Database::Execute(std::string_view sql) {
  return Execute(sql, Params::None());
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    const Params& params) {
  SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                           ParseStatement(sql));
  return ExecuteStatement(*stmt, params);
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt,
                                             const Params& params) {
  obs::Span span("sql.exec");
  span.Set("db", name_);
  span.Set("kind", StatementKindName(stmt.kind));
  Executor executor(this);
  Result<ResultSet> result = executor.Execute(stmt, params);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetHistogram("sql.exec")
      .Record(static_cast<uint64_t>(span.ElapsedNanos()));
  metrics.GetCounter("sql.statements").Increment();
  if (result.ok()) {
    // Rows touched: result rows for queries, change count for DML.
    int64_t rows = result->row_count() > 0
                       ? static_cast<int64_t>(result->row_count())
                       : result->affected_rows();
    span.Set("rows", std::to_string(rows));
  } else {
    metrics.GetCounter("sql.errors").Increment();
    span.Set("error", result.status().ToString());
  }
  return result;
}

Result<ResultSet> Database::ExecuteSelect(const SelectStatement& select,
                                          const Params& params) {
  Executor executor(this);
  return executor.ExecuteSelect(select, params);
}

Status Database::ExecuteScript(std::string_view sql) {
  SQLFLOW_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  for (const auto& stmt : statements) {
    // Route through ExecuteStatement so scripts are traced per statement.
    auto result = ExecuteStatement(*stmt, Params::None());
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<PreparedStatement> Database::Prepare(std::string_view sql) {
  SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                           ParseStatement(sql));
  return PreparedStatement(this, std::move(stmt));
}

Result<ResultSet> PreparedStatement::Execute(const Params& params) const {
  return db_->ExecuteStatement(*statement_, params);
}

int PreparedStatement::parameter_count() const {
  return statement_->parameter_count;
}

Status Database::Begin() {
  if (in_transaction_) {
    return Status::ExecutionError(
        "transaction already open (no nesting in this engine)");
  }
  in_transaction_ = true;
  undo_log_.Clear();
  return Status::OK();
}

Status Database::Commit() {
  if (!in_transaction_) {
    return Status::ExecutionError("no open transaction to commit");
  }
  in_transaction_ = false;
  undo_log_.Clear();
  stats_.transactions_committed++;
  return Status::OK();
}

Status Database::Rollback() {
  if (!in_transaction_) {
    return Status::ExecutionError("no open transaction to roll back");
  }
  in_transaction_ = false;  // raw undo replay must not re-log
  undo_log_.RollbackInto(this);
  stats_.transactions_rolled_back++;
  return Status::OK();
}

Status Database::RegisterProcedure(StoredProcedure procedure) {
  std::string key = ToUpperAscii(procedure.name);
  if (procedures_.count(key) > 0) {
    return Status::AlreadyExists("procedure '" + procedure.name +
                                 "' already exists");
  }
  procedures_.emplace(std::move(key), std::move(procedure));
  return Status::OK();
}

Result<ResultSet> Database::CallProcedure(const std::string& name,
                                          const std::vector<Value>& args) {
  auto it = procedures_.find(ToUpperAscii(name));
  if (it == procedures_.end()) {
    return Status::NotFound("no stored procedure '" + name + "'");
  }
  const StoredProcedure& proc = it->second;
  if (proc.arity >= 0 &&
      static_cast<size_t>(proc.arity) != args.size()) {
    return Status::InvalidArgument(
        "procedure '" + name + "' expects " + std::to_string(proc.arity) +
        " arguments, got " + std::to_string(args.size()));
  }
  return proc.body(*this, args);
}

std::vector<std::string> Database::ProcedureNames() const {
  std::vector<std::string> names;
  names.reserve(procedures_.size());
  for (const auto& [key, proc] : procedures_) names.push_back(proc.name);
  return names;
}

Result<Value> EvalNextval(Database* db, const std::string& sequence_name) {
  Sequence* seq = db->catalog().FindSequence(sequence_name);
  if (seq == nullptr) {
    return Status::NotFound("no sequence '" + sequence_name + "'");
  }
  if (UndoLog* undo = db->active_undo()) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kSequenceAdvance;
    e.table_name = sequence_name;
    e.sequence_value = seq->next_value;
    undo->Record(std::move(e));
  }
  return Value::Integer(seq->next_value++);
}

}  // namespace sqlflow::sql
