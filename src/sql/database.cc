#include "sql/database.h"

#include <algorithm>
#include <set>

#include "common/string_util.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sql/checkpoint.h"
#include "sql/executor.h"
#include "sql/fault.h"
#include "sql/parser.h"
#include "sql/schema.h"
#include "sql/table.h"

namespace sqlflow::sql {

namespace {

/// True if evaluating `e` reads database state that an earlier partial
/// execution could have changed — the property that makes a blind
/// replay double-apply. Parameters and literals are replay-exact;
/// column references and subqueries are not.
bool ExprReadsState(const Expr& e) {
  switch (e.kind) {
    case ExprKind::kColumnRef:
    case ExprKind::kSubquery:
    case ExprKind::kExists:
      return true;
    default:
      break;
  }
  if (e.subquery != nullptr) return true;
  for (const ExprPtr& child : e.children) {
    if (child != nullptr && ExprReadsState(*child)) return true;
  }
  return e.case_else != nullptr && ExprReadsState(*e.case_else);
}

bool SelectAdvancesState(const SelectStatement& s);

/// True if evaluating `e` *writes* engine state — today that means a
/// NEXTVAL call (sequence advance), at any depth including subqueries.
bool ExprAdvancesState(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall && e.function_name == "NEXTVAL") {
    return true;
  }
  for (const ExprPtr& child : e.children) {
    if (child != nullptr && ExprAdvancesState(*child)) return true;
  }
  if (e.case_else != nullptr && ExprAdvancesState(*e.case_else)) {
    return true;
  }
  return e.subquery != nullptr && SelectAdvancesState(*e.subquery);
}

bool SelectAdvancesState(const SelectStatement& s) {
  for (const SelectItem& item : s.items) {
    if (item.expr != nullptr && ExprAdvancesState(*item.expr)) return true;
  }
  for (const TableRef& ref : s.from) {
    if (ref.join_condition != nullptr &&
        ExprAdvancesState(*ref.join_condition)) {
      return true;
    }
    if (ref.derived != nullptr && SelectAdvancesState(*ref.derived)) {
      return true;
    }
  }
  if (s.where != nullptr && ExprAdvancesState(*s.where)) return true;
  for (const ExprPtr& e : s.group_by) {
    if (e != nullptr && ExprAdvancesState(*e)) return true;
  }
  if (s.having != nullptr && ExprAdvancesState(*s.having)) return true;
  for (const OrderByItem& item : s.order_by) {
    if (item.expr != nullptr && ExprAdvancesState(*item.expr)) return true;
  }
  return s.union_next != nullptr && SelectAdvancesState(*s.union_next);
}

/// Whether `stmt` gets wrapped in an implicit MVCC transaction when it
/// runs autocommit in concurrent mode: everything that may write.
/// SELECT stays transaction-free (anonymous snapshot reader), and the
/// transaction-control statements manage the slot themselves.
bool StatementNeedsMvccTxn(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
    case StatementKind::kBegin:
    case StatementKind::kCommit:
    case StatementKind::kRollback:
      return false;
    case StatementKind::kExplain:
      return stmt.explain->analyze && stmt.explain->target != nullptr &&
             StatementNeedsMvccTxn(*stmt.explain->target);
    default:
      return true;
  }
}

/// Statement latches this thread currently holds (as SharedState
/// addresses). Nested statements — CALL bodies, EXPLAIN ANALYZE
/// targets, BEGIN/COMMIT executed from inside a latched statement —
/// re-enter without re-acquiring; cross-database nesting keeps the
/// vector honest.
thread_local std::vector<const void*> t_held_latches;

}  // namespace

bool IsReplaySafeStatement(const Statement& stmt) {
  switch (stmt.kind) {
    case StatementKind::kInsert: {
      // INSERT ... SELECT re-reads the tables it may have changed.
      if (stmt.insert->select != nullptr) return false;
      for (const auto& row : stmt.insert->rows) {
        for (const ExprPtr& value : row) {
          if (value != nullptr && ExprReadsState(*value)) return false;
        }
      }
      return true;
    }
    case StatementKind::kUpdate:
      // Replay-exact even for self-reading assignments: the executor
      // pre-binds every written value against pre-statement state
      // before the first mutation, so after a mid-statement rollback a
      // replay of `x = x + 1` recomputes the same values it was about
      // to write.
      return true;
    case StatementKind::kCall:
      return false;  // opaque body — cannot prove replay exactness
    case StatementKind::kExplain:
      // Plain EXPLAIN never writes; ANALYZE replays its target, so it
      // inherits the target's replay safety.
      return !stmt.explain->analyze ||
             IsReplaySafeStatement(*stmt.explain->target);
    default:
      return true;
  }
}

bool IsSharedReadStatement(const Statement& stmt, const Catalog& catalog) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      break;
    case StatementKind::kExplain:
      // Plain EXPLAIN only plans (no execution); ANALYZE runs its
      // target and inherits the target's classification.
      if (stmt.explain->analyze) return false;
      return stmt.explain->target != nullptr &&
             IsSharedReadStatement(*stmt.explain->target, catalog);
    default:
      return false;
  }
  if (stmt.select == nullptr || SelectAdvancesState(*stmt.select)) {
    return false;
  }
  for (const std::string& name : CollectReferencedTables(stmt)) {
    // Views expand re-entrantly (their bodies may hide NEXTVAL or
    // sys.* references) and sys.* tables are re-materialized in place
    // before the scan — both mutate shared state, so they serialize.
    if (catalog.FindView(name) != nullptr) return false;
    if (catalog.IsVirtualTable(name)) return false;
  }
  return true;
}

/// RAII over the shared statement latch. No-op until the database is in
/// concurrent mode, and when this thread already holds the latch (a
/// nested statement piggybacks on the outer acquisition — note that a
/// nested statement can therefore run under a shared latch its outer
/// SELECT took; that cannot under-lock because pure-read outer
/// statements have no writing nested statements).
class Database::StatementLatch {
 public:
  StatementLatch(Database* db, bool exclusive)
      : state_(db->shared_.get()), exclusive_(exclusive) {
    if (!state_->concurrent.load(std::memory_order_acquire) ||
        std::find(t_held_latches.begin(), t_held_latches.end(),
                  static_cast<const void*>(state_)) !=
            t_held_latches.end()) {
      state_ = nullptr;
      return;
    }
    if (exclusive_) {
      state_->statement_latch.lock();
    } else {
      state_->statement_latch.lock_shared();
    }
    t_held_latches.push_back(state_);
  }

  ~StatementLatch() {
    if (state_ == nullptr) return;
    t_held_latches.pop_back();
    if (exclusive_) {
      state_->statement_latch.unlock();
    } else {
      state_->statement_latch.unlock_shared();
    }
  }

  StatementLatch(const StatementLatch&) = delete;
  StatementLatch& operator=(const StatementLatch&) = delete;

 private:
  SharedState* state_;
  bool exclusive_;
};

Status Database::WithExclusiveStatementLatch(
    const std::function<Status()>& fn) {
  StatementLatch latch(this, /*exclusive=*/true);
  return fn();
}

void Database::Stats::CopyFrom(const Stats& other) {
  statements_executed.store(
      other.statements_executed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  rows_read.store(other.rows_read.load(std::memory_order_relaxed),
                  std::memory_order_relaxed);
  rows_written.store(other.rows_written.load(std::memory_order_relaxed),
                     std::memory_order_relaxed);
  bytes_materialized.store(
      other.bytes_materialized.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  transactions_committed.store(
      other.transactions_committed.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
  transactions_rolled_back.store(
      other.transactions_rolled_back.load(std::memory_order_relaxed),
      std::memory_order_relaxed);
}

Database::Database(std::string name)
    : shared_(std::make_shared<SharedState>(std::move(name))),
      optimizer_enabled_(OptimizerDefaultFlag()),
      batch_enabled_(BatchDefaultFlag()) {
  shared_->retry_policy = RetryPolicyDefaultRef();
}

Database::Database(std::shared_ptr<SharedState> shared, bool optimizer_on,
                   bool batch_on)
    : shared_(std::move(shared)),
      optimizer_enabled_(optimizer_on),
      batch_enabled_(batch_on) {
  // Durable databases build redo records from undo post-images, so
  // every connection's undo log must capture them.
  if (shared_->wal != nullptr) undo_log_.set_capture_rows(true);
}

Database::~Database() {
  // A connection destroyed with a transaction still open aborts it, so
  // the MVCC horizon cannot pin on a dead transaction forever.
  if (txn_active_) {
    if (in_transaction_) {
      (void)Rollback();
    } else {
      AbortMvccTxn();
    }
  }
}

std::shared_ptr<Database> Database::CreateConnection() {
  shared_->concurrent.store(true, std::memory_order_release);
  return std::shared_ptr<Database>(
      new Database(shared_, optimizer_enabled_, batch_enabled_));
}

uint64_t Database::SnapshotTs() const {
  return txn_active_ ? txn_.begin_ts : shared_->mvcc.epoch();
}

uint64_t Database::ReaderTxnId() const {
  return txn_active_ ? txn_.id : 0;
}

bool Database::NeedsSnapshotRead(const Table& table) const {
  if (!concurrent_mode()) return false;
  return table.NeedsSnapshot(ReaderTxnId(), SnapshotTs());
}

bool& Database::OptimizerDefaultFlag() {
  static bool enabled = true;
  return enabled;
}

void Database::SetOptimizerDefault(bool on) {
  OptimizerDefaultFlag() = on;
}

bool& Database::BatchDefaultFlag() {
  static bool enabled = true;
  return enabled;
}

void Database::SetBatchDefault(bool on) {
  BatchDefaultFlag() = on;
}

RetryPolicy& Database::RetryPolicyDefaultRef() {
  static RetryPolicy policy;
  return policy;
}

void Database::SetRetryPolicyDefault(RetryPolicy policy) {
  RetryPolicyDefaultRef() = policy;
}

std::shared_ptr<FaultInjector>& Database::GlobalFaultInjectorRef() {
  static std::shared_ptr<FaultInjector> injector;
  return injector;
}

void Database::SetGlobalFaultInjector(
    std::shared_ptr<FaultInjector> inj) {
  GlobalFaultInjectorRef() = std::move(inj);
}

std::shared_ptr<FaultInjector> Database::GlobalFaultInjector() {
  return GlobalFaultInjectorRef();
}

Result<ResultSet> Database::RunOneAttempt(
    const Statement& stmt, const Params& params, const StatementPlan* plan,
    FaultInjector* injector, const std::string& site_description) {
  // Statement scope: active_undo() goes live (statement-level atomicity
  // in autocommit mode), mid-statement sites see the injector, and the
  // table layer's index-maintenance hook routes back here. All state is
  // save/restored so CALL bodies re-enter cleanly — and the hook is
  // *not* installed during rollback, which runs after this returns.
  ++statement_depth_;
  FaultInjector* saved_injector = mid_injector_;
  std::string saved_prefix = std::move(mid_site_prefix_);
  mid_injector_ = injector;
  mid_site_prefix_ = site_description;
  IndexMaintenanceHook saved_hook = ExchangeIndexMaintenanceHook(
      injector == nullptr
          ? IndexMaintenanceHook()
          : [this](const std::string& table, const char* op) {
              return ConsultMidStatementFault(std::string("index ") +
                                              table + ' ' + op);
            });
  Executor executor(this);
  Result<ResultSet> result = executor.Execute(stmt, params, plan);
  (void)ExchangeIndexMaintenanceHook(std::move(saved_hook));
  mid_injector_ = saved_injector;
  mid_site_prefix_ = std::move(saved_prefix);
  --statement_depth_;
  return result;
}

Status Database::ConsultMidStatementFault(const std::string& what) {
  if (mid_injector_ == nullptr || statement_depth_ == 0) {
    return Status::OK();
  }
  FaultSite site;
  site.database = shared_->name;
  site.layer = FaultLayer::kMidStatement;
  site.description = "mid " + mid_site_prefix_ + ' ' + what;
  if (std::optional<Status> fault = mid_injector_->MaybeFault(site)) {
    return *fault;
  }
  return Status::OK();
}

void Database::CaptureUndoEntries() {
  for (UndoEntry& e : undo_log_.mutable_entries()) {
    captured_effects_.push_back(std::move(e));
  }
  undo_log_.Clear();
}

void Database::FinishStatementScope() {
  if (statement_depth_ > 0 || in_transaction_) return;
  // Outermost autocommit statement finished: its writes are durable, so
  // the statement-scope undo entries are either harvested for inverse
  // compensation or discarded.
  if (capture_effects_) {
    CaptureUndoEntries();
  } else {
    undo_log_.Clear();
  }
}

void Database::set_capture_effects(bool on) {
  capture_effects_ = on;
  // Post-image capture stays on regardless while the WAL is armed —
  // redo records are built from the post-images at commit time.
  undo_log_.set_capture_rows(on || shared_->wal != nullptr);
}

std::vector<UndoEntry> Database::TakeCapturedEffects() {
  std::vector<UndoEntry> out = std::move(captured_effects_);
  captured_effects_.clear();
  return out;
}

void Database::CommitMvccTxn() {
  const uint64_t commit_ts = shared_->mvcc.Commit(txn_);
  for (const std::string& table_name : txn_.touched_tables) {
    if (Table* table = shared_->catalog.FindTable(table_name)) {
      table->CommitTxn(txn_.id, commit_ts);
    }
  }
  shared_->mvcc.End(txn_.id);
  // Versions below every live snapshot can never be read again.
  const uint64_t horizon = shared_->mvcc.Horizon();
  size_t dropped = 0;
  for (const std::string& table_name : txn_.touched_tables) {
    if (Table* table = shared_->catalog.FindTable(table_name)) {
      dropped += table->GcVersions(horizon);
    }
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetCounter("sql.txn.commit").Increment();
  if (dropped > 0) {
    metrics.GetCounter("sql.mvcc.gc_versions").Increment(dropped);
  }
  txn_active_ = false;
  txn_implicit_ = false;
  undo_log_.txn = nullptr;
}

void Database::AbortMvccTxn() {
  for (const std::string& table_name : txn_.touched_tables) {
    if (Table* table = shared_->catalog.FindTable(table_name)) {
      table->AbortTxn(txn_.id);
    }
  }
  shared_->mvcc.End(txn_.id);
  obs::MetricsRegistry::Global().GetCounter("sql.txn.abort").Increment();
  txn_active_ = false;
  txn_implicit_ = false;
  undo_log_.txn = nullptr;
}

Result<ResultSet> Database::RunWithRecovery(const Statement& stmt,
                                            const Params& params,
                                            const StatementPlan* plan) {
  FaultInjector* injector = shared_->fault_injector != nullptr
                                ? shared_->fault_injector.get()
                                : GlobalFaultInjectorRef().get();
  std::string site_description = StatementKindName(stmt.kind);
  for (const std::string& table : CollectReferencedTables(stmt)) {
    site_description += ' ';
    site_description += table;
  }
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  int max_attempts = shared_->retry_policy.max_attempts < 1
                         ? 1
                         : shared_->retry_policy.max_attempts;
  // In concurrent mode, a mutating autocommit statement runs inside an
  // implicit MVCC transaction — one *per attempt*, so a replay after a
  // first-committer-wins abort re-reads at a fresh snapshot and can
  // succeed where the first attempt conflicted.
  const bool wrap_txn = concurrent_mode() && !in_transaction_ &&
                        !txn_active_ && StatementNeedsMvccTxn(stmt);
  for (int attempt = 1;; ++attempt) {
    if (wrap_txn && !txn_active_) {
      shared_->mvcc.Begin(&txn_);
      txn_active_ = true;
      txn_implicit_ = true;
      undo_log_.txn = &txn_;
    }
    // Pre-statement site (the PR-4 model: the statement never started).
    const size_t mark = undo_log_.size();
    Result<ResultSet> result = [&]() -> Result<ResultSet> {
      if (injector != nullptr) {
        FaultSite site;
        site.database = shared_->name;
        site.description = site_description;
        if (std::optional<Status> fault = injector->MaybeFault(site)) {
          return *fault;
        }
      }
      return RunOneAttempt(stmt, params, plan, injector,
                           site_description);
    }();
    if (result.ok()) {
      if (attempt > 1) {
        metrics.GetCounter("sql.fault.absorbed").Increment();
      }
      // Durability point for autocommit: the statement's redo batch must
      // be on disk before its effects commit. An append failure —
      // including an injected crash — unwinds the statement as if it
      // never ran and surfaces the (non-transient) kDataLoss.
      if (shared_->wal != nullptr && statement_depth_ == 0 &&
          !in_transaction_ &&
          (!undo_log_.empty() || !wal_attachments_.empty())) {
        Status wal_status = AppendWalCommitBatch();
        if (!wal_status.ok()) {
          if (!undo_log_.empty() && undo_log_.RollbackTo(0, this)) {
            BumpSchemaEpoch();
          }
          if (wrap_txn && txn_active_ && txn_implicit_) AbortMvccTxn();
          return wal_status;
        }
      }
      // The statement may itself have upgraded the implicit transaction
      // to an explicit one (a CALL body issuing BEGIN) — then it stays
      // open; otherwise the implicit wrapper commits here.
      if (wrap_txn && txn_active_ && txn_implicit_) {
        CommitMvccTxn();
      }
      FinishStatementScope();
      return result;
    }
    // Failure: unwind the statement's own partial writes so the
    // database is byte-identical to its pre-statement state — whether
    // we replay, escalate, or propagate. BEGIN/COMMIT executed by this
    // very statement may have moved the mark, hence the min(). The
    // undo log's txn view is still installed, so replay restores
    // version metadata and drops stashed pre-images as it unwinds.
    const bool had_partial_writes =
        undo_log_.size() > std::min(mark, undo_log_.size());
    if (had_partial_writes) {
      if (undo_log_.RollbackTo(std::min(mark, undo_log_.size()), this)) {
        BumpSchemaEpoch();
      }
      metrics.GetCounter("sql.partial.rolled_back").Increment();
    }
    if (wrap_txn && txn_active_ && txn_implicit_) {
      AbortMvccTxn();
    }
    // Attachments queued by the failed statement must not ride a later
    // commit (inside a transaction they belong to the whole txn scope
    // and survive until COMMIT or ROLLBACK decides).
    if (!in_transaction_) wal_attachments_.clear();
    if (!result.status().IsTransient() || attempt >= max_attempts) {
      return result;
    }
    // Idempotence guard: replaying is only transparent if the rolled-
    // back writes were never observable (transaction) or the statement
    // is replay-exact. Otherwise refuse and escalate the transient
    // fault to the workflow-level retry, which re-runs the whole
    // activity against fresh reads.
    if (had_partial_writes && !in_transaction_ &&
        !IsReplaySafeStatement(stmt)) {
      metrics.GetCounter("sql.retry.refused").Increment();
      return result;
    }
    metrics.GetCounter("sql.retry.attempts").Increment();
  }
}

Result<ResultSet> Database::Execute(std::string_view sql) {
  return Execute(sql, Params::None());
}

Result<ResultSet> Database::Execute(std::string_view sql,
                                    const Params& params) {
  std::shared_ptr<const Statement> stmt;
  std::shared_ptr<const StatementPlan> plan;
  {
    // The cache lock never spans execution: statements and plans are
    // shared_ptr-pinned, copied out, and the lock dropped — execution
    // can re-enter this cache (stored procedures) and evict or
    // invalidate the entry mid-flight.
    std::unique_lock<std::mutex> lock(plan_cache_mutex_);
    if (plan_cache_capacity_ == 0) {
      lock.unlock();
      SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> parsed,
                               ParseStatement(sql));
      return ExecuteStatement(*parsed, params);
    }
    obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
    std::string key(sql);
    auto it = plan_cache_.find(key);
    if (it == plan_cache_.end()) {
      plan_cache_stats_.misses++;
      metrics.GetCounter("sql.plan_cache.miss").Increment();
      SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> parsed,
                               ParseStatement(sql));
      bool cacheable = parsed->kind == StatementKind::kSelect ||
                       parsed->kind == StatementKind::kInsert ||
                       parsed->kind == StatementKind::kUpdate ||
                       parsed->kind == StatementKind::kDelete;
      if (!cacheable) {
        lock.unlock();
        return ExecuteStatement(*parsed, params);
      }
      CachedStatement entry;
      entry.statement =
          std::shared_ptr<const Statement>(std::move(parsed));
      entry.tables = CollectReferencedTables(*entry.statement);
      entry.last_used_tick = ++plan_cache_tick_;
      it = plan_cache_.emplace(std::move(key), std::move(entry)).first;
      EvictPlanCacheOverflow();
    } else {
      plan_cache_stats_.hits++;
      it->second.hits++;
      metrics.GetCounter("sql.plan_cache.hit").Increment();
      it->second.last_used_tick = ++plan_cache_tick_;
    }
    if (it->second.plan == nullptr ||
        it->second.plan->schema_epoch != schema_epoch()) {
      it->second.plan = std::make_shared<const StatementPlan>(
          PlanStatement(*it->second.statement, this));
    }
    stmt = it->second.statement;
    plan = it->second.plan;
  }
  return ExecuteStatement(*stmt, params, plan.get());
}

void Database::EvictPlanCacheOverflow() {
  while (plan_cache_.size() > plan_cache_capacity_) {
    auto victim = plan_cache_.begin();
    for (auto it = plan_cache_.begin(); it != plan_cache_.end(); ++it) {
      if (it->second.last_used_tick < victim->second.last_used_tick) {
        victim = it;
      }
    }
    plan_cache_.erase(victim);
    plan_cache_stats_.evictions++;
  }
}

void Database::set_plan_cache_capacity(size_t capacity) {
  std::lock_guard<std::mutex> lock(plan_cache_mutex_);
  plan_cache_capacity_ = capacity;
  if (capacity == 0) {
    plan_cache_.clear();
  } else {
    EvictPlanCacheOverflow();
  }
}

std::vector<Database::PlanCacheEntry> Database::PlanCacheEntries() const {
  std::lock_guard<std::mutex> lock(plan_cache_mutex_);
  std::vector<PlanCacheEntry> out;
  out.reserve(plan_cache_.size());
  for (const auto& [sql, cached] : plan_cache_) {
    PlanCacheEntry entry;
    entry.sql = sql;
    for (const std::string& table : cached.tables) {
      if (!entry.tables.empty()) entry.tables += ',';
      entry.tables += table;
    }
    entry.hits = cached.hits;
    entry.plan_epoch =
        cached.plan == nullptr ? 0 : cached.plan->schema_epoch;
    entry.last_used_tick = cached.last_used_tick;
    entry.has_access_plan = cached.plan != nullptr && cached.plan->has_access;
    entry.has_range_plan = cached.plan != nullptr && cached.plan->has_range;
    out.push_back(std::move(entry));
  }
  return out;
}

void Database::InvalidatePlans(const std::string& table_name) {
  std::lock_guard<std::mutex> lock(plan_cache_mutex_);
  std::string upper = ToUpperAscii(table_name);
  for (auto it = plan_cache_.begin(); it != plan_cache_.end();) {
    const std::vector<std::string>& tables = it->second.tables;
    if (std::find(tables.begin(), tables.end(), upper) != tables.end()) {
      it = plan_cache_.erase(it);
      plan_cache_stats_.invalidations++;
      obs::MetricsRegistry::Global()
          .GetCounter("sql.plan_cache.invalidation")
          .Increment();
    } else {
      ++it;
    }
  }
}

void Database::NotePlanChoice(PlanChoice choice) {
  plan_mask_ |= static_cast<unsigned>(choice);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  switch (choice) {
    case PlanChoice::kScan:
      metrics.GetCounter("sql.plan.scan").Increment();
      break;
    case PlanChoice::kIndexLookup:
      metrics.GetCounter("sql.plan.index_lookup").Increment();
      break;
    case PlanChoice::kHashJoin:
      metrics.GetCounter("sql.plan.hash_join").Increment();
      break;
    case PlanChoice::kRangeScan:
      metrics.GetCounter("sql.plan.range_scan").Increment();
      break;
    case PlanChoice::kPushdown:
      metrics.GetCounter("sql.plan.pushdown").Increment();
      break;
    case PlanChoice::kBatch:
      metrics.GetCounter("sql.plan.batch").Increment();
      break;
  }
}

Result<ResultSet> Database::ExecuteStatement(const Statement& stmt,
                                             const Params& params,
                                             const StatementPlan* plan) {
  Result<ResultSet> result = ExecuteStatementLatched(stmt, params, plan);
  // Group-commit durability point: the redo batch was appended (and
  // ordered) under the latch inside; the fsync wait runs here, after
  // the latch released, so committers on other connections share one
  // flush instead of serializing a syscall each. The commit is not
  // acknowledged until this returns.
  Status durable = WaitPendingWalDurability();
  if (!durable.ok() && result.ok()) result = durable;
  return result;
}

Result<ResultSet> Database::ExecuteStatementLatched(
    const Statement& stmt, const Params& params, const StatementPlan* plan) {
  // Cross-connection statement latch: pure reads share it, everything
  // else is exclusive. Classification only runs in concurrent mode —
  // the latch itself is a no-op before the first CreateConnection().
  const bool shared_read =
      concurrent_mode() && IsSharedReadStatement(stmt, shared_->catalog);
  StatementLatch latch(this, /*exclusive=*/!shared_read);
  obs::Span span("sql.exec");
  span.Set("db", shared_->name);
  span.Set("kind", StatementKindName(stmt.kind));
  // sys.* tables materialize fresh engine state before the statement
  // (never mid-statement, so scans see one consistent snapshot).
  if (shared_->catalog.HasVirtualTables()) {
    shared_->catalog.RefreshVirtualTables(CollectReferencedTables(stmt));
  }
  // Each statement records its own plan choices; nested statements
  // (stored procedures, scripts) tag their own spans and fold back into
  // the enclosing statement's attribute.
  unsigned saved_mask = plan_mask_;
  plan_mask_ = 0;
  Result<ResultSet> result = RunWithRecovery(stmt, params, plan);
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  metrics.GetHistogram("sql.exec")
      .Record(static_cast<uint64_t>(span.ElapsedNanos()));
  metrics.GetCounter("sql.statements").Increment();
  if (plan_mask_ != 0) {
    std::string attr;
    auto append = [&](PlanChoice bit, const char* label) {
      if ((plan_mask_ & static_cast<unsigned>(bit)) == 0) return;
      if (!attr.empty()) attr += '+';
      attr += label;
    };
    append(PlanChoice::kIndexLookup, "index_lookup");
    append(PlanChoice::kRangeScan, "range_scan");
    append(PlanChoice::kHashJoin, "hash_join");
    append(PlanChoice::kPushdown, "pushdown");
    append(PlanChoice::kScan, "scan");
    append(PlanChoice::kBatch, "batch");
    span.Set("plan", attr);
  }
  plan_mask_ |= saved_mask;
  if (result.ok()) {
    // Rows touched: result rows for queries, change count for DML.
    int64_t rows = result->row_count() > 0
                       ? static_cast<int64_t>(result->row_count())
                       : result->affected_rows();
    span.Set("rows", std::to_string(rows));
  } else {
    metrics.GetCounter("sql.errors").Increment();
    span.Set("error", result.status().ToString());
  }
  return result;
}

Result<ResultSet> Database::ExecuteSelect(const SelectStatement& select,
                                          const Params& params) {
  Executor executor(this);
  return executor.ExecuteSelect(select, params);
}

Status Database::ExecuteScript(std::string_view sql) {
  SQLFLOW_ASSIGN_OR_RETURN(auto statements, ParseScript(sql));
  for (const auto& stmt : statements) {
    // Route through ExecuteStatement so scripts are traced per statement.
    auto result = ExecuteStatement(*stmt, Params::None());
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

Result<PreparedStatement> Database::Prepare(std::string_view sql) {
  SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                           ParseStatement(sql));
  return PreparedStatement(this, std::move(stmt));
}

Result<ResultSet> PreparedStatement::Execute(const Params& params) const {
  if (plan_ == nullptr || plan_->schema_epoch != db_->schema_epoch()) {
    plan_ = std::make_shared<const StatementPlan>(
        PlanStatement(*statement_, db_));
  }
  // Keep a local ref in case execution replans re-entrantly.
  std::shared_ptr<const StatementPlan> plan = plan_;
  return db_->ExecuteStatement(*statement_, params, plan.get());
}

int PreparedStatement::parameter_count() const {
  return statement_->parameter_count;
}

Status Database::Begin() {
  StatementLatch latch(this, /*exclusive=*/true);
  if (in_transaction_) {
    return Status::ExecutionError(
        "transaction already open (no nesting in this engine)");
  }
  in_transaction_ = true;
  // Defensive reset — but only at top level: a BEGIN issued from inside
  // a CALL body must not discard the enclosing statement's own undo
  // entries (depth 1 is the BEGIN statement itself).
  if (statement_depth_ <= 1) undo_log_.Clear();
  if (concurrent_mode()) {
    if (txn_active_) {
      // A CALL body issuing BEGIN upgrades the enclosing statement's
      // implicit transaction: its writes so far become part of the
      // explicit transaction's footprint.
      txn_implicit_ = false;
    } else {
      shared_->mvcc.Begin(&txn_);
      txn_active_ = true;
      txn_implicit_ = false;
      undo_log_.txn = &txn_;
    }
  }
  return Status::OK();
}

Status Database::Commit() {
  Status status = [&]() -> Status {
    StatementLatch latch(this, /*exclusive=*/true);
    if (!in_transaction_) {
      return Status::ExecutionError("no open transaction to commit");
    }
    // Durability ordering: the transaction's whole redo batch (plus
    // queued workflow attachments) is appended to the log as one atomic
    // group *before* the commit becomes visible; append failure —
    // including an injected crash — turns this COMMIT into a rollback.
    // Under kEveryCommit the fsync wait itself is deferred past the
    // latch (group commit): the commit is not *acknowledged* until the
    // flush below returns, and because the log is sequential no later
    // acknowledged commit can be durable without this one.
    if (shared_->wal != nullptr &&
        (!undo_log_.empty() || !wal_attachments_.empty())) {
      Status wal_status = AppendWalCommitBatch();
      if (!wal_status.ok()) {
        in_transaction_ = false;  // raw undo replay must not re-log
        undo_log_.RollbackInto(this);
        if (txn_active_) AbortMvccTxn();
        shared_->stats.transactions_rolled_back++;
        BumpSchemaEpoch();
        return wal_status;
      }
    }
    in_transaction_ = false;
    // A committed transaction's effects are durable — harvest them for
    // inverse compensation when capturing, exactly like an autocommit
    // statement's.
    if (capture_effects_) {
      CaptureUndoEntries();
    } else {
      undo_log_.Clear();
    }
    if (txn_active_) CommitMvccTxn();
    shared_->stats.transactions_committed++;
    return Status::OK();
  }();
  // Post-latch flush wait. When COMMIT arrived as SQL text this frame
  // is nested under ExecuteStatement's latch and the wait defers to
  // that outermost frame instead.
  Status durable = WaitPendingWalDurability();
  if (status.ok() && !durable.ok()) status = durable;
  return status;
}

Status Database::Rollback() {
  StatementLatch latch(this, /*exclusive=*/true);
  if (!in_transaction_) {
    return Status::ExecutionError("no open transaction to roll back");
  }
  in_transaction_ = false;  // raw undo replay must not re-log
  undo_log_.RollbackInto(this);
  wal_attachments_.clear();  // the scope they rode died with the txn
  if (txn_active_) AbortMvccTxn();
  shared_->stats.transactions_rolled_back++;
  // Rollback may have undone DDL; force memoized plans to revalidate.
  BumpSchemaEpoch();
  return Status::OK();
}

Status Database::RegisterProcedure(StoredProcedure procedure) {
  std::string key = ToUpperAscii(procedure.name);
  if (shared_->procedures.count(key) > 0) {
    return Status::AlreadyExists("procedure '" + procedure.name +
                                 "' already exists");
  }
  shared_->procedures.emplace(std::move(key), std::move(procedure));
  return Status::OK();
}

Result<ResultSet> Database::CallProcedure(const std::string& name,
                                          const std::vector<Value>& args) {
  auto it = shared_->procedures.find(ToUpperAscii(name));
  if (it == shared_->procedures.end()) {
    return Status::NotFound("no stored procedure '" + name + "'");
  }
  const StoredProcedure& proc = it->second;
  if (proc.arity >= 0 &&
      static_cast<size_t>(proc.arity) != args.size()) {
    return Status::InvalidArgument(
        "procedure '" + name + "' expects " + std::to_string(proc.arity) +
        " arguments, got " + std::to_string(args.size()));
  }
  return proc.body(*this, args);
}

std::vector<std::string> Database::ProcedureNames() const {
  std::vector<std::string> names;
  names.reserve(shared_->procedures.size());
  for (const auto& [key, proc] : shared_->procedures) {
    names.push_back(proc.name);
  }
  return names;
}

// --- durability (WAL + snapshots) ------------------------------------------

Status Database::EnableDurability(const std::string& dir,
                                  WalOptions options) {
  if (shared_->wal != nullptr) {
    return Status::ExecutionError("durability already enabled on '" +
                                  shared_->name + "'");
  }
  if (in_transaction_ || statement_depth_ > 0) {
    return Status::ExecutionError(
        "cannot enable durability inside an open transaction/statement");
  }
  SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<WalManager> manager,
                           WalManager::Open(dir, options));
  // Recovery: snapshot first, then the committed tail past it. The WAL
  // is not installed yet, so replayed statements do not re-log.
  SQLFLOW_ASSIGN_OR_RETURN(SnapshotData snap, LoadSnapshot(*this, dir));
  for (auto& [id, log] : snap.wf_state) {
    manager->SeedWfInstance(id, std::move(log));
  }
  manager->set_snapshot_lsn(snap.snapshot_lsn);
  WalManager* raw = manager.get();
  uint64_t committed_end = snap.snapshot_lsn;
  SQLFLOW_RETURN_IF_ERROR(WalManager::ReplayLog(
      raw->log_path(), snap.snapshot_lsn,
      [this, raw](const std::vector<WalRecord>& batch) {
        return ApplyWalBatch(batch, raw);
      },
      &committed_end));
  // Drop the torn tail (and any complete-but-uncommitted records before
  // it) so the batches this incarnation appends land at the committed
  // end — otherwise a later kCommit would sweep the orphans into its
  // batch on the next recovery.
  if (committed_end < raw->current_lsn()) {
    SQLFLOW_RETURN_IF_ERROR(raw->TruncateTo(committed_end));
  }
  shared_->wal = std::move(manager);
  // From here on every mutation's post-image feeds redo records.
  undo_log_.set_capture_rows(true);
  return Status::OK();
}

Result<std::unique_ptr<Database>> Database::Recover(const std::string& name,
                                                    const std::string& dir,
                                                    WalOptions options) {
  auto db = std::make_unique<Database>(name);
  SQLFLOW_RETURN_IF_ERROR(db->EnableDurability(dir, options));
  return db;
}

Status Database::Checkpoint() {
  if (shared_->wal == nullptr) {
    return Status::ExecutionError("durability is not enabled on '" +
                                  shared_->name + "'");
  }
  return WithExclusiveStatementLatch([this]() {
    const uint64_t lsn = shared_->wal->current_lsn();
    SQLFLOW_RETURN_IF_ERROR(WriteSnapshot(*this, shared_->wal->dir(), lsn,
                                          shared_->wal->WfState()));
    shared_->wal->set_snapshot_lsn(lsn);
    return Status::OK();
  });
}

Status Database::AddWalAttachment(std::string payload) {
  if (shared_->wal == nullptr) return Status::OK();
  if (in_transaction_ || statement_depth_ > 0) {
    wal_attachments_.push_back(std::move(payload));
    return Status::OK();
  }
  // Between statements: the record forms its own committed batch.
  FaultInjector* injector = shared_->fault_injector != nullptr
                                ? shared_->fault_injector.get()
                                : GlobalFaultInjectorRef().get();
  shared_->wal->SetFaultInjector(injector, shared_->name);
  return shared_->wal->Append(payload);
}

Status Database::AppendWalCommitBatch() {
  std::vector<std::string> payloads = BuildWalPayloadsFromUndo();
  for (std::string& a : wal_attachments_) payloads.push_back(std::move(a));
  wal_attachments_.clear();
  if (payloads.empty()) return Status::OK();
  FaultInjector* injector = shared_->fault_injector != nullptr
                                ? shared_->fault_injector.get()
                                : GlobalFaultInjectorRef().get();
  shared_->wal->SetFaultInjector(injector, shared_->name);
  // Append-only here: the fsync wait (kEveryCommit) is deferred to
  // WaitPendingWalDurability so it runs after the statement latch
  // drops and coalesces with other connections' flushes.
  return shared_->wal->AppendCommit(payloads, &pending_wal_sync_lsn_);
}

Status Database::WaitPendingWalDurability() {
  if (pending_wal_sync_lsn_ == 0) return Status::OK();
  // Still latched means this is a nested frame (BEGIN/COMMIT executed
  // from SQL text, a CALL body) — the outermost frame releases the
  // latch and discharges the wait.
  if (std::find(t_held_latches.begin(), t_held_latches.end(),
                static_cast<const void*>(shared_.get())) !=
      t_held_latches.end()) {
    return Status::OK();
  }
  const uint64_t lsn = pending_wal_sync_lsn_;
  pending_wal_sync_lsn_ = 0;
  if (shared_->wal == nullptr) return Status::OK();
  return shared_->wal->SyncToLsn(lsn);
}

std::vector<std::string> Database::BuildWalPayloadsFromUndo() {
  const std::vector<UndoEntry>& entries = undo_log_.entries();
  Catalog& catalog = shared_->catalog;

  // Pre-pass: a DROP wipes everything earlier in the scope for that
  // name. If the object was also *created* in this scope, the drop
  // itself vanishes too — neither side survives the commit, and redo
  // for DML on the phantom object would replay against nothing.
  std::vector<char> elide(entries.size(), 0);
  for (size_t i = 0; i < entries.size(); ++i) {
    const UndoEntry& d = entries[i];
    UndoEntry::Kind create_kind;
    std::function<bool(const UndoEntry&)> wiped;
    switch (d.kind) {
      case UndoEntry::Kind::kDropTable:
        create_kind = UndoEntry::Kind::kCreateTable;
        wiped = [&d](const UndoEntry& e) {
          switch (e.kind) {
            case UndoEntry::Kind::kInsert:
            case UndoEntry::Kind::kUpdate:
            case UndoEntry::Kind::kDelete:
            case UndoEntry::Kind::kTruncate:
            case UndoEntry::Kind::kCreateTable:
              return EqualsIgnoreCase(e.table_name, d.table_name);
            case UndoEntry::Kind::kCreateIndex:
              return EqualsIgnoreCase(e.index_table, d.table_name);
            default:
              return false;
          }
        };
        break;
      case UndoEntry::Kind::kDropSequence:
        create_kind = UndoEntry::Kind::kCreateSequence;
        wiped = [&d](const UndoEntry& e) {
          return (e.kind == UndoEntry::Kind::kCreateSequence ||
                  e.kind == UndoEntry::Kind::kSequenceAdvance) &&
                 EqualsIgnoreCase(e.table_name, d.table_name);
        };
        break;
      case UndoEntry::Kind::kDropView:
        create_kind = UndoEntry::Kind::kCreateView;
        wiped = [&d](const UndoEntry& e) {
          return e.kind == UndoEntry::Kind::kCreateView &&
                 EqualsIgnoreCase(e.table_name, d.table_name);
        };
        break;
      case UndoEntry::Kind::kDropIndex:
        create_kind = UndoEntry::Kind::kCreateIndex;
        wiped = [&d](const UndoEntry& e) {
          return e.kind == UndoEntry::Kind::kCreateIndex &&
                 EqualsIgnoreCase(e.table_name, d.table_name);
        };
        break;
      default:
        continue;
    }
    bool born_here = false;
    for (size_t j = 0; j < i; ++j) {
      if (elide[j] || !wiped(entries[j])) continue;
      if (entries[j].kind == create_kind) born_here = true;
      elide[j] = 1;
    }
    if (born_here) elide[i] = 1;
  }

  std::vector<std::string> payloads;
  // Repeated NEXTVALs on one sequence collapse to a single kSeqSet: at
  // build time the catalog already holds the final position.
  std::set<std::string> seq_emitted;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (elide[i]) continue;
    const UndoEntry& e = entries[i];
    switch (e.kind) {
      case UndoEntry::Kind::kInsert:
        payloads.push_back(
            WalInsertRecord(e.table_name, e.row_id, e.new_row));
        break;
      case UndoEntry::Kind::kUpdate:
        payloads.push_back(
            WalUpdateRecord(e.table_name, e.row_id, e.new_row));
        break;
      case UndoEntry::Kind::kDelete:
        payloads.push_back(WalDeleteRecord(e.table_name, e.row_id));
        break;
      case UndoEntry::Kind::kTruncate:
        payloads.push_back(WalTruncateRecord(e.table_name));
        break;
      case UndoEntry::Kind::kCreateTable: {
        const Table* table = catalog.FindTable(e.table_name);
        if (table != nullptr) {
          payloads.push_back(WalDdlRecord(CreateTableSql(table->schema())));
        }
        break;
      }
      case UndoEntry::Kind::kDropTable:
        payloads.push_back(WalDdlRecord("DROP TABLE " + e.table_name));
        break;
      case UndoEntry::Kind::kCreateSequence: {
        const Sequence* seq = catalog.FindSequence(e.table_name);
        if (seq != nullptr) {
          payloads.push_back(
              WalDdlRecord("CREATE SEQUENCE " + seq->name + " START WITH " +
                           std::to_string(seq->start_with)));
        }
        break;
      }
      case UndoEntry::Kind::kDropSequence:
        payloads.push_back(WalDdlRecord("DROP SEQUENCE " + e.table_name));
        break;
      case UndoEntry::Kind::kSequenceAdvance: {
        if (!seq_emitted.insert(ToUpperAscii(e.table_name)).second) break;
        const Sequence* seq = catalog.FindSequence(e.table_name);
        if (seq != nullptr) {
          payloads.push_back(WalSeqSetRecord(seq->name, seq->next_value));
        }
        break;
      }
      case UndoEntry::Kind::kCreateIndex: {
        const IndexInfo* info = catalog.FindIndex(e.table_name);
        if (info != nullptr) {
          std::string stmt =
              info->unique ? "CREATE UNIQUE INDEX " : "CREATE INDEX ";
          stmt += info->name + " ON " + info->table_name + " (";
          for (size_t c = 0; c < info->columns.size(); ++c) {
            if (c > 0) stmt += ", ";
            stmt += info->columns[c];
          }
          stmt += ")";
          payloads.push_back(WalDdlRecord(stmt));
        }
        break;
      }
      case UndoEntry::Kind::kDropIndex:
        payloads.push_back(WalDdlRecord("DROP INDEX " + e.table_name));
        break;
      case UndoEntry::Kind::kCreateView: {
        const SelectStatement* view = catalog.FindView(e.table_name);
        if (view != nullptr) {
          payloads.push_back(WalDdlRecord("CREATE VIEW " + e.table_name +
                                          " AS " + SelectToString(*view)));
        }
        break;
      }
      case UndoEntry::Kind::kDropView:
        payloads.push_back(WalDdlRecord("DROP VIEW " + e.table_name));
        break;
    }
  }
  return payloads;
}

Status Database::ApplyWalBatch(const std::vector<WalRecord>& batch,
                               WalManager* manager) {
  for (const WalRecord& rec : batch) {
    WalReader r(rec.payload);
    switch (rec.type) {
      case WalRecordType::kInsert: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string table_name, r.Str());
        SQLFLOW_ASSIGN_OR_RETURN(uint64_t row_id, r.U64());
        SQLFLOW_ASSIGN_OR_RETURN(Row row, r.RowField());
        Table* table = shared_->catalog.FindTable(table_name);
        if (table == nullptr) {
          return Status::DataLoss("wal replays INSERT into unknown table " +
                                  table_name);
        }
        table->ReplayInsert(std::move(row), row_id);
        break;
      }
      case WalRecordType::kUpdate: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string table_name, r.Str());
        SQLFLOW_ASSIGN_OR_RETURN(uint64_t row_id, r.U64());
        SQLFLOW_ASSIGN_OR_RETURN(Row row, r.RowField());
        Table* table = shared_->catalog.FindTable(table_name);
        if (table == nullptr) {
          return Status::DataLoss("wal replays UPDATE of unknown table " +
                                  table_name);
        }
        SQLFLOW_RETURN_IF_ERROR(table->ReplayUpdate(row_id, std::move(row)));
        break;
      }
      case WalRecordType::kDelete: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string table_name, r.Str());
        SQLFLOW_ASSIGN_OR_RETURN(uint64_t row_id, r.U64());
        Table* table = shared_->catalog.FindTable(table_name);
        if (table == nullptr) {
          return Status::DataLoss("wal replays DELETE from unknown table " +
                                  table_name);
        }
        SQLFLOW_RETURN_IF_ERROR(table->ReplayDelete(row_id));
        break;
      }
      case WalRecordType::kTruncate: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string table_name, r.Str());
        Table* table = shared_->catalog.FindTable(table_name);
        if (table == nullptr) {
          return Status::DataLoss("wal replays TRUNCATE of unknown table " +
                                  table_name);
        }
        table->Clear(nullptr);
        break;
      }
      case WalRecordType::kDdl: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string sql, r.Str());
        auto result = Execute(sql);
        if (!result.ok()) {
          return Status::DataLoss("wal DDL replay failed: [" + sql + "]: " +
                                  result.status().ToString());
        }
        break;
      }
      case WalRecordType::kSeqSet: {
        SQLFLOW_ASSIGN_OR_RETURN(std::string name, r.Str());
        SQLFLOW_ASSIGN_OR_RETURN(uint64_t next_value, r.U64());
        Sequence* seq = shared_->catalog.FindSequence(name);
        if (seq == nullptr) {
          return Status::DataLoss("wal replays advance of unknown sequence " +
                                  name);
        }
        seq->next_value = static_cast<int64_t>(next_value);
        break;
      }
      case WalRecordType::kWfStart:
      case WalRecordType::kWfStep:
      case WalRecordType::kWfAttempt:
      case WalRecordType::kWfEnd:
      case WalRecordType::kNetRequest:
        manager->NoteReplayedRecord(rec);
        break;
      case WalRecordType::kCommit:
        break;  // batch terminator; ReplayLog does not deliver these
    }
  }
  return Status::OK();
}

Result<Value> EvalNextval(Database* db, const std::string& sequence_name) {
  Sequence* seq = db->catalog().FindSequence(sequence_name);
  if (seq == nullptr) {
    return Status::NotFound("no sequence '" + sequence_name + "'");
  }
  if (UndoLog* undo = db->active_undo()) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kSequenceAdvance;
    e.table_name = sequence_name;
    e.sequence_value = seq->next_value;
    undo->Record(std::move(e));
  }
  return Value::Integer(seq->next_value++);
}

}  // namespace sqlflow::sql
