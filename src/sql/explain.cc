#include "sql/explain.h"

#include <utility>

#include "common/string_util.h"
#include "obs/trace.h"
#include "sql/database.h"
#include "sql/planner.h"
#include "sql/profile.h"
#include "sql/table.h"

namespace sqlflow::sql {

// ---------------------------------------------------------------------------
// Shared plan-decision helpers
// ---------------------------------------------------------------------------

int FindScopeColumnIndex(const std::vector<ScopeColumnRef>& cols,
                         const Expr& e) {
  if (e.kind != ExprKind::kColumnRef) return -1;
  int found = -1;
  for (size_t i = 0; i < cols.size(); ++i) {
    const ScopeColumnRef& sc = cols[i];
    if (!e.table_qualifier.empty() &&
        !EqualsIgnoreCase(sc.qualifier, e.table_qualifier)) {
      continue;
    }
    if (!EqualsIgnoreCase(sc.name, e.column_name)) continue;
    if (found >= 0) return -1;
    found = static_cast<int>(i);
  }
  return found;
}

std::vector<std::pair<size_t, size_t>> ExtractEquiJoinKeys(
    const Expr& join_condition, const std::vector<ScopeColumnRef>& columns,
    size_t left_width) {
  std::vector<std::pair<size_t, size_t>> key_pairs;
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(join_condition, &conjuncts);
  for (const Expr* c : conjuncts) {
    if (c->kind != ExprKind::kBinary || c->binary_op != BinaryOp::kEq) {
      continue;
    }
    int a = FindScopeColumnIndex(columns, *c->children[0]);
    int b = FindScopeColumnIndex(columns, *c->children[1]);
    if (a < 0 || b < 0) continue;
    size_t ua = static_cast<size_t>(a);
    size_t ub = static_cast<size_t>(b);
    if (ua < left_width && ub >= left_width) {
      key_pairs.emplace_back(ua, ub - left_width);
    } else if (ub < left_width && ua >= left_width) {
      key_pairs.emplace_back(ub, ua - left_width);
    }
  }
  return key_pairs;
}

bool PushdownAllowed(const SelectStatement& sel, size_t ref_index) {
  const TableRef& ref = sel.from[ref_index];
  // Filtering the right side of a LEFT OUTER join is unsound: a left row
  // whose only matches are filtered away becomes NULL-padded, and a
  // pushed conjunct like `r.x IS NULL` would then accept rows the
  // unpushed plan rejects.
  if (ref_index > 0 && ref.join_type == JoinType::kLeftOuter) return false;
  const std::string& qual = ref.alias.empty() ? ref.table_name : ref.alias;
  size_t alias_count = 0;
  for (const TableRef& other : sel.from) {
    const std::string& other_qual =
        other.alias.empty() ? other.table_name : other.alias;
    if (EqualsIgnoreCase(other_qual, qual)) ++alias_count;
  }
  return alias_count == 1;
}

std::vector<const Expr*> CollectPushableConjuncts(
    const TableSchema& schema, const std::string& qual,
    const SelectStatement& sel) {
  std::vector<const Expr*> pushable;
  if (sel.where == nullptr) return pushable;

  auto qualified_col = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kColumnRef) return -1;
    if (e.table_qualifier.empty() ||
        !EqualsIgnoreCase(e.table_qualifier, qual)) {
      return -1;
    }
    return schema.FindColumn(e.column_name);
  };

  // Conjuncts that (a) mention only this table's columns, all explicitly
  // qualified, and (b) cannot raise a TypeError the un-pushed WHERE
  // would have short-circuited past — never-erroring forms (IS [NOT]
  // NULL, BETWEEN, IN over probes, LIKE) plus class-gated comparisons.
  // Parameters re-gate at evaluation time.
  std::vector<const Expr*> conjuncts;
  SplitConjuncts(*sel.where, &conjuncts);
  for (const Expr* c : conjuncts) {
    switch (c->kind) {
      case ExprKind::kUnary:
        if ((c->unary_op == UnaryOp::kIsNull ||
             c->unary_op == UnaryOp::kIsNotNull) &&
            qualified_col(*c->children[0]) >= 0) {
          pushable.push_back(c);
        }
        break;
      case ExprKind::kBetween:
        if (qualified_col(*c->children[0]) >= 0 &&
            IsProbeExpr(*c->children[1]) && IsProbeExpr(*c->children[2])) {
          pushable.push_back(c);
        }
        break;
      case ExprKind::kInList: {
        if (qualified_col(*c->children[0]) < 0) break;
        bool all_probes = true;
        for (size_t i = 1; i < c->children.size(); ++i) {
          if (!IsProbeExpr(*c->children[i])) {
            all_probes = false;
            break;
          }
        }
        if (all_probes) pushable.push_back(c);
        break;
      }
      case ExprKind::kBinary: {
        BinaryOp op = c->binary_op;
        if (op == BinaryOp::kLike) {
          if (qualified_col(*c->children[0]) >= 0 &&
              IsProbeExpr(*c->children[1])) {
            pushable.push_back(c);
          }
          break;
        }
        if (op != BinaryOp::kEq && op != BinaryOp::kNotEq &&
            op != BinaryOp::kLt && op != BinaryOp::kLtEq &&
            op != BinaryOp::kGt && op != BinaryOp::kGtEq) {
          break;
        }
        int col = qualified_col(*c->children[0]);
        const Expr* probe = c->children[1].get();
        if (col < 0) {
          col = qualified_col(*c->children[1]);
          probe = c->children[0].get();
        }
        if (col < 0 || !IsProbeExpr(*probe)) break;
        ValueType type = schema.columns()[static_cast<size_t>(col)].type;
        if (type == ValueType::kNull) break;  // untyped: anything stored
        if (!ProbeExprCompatible(type, *probe)) break;
        pushable.push_back(c);
        break;
      }
      default:
        break;
    }
  }
  return pushable;
}

ExprPtr CombineConjuncts(const std::vector<const Expr*>& conjuncts) {
  if (conjuncts.empty()) return nullptr;
  ExprPtr combined = CloneExpr(*conjuncts[0]);
  for (size_t i = 1; i < conjuncts.size(); ++i) {
    combined = MakeBinary(BinaryOp::kAnd, std::move(combined),
                          CloneExpr(*conjuncts[i]));
  }
  return combined;
}

// ---------------------------------------------------------------------------
// Static plan rendering
// ---------------------------------------------------------------------------

namespace {

constexpr int kMaxRenderDepth = 16;

std::string ExplainDeriveColumnName(const Expr& e, size_t ordinal) {
  if (e.kind == ExprKind::kColumnRef) return e.column_name;
  if (e.kind == ExprKind::kFunctionCall) return e.function_name;
  return "col" + std::to_string(ordinal + 1);
}

/// Appends one plan line at `depth` (two-space indent per level).
void AddLine(std::vector<std::string>* lines, int depth, std::string text) {
  lines->push_back(std::string(static_cast<size_t>(depth) * 2, ' ') +
                   std::move(text));
}

/// Best-effort static output columns of a SELECT (for join-key
/// extraction through views and derived tables). False when a star
/// cannot be expanded without executing (unknown inner scope).
bool StaticSelectColumns(Database* db, const SelectStatement& sel,
                         int depth, std::vector<std::string>* out) {
  if (depth > kMaxRenderDepth) return false;
  std::vector<ScopeColumnRef> scope;
  for (const TableRef& ref : sel.from) {
    const std::string& qual =
        ref.alias.empty() ? ref.table_name : ref.alias;
    if (ref.derived != nullptr) {
      std::vector<std::string> names;
      if (!StaticSelectColumns(db, *ref.derived, depth + 1, &names)) {
        return false;
      }
      for (std::string& n : names) scope.push_back({qual, std::move(n)});
    } else if (const Table* table =
                   db->catalog().FindTable(ref.table_name)) {
      for (const ColumnDef& col : table->schema().columns()) {
        scope.push_back({qual, col.name});
      }
    } else if (const SelectStatement* view =
                   db->catalog().FindView(ref.table_name)) {
      std::vector<std::string> names;
      if (!StaticSelectColumns(db, *view, depth + 1, &names)) return false;
      for (std::string& n : names) scope.push_back({qual, std::move(n)});
    } else {
      return false;
    }
  }
  for (const SelectItem& item : sel.items) {
    if (item.star) {
      for (const ScopeColumnRef& sc : scope) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(sc.qualifier, item.star_qualifier)) {
          continue;
        }
        out->push_back(sc.name);
      }
      continue;
    }
    out->push_back(!item.alias.empty()
                       ? item.alias
                       : ExplainDeriveColumnName(*item.expr, out->size()));
  }
  return true;
}

std::string ColumnName(const TableSchema& schema, size_t ordinal) {
  return ordinal < schema.column_count() ? schema.columns()[ordinal].name
                                         : "?";
}

std::string DescribeIndexLookup(const TableSchema& schema,
                                const IndexLookupPlan& plan) {
  std::string desc = plan.table_name + " via " + plan.index_name + " (";
  if (plan.in_list != nullptr) {
    desc += ColumnName(schema, plan.key_columns.empty()
                                   ? 0
                                   : plan.key_columns[0]);
    desc += " IN ...";
  } else {
    for (size_t i = 0; i < plan.key_columns.size(); ++i) {
      if (i > 0) desc += ", ";
      desc += ColumnName(schema, plan.key_columns[i]);
      desc += " = ";
      desc += i < plan.key_values.size() ? plan.key_values[i]->ToString()
                                         : "?";
    }
  }
  desc += ")";
  return desc;
}

std::string DescribeRangeScan(const TableSchema& schema,
                              const RangeScanPlan& plan) {
  const std::string col = ColumnName(schema, plan.column);
  std::string desc = plan.table_name + " via " + plan.index_name + " (";
  bool first = true;
  for (size_t i = 0; i < plan.prefix_values.size(); ++i) {
    if (!first) desc += ", ";
    desc += ColumnName(schema, plan.key_columns[i]) + " = " +
            plan.prefix_values[i]->ToString();
    first = false;
  }
  if (plan.like_pattern != nullptr) {
    if (!first) desc += ", ";
    desc += col + " LIKE " + plan.like_pattern->ToString();
    first = false;
  } else {
    std::string bounds;
    if (plan.lower.probe != nullptr) {
      bounds += col + (plan.lower.inclusive ? " >= " : " > ") +
                plan.lower.probe->ToString();
    }
    if (plan.upper.probe != nullptr) {
      if (!bounds.empty()) bounds += " AND ";
      bounds += col + (plan.upper.inclusive ? " <= " : " < ") +
                plan.upper.probe->ToString();
    }
    if (!bounds.empty()) {
      if (!first) desc += ", ";
      desc += bounds;
      first = false;
    }
  }
  if (first) desc += col + " unbounded";
  desc += ")";
  return desc;
}

/// Statically mirrors Executor::ResolveCandidates for one base table:
/// which access path the optimizer would choose for `where`, and whether
/// an ordered traversal lets the caller skip its sort. The runtime may
/// still fall back to a scan (probe/param type mismatch at execution).
void RenderAccessPath(Database* db, Table* table, const std::string& qual,
                      const Expr* where,
                      const std::vector<size_t>* desired_order,
                      bool desired_desc, int depth, bool* sort_elided,
                      std::vector<std::string>* lines) {
  const TableSchema& schema = table->schema();
  if (!db->optimizer_enabled()) {
    AddLine(lines, depth, "SCAN " + schema.table_name());
    return;
  }
  StatementPlan local;
  if (where != nullptr) {
    ChooseAccessPath(*table, qual, where, &local);
  }
  if (local.has_access) {
    AddLine(lines, depth,
            "INDEX LOOKUP " + DescribeIndexLookup(schema, local.access));
    return;
  }
  if (local.has_range) {
    bool elide = desired_order != nullptr &&
                 *desired_order == local.range.key_columns;
    AddLine(lines, depth,
            "RANGE SCAN " + DescribeRangeScan(schema, local.range) +
                (elide && desired_desc ? " (reverse)" : ""));
    if (sort_elided != nullptr && elide) *sort_elided = true;
    return;
  }
  if (desired_order != nullptr && !desired_order->empty()) {
    for (const SecondaryIndex& index : table->secondary_indexes()) {
      if (index.column_indexes != *desired_order) continue;
      AddLine(lines, depth,
              "RANGE SCAN " + schema.table_name() + " via " + index.name +
                  (desired_desc ? " (full traversal, reverse)"
                                : " (full traversal)"));
      if (sort_elided != nullptr) *sort_elided = true;
      return;
    }
  }
  AddLine(lines, depth, "SCAN " + schema.table_name());
}

void RenderSelect(Database* db, const SelectStatement& sel, int depth,
                  std::vector<std::string>* lines);

/// Renders one FROM reference's input operator(s) at `depth`. Returns
/// the reference's static output column names when derivable (for
/// join-key extraction); clears `cols_ok` otherwise.
void RenderFromRef(Database* db, const SelectStatement& sel,
                   size_t ref_index, int depth, bool* sort_elided,
                   std::vector<ScopeColumnRef>* cols, bool* cols_ok,
                   std::vector<std::string>* lines) {
  const TableRef& ref = sel.from[ref_index];
  const std::string& qual = ref.alias.empty() ? ref.table_name : ref.alias;
  if (ref.derived != nullptr) {
    AddLine(lines, depth, "DERIVED " + qual);
    RenderSelect(db, *ref.derived, depth + 1, lines);
    std::vector<std::string> names;
    if (StaticSelectColumns(db, *ref.derived, 0, &names)) {
      for (std::string& n : names) cols->push_back({qual, std::move(n)});
    } else {
      *cols_ok = false;
    }
    return;
  }
  if (Table* table = db->catalog().FindTable(ref.table_name)) {
    for (const ColumnDef& col : table->schema().columns()) {
      cols->push_back({qual, col.name});
    }
    if (db->NeedsSnapshotRead(*table)) {
      // Mirrors the executor's gate: live version state forces a
      // snapshot-filtered scan, disengaging index/pushdown paths.
      // Never fires in single-connection mode, so goldens are stable.
      AddLine(lines, depth,
              "SNAPSHOT SCAN " + table->schema().table_name());
      return;
    }
    const bool single = sel.from.size() == 1;
    if (single) {
      std::vector<size_t> order_cols;
      bool order_desc = false;
      bool have_order = OrderBySargColumns(sel, qual, table->schema(),
                                           &order_cols, &order_desc);
      RenderAccessPath(db, table, qual, sel.where.get(),
                       have_order ? &order_cols : nullptr, order_desc,
                       depth, sort_elided, lines);
      return;
    }
    // Joined base table: mirror TryPushdown's static decision.
    std::vector<const Expr*> pushable;
    if (db->optimizer_enabled() && PushdownAllowed(sel, ref_index)) {
      pushable = CollectPushableConjuncts(table->schema(), qual, sel);
    }
    if (!pushable.empty()) {
      ExprPtr pushed = CombineConjuncts(pushable);
      AddLine(lines, depth,
              "PUSHDOWN " + table->schema().table_name() + " (" +
                  pushed->ToString() + ")");
      RenderAccessPath(db, table, qual, pushed.get(), nullptr, false,
                       depth + 1, nullptr, lines);
      return;
    }
    AddLine(lines, depth, "SCAN " + table->schema().table_name());
    return;
  }
  if (const SelectStatement* view =
          db->catalog().FindView(ref.table_name)) {
    AddLine(lines, depth, "VIEW " + ref.table_name);
    if (depth < kMaxRenderDepth) RenderSelect(db, *view, depth + 1, lines);
    std::vector<std::string> names;
    if (StaticSelectColumns(db, *view, 0, &names)) {
      for (std::string& n : names) cols->push_back({qual, std::move(n)});
    } else {
      *cols_ok = false;
    }
    return;
  }
  AddLine(lines, depth, "UNKNOWN TABLE " + ref.table_name);
  *cols_ok = false;
}

void RenderSelect(Database* db, const SelectStatement& sel, int depth,
                  std::vector<std::string>* lines) {
  bool sort_elided = false;
  std::vector<ScopeColumnRef> scope_cols;
  bool cols_ok = true;
  for (size_t ref_index = 0; ref_index < sel.from.size(); ++ref_index) {
    const TableRef& ref = sel.from[ref_index];
    if (ref_index == 0) {
      RenderFromRef(db, sel, ref_index, depth, &sort_elided, &scope_cols,
                    &cols_ok, lines);
      continue;
    }
    const size_t left_width = scope_cols.size();
    std::vector<ScopeColumnRef> right_cols;
    bool right_ok = true;
    std::vector<std::string> input_lines;
    RenderFromRef(db, sel, ref_index, depth + 1, nullptr, &right_cols,
                  &right_ok, &input_lines);

    std::vector<ScopeColumnRef> combined = scope_cols;
    combined.insert(combined.end(), right_cols.begin(), right_cols.end());
    std::vector<std::pair<size_t, size_t>> key_pairs;
    bool hash_join = db->optimizer_enabled() &&
                     ref.join_condition != nullptr &&
                     (ref.join_type == JoinType::kInner ||
                      ref.join_type == JoinType::kLeftOuter) &&
                     cols_ok && right_ok;
    if (hash_join) {
      key_pairs =
          ExtractEquiJoinKeys(*ref.join_condition, combined, left_width);
      hash_join = !key_pairs.empty();
    }
    std::string join_line;
    if (hash_join) {
      join_line = "HASH JOIN";
      if (ref.join_type == JoinType::kLeftOuter) join_line += " LEFT OUTER";
      join_line += " (";
      for (size_t i = 0; i < key_pairs.size(); ++i) {
        if (i > 0) join_line += ", ";
        const ScopeColumnRef& l = combined[key_pairs[i].first];
        const ScopeColumnRef& r =
            combined[left_width + key_pairs[i].second];
        join_line += l.qualifier + "." + l.name + " = " + r.qualifier +
                     "." + r.name;
      }
      join_line += ")";
    } else {
      join_line = "NESTED LOOP";
      if (ref.join_type == JoinType::kLeftOuter) join_line += " LEFT OUTER";
      join_line += ref.join_condition != nullptr
                       ? " (" + ref.join_condition->ToString() + ")"
                       : " (cross)";
    }
    AddLine(lines, depth, std::move(join_line));
    for (std::string& l : input_lines) lines->push_back(std::move(l));
    scope_cols = std::move(combined);
    cols_ok = cols_ok && right_ok;
  }

  if (sel.where != nullptr) {
    AddLine(lines, depth, "FILTER (" + sel.where->ToString() + ")");
  }

  bool has_aggregates = false;
  for (const SelectItem& item : sel.items) {
    if (!item.star && ContainsAggregate(*item.expr)) has_aggregates = true;
  }
  if (sel.having != nullptr && ContainsAggregate(*sel.having)) {
    has_aggregates = true;
  }
  if (!sel.group_by.empty() || has_aggregates) {
    if (sel.group_by.empty()) {
      AddLine(lines, depth, "AGGREGATE (implicit group)");
    } else {
      std::string keys;
      for (size_t i = 0; i < sel.group_by.size(); ++i) {
        if (i > 0) keys += ", ";
        keys += sel.group_by[i]->ToString();
      }
      AddLine(lines, depth, "AGGREGATE (GROUP BY " + keys + ")");
    }
    if (sel.having != nullptr) {
      AddLine(lines, depth, "HAVING (" + sel.having->ToString() + ")");
    }
  }

  if (sel.distinct) AddLine(lines, depth, "DISTINCT");

  if (!sel.order_by.empty()) {
    if (sort_elided) {
      AddLine(lines, depth, "SORT elided (index order)");
    } else {
      std::string keys;
      for (size_t i = 0; i < sel.order_by.size(); ++i) {
        if (i > 0) keys += ", ";
        keys += sel.order_by[i].expr->ToString();
        if (sel.order_by[i].descending) keys += " DESC";
      }
      AddLine(lines, depth, "SORT (" + keys + ")");
    }
  }

  if (sel.offset.has_value()) {
    AddLine(lines, depth, "OFFSET " + std::to_string(*sel.offset));
  }
  if (sel.limit.has_value()) {
    AddLine(lines, depth, "LIMIT " + std::to_string(*sel.limit));
  }

  if (sel.union_next != nullptr) {
    AddLine(lines, depth > 0 ? depth - 1 : 0,
            sel.union_all ? "UNION ALL" : "UNION");
    RenderSelect(db, *sel.union_next, depth, lines);
  }
}

/// "SELECT (batch)" when the executor would run this SELECT's first core
/// through the columnar pipeline (PlanBatchMode is structural, so the
/// renderer reports the same decision without executing). UNION branches
/// decide independently at run time; the header reflects the first core,
/// matching what PlanStatement memoizes.
std::string SelectHeader(Database* db, const SelectStatement& sel) {
  return db->batch_enabled() && PlanBatchMode(sel) ? "SELECT (batch)"
                                                   : "SELECT";
}

void RenderStatement(Database* db, const Statement& stmt, int depth,
                     std::vector<std::string>* lines) {
  switch (stmt.kind) {
    case StatementKind::kSelect:
      AddLine(lines, depth, SelectHeader(db, *stmt.select));
      RenderSelect(db, *stmt.select, depth + 1, lines);
      return;
    case StatementKind::kInsert: {
      const InsertStatement& ins = *stmt.insert;
      AddLine(lines, depth, "INSERT INTO " + ins.table_name);
      if (ins.select != nullptr) {
        AddLine(lines, depth + 1, SelectHeader(db, *ins.select));
        RenderSelect(db, *ins.select, depth + 2, lines);
      } else {
        AddLine(lines, depth + 1,
                "VALUES (" + std::to_string(ins.rows.size()) + " row" +
                    (ins.rows.size() == 1 ? "" : "s") + ")");
      }
      return;
    }
    case StatementKind::kUpdate: {
      const UpdateStatement& upd = *stmt.update;
      AddLine(lines, depth, "UPDATE " + upd.table_name);
      if (Table* table = db->catalog().FindTable(upd.table_name)) {
        RenderAccessPath(db, table, upd.table_name, upd.where.get(),
                         nullptr, false, depth + 1, nullptr, lines);
      }
      if (upd.where != nullptr) {
        AddLine(lines, depth + 1,
                "FILTER (" + upd.where->ToString() + ")");
      }
      return;
    }
    case StatementKind::kDelete: {
      const DeleteStatement& del = *stmt.del;
      AddLine(lines, depth, "DELETE FROM " + del.table_name);
      if (Table* table = db->catalog().FindTable(del.table_name)) {
        RenderAccessPath(db, table, del.table_name, del.where.get(),
                         nullptr, false, depth + 1, nullptr, lines);
      }
      if (del.where != nullptr) {
        AddLine(lines, depth + 1,
                "FILTER (" + del.where->ToString() + ")");
      }
      return;
    }
    case StatementKind::kCall:
      AddLine(lines, depth, "CALL " + stmt.call->procedure_name);
      return;
    default:
      // DDL and transaction control have no access-path plan.
      AddLine(lines, depth,
              std::string(StatementKindName(stmt.kind)) + " (no plan)");
      return;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// ORDER BY elision
// ---------------------------------------------------------------------------

/// Maps each ORDER BY item of a single-base-table SELECT to a schema
/// column ordinal, mirroring the executor's sort-key resolution (output
/// ordinal / output name / scope reference) exactly. Returns false when
/// the items mix sort directions, when grouped/DISTINCT execution
/// reorders rows, or when an item is not a plain stored-column
/// reference — an ordered index traversal (forward for ASC, reversed
/// for DESC) can replace the sort only in the exact-match case (ties
/// then fall back to slot order, which is the same table order
/// stable_sort preserves).
bool OrderBySargColumns(const SelectStatement& sel, const std::string& qual,
                        const TableSchema& schema, std::vector<size_t>* out,
                        bool* descending) {
  if (sel.order_by.empty() || sel.distinct || !sel.group_by.empty() ||
      sel.having != nullptr) {
    return false;
  }
  const bool desc = sel.order_by[0].descending;
  for (const OrderByItem& ob : sel.order_by) {
    if (ob.descending != desc || ContainsAggregate(*ob.expr)) return false;
  }
  for (const SelectItem& item : sel.items) {
    if (!item.star && ContainsAggregate(*item.expr)) return false;
  }

  // Replicate star expansion so output ordinals/names line up with what
  // the projection will build.
  struct Out {
    const Expr* expr = nullptr;  // null ⇒ scope passthrough
    size_t scope_index = 0;
    std::string name;
  };
  std::vector<Out> outputs;
  for (const SelectItem& item : sel.items) {
    if (item.star) {
      if (!item.star_qualifier.empty() &&
          !EqualsIgnoreCase(item.star_qualifier, qual)) {
        continue;
      }
      for (size_t i = 0; i < schema.column_count(); ++i) {
        outputs.push_back({nullptr, i, schema.columns()[i].name});
      }
      continue;
    }
    Out o;
    o.expr = item.expr.get();
    o.name = !item.alias.empty()
                 ? item.alias
                 : ExplainDeriveColumnName(*item.expr, outputs.size());
    outputs.push_back(std::move(o));
  }

  auto scope_ordinal = [&](const Expr& e) -> int {
    if (e.kind != ExprKind::kColumnRef) return -1;
    if (!e.table_qualifier.empty() &&
        !EqualsIgnoreCase(e.table_qualifier, qual)) {
      return -1;
    }
    return schema.FindColumn(e.column_name);
  };

  for (const OrderByItem& ob : sel.order_by) {
    const Expr& e = *ob.expr;
    int output_idx = -1;
    if (e.kind == ExprKind::kLiteral &&
        e.literal.type() == ValueType::kInteger) {
      int64_t ordinal = e.literal.integer();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(outputs.size())) {
        return false;
      }
      output_idx = static_cast<int>(ordinal - 1);
    } else if (e.kind == ExprKind::kColumnRef && e.table_qualifier.empty()) {
      for (size_t j = 0; j < outputs.size(); ++j) {
        if (EqualsIgnoreCase(outputs[j].name, e.column_name)) {
          output_idx = static_cast<int>(j);
          break;
        }
      }
    }
    int col = -1;
    if (output_idx >= 0) {
      const Out& o = outputs[static_cast<size_t>(output_idx)];
      col = o.expr == nullptr ? static_cast<int>(o.scope_index)
                              : scope_ordinal(*o.expr);
    } else {
      col = scope_ordinal(e);
    }
    if (col < 0) return false;
    out->push_back(static_cast<size_t>(col));
  }
  if (descending != nullptr) *descending = desc;
  return true;
}

// ---------------------------------------------------------------------------
// EXPLAIN entry point
// ---------------------------------------------------------------------------

Result<ResultSet> ExecuteExplain(Database* db,
                                 const ExplainStatement& explain,
                                 const Params& params) {
  if (explain.target == nullptr) {
    return Status::Internal("EXPLAIN without a target statement");
  }
  if (!explain.analyze) {
    std::vector<std::string> lines;
    RenderStatement(db, *explain.target, 0, &lines);
    ResultSet result({"PLAN"});
    for (std::string& line : lines) {
      result.AddRow({Value::String(std::move(line))});
    }
    return result;
  }

  // ANALYZE: run the target with a profile installed, then render what
  // actually executed. The target's own rows are discarded (only the
  // operator trace is returned), but its side effects are real.
  ExecProfile profile;
  ExecProfile* previous = db->exec_profile();
  db->set_exec_profile(&profile);
  int64_t start_ns = obs::NowNanos();
  Result<ResultSet> target_result =
      db->ExecuteStatement(*explain.target, params);
  int64_t total_ns = obs::NowNanos() - start_ns;
  db->set_exec_profile(previous);
  if (!target_result.ok()) return target_result.status();

  ResultSet result({"OP", "DETAIL", "ROWS_IN", "ROWS_OUT", "LOOPS",
                    "TIME_NS", "BATCHES"});
  for (const ExecProfileOp& op : profile.ops) {
    result.AddRow(
        {Value::String(std::string(static_cast<size_t>(op.depth) * 2, ' ') +
                       op.op),
         Value::String(op.detail),
         Value::Integer(static_cast<int64_t>(op.rows_in)),
         Value::Integer(static_cast<int64_t>(op.rows_out)),
         Value::Integer(static_cast<int64_t>(op.loops)),
         Value::Integer(op.elapsed_ns),
         Value::Integer(static_cast<int64_t>(op.batches))});
  }
  uint64_t out_rows = target_result->rows().empty()
                          ? static_cast<uint64_t>(
                                target_result->affected_rows() < 0
                                    ? 0
                                    : target_result->affected_rows())
                          : target_result->row_count();
  result.AddRow({Value::String("RESULT"), Value::String(""),
                 Value::Integer(0),
                 Value::Integer(static_cast<int64_t>(out_rows)),
                 Value::Integer(1), Value::Integer(total_ns),
                 Value::Integer(0)});
  return result;
}

}  // namespace sqlflow::sql
