#ifndef SQLFLOW_SQL_FAULT_H_
#define SQLFLOW_SQL_FAULT_H_

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqlflow::sql {

/// Which layer of the stack a fault site lives in. Statement sites fire
/// *before* any work happens (the PR-4 model: connection lost en route);
/// mid-statement sites fire *between row mutations inside* a statement,
/// leaving real partial writes for the undo log to reverse; service
/// sites fire around `wfc::service` / adapter invocations; crash sites
/// fire *inside a WAL commit append*, tearing the batch at a seed-chosen
/// byte and killing the (simulated) process image; network sites fire in
/// the wire-protocol frame path (net/protocol.cc) on either peer,
/// dropping, delaying, truncating, or abruptly closing a connection.
/// Each layer is enabled independently so a sweep can isolate one
/// failure regime.
enum class FaultLayer { kStatement, kMidStatement, kService, kCrash,
                        kNetwork };

/// What a fired network-layer site does to the frame in flight. Drops
/// and partial writes surface to the peer as a dead connection (the
/// remaining bytes never arrive); delays model congestion without
/// losing the frame; abrupt close is a RST-style teardown mid-exchange.
struct NetFault {
  enum class Kind { kDrop, kDelay, kPartialWrite, kAbruptClose };
  Kind kind = Kind::kDrop;
  /// kDelay: how long the frame stalls before proceeding.
  uint32_t delay_ms = 0;
  /// kPartialWrite: how many bytes of the frame reach the wire before
  /// the connection dies (drawn uniformly over [0, frame_bytes)).
  uint64_t partial_bytes = 0;
};
const char* NetFaultKindName(NetFault::Kind kind);

/// Where a statement is about to run, as seen by the fault injector.
/// `description` is "<KIND> <table> [<table>...]" (e.g. "INSERT ORDERS"),
/// which is what site filters match against — stable across plan-cache
/// hits and prepared statements, unlike raw SQL text. Mid-statement
/// sites use "mid <KIND> <table> row <n>" / "mid ... index <table> <op>";
/// service sites use "invoke <service>" / "adapter <service>".
struct FaultSite {
  std::string database;
  std::string description;
  FaultLayer layer = FaultLayer::kStatement;
};

/// Seed-deterministic transient/permanent fault source, installed on a
/// `sql::Database` (or globally, for chaos sweeps over every database a
/// scenario creates). Consulted once per top-level statement *before*
/// execution — an injected fault models "connection lost / deadlock
/// victim / statement timeout before any work happened", which is why a
/// retry may safely replay the statement.
///
/// Three triggering modes compose (all gated by the same filters):
///   - `fault_first_n`: deterministically fault the first N matching
///     statements (exhaustion and rollback tests);
///   - `probability`: fault each matching statement with probability p,
///     drawn from a splitmix64 stream seeded by `seed` (chaos sweeps);
///   - `budget`: hard cap on total injected faults (-1 = unlimited).
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    double probability = 0.0;
    uint64_t fault_first_n = 0;
    int64_t budget = -1;
    /// Substring match against FaultSite::description ("" = every site).
    std::string site_filter;
    /// Substring match against the database name ("" = every database).
    std::string database_filter;
    /// Per-layer gates. A site in a disabled layer passes through without
    /// consuming anything from the seeded stream (and without counting in
    /// `statements_seen`), so enabling a new layer never perturbs the
    /// schedule of an old one at the same seed — and the PR-4 default
    /// (statement sites only) reproduces PR-4 schedules exactly.
    bool statement_sites = true;
    bool mid_statement_sites = false;
    bool service_sites = false;
    /// Crash layer (kill-at-LSN): consulted by WalManager::AppendCommit.
    bool crash_sites = false;
    /// Network layer: consulted by the wire-protocol frame I/O
    /// (net::SendFrame / net::RecvFrame) on both peers.
    bool network_sites = false;
    /// Cap for kDelay network faults (milliseconds, drawn uniformly from
    /// [1, max]). Kept small so chaos sweeps stay fast.
    uint32_t network_delay_max_ms = 20;
    /// Fault kinds to rotate through (deterministically, by the same
    /// seeded stream). Defaults to the three transient kinds; tests use
    /// a single permanent kind (e.g. kExecutionError) for rollback
    /// scenarios.
    std::vector<StatusCode> kinds = {StatusCode::kUnavailable,
                                     StatusCode::kDeadlock,
                                     StatusCode::kTimeout};
  };

  struct Stats {
    uint64_t statements_seen = 0;
    uint64_t sites_matched = 0;
    uint64_t faults_injected = 0;
    std::map<StatusCode, uint64_t> injected_by_code;
    /// Injections split by FaultLayer (statement / mid-statement /
    /// service), so sweeps can report which regime produced the chaos.
    uint64_t injected_statement = 0;
    uint64_t injected_mid_statement = 0;
    uint64_t injected_service = 0;
    uint64_t injected_crash = 0;
    uint64_t injected_network = 0;
    /// Network injections split by NetFault::Kind.
    std::map<NetFault::Kind, uint64_t> injected_net_by_kind;
  };

  explicit FaultInjector(Options options);

  /// Returns the fault to raise instead of running the statement (or
  /// continuing it, for mid-statement sites), or nullopt to let it
  /// through. Increments the layer's metric counter on hit:
  /// `sql.fault.injected` / `sql.fault.injected.mid` /
  /// `svc.fault.injected`.
  std::optional<Status> MaybeFault(const FaultSite& site);

  /// Crash-layer check, consulted by WalManager::AppendCommit with the
  /// byte size of the batch about to be written. On a scheduled kill,
  /// returns how many bytes of the batch reach the file before the
  /// simulated process death — drawn uniformly from [0, batch_bytes], so
  /// the tear can land on a record boundary, mid-record, or after the
  /// whole batch (crash after durability). nullopt = no crash here.
  /// Fires under the same filters/budget/probability machinery as
  /// MaybeFault and increments `wal.crash.injected`.
  std::optional<uint64_t> MaybeCrash(const FaultSite& site,
                                     uint64_t batch_bytes);

  /// Network-layer check, consulted by the frame I/O with the size of
  /// the frame about to cross the wire. On a hit, returns what happens
  /// to it (drop / delay / partial write / abrupt close), with the kind
  /// and magnitudes drawn from the same seeded stream as every other
  /// layer. Fires under the same filters/budget/probability machinery
  /// as MaybeFault and increments `net.fault.injected`. nullopt = the
  /// frame passes untouched.
  std::optional<NetFault> MaybeNetworkFault(const FaultSite& site,
                                            uint64_t frame_bytes);

  const Options& options() const { return options_; }
  /// Copy of the counters (a concurrent MaybeFault may be mid-update;
  /// the snapshot is internally consistent under the same mutex).
  Stats stats() const {
    std::lock_guard<std::mutex> lock(mutex_);
    return stats_;
  }

  /// Re-arms the schedule from a fresh seed (stats reset too), so one
  /// injector can sweep many seeds.
  void Reseed(uint64_t seed);

 private:
  uint64_t NextRandom();

  Options options_;
  Stats stats_;
  uint64_t rng_state_;
  /// One injector is typically shared by every connection/worker (the
  /// global injector especially); the draw-and-count path serializes so
  /// concurrent statements cannot tear the stream or the stats.
  mutable std::mutex mutex_;
};

/// Renders one human-readable line per injected-fault statistic
/// ("injected=12 unavailable=5 deadlock=4 timeout=3 seen=240").
std::string DescribeFaultStats(const FaultInjector::Stats& stats);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_FAULT_H_
