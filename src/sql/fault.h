#ifndef SQLFLOW_SQL_FAULT_H_
#define SQLFLOW_SQL_FAULT_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace sqlflow::sql {

/// Where a statement is about to run, as seen by the fault injector.
/// `description` is "<KIND> <table> [<table>...]" (e.g. "INSERT ORDERS"),
/// which is what site filters match against — stable across plan-cache
/// hits and prepared statements, unlike raw SQL text.
struct FaultSite {
  std::string database;
  std::string description;
};

/// Seed-deterministic transient/permanent fault source, installed on a
/// `sql::Database` (or globally, for chaos sweeps over every database a
/// scenario creates). Consulted once per top-level statement *before*
/// execution — an injected fault models "connection lost / deadlock
/// victim / statement timeout before any work happened", which is why a
/// retry may safely replay the statement.
///
/// Three triggering modes compose (all gated by the same filters):
///   - `fault_first_n`: deterministically fault the first N matching
///     statements (exhaustion and rollback tests);
///   - `probability`: fault each matching statement with probability p,
///     drawn from a splitmix64 stream seeded by `seed` (chaos sweeps);
///   - `budget`: hard cap on total injected faults (-1 = unlimited).
class FaultInjector {
 public:
  struct Options {
    uint64_t seed = 1;
    double probability = 0.0;
    uint64_t fault_first_n = 0;
    int64_t budget = -1;
    /// Substring match against FaultSite::description ("" = every site).
    std::string site_filter;
    /// Substring match against the database name ("" = every database).
    std::string database_filter;
    /// Fault kinds to rotate through (deterministically, by the same
    /// seeded stream). Defaults to the three transient kinds; tests use
    /// a single permanent kind (e.g. kExecutionError) for rollback
    /// scenarios.
    std::vector<StatusCode> kinds = {StatusCode::kUnavailable,
                                     StatusCode::kDeadlock,
                                     StatusCode::kTimeout};
  };

  struct Stats {
    uint64_t statements_seen = 0;
    uint64_t sites_matched = 0;
    uint64_t faults_injected = 0;
    std::map<StatusCode, uint64_t> injected_by_code;
  };

  explicit FaultInjector(Options options);

  /// Returns the fault to raise instead of running the statement, or
  /// nullopt to let it through. Increments `sql.fault.injected` on hit.
  std::optional<Status> MaybeFault(const FaultSite& site);

  const Options& options() const { return options_; }
  const Stats& stats() const { return stats_; }

  /// Re-arms the schedule from a fresh seed (stats reset too), so one
  /// injector can sweep many seeds.
  void Reseed(uint64_t seed);

 private:
  uint64_t NextRandom();

  Options options_;
  Stats stats_;
  uint64_t rng_state_;
};

/// Renders one human-readable line per injected-fault statistic
/// ("injected=12 unavailable=5 deadlock=4 timeout=3 seen=240").
std::string DescribeFaultStats(const FaultInjector::Stats& stats);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_FAULT_H_
