#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace sqlflow::sql {

namespace {

/// Recursive-descent parser over the token stream. One instance parses one
/// statement (or expression); parameter indices are assigned in order of
/// appearance.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::unique_ptr<Statement>> ParseSingleStatement() {
    SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                             ParseStatementInternal());
    Accept(TokenType::kSemicolon);
    if (!AtEnd()) {
      return Error("unexpected trailing input");
    }
    stmt->parameter_count = next_param_index_;
    return stmt;
  }

  Result<std::vector<std::unique_ptr<Statement>>> ParseScriptStatements() {
    std::vector<std::unique_ptr<Statement>> out;
    while (!AtEnd()) {
      if (Accept(TokenType::kSemicolon)) continue;
      SQLFLOW_ASSIGN_OR_RETURN(std::unique_ptr<Statement> stmt,
                               ParseStatementInternal());
      stmt->parameter_count = next_param_index_;
      out.push_back(std::move(stmt));
      if (!AtEnd() && !Accept(TokenType::kSemicolon)) {
        return Error("expected ';' between statements");
      }
    }
    return out;
  }

  Result<ExprPtr> ParseStandaloneExpression() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
    if (!AtEnd()) return Error("unexpected trailing input in expression");
    return e;
  }

 private:
  // --- token helpers -------------------------------------------------------

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& PeekAhead(size_t k) const {
    size_t i = pos_ + k;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  bool AtEnd() const { return Peek().type == TokenType::kEnd; }

  const Token& Advance() { return tokens_[pos_++]; }

  bool Check(TokenType type) const { return Peek().type == type; }
  bool CheckKeyword(const char* kw) const { return Peek().IsKeyword(kw); }

  bool Accept(TokenType type) {
    if (Check(type)) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool AcceptKeyword(const char* kw) {
    if (CheckKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Expect(TokenType type, const char* what) {
    if (!Accept(type)) {
      return Error(std::string("expected ") + what);
    }
    return Status::OK();
  }

  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Error(std::string("expected keyword ") + kw);
    }
    return Status::OK();
  }

  Status Error(const std::string& msg) const {
    return Status::SyntaxError(msg + " at offset " +
                               std::to_string(Peek().position) + " (near " +
                               TokenTypeName(Peek().type) +
                               (Peek().text.empty() ? "" : " '" + Peek().text + "'") +
                               ")");
  }

  Result<std::string> ExpectIdentifier(const char* what) {
    if (!Check(TokenType::kIdentifier)) {
      return Error(std::string("expected ") + what);
    }
    return Advance().text;
  }

  // --- statements -----------------------------------------------------------

  Result<std::unique_ptr<Statement>> ParseStatementInternal() {
    auto stmt = std::make_unique<Statement>();
    if (AcceptKeyword("EXPLAIN")) {
      stmt->kind = StatementKind::kExplain;
      auto explain = std::make_unique<ExplainStatement>();
      explain->analyze = AcceptKeyword("ANALYZE");
      SQLFLOW_ASSIGN_OR_RETURN(explain->target, ParseStatementInternal());
      if (explain->target->kind == StatementKind::kExplain) {
        return Error("EXPLAIN cannot wrap another EXPLAIN");
      }
      stmt->explain = std::move(explain);
      return stmt;
    }
    if (CheckKeyword("SELECT")) {
      stmt->kind = StatementKind::kSelect;
      SQLFLOW_ASSIGN_OR_RETURN(stmt->select, ParseSelect());
      return stmt;
    }
    if (AcceptKeyword("INSERT")) {
      stmt->kind = StatementKind::kInsert;
      SQLFLOW_ASSIGN_OR_RETURN(stmt->insert, ParseInsert());
      return stmt;
    }
    if (AcceptKeyword("UPDATE")) {
      stmt->kind = StatementKind::kUpdate;
      SQLFLOW_ASSIGN_OR_RETURN(stmt->update, ParseUpdate());
      return stmt;
    }
    if (AcceptKeyword("DELETE")) {
      stmt->kind = StatementKind::kDelete;
      SQLFLOW_ASSIGN_OR_RETURN(stmt->del, ParseDelete());
      return stmt;
    }
    if (AcceptKeyword("CREATE")) {
      if (AcceptKeyword("TABLE")) {
        stmt->kind = StatementKind::kCreateTable;
        SQLFLOW_ASSIGN_OR_RETURN(stmt->create_table, ParseCreateTable());
        return stmt;
      }
      if (AcceptKeyword("SEQUENCE")) {
        stmt->kind = StatementKind::kCreateSequence;
        SQLFLOW_ASSIGN_OR_RETURN(stmt->create_sequence,
                                 ParseCreateSequence());
        return stmt;
      }
      if (AcceptKeyword("VIEW")) {
        stmt->kind = StatementKind::kCreateView;
        auto create = std::make_unique<CreateViewStatement>();
        SQLFLOW_ASSIGN_OR_RETURN(create->view_name,
                                 ExpectIdentifier("view name"));
        SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("AS"));
        SQLFLOW_ASSIGN_OR_RETURN(create->select, ParseSelect());
        stmt->create_view = std::move(create);
        return stmt;
      }
      bool unique = AcceptKeyword("UNIQUE");
      if (AcceptKeyword("INDEX")) {
        stmt->kind = StatementKind::kCreateIndex;
        SQLFLOW_ASSIGN_OR_RETURN(stmt->create_index,
                                 ParseCreateIndex(unique));
        return stmt;
      }
      return Error("expected TABLE, SEQUENCE, VIEW or INDEX after CREATE");
    }
    if (AcceptKeyword("DROP")) {
      if (AcceptKeyword("TABLE")) {
        stmt->kind = StatementKind::kDropTable;
        auto drop = std::make_unique<DropTableStatement>();
        if (AcceptKeyword("IF")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
          drop->if_exists = true;
        }
        SQLFLOW_ASSIGN_OR_RETURN(drop->table_name,
                                 ExpectIdentifier("table name"));
        stmt->drop_table = std::move(drop);
        return stmt;
      }
      if (AcceptKeyword("SEQUENCE")) {
        stmt->kind = StatementKind::kDropSequence;
        auto drop = std::make_unique<DropSequenceStatement>();
        if (AcceptKeyword("IF")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
          drop->if_exists = true;
        }
        SQLFLOW_ASSIGN_OR_RETURN(drop->sequence_name,
                                 ExpectIdentifier("sequence name"));
        stmt->drop_sequence = std::move(drop);
        return stmt;
      }
      if (AcceptKeyword("VIEW")) {
        stmt->kind = StatementKind::kDropView;
        auto drop = std::make_unique<DropViewStatement>();
        if (AcceptKeyword("IF")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
          drop->if_exists = true;
        }
        SQLFLOW_ASSIGN_OR_RETURN(drop->view_name,
                                 ExpectIdentifier("view name"));
        stmt->drop_view = std::move(drop);
        return stmt;
      }
      if (AcceptKeyword("INDEX")) {
        stmt->kind = StatementKind::kDropIndex;
        auto drop = std::make_unique<DropIndexStatement>();
        if (AcceptKeyword("IF")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
          drop->if_exists = true;
        }
        SQLFLOW_ASSIGN_OR_RETURN(drop->index_name,
                                 ExpectIdentifier("index name"));
        stmt->drop_index = std::move(drop);
        return stmt;
      }
      return Error("expected TABLE, SEQUENCE, VIEW or INDEX after DROP");
    }
    if (AcceptKeyword("TRUNCATE")) {
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
      stmt->kind = StatementKind::kTruncate;
      auto trunc = std::make_unique<TruncateStatement>();
      SQLFLOW_ASSIGN_OR_RETURN(trunc->table_name, ParseDottedTableName());
      stmt->truncate = std::move(trunc);
      return stmt;
    }
    if (AcceptKeyword("CALL")) {
      stmt->kind = StatementKind::kCall;
      SQLFLOW_ASSIGN_OR_RETURN(stmt->call, ParseCall());
      return stmt;
    }
    if (AcceptKeyword("BEGIN")) {
      AcceptKeyword("TRANSACTION");
      stmt->kind = StatementKind::kBegin;
      return stmt;
    }
    if (AcceptKeyword("COMMIT")) {
      stmt->kind = StatementKind::kCommit;
      return stmt;
    }
    if (AcceptKeyword("ROLLBACK")) {
      stmt->kind = StatementKind::kRollback;
      return stmt;
    }
    return Error("expected a statement");
  }

  Result<std::unique_ptr<SelectStatement>> ParseSelect() {
    SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    auto sel = std::make_unique<SelectStatement>();
    sel->distinct = AcceptKeyword("DISTINCT");

    // Select list.
    while (true) {
      SelectItem item;
      if (Accept(TokenType::kStar)) {
        item.star = true;
      } else if (Check(TokenType::kIdentifier) &&
                 PeekAhead(1).type == TokenType::kDot &&
                 PeekAhead(2).type == TokenType::kStar) {
        item.star = true;
        item.star_qualifier = Advance().text;
        Advance();  // '.'
        Advance();  // '*'
      } else {
        SQLFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("AS")) {
          SQLFLOW_ASSIGN_OR_RETURN(item.alias,
                                   ExpectIdentifier("column alias"));
        } else if (Check(TokenType::kIdentifier)) {
          item.alias = Advance().text;  // bare alias
        }
      }
      sel->items.push_back(std::move(item));
      if (!Accept(TokenType::kComma)) break;
    }

    if (AcceptKeyword("FROM")) {
      SQLFLOW_RETURN_IF_ERROR(ParseFromClause(sel.get()));
    }
    if (AcceptKeyword("WHERE")) {
      SQLFLOW_ASSIGN_OR_RETURN(sel->where, ParseExpr());
    }
    if (AcceptKeyword("GROUP")) {
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        SQLFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        sel->group_by.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("HAVING")) {
      SQLFLOW_ASSIGN_OR_RETURN(sel->having, ParseExpr());
    }
    if (AcceptKeyword("ORDER")) {
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("BY"));
      while (true) {
        OrderByItem item;
        SQLFLOW_ASSIGN_OR_RETURN(item.expr, ParseExpr());
        if (AcceptKeyword("DESC")) {
          item.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        sel->order_by.push_back(std::move(item));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    if (AcceptKeyword("LIMIT")) {
      if (!Check(TokenType::kIntegerLiteral)) {
        return Error("expected integer after LIMIT");
      }
      sel->limit = Advance().integer;
    }
    if (AcceptKeyword("OFFSET")) {
      if (!Check(TokenType::kIntegerLiteral)) {
        return Error("expected integer after OFFSET");
      }
      sel->offset = Advance().integer;
    }
    if (AcceptKeyword("UNION")) {
      sel->union_all = AcceptKeyword("ALL");
      SQLFLOW_ASSIGN_OR_RETURN(sel->union_next, ParseSelect());
    }
    return sel;
  }

  Status ParseFromClause(SelectStatement* sel) {
    // First table.
    SQLFLOW_ASSIGN_OR_RETURN(TableRef first, ParseTableRef());
    first.join_type = JoinType::kCross;
    sel->from.push_back(std::move(first));
    while (true) {
      if (Accept(TokenType::kComma)) {
        SQLFLOW_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
        ref.join_type = JoinType::kCross;
        sel->from.push_back(std::move(ref));
        continue;
      }
      JoinType jt;
      if (AcceptKeyword("INNER")) {
        SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kInner;
      } else if (AcceptKeyword("LEFT")) {
        AcceptKeyword("OUTER");
        SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        jt = JoinType::kLeftOuter;
      } else if (AcceptKeyword("JOIN")) {
        jt = JoinType::kInner;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(TableRef ref, ParseTableRef());
      ref.join_type = jt;
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("ON"));
      SQLFLOW_ASSIGN_OR_RETURN(ref.join_condition, ParseExpr());
      sel->from.push_back(std::move(ref));
    }
    return Status::OK();
  }

  /// Table name, optionally dotted (`sys.metrics`): the catalog stores
  /// dotted names as one flat name, so the pair composes back into a
  /// single table name here.
  Result<std::string> ParseDottedTableName() {
    SQLFLOW_ASSIGN_OR_RETURN(std::string name,
                             ExpectIdentifier("table name"));
    if (Check(TokenType::kDot) &&
        PeekAhead(1).type == TokenType::kIdentifier) {
      Advance();  // '.'
      name += "." + Advance().text;
    }
    return name;
  }

  Result<TableRef> ParseTableRef() {
    TableRef ref;
    if (Accept(TokenType::kLParen)) {
      // Derived table: (SELECT ...) alias — the alias is mandatory.
      SQLFLOW_ASSIGN_OR_RETURN(ref.derived, ParseSelect());
      SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      AcceptKeyword("AS");
      SQLFLOW_ASSIGN_OR_RETURN(
          ref.alias, ExpectIdentifier("derived table alias"));
      return ref;
    }
    SQLFLOW_ASSIGN_OR_RETURN(ref.table_name, ParseDottedTableName());
    if (AcceptKeyword("AS")) {
      SQLFLOW_ASSIGN_OR_RETURN(ref.alias, ExpectIdentifier("table alias"));
    } else if (Check(TokenType::kIdentifier)) {
      ref.alias = Advance().text;
    }
    return ref;
  }

  Result<std::unique_ptr<InsertStatement>> ParseInsert() {
    SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    auto ins = std::make_unique<InsertStatement>();
    SQLFLOW_ASSIGN_OR_RETURN(ins->table_name, ParseDottedTableName());
    if (Accept(TokenType::kLParen)) {
      while (true) {
        SQLFLOW_ASSIGN_OR_RETURN(std::string col,
                                 ExpectIdentifier("column name"));
        ins->columns.push_back(std::move(col));
        if (!Accept(TokenType::kComma)) break;
      }
      SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    }
    if (AcceptKeyword("VALUES")) {
      while (true) {
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        std::vector<ExprPtr> row;
        while (true) {
          SQLFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          row.push_back(std::move(e));
          if (!Accept(TokenType::kComma)) break;
        }
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        ins->rows.push_back(std::move(row));
        if (!Accept(TokenType::kComma)) break;
      }
      return ins;
    }
    if (CheckKeyword("SELECT")) {
      SQLFLOW_ASSIGN_OR_RETURN(ins->select, ParseSelect());
      return ins;
    }
    return Error("expected VALUES or SELECT in INSERT");
  }

  Result<std::unique_ptr<UpdateStatement>> ParseUpdate() {
    auto upd = std::make_unique<UpdateStatement>();
    SQLFLOW_ASSIGN_OR_RETURN(upd->table_name, ParseDottedTableName());
    SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("SET"));
    while (true) {
      SQLFLOW_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
      SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kEq, "'='"));
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      upd->assignments.emplace_back(std::move(col), std::move(e));
      if (!Accept(TokenType::kComma)) break;
    }
    if (AcceptKeyword("WHERE")) {
      SQLFLOW_ASSIGN_OR_RETURN(upd->where, ParseExpr());
    }
    return upd;
  }

  Result<std::unique_ptr<DeleteStatement>> ParseDelete() {
    SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    auto del = std::make_unique<DeleteStatement>();
    SQLFLOW_ASSIGN_OR_RETURN(del->table_name, ParseDottedTableName());
    if (AcceptKeyword("WHERE")) {
      SQLFLOW_ASSIGN_OR_RETURN(del->where, ParseExpr());
    }
    return del;
  }

  Result<std::unique_ptr<CreateTableStatement>> ParseCreateTable() {
    auto create = std::make_unique<CreateTableStatement>();
    if (AcceptKeyword("IF")) {
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("NOT"));
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("EXISTS"));
      create->if_not_exists = true;
    }
    SQLFLOW_ASSIGN_OR_RETURN(create->table_name,
                             ExpectIdentifier("table name"));
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      // Table-level CHECK constraint.
      if (AcceptKeyword("CHECK")) {
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
        SQLFLOW_ASSIGN_OR_RETURN(ExprPtr check, ParseExpr());
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        create->checks.push_back(std::move(check));
        if (!Accept(TokenType::kComma)) break;
        continue;
      }
      ColumnDefAst col;
      SQLFLOW_ASSIGN_OR_RETURN(col.name, ExpectIdentifier("column name"));
      SQLFLOW_ASSIGN_OR_RETURN(col.type, ParseColumnType());
      while (true) {
        if (AcceptKeyword("NOT")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("NULL"));
          col.not_null = true;
          continue;
        }
        if (AcceptKeyword("PRIMARY")) {
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("KEY"));
          col.primary_key = true;
          col.not_null = true;
          continue;
        }
        if (AcceptKeyword("DEFAULT")) {
          SQLFLOW_ASSIGN_OR_RETURN(col.default_value, ParseFactor());
          continue;
        }
        if (AcceptKeyword("CHECK")) {
          // Column-level CHECK is stored as a table-level constraint.
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          SQLFLOW_ASSIGN_OR_RETURN(ExprPtr check, ParseExpr());
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          create->checks.push_back(std::move(check));
          continue;
        }
        break;
      }
      create->columns.push_back(std::move(col));
      if (!Accept(TokenType::kComma)) break;
    }
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return create;
  }

  Result<ValueType> ParseColumnType() {
    if (AcceptKeyword("INTEGER") || AcceptKeyword("INT") ||
        AcceptKeyword("BIGINT")) {
      return ValueType::kInteger;
    }
    if (AcceptKeyword("DOUBLE") || AcceptKeyword("FLOAT")) {
      return ValueType::kDouble;
    }
    if (AcceptKeyword("BOOLEAN")) {
      return ValueType::kBoolean;
    }
    if (AcceptKeyword("VARCHAR")) {
      // Optional advisory length: VARCHAR(100).
      if (Accept(TokenType::kLParen)) {
        if (!Check(TokenType::kIntegerLiteral)) {
          return Error("expected length in VARCHAR(n)");
        }
        Advance();
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      }
      return ValueType::kString;
    }
    return Error("expected a column type");
  }

  Result<std::unique_ptr<CreateIndexStatement>> ParseCreateIndex(
      bool unique) {
    auto create = std::make_unique<CreateIndexStatement>();
    create->unique = unique;
    SQLFLOW_ASSIGN_OR_RETURN(create->index_name,
                             ExpectIdentifier("index name"));
    SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("ON"));
    SQLFLOW_ASSIGN_OR_RETURN(create->table_name,
                             ExpectIdentifier("table name"));
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    while (true) {
      SQLFLOW_ASSIGN_OR_RETURN(std::string col,
                               ExpectIdentifier("column name"));
      create->columns.push_back(std::move(col));
      if (!Accept(TokenType::kComma)) break;
    }
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return create;
  }

  Result<std::unique_ptr<CreateSequenceStatement>> ParseCreateSequence() {
    auto create = std::make_unique<CreateSequenceStatement>();
    SQLFLOW_ASSIGN_OR_RETURN(create->sequence_name,
                             ExpectIdentifier("sequence name"));
    // Optional: START WITH <n>. (START is not reserved, so it lexes as an
    // identifier.)
    if (Check(TokenType::kIdentifier) &&
        EqualsIgnoreCase(Peek().text, "START")) {
      Advance();
      if (Check(TokenType::kIdentifier) &&
          EqualsIgnoreCase(Peek().text, "WITH")) {
        Advance();
      }
      bool negative = Accept(TokenType::kMinus);
      if (!Check(TokenType::kIntegerLiteral)) {
        return Error("expected integer after START WITH");
      }
      create->start_with = Advance().integer * (negative ? -1 : 1);
    }
    return create;
  }

  Result<std::unique_ptr<CallStatement>> ParseCall() {
    auto call = std::make_unique<CallStatement>();
    SQLFLOW_ASSIGN_OR_RETURN(call->procedure_name,
                             ExpectIdentifier("procedure name"));
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
    if (!Check(TokenType::kRParen)) {
      while (true) {
        SQLFLOW_ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
        call->arguments.push_back(std::move(e));
        if (!Accept(TokenType::kComma)) break;
      }
    }
    SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
    return call;
  }

  // --- expressions (precedence climbing) ------------------------------------
  //
  //   or_expr    := and_expr (OR and_expr)*
  //   and_expr   := not_expr (AND not_expr)*
  //   not_expr   := NOT not_expr | predicate
  //   predicate  := additive [comparison | IS NULL | IN | BETWEEN | LIKE]
  //   additive   := term ((+|-|'||') term)*
  //   term       := factor ((*|/|%) factor)*
  //   factor     := -factor | primary
  //   primary    := literal | param | ident[.ident] | func(args) | (expr)

  Result<ExprPtr> ParseExpr() { return ParseOr(); }

  Result<ExprPtr> ParseOr() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AcceptKeyword("OR")) {
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = MakeBinary(BinaryOp::kOr, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lhs, ParseNot());
    while (AcceptKeyword("AND")) {
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr rhs, ParseNot());
      lhs = MakeBinary(BinaryOp::kAnd, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseNot() {
    if (AcceptKeyword("NOT")) {
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr operand, ParseNot());
      return MakeUnary(UnaryOp::kNot, std::move(operand));
    }
    return ParsePredicate();
  }

  Result<ExprPtr> ParsePredicate() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    // Comparison operators.
    struct CmpMap {
      TokenType token;
      BinaryOp op;
    };
    static constexpr CmpMap kCmps[] = {
        {TokenType::kEq, BinaryOp::kEq},
        {TokenType::kNotEq, BinaryOp::kNotEq},
        {TokenType::kLt, BinaryOp::kLt},
        {TokenType::kLtEq, BinaryOp::kLtEq},
        {TokenType::kGt, BinaryOp::kGt},
        {TokenType::kGtEq, BinaryOp::kGtEq},
    };
    for (const auto& cmp : kCmps) {
      if (Accept(cmp.token)) {
        SQLFLOW_ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
        return MakeBinary(cmp.op, std::move(lhs), std::move(rhs));
      }
    }
    if (AcceptKeyword("IS")) {
      bool negate = AcceptKeyword("NOT");
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return MakeUnary(negate ? UnaryOp::kIsNotNull : UnaryOp::kIsNull,
                       std::move(lhs));
    }
    bool negated = false;
    if (CheckKeyword("NOT") &&
        (PeekAhead(1).IsKeyword("IN") || PeekAhead(1).IsKeyword("BETWEEN") ||
         PeekAhead(1).IsKeyword("LIKE"))) {
      Advance();
      negated = true;
    }
    if (AcceptKeyword("IN")) {
      SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kInList;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      if (CheckKeyword("SELECT")) {
        SQLFLOW_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
      } else {
        while (true) {
          SQLFLOW_ASSIGN_OR_RETURN(ExprPtr item, ParseExpr());
          e->children.push_back(std::move(item));
          if (!Accept(TokenType::kComma)) break;
        }
      }
      SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
      return ExprPtr(std::move(e));
    }
    if (AcceptKeyword("BETWEEN")) {
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBetween;
      e->negated = negated;
      e->children.push_back(std::move(lhs));
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lo, ParseAdditive());
      e->children.push_back(std::move(lo));
      SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("AND"));
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr hi, ParseAdditive());
      e->children.push_back(std::move(hi));
      return ExprPtr(std::move(e));
    }
    if (AcceptKeyword("LIKE")) {
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr pattern, ParseAdditive());
      ExprPtr like =
          MakeBinary(BinaryOp::kLike, std::move(lhs), std::move(pattern));
      if (negated) return MakeUnary(UnaryOp::kNot, std::move(like));
      return like;
    }
    if (negated) return Error("expected IN, BETWEEN or LIKE after NOT");
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lhs, ParseTerm());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kPlus)) {
        op = BinaryOp::kAdd;
      } else if (Accept(TokenType::kMinus)) {
        op = BinaryOp::kSub;
      } else if (Accept(TokenType::kConcat)) {
        op = BinaryOp::kConcat;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr rhs, ParseTerm());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseTerm() {
    SQLFLOW_ASSIGN_OR_RETURN(ExprPtr lhs, ParseFactor());
    while (true) {
      BinaryOp op;
      if (Accept(TokenType::kStar)) {
        op = BinaryOp::kMul;
      } else if (Accept(TokenType::kSlash)) {
        op = BinaryOp::kDiv;
      } else if (Accept(TokenType::kPercent)) {
        op = BinaryOp::kMod;
      } else {
        break;
      }
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr rhs, ParseFactor());
      lhs = MakeBinary(op, std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<ExprPtr> ParseFactor() {
    if (Accept(TokenType::kMinus)) {
      SQLFLOW_ASSIGN_OR_RETURN(ExprPtr operand, ParseFactor());
      return MakeUnary(UnaryOp::kNegate, std::move(operand));
    }
    if (Accept(TokenType::kPlus)) {
      return ParseFactor();
    }
    return ParsePrimary();
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kIntegerLiteral:
        Advance();
        return MakeLiteral(Value::Integer(t.integer));
      case TokenType::kDoubleLiteral:
        Advance();
        return MakeLiteral(Value::Double(t.dbl));
      case TokenType::kStringLiteral:
        Advance();
        return MakeLiteral(Value::String(t.text));
      case TokenType::kNamedParameter: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kParameter;
        e->param_name = t.text;
        e->param_index = next_param_index_++;
        return ExprPtr(std::move(e));
      }
      case TokenType::kPositionalParameter: {
        Advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kParameter;
        e->param_index = next_param_index_++;
        return ExprPtr(std::move(e));
      }
      case TokenType::kLParen: {
        Advance();
        if (CheckKeyword("SELECT")) {
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kSubquery;
          SQLFLOW_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(std::move(e));
        }
        SQLFLOW_ASSIGN_OR_RETURN(ExprPtr inner, ParseExpr());
        SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
        return inner;
      }
      case TokenType::kKeyword:
        if (t.text == "NULL") {
          Advance();
          return MakeLiteral(Value::Null());
        }
        if (t.text == "TRUE") {
          Advance();
          return MakeLiteral(Value::Boolean(true));
        }
        if (t.text == "FALSE") {
          Advance();
          return MakeLiteral(Value::Boolean(false));
        }
        if (t.text == "EXISTS") {
          Advance();
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kLParen, "'('"));
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kExists;
          SQLFLOW_ASSIGN_OR_RETURN(e->subquery, ParseSelect());
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(std::move(e));
        }
        if (t.text == "CASE") {
          Advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kCase;
          bool saw_when = false;
          while (AcceptKeyword("WHEN")) {
            saw_when = true;
            SQLFLOW_ASSIGN_OR_RETURN(ExprPtr when, ParseExpr());
            SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("THEN"));
            SQLFLOW_ASSIGN_OR_RETURN(ExprPtr then, ParseExpr());
            e->children.push_back(std::move(when));
            e->children.push_back(std::move(then));
          }
          if (!saw_when) {
            return Error("CASE requires at least one WHEN branch");
          }
          if (AcceptKeyword("ELSE")) {
            SQLFLOW_ASSIGN_OR_RETURN(e->case_else, ParseExpr());
          }
          SQLFLOW_RETURN_IF_ERROR(ExpectKeyword("END"));
          return ExprPtr(std::move(e));
        }
        return Error("unexpected keyword in expression");
      case TokenType::kIdentifier: {
        // Function call?
        if (PeekAhead(1).type == TokenType::kLParen) {
          std::string name = Advance().text;
          Advance();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kFunctionCall;
          e->function_name = ToUpperAscii(name);
          if (AcceptKeyword("DISTINCT")) e->distinct_arg = true;
          if (Accept(TokenType::kStar)) {
            auto star = std::make_unique<Expr>();
            star->kind = ExprKind::kStar;
            e->children.push_back(std::move(star));
          } else if (!Check(TokenType::kRParen)) {
            while (true) {
              SQLFLOW_ASSIGN_OR_RETURN(ExprPtr arg, ParseExpr());
              e->children.push_back(std::move(arg));
              if (!Accept(TokenType::kComma)) break;
            }
          }
          SQLFLOW_RETURN_IF_ERROR(Expect(TokenType::kRParen, "')'"));
          return ExprPtr(std::move(e));
        }
        // Qualified or bare column reference.
        std::string first = Advance().text;
        if (Accept(TokenType::kDot)) {
          SQLFLOW_ASSIGN_OR_RETURN(std::string col,
                                   ExpectIdentifier("column name"));
          return MakeColumnRef(std::move(first), std::move(col));
        }
        return MakeColumnRef("", std::move(first));
      }
      default:
        return Error("expected an expression");
    }
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
  int next_param_index_ = 0;
};

}  // namespace

Result<std::unique_ptr<Statement>> ParseStatement(std::string_view input) {
  SQLFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseSingleStatement();
}

Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
    std::string_view input) {
  SQLFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseScriptStatements();
}

Result<ExprPtr> ParseExpression(std::string_view input) {
  SQLFLOW_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(input));
  Parser parser(std::move(tokens));
  return parser.ParseStandaloneExpression();
}

}  // namespace sqlflow::sql
