#ifndef SQLFLOW_SQL_CATALOG_H_
#define SQLFLOW_SQL_CATALOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/table.h"

namespace sqlflow::sql {

/// Named monotonic counter (CREATE SEQUENCE); NEXTVAL advances it.
struct Sequence {
  std::string name;
  int64_t start_with = 1;
  int64_t next_value = 1;
};

/// Metadata for a created index. Uniqueness is enforced through the owning
/// table's UniqueConstraint; non-unique indexes are metadata (the executor
/// scans; the catalog still records them for the Data Setup pattern).
struct IndexInfo {
  std::string name;
  std::string table_name;
  std::vector<std::string> columns;
  bool unique = false;
};

/// Name → object maps for one database. Names are case-insensitive.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // --- tables ---------------------------------------------------------------
  Status CreateTable(TableSchema schema);
  Status DropTable(const std::string& name);
  /// nullptr if absent.
  Table* FindTable(const std::string& name);
  const Table* FindTable(const std::string& name) const;
  Result<Table*> GetTable(const std::string& name);
  std::vector<std::string> TableNames() const;

  /// Re-registers a dropped table during rollback.
  void RestoreTable(std::unique_ptr<Table> table);
  /// Detaches a table (used when recording a DROP for undo).
  std::unique_ptr<Table> TakeTable(const std::string& name);

  // --- virtual tables --------------------------------------------------------
  /// Produces the current rows of one virtual table from live engine
  /// state. Generators must only *read* engine state (no SQL execution,
  /// no catalog mutation) — they run between statements.
  using VirtualRowGenerator = std::function<std::vector<Row>()>;

  /// Registers a read-only table (by convention named `sys.<name>`)
  /// whose rows are regenerated on demand. Virtual tables resolve
  /// through FindTable/GetTable like base tables but are excluded from
  /// TableNames(), DROP and TRUNCATE.
  Status RegisterVirtualTable(TableSchema schema,
                              VirtualRowGenerator generator);
  bool HasVirtualTables() const { return !virtual_tables_.empty(); }
  bool IsVirtualTable(const std::string& name) const;
  std::vector<std::string> VirtualTableNames() const;
  /// Regenerates the rows of every virtual table in `names` (non-virtual
  /// names are ignored). Called by the database before executing a
  /// statement that references a sys.* name, never mid-statement.
  void RefreshVirtualTables(const std::vector<std::string>& names);

  // --- views -----------------------------------------------------------------
  /// Stores a named SELECT; name must not collide with a table or view.
  Status CreateView(const std::string& name,
                    std::unique_ptr<SelectStatement> select);
  Status DropView(const std::string& name);
  /// nullptr if absent.
  const SelectStatement* FindView(const std::string& name) const;
  std::vector<std::string> ViewNames() const;
  /// Detaches a view definition (for undo bookkeeping).
  std::unique_ptr<SelectStatement> TakeView(const std::string& name);

  // --- sequences ------------------------------------------------------------
  Status CreateSequence(const std::string& name, int64_t start_with);
  Status DropSequence(const std::string& name);
  Sequence* FindSequence(const std::string& name);
  Result<int64_t> SequenceNextValue(const std::string& name);
  std::vector<std::string> SequenceNames() const;

  // --- indexes ----------------------------------------------------------------
  Status CreateIndex(const IndexInfo& info);
  Status DropIndex(const std::string& name);
  const IndexInfo* FindIndex(const std::string& name) const;
  std::vector<IndexInfo> IndexesOnTable(const std::string& table) const;

 private:
  static std::string Key(const std::string& name);

  struct VirtualEntry {
    std::unique_ptr<Table> table;
    VirtualRowGenerator generator;
  };

  std::map<std::string, std::unique_ptr<Table>> tables_;
  std::map<std::string, VirtualEntry> virtual_tables_;
  std::map<std::string, std::unique_ptr<SelectStatement>> views_;
  std::map<std::string, Sequence> sequences_;
  std::map<std::string, IndexInfo> indexes_;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_CATALOG_H_
