#include "sql/result_set.h"

#include <algorithm>
#include <sstream>

#include "common/string_util.h"

namespace sqlflow::sql {

int ResultSet::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < column_names_.size(); ++i) {
    if (EqualsIgnoreCase(column_names_[i], name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Result<Value> ResultSet::Get(size_t row, const std::string& column) const {
  if (row >= rows_.size()) {
    return Status::InvalidArgument("row index " + std::to_string(row) +
                                   " out of range (" +
                                   std::to_string(rows_.size()) + " rows)");
  }
  int col = FindColumn(column);
  if (col < 0) {
    return Status::NotFound("no column '" + column + "' in result set");
  }
  return rows_[row][static_cast<size_t>(col)];
}

Result<Value> ResultSet::ScalarValue() const {
  if (rows_.empty() || rows_[0].empty()) {
    return Status::NotFound("result set is empty");
  }
  return rows_[0][0];
}

size_t ResultSet::ApproxByteSize() const {
  size_t total = 0;
  for (const std::string& name : column_names_) total += name.size();
  for (const Row& row : rows_) {
    for (const Value& v : row) {
      switch (v.type()) {
        case ValueType::kNull:
          total += 1;
          break;
        case ValueType::kBoolean:
          total += 1;
          break;
        case ValueType::kInteger:
        case ValueType::kDouble:
          total += 8;
          break;
        case ValueType::kString:
          total += v.str().size() + 4;  // length prefix
          break;
      }
    }
  }
  return total;
}

std::string ResultSet::ToAsciiTable(size_t max_rows) const {
  std::vector<size_t> widths(column_names_.size());
  for (size_t i = 0; i < column_names_.size(); ++i) {
    widths[i] = column_names_[i].size();
  }
  size_t shown = std::min(max_rows, rows_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    cells[r].resize(column_names_.size());
    for (size_t c = 0; c < column_names_.size() && c < rows_[r].size();
         ++c) {
      cells[r][c] = rows_[r][c].ToString();
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  std::ostringstream os;
  auto rule = [&] {
    os << '+';
    for (size_t w : widths) os << std::string(w + 2, '-') << '+';
    os << '\n';
  };
  rule();
  os << '|';
  for (size_t c = 0; c < column_names_.size(); ++c) {
    os << ' ' << column_names_[c]
       << std::string(widths[c] - column_names_[c].size() + 1, ' ') << '|';
  }
  os << '\n';
  rule();
  for (size_t r = 0; r < shown; ++r) {
    os << '|';
    for (size_t c = 0; c < column_names_.size(); ++c) {
      os << ' ' << cells[r][c]
         << std::string(widths[c] - cells[r][c].size() + 1, ' ') << '|';
    }
    os << '\n';
  }
  rule();
  if (shown < rows_.size()) {
    os << "(" << rows_.size() - shown << " more rows)\n";
  }
  return os.str();
}

}  // namespace sqlflow::sql
