#ifndef SQLFLOW_SQL_TABLE_H_
#define SQLFLOW_SQL_TABLE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "sql/mvcc.h"
#include "sql/result_set.h"
#include "sql/schema.h"

namespace sqlflow::sql {

class UndoLog;

/// Thread-local hook consulted by Insert/Update *between* recording the
/// row's undo entry and maintaining its secondary indexes — the
/// mid-index-maintenance fault site. A non-OK return aborts the mutation
/// with the row applied but unindexed; the undo entry (recorded first,
/// and tolerant of missing postings) restores the byte-identical prior
/// state. Installed by Database::RunWithRecovery around statement
/// execution only; the Raw* replay entry points never consult it, so
/// rollback itself cannot fault. The hook is thread-local — each
/// concurrently executing statement sees only its own installation.
using IndexMaintenanceHook =
    std::function<Status(const std::string& table_name, const char* op)>;

/// Installs `next` and returns the previously installed hook (empty when
/// none), so nested statement scopes can save/restore.
IndexMaintenanceHook ExchangeIndexMaintenanceHook(
    IndexMaintenanceHook next);

/// Secondary uniqueness constraint created by CREATE UNIQUE INDEX (the
/// PRIMARY KEY constraint is modelled the same way). Keys are serialized
/// row projections.
struct UniqueConstraint {
  std::string name;
  std::vector<size_t> column_indexes;
  std::unordered_set<std::string> keys;
};

/// Serializes one value into `out` under *SQL equality* normalization:
/// two values that compare equal under the executor's comparison rules
/// (Integer 1, Double 1.0, String "1") produce the same bytes. Distinct
/// values may collide (e.g. byte-different numeric strings "1.0"/"1.00");
/// index consumers must re-check the predicate on every candidate, so a
/// collision costs time, never correctness.
void AppendLookupKeyPart(const Value& v, std::string* out);

/// Value order used by ordered indexes. Identical to Value::Compare
/// except that a NaN double is pinned to the top of the numeric rank
/// (NaN == NaN, NaN > every other numeric). Value::Compare answers
/// "greater" for NaN against *both* operand orders, which is not a
/// strict weak ordering and would corrupt a std::map; pinning NaN also
/// reproduces the scan-visible behavior where a stored NaN satisfies
/// only `>`-style predicates.
int OrderedValueCompare(const Value& a, const Value& b);

/// A lower/upper endpoint in an ordered index's key space, resolved
/// through the transparent comparator so partial probes work on
/// multi-column indexes. `prefix` pins the leading key columns to
/// equality values; when `has_value` is set, `value` then bounds the
/// next key column, otherwise the endpoint addresses the whole run of
/// prefix-equal keys. `after_equal` positions the bound just after all
/// keys matching the endpoint (vs. just before them), which encodes
/// bound inclusivity for both map directions.
struct OrderedBound {
  Row prefix;
  Value value;
  bool has_value = true;
  bool after_equal = false;
};

/// Lexicographic OrderedValueCompare over key rows, transparent so
/// OrderedBound can address positions without materializing a key row.
struct OrderedKeyLess {
  using is_transparent = void;
  bool operator()(const Row& a, const Row& b) const;
  bool operator()(const Row& a, const OrderedBound& b) const;
  bool operator()(const OrderedBound& a, const Row& b) const;
};

/// Secondary index: serialized key → row slots (ascending) for point
/// lookups, plus the same postings keyed by the projected key row in
/// value order for bounded range scans and sorted traversal. Slots are
/// positions in Table::rows() and are kept consistent by every mutation
/// path, including the Raw* undo-replay entry points.
struct SecondaryIndex {
  std::string name;
  std::vector<size_t> column_indexes;
  bool unique = false;
  std::unordered_map<std::string, std::vector<size_t>> buckets;
  std::map<Row, std::vector<size_t>, OrderedKeyLess> ordered;
};

/// Version metadata for one live row, kept in a vector parallel to
/// Table::rows(). `commit_ts == 0` marks a row committed before MVCC
/// tracking began (visible to every snapshot); `writer != 0` marks a
/// row written by an in-flight transaction (`commit_ts == kPendingTs`
/// until that transaction commits). `row_id` is a table-unique identity
/// that survives slot shifts, linking a live row to its stashed prior
/// versions and to undo records.
struct RowMeta {
  uint64_t row_id = 0;
  uint64_t commit_ts = 0;
  uint64_t writer = 0;
};

/// A superseded row version kept for snapshot readers: the pre-image a
/// transaction displaced by UPDATE or DELETE. Visible to snapshot S iff
/// `image_ts <= S` and the superseding write is *not* visible at S
/// (still pending by another transaction, or committed after S). GC
/// drops entries whose superseder committed at or below the snapshot
/// horizon.
struct StashedVersion {
  uint64_t row_id = 0;
  Row image;
  uint64_t image_ts = 0;                  // commit ts of the stashed image
  uint64_t superseder = 0;                // txn that displaced it
  uint64_t superseder_ts = kPendingTs;    // its commit ts once committed
};

/// Heap-organized in-memory table. All mutations go through Insert/Update/
/// Delete so that uniqueness constraints stay maintained and undo records
/// are written when a transaction is active (`undo != nullptr`). When the
/// undo log carries an MVCC transaction view, mutations additionally
/// version rows: write-write conflicts abort with a transient Status
/// (first-committer-wins), displaced versions are stashed for snapshot
/// readers, and commit/abort stamp or unwind the metadata.
///
/// Threading: row data, indexes, and row metadata are guarded by the
/// owning Database's statement latch (writers exclusive, readers
/// shared). The version stash is additionally sharded by row id behind
/// per-shard mutexes — the OpenMLDB mem_table/fe_segment layout — so
/// snapshot materialization and GC touch only small critical sections
/// and commit stamping can later move off the global latch.
class Table {
 public:
  explicit Table(TableSchema schema);

  Table(const Table&) = delete;
  Table& operator=(const Table&) = delete;

  const TableSchema& schema() const { return schema_; }
  const std::vector<Row>& rows() const { return rows_; }
  size_t row_count() const { return rows_.size(); }

  /// Read-only tables (the sys.* virtual tables) reject DML and
  /// TRUNCATE; the Raw* entry points still work — they are how the
  /// catalog refreshes virtual-table contents.
  void SetReadOnly(bool read_only) { read_only_ = read_only; }
  bool read_only() const { return read_only_; }

  /// Coerces values to the schema, checks constraints, appends the row.
  Status Insert(const Row& row, UndoLog* undo);

  /// Replaces the row at `index` after coercion/constraint checks.
  Status Update(size_t index, const Row& new_row, UndoLog* undo);

  /// Removes the row at `index` (later rows shift down by one).
  Status Delete(size_t index, UndoLog* undo);

  /// Removes all rows (TRUNCATE); one bulk undo record.
  void Clear(UndoLog* undo);

  /// Adds a uniqueness constraint over the named columns; fails if
  /// existing data violates it.
  Status AddUniqueConstraint(const std::string& name,
                             const std::vector<std::string>& columns);
  Status DropUniqueConstraint(const std::string& name);
  const std::vector<UniqueConstraint>& unique_constraints() const {
    return unique_constraints_;
  }

  /// Builds a point-lookup hash index over the named columns from the
  /// current data. Never fails on duplicates (uniqueness is enforced
  /// separately through AddUniqueConstraint).
  Status AddSecondaryIndex(const std::string& name,
                           const std::vector<std::string>& columns,
                           bool unique);
  Status DropSecondaryIndex(const std::string& name);
  const std::vector<SecondaryIndex>& secondary_indexes() const {
    return secondary_indexes_;
  }
  /// nullptr if absent (case-insensitive).
  const SecondaryIndex* FindSecondaryIndex(const std::string& name) const;
  /// Row slots whose index key equals `serialized_key`, or nullptr when
  /// the bucket is empty. Slots are ascending table positions.
  const std::vector<size_t>* IndexBucket(
      const SecondaryIndex& index, const std::string& serialized_key) const;

  /// Copies all rows (with column names) into a ResultSet.
  ResultSet Scan() const;

  /// Rough in-memory footprint of the row data (for benchmarks).
  size_t ApproxByteSize() const;

  // --- low-level access used by UndoLog replay only ------------------------
  // These bypass coercion (rows were valid when recorded) but still
  // maintain the uniqueness key sets.
  void RawInsertAt(size_t index, Row row);
  Row RawRemoveAt(size_t index);
  void RawReplaceAt(size_t index, Row row);
  void RawRestoreAll(std::vector<Row> rows);

  // --- WAL replay / snapshot entry points ----------------------------------
  // Recovery-only: applied to a freshly built table outside any
  // transaction. They bypass coercion (the effects were valid when they
  // committed) but maintain uniqueness keys and secondary indexes, and
  // they preserve the *logged* row id — unlike RawInsertAt, which mints
  // a fresh one — so later log records can address the row.

  void ReplayInsert(Row row, uint64_t row_id);
  /// kDataLoss when `row_id` is not live (a log that updates or deletes
  /// a row it never inserted is corrupt).
  Status ReplayUpdate(uint64_t row_id, Row row);
  Status ReplayDelete(uint64_t row_id);

  /// Committed row images with their row ids — what a snapshot file
  /// persists. Live rows pending under an in-flight transaction
  /// contribute their committed pre-image from the version stash (rows
  /// that transaction *inserted* have none and are skipped); if it later
  /// commits, its WAL batch lands after the snapshot LSN and tail replay
  /// applies it.
  std::vector<std::pair<uint64_t, Row>> CommittedRowsWithIds() const;
  uint64_t next_row_id() const { return next_row_id_; }
  /// Snapshot load: restore the id counter past ids burned by aborted
  /// statements (which never reach the log but did consume numbers).
  void SetNextRowIdAtLeast(uint64_t id) {
    if (id > next_row_id_) next_row_id_ = id;
  }

  // --- MVCC version chain ---------------------------------------------------

  /// True when the live rows() vector is NOT the correct view for a
  /// reader at `snapshot_ts`: another transaction has pending rows
  /// here, something committed after the snapshot, or superseded
  /// versions are stashed. When false the executor keeps the fast
  /// index/batch paths; when true it materializes via SnapshotRows.
  bool NeedsSnapshot(uint64_t reader_txn, uint64_t snapshot_ts) const;

  /// Materializes the rows visible to `reader_txn` at `snapshot_ts`:
  /// the reader's own pending writes, every version committed at or
  /// before the snapshot, and stashed pre-images whose superseding
  /// write is not yet visible. Row order: live rows in slot order, then
  /// stashed versions (callers treat the result as a bag, exactly like
  /// a scan).
  std::vector<Row> SnapshotRows(uint64_t reader_txn,
                                uint64_t snapshot_ts) const;

  /// Stamps every row pending under `txn_id` (and every stash entry it
  /// superseded) with `commit_ts`.
  void CommitTxn(uint64_t txn_id, uint64_t commit_ts);

  /// Defensive abort sweep: clears any metadata still pending under
  /// `txn_id` and drops stash entries it superseded. Undo replay
  /// restores per-row metadata exactly; this catches strays.
  void AbortTxn(uint64_t txn_id);

  /// Drops stash entries whose superseder committed at or below
  /// `horizon`; returns how many versions were reclaimed.
  size_t GcVersions(uint64_t horizon);

  /// Pending rows written by transactions other than `txn_id` — the
  /// DDL/TRUNCATE gate (those operations are not versioned, so they
  /// refuse with a transient status while other writers are in
  /// flight).
  bool HasPendingWriterOther(uint64_t txn_id) const;

  /// Slot currently holding `row_id`; `hint` is checked first (the
  /// recorded undo position, almost always still right). Returns
  /// rows().size() when the row is gone.
  size_t FindSlotByRowId(uint64_t row_id, size_t hint) const;

  RowMeta MetaAt(size_t index) const { return meta_[index]; }
  /// Restores one row's metadata during undo replay (adjusting the
  /// pending count).
  void RestoreMetaAt(size_t index, RowMeta meta);
  /// Drops the stash entry `{row_id, superseder}` if present (undo
  /// replay of the write that created it). Returns whether one existed.
  bool DropStashedVersion(uint64_t row_id, uint64_t superseder);

  size_t StashDepthForTest() const;
  uint64_t max_commit_ts() const { return max_commit_ts_; }

 private:
  static constexpr size_t kVersionShards = 8;
  struct VersionShard {
    mutable std::mutex mutex;
    std::vector<StashedVersion> stash;
  };

  Status CheckUnique(const Row& row, size_t ignore_index,
                     bool has_ignore) const;
  /// First violated unique constraint (with the offending key), or
  /// nullptr when the row is unique.
  const UniqueConstraint* FindUniqueViolation(const Row& row,
                                              size_t ignore_index,
                                              bool has_ignore,
                                              std::string* key) const;
  /// Classifies a unique violation under MVCC: a collision with a row
  /// another transaction has in flight (or committed after `txn`'s
  /// snapshot) is a transient write-write conflict, not a constraint
  /// error.
  Status ClassifyUniqueViolation(const UniqueConstraint& uc,
                                 const std::string& key,
                                 const MvccTxn* txn) const;
  /// Guards writes against keys that are absent from the live indexes
  /// only because an in-flight transaction deleted (or re-keyed) the
  /// row holding them: if that transaction rolls back the key comes
  /// back, so taking it now is a transient write-write conflict, not a
  /// free slot. Also refuses keys whose holder was displaced by a
  /// transaction that committed after `txn`'s snapshot (`txn` still
  /// sees the stashed image — letting the write through would make its
  /// own snapshot self-inconsistent).
  Status CheckStashedKeyConflict(const Row& row, const MvccTxn& txn) const;
  /// Write-write conflict check for the row at `index` against `txn`;
  /// OK when `txn` may overwrite it.
  Status CheckWriteConflict(size_t index, const MvccTxn& txn) const;
  /// Stashes the pre-image of row `index` (unless `txn` already owns
  /// its pending version) and marks the row pending under `txn`.
  void StashAndMarkPending(size_t index, const MvccTxn& txn);
  VersionShard& ShardFor(uint64_t row_id) {
    return shards_[row_id % kVersionShards];
  }
  const VersionShard& ShardFor(uint64_t row_id) const {
    return shards_[row_id % kVersionShards];
  }
  /// Evaluates the schema's CHECK constraints against `row`; a FALSE
  /// result is a constraint error (NULL/unknown passes, per SQL).
  Status CheckRowConstraints(const Row& row);
  void AddKeys(const Row& row);
  void RemoveKeys(const Row& row);
  std::string MakeKey(const UniqueConstraint& uc, const Row& row) const;

  std::string MakeIndexKey(const SecondaryIndex& index, const Row& row) const;
  Row MakeOrderedKey(const SecondaryIndex& index, const Row& row) const;
  /// Registers/unregisters `row` (living at `slot`) in every secondary
  /// index, keeping each bucket's slot list sorted.
  void IndexRow(const Row& row, size_t slot);
  void UnindexRow(const Row& row, size_t slot);
  /// Renumbers slots after a row insertion/removal at `at`: every slot
  /// >= `at` (insert) or > `at` (remove) moves by one. No-ops when the
  /// affected row was at the end of the table.
  void ShiftIndexSlotsUp(size_t at);
  void ShiftIndexSlotsDown(size_t at);
  void RebuildSecondaryIndexes();

  TableSchema schema_;
  bool read_only_ = false;
  std::vector<Row> rows_;
  /// Parallel to rows_: one RowMeta per live row.
  std::vector<RowMeta> meta_;
  /// Superseded versions, sharded by row id.
  std::array<VersionShard, kVersionShards> shards_;
  uint64_t next_row_id_ = 1;
  /// Live rows currently pending under some transaction.
  size_t pending_row_count_ = 0;
  /// Stashed versions across all shards (fast NeedsSnapshot check).
  size_t stash_count_ = 0;
  /// Highest commit timestamp stamped onto this table's rows.
  uint64_t max_commit_ts_ = 0;
  std::vector<UniqueConstraint> unique_constraints_;
  std::vector<SecondaryIndex> secondary_indexes_;
  /// Parsed CHECK expressions, built lazily from the schema's text.
  struct ParsedChecks;
  std::shared_ptr<ParsedChecks> parsed_checks_;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_TABLE_H_
