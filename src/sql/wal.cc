#include "sql/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <array>
#include <bit>
#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "sql/fault.h"

namespace sqlflow::sql {

namespace {

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

std::string ErrnoMessage(const std::string& what) {
  return what + ": " + std::strerror(errno);
}

}  // namespace

uint32_t WalCrc32(const void* data, size_t n) {
  static const std::array<uint32_t, 256> kTable = BuildCrcTable();
  const auto* p = static_cast<const unsigned char*>(data);
  uint32_t c = 0xFFFFFFFFu;
  for (size_t i = 0; i < n; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

// --- primitive codec -------------------------------------------------------

void WalPutU32(std::string& out, uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

void WalPutU64(std::string& out, uint64_t v) {
  WalPutU32(out, static_cast<uint32_t>(v & 0xFFFFFFFFu));
  WalPutU32(out, static_cast<uint32_t>(v >> 32));
}

void WalPutString(std::string& out, std::string_view s) {
  WalPutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s.data(), s.size());
}

void WalPutValue(std::string& out, const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      out.push_back(0);
      break;
    case ValueType::kBoolean:
      out.push_back(1);
      out.push_back(v.boolean() ? 1 : 0);
      break;
    case ValueType::kInteger:
      out.push_back(2);
      WalPutU64(out, static_cast<uint64_t>(v.integer()));
      break;
    case ValueType::kDouble:
      out.push_back(3);
      WalPutU64(out, std::bit_cast<uint64_t>(v.dbl()));
      break;
    case ValueType::kString:
      out.push_back(4);
      WalPutString(out, v.str());
      break;
  }
}

void WalPutRow(std::string& out, const Row& row) {
  WalPutU32(out, static_cast<uint32_t>(row.size()));
  for (const Value& v : row) WalPutValue(out, v);
}

Result<uint8_t> WalReader::U8() {
  if (remaining() < 1) return Status::DataLoss("wal payload truncated (u8)");
  return static_cast<uint8_t>(data_[pos_++]);
}

Result<uint32_t> WalReader::U32() {
  if (remaining() < 4) return Status::DataLoss("wal payload truncated (u32)");
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

Result<uint64_t> WalReader::U64() {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t lo, U32());
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t hi, U32());
  return (static_cast<uint64_t>(hi) << 32) | lo;
}

Result<std::string> WalReader::Str() {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (remaining() < len) {
    return Status::DataLoss("wal payload truncated (string)");
  }
  std::string s(data_.substr(pos_, len));
  pos_ += len;
  return s;
}

Result<Value> WalReader::Val() {
  SQLFLOW_ASSIGN_OR_RETURN(uint8_t tag, U8());
  switch (tag) {
    case 0:
      return Value::Null();
    case 1: {
      SQLFLOW_ASSIGN_OR_RETURN(uint8_t b, U8());
      return Value::Boolean(b != 0);
    }
    case 2: {
      SQLFLOW_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value::Integer(static_cast<int64_t>(v));
    }
    case 3: {
      SQLFLOW_ASSIGN_OR_RETURN(uint64_t v, U64());
      return Value::Double(std::bit_cast<double>(v));
    }
    case 4: {
      SQLFLOW_ASSIGN_OR_RETURN(std::string s, Str());
      return Value::String(std::move(s));
    }
    default:
      return Status::DataLoss("wal payload has unknown value tag " +
                              std::to_string(tag));
  }
}

Result<Row> WalReader::RowField() {
  SQLFLOW_ASSIGN_OR_RETURN(uint32_t n, U32());
  Row row;
  row.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, Val());
    row.push_back(std::move(v));
  }
  return row;
}

// --- payload builders ------------------------------------------------------

namespace {
std::string TaggedPayload(WalRecordType type) {
  std::string out;
  out.push_back(static_cast<char>(type));
  return out;
}
}  // namespace

std::string WalInsertRecord(std::string_view table, uint64_t row_id,
                            const Row& row) {
  std::string out = TaggedPayload(WalRecordType::kInsert);
  WalPutString(out, table);
  WalPutU64(out, row_id);
  WalPutRow(out, row);
  return out;
}

std::string WalUpdateRecord(std::string_view table, uint64_t row_id,
                            const Row& row) {
  std::string out = TaggedPayload(WalRecordType::kUpdate);
  WalPutString(out, table);
  WalPutU64(out, row_id);
  WalPutRow(out, row);
  return out;
}

std::string WalDeleteRecord(std::string_view table, uint64_t row_id) {
  std::string out = TaggedPayload(WalRecordType::kDelete);
  WalPutString(out, table);
  WalPutU64(out, row_id);
  return out;
}

std::string WalTruncateRecord(std::string_view table) {
  std::string out = TaggedPayload(WalRecordType::kTruncate);
  WalPutString(out, table);
  return out;
}

std::string WalDdlRecord(std::string_view sql) {
  std::string out = TaggedPayload(WalRecordType::kDdl);
  WalPutString(out, sql);
  return out;
}

std::string WalSeqSetRecord(std::string_view name, int64_t next_value) {
  std::string out = TaggedPayload(WalRecordType::kSeqSet);
  WalPutString(out, name);
  WalPutU64(out, static_cast<uint64_t>(next_value));
  return out;
}

std::string WalNetRequestRecord(std::string_view key,
                                const WalNetRequest& entry) {
  std::string out = TaggedPayload(WalRecordType::kNetRequest);
  WalPutString(out, key);
  out.push_back(static_cast<char>(entry.state));
  WalPutU64(out, entry.instance_id);
  WalPutString(out, entry.response);
  return out;
}

Result<std::pair<std::string, WalNetRequest>> DecodeWalNetRequest(
    std::string_view payload) {
  WalReader r(payload);
  SQLFLOW_ASSIGN_OR_RETURN(std::string key, r.Str());
  WalNetRequest entry;
  SQLFLOW_ASSIGN_OR_RETURN(entry.state, r.U8());
  SQLFLOW_ASSIGN_OR_RETURN(entry.instance_id, r.U64());
  SQLFLOW_ASSIGN_OR_RETURN(entry.response, r.Str());
  return std::make_pair(std::move(key), std::move(entry));
}

const char* FsyncPolicyName(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNever:
      return "never";
    case FsyncPolicy::kEveryCommit:
      return "every_commit";
    case FsyncPolicy::kEveryN:
      return "every_n";
  }
  return "unknown";
}

// --- WalManager ------------------------------------------------------------

Result<std::unique_ptr<WalManager>> WalManager::Open(const std::string& dir,
                                                     WalOptions options) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::DataLoss(ErrnoMessage("cannot create wal dir " + dir));
  }
  std::string path = dir + "/wal.log";
  int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    return Status::DataLoss(ErrnoMessage("cannot open wal log " + path));
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Status::DataLoss(ErrnoMessage("cannot stat wal log " + path));
  }
  return std::unique_ptr<WalManager>(new WalManager(
      dir, options, fd, static_cast<uint64_t>(st.st_size)));
}

WalManager::WalManager(std::string dir, WalOptions options, int fd,
                       uint64_t size)
    : dir_(std::move(dir)), options_(options), fd_(fd), lsn_(size) {}

WalManager::~WalManager() {
  if (fd_ >= 0) ::close(fd_);
}

std::string WalManager::log_path() const { return dir_ + "/wal.log"; }

Status WalManager::AppendCommit(const std::vector<std::string>& payloads) {
  return AppendCommit(payloads, /*defer_sync_to=*/nullptr);
}

Status WalManager::AppendCommit(const std::vector<std::string>& payloads,
                                uint64_t* defer_sync_to) {
  if (defer_sync_to != nullptr) *defer_sync_to = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  if (crashed_) {
    return Status::DataLoss("wal crashed at lsn " + std::to_string(lsn_) +
                            "; recover into a fresh image");
  }
  // Frame every payload plus the terminating kCommit into one buffer so
  // the batch becomes durable with a single write(2) — group commit.
  std::string batch;
  auto frame = [&batch](std::string_view payload) {
    WalPutU32(batch, static_cast<uint32_t>(payload.size()));
    WalPutU32(batch, WalCrc32(payload.data(), payload.size()));
    batch.append(payload.data(), payload.size());
  };
  for (const std::string& p : payloads) frame(p);
  std::string commit = TaggedPayload(WalRecordType::kCommit);
  frame(commit);

  size_t to_write = batch.size();
  bool crash_now = false;
  if (fault_injector_ != nullptr) {
    FaultSite site{database_name_, "wal commit " + database_name_,
                   FaultLayer::kCrash};
    if (auto torn = fault_injector_->MaybeCrash(site, batch.size())) {
      to_write = static_cast<size_t>(*torn);
      crash_now = true;
    }
  }

  size_t written = 0;
  while (written < to_write) {
    ssize_t n = ::write(fd_, batch.data() + written, to_write - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      crashed_ = true;
      return Status::DataLoss(ErrnoMessage("wal write failed"));
    }
    written += static_cast<size_t>(n);
  }

  if (crash_now) {
    // The torn prefix is on disk; everything after this instant is lost.
    // Flush what made it so the recovery test reads exactly the torn
    // image, then refuse all further work.
    ::fsync(fd_);
    crashed_ = true;
    return Status::DataLoss("wal killed at lsn " +
                            std::to_string(lsn_ + to_write) +
                            " (simulated crash)");
  }

  lsn_ += batch.size();
  records_ += payloads.size() + 1;
  commits_ += 1;
  for (const std::string& p : payloads) NoteWfPayloadLocked(p);

  switch (options_.fsync_policy) {
    case FsyncPolicy::kNever:
      return Status::OK();
    case FsyncPolicy::kEveryN:
      // Amortized flushing keeps the simple inline fsync: the commit is
      // not promising durability, so nobody waits on it.
      if (++commits_since_sync_ >= options_.fsync_every_n) {
        commits_since_sync_ = 0;
        if (::fsync(fd_) != 0) {
          crashed_ = true;
          return Status::DataLoss(ErrnoMessage("wal fsync failed"));
        }
        syncs_ += 1;
      }
      return Status::OK();
    case FsyncPolicy::kEveryCommit:
      break;  // coalescing protocol below
  }

  // Deferred path: the caller is still holding whatever serialized the
  // append (the exclusive statement latch) and will wait via SyncToLsn
  // after releasing it — that release is what lets commits overlap in
  // the wait and actually coalesce.
  if (defer_sync_to != nullptr) {
    *defer_sync_to = lsn_;
    return Status::OK();
  }
  return SyncToLsnLocked(lock, lsn_);
}

Status WalManager::SyncToLsn(uint64_t lsn) {
  if (lsn == 0) return Status::OK();
  std::unique_lock<std::mutex> lock(mutex_);
  if (options_.fsync_policy != FsyncPolicy::kEveryCommit) {
    return Status::OK();
  }
  return SyncToLsnLocked(lock, lsn);
}

Status WalManager::SyncToLsnLocked(std::unique_lock<std::mutex>& lock,
                                   uint64_t my_lsn) {
  // Group-commit fsync coalescing: this commit may not return until its
  // bytes are flushed, but the flush need not be its own. One committer
  // leads an fsync covering everything appended so far (the mutex drops
  // during the syscall, so concurrent connections keep appending behind
  // it); committers the flush already covers return without a syscall.
  bool led_sync = false;
  while (synced_lsn_ < my_lsn) {
    if (crashed_) {
      return Status::DataLoss(
          "wal fsync failed on a concurrent connection");
    }
    if (sync_in_progress_) {
      sync_cv_.wait(lock);
      continue;
    }
    sync_in_progress_ = true;
    const uint64_t target = lsn_;
    lock.unlock();
    const int rc = ::fsync(fd_);
    lock.lock();
    sync_in_progress_ = false;
    if (rc != 0) {
      crashed_ = true;
      sync_cv_.notify_all();
      return Status::DataLoss(ErrnoMessage("wal fsync failed"));
    }
    syncs_ += 1;
    led_sync = true;
    if (target > synced_lsn_) synced_lsn_ = target;
    sync_cv_.notify_all();
  }
  if (!led_sync) sync_coalesced_ += 1;
  return Status::OK();
}

Status WalManager::Append(const std::string& payload) {
  return AppendCommit({payload});
}

uint64_t WalManager::current_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return lsn_;
}

WalStats WalManager::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  WalStats s;
  s.current_lsn = lsn_;
  s.snapshot_lsn = snapshot_lsn_;
  s.records = records_;
  s.commits = commits_;
  s.syncs = syncs_;
  s.sync_coalesced = sync_coalesced_;
  s.fsync_policy = options_.fsync_policy;
  return s;
}

void WalManager::set_snapshot_lsn(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  snapshot_lsn_ = lsn;
}

uint64_t WalManager::snapshot_lsn() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return snapshot_lsn_;
}

bool WalManager::crashed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return crashed_;
}

void WalManager::SetFaultInjector(FaultInjector* injector,
                                  std::string database_name) {
  std::lock_guard<std::mutex> lock(mutex_);
  fault_injector_ = injector;
  database_name_ = std::move(database_name);
}

Status WalManager::TruncateTo(uint64_t lsn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (lsn > lsn_) {
    return Status::InvalidArgument(
        "cannot truncate wal forward: " + std::to_string(lsn) + " > " +
        std::to_string(lsn_));
  }
  if (::ftruncate(fd_, static_cast<off_t>(lsn)) != 0) {
    return Status::DataLoss(ErrnoMessage("wal truncate failed"));
  }
  lsn_ = lsn;
  return Status::OK();
}

Status WalManager::ReplayLog(
    const std::string& path, uint64_t from_lsn,
    const std::function<Status(const std::vector<WalRecord>&)>& apply,
    uint64_t* committed_end_lsn) {
  if (committed_end_lsn != nullptr) *committed_end_lsn = from_lsn;
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::OK();  // missing log == empty log (cold start)
  std::ostringstream buf;
  buf << in.rdbuf();
  std::string log = std::move(buf).str();

  auto read_u32 = [&log](size_t at) {
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<unsigned char>(log[at + i]))
           << (8 * i);
    }
    return v;
  };

  std::vector<WalRecord> batch;
  size_t pos = static_cast<size_t>(from_lsn);
  if (pos > log.size()) {
    return Status::DataLoss("wal shorter than snapshot lsn " +
                            std::to_string(from_lsn));
  }
  while (pos < log.size()) {
    if (log.size() - pos < 8) break;  // torn header: clean stop
    uint32_t len = read_u32(pos);
    uint32_t crc = read_u32(pos + 4);
    if (log.size() - pos - 8 < len) break;  // torn payload: clean stop
    std::string_view payload(log.data() + pos + 8, len);
    if (WalCrc32(payload.data(), payload.size()) != crc) {
      return Status::DataLoss("wal record at lsn " + std::to_string(pos) +
                              " failed CRC check");
    }
    if (payload.empty()) {
      return Status::DataLoss("wal record at lsn " + std::to_string(pos) +
                              " has no type tag");
    }
    WalRecord rec;
    rec.type = static_cast<WalRecordType>(
        static_cast<uint8_t>(payload[0]));
    rec.lsn = pos;
    rec.payload.assign(payload.data() + 1, payload.size() - 1);
    pos += 8 + len;
    if (rec.type == WalRecordType::kCommit) {
      // The batch is complete: everything buffered since the previous
      // commit becomes visible, in order.
      SQLFLOW_RETURN_IF_ERROR(apply(batch));
      batch.clear();
      if (committed_end_lsn != nullptr) *committed_end_lsn = pos;
    } else {
      batch.push_back(std::move(rec));
    }
  }
  // Records after the last kCommit (a torn batch) are discarded: their
  // transaction never committed.
  return Status::OK();
}

void WalManager::NoteReplayedRecord(const WalRecord& record) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::string tagged;
  tagged.push_back(static_cast<char>(record.type));
  tagged += record.payload;
  NoteWfPayloadLocked(tagged);
}

void WalManager::SeedWfInstance(uint64_t instance_id, WfInstanceLog log) {
  std::lock_guard<std::mutex> lock(mutex_);
  wf_state_[instance_id] = std::move(log);
}

std::map<uint64_t, WfInstanceLog> WalManager::WfState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return wf_state_;
}

std::map<std::string, WalNetRequest> WalManager::NetRequestState() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return net_state_;
}

std::optional<WalNetRequest> WalManager::FindNetRequest(
    const std::string& key) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = net_state_.find(key);
  if (it == net_state_.end()) return std::nullopt;
  return it->second;
}

void WalManager::NoteWfPayloadLocked(std::string_view payload) {
  if (payload.empty()) return;
  auto type = static_cast<WalRecordType>(static_cast<uint8_t>(payload[0]));
  if (type == WalRecordType::kNetRequest) {
    auto decoded = DecodeWalNetRequest(payload.substr(1));
    if (!decoded.ok()) return;
    // Latest state wins: a kDone record for a key supersedes the
    // kPending one its instance start rode in on.
    net_state_[decoded->first] = std::move(decoded->second);
    return;
  }
  if (type != WalRecordType::kWfStart && type != WalRecordType::kWfStep &&
      type != WalRecordType::kWfAttempt && type != WalRecordType::kWfEnd) {
    return;
  }
  // Every kWf* payload leads with the instance id.
  WalReader reader(payload.substr(1));
  auto id = reader.U64();
  if (!id.ok()) return;
  WfInstanceLog& log = wf_state_[*id];
  std::string rest(payload.substr(1));
  switch (type) {
    case WalRecordType::kWfStart:
      log.start_payload = std::move(rest);
      break;
    case WalRecordType::kWfStep:
      log.steps.push_back(std::move(rest));
      break;
    case WalRecordType::kWfAttempt:
      log.attempts.push_back(std::move(rest));
      break;
    case WalRecordType::kWfEnd:
      log.ended = true;
      break;
    default:
      break;
  }
}

}  // namespace sqlflow::sql
