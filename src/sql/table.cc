#include "sql/table.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <utility>

#include "common/string_util.h"
#include "sql/eval.h"
#include "sql/parser.h"
#include "sql/transaction.h"

namespace sqlflow::sql {

namespace {

IndexMaintenanceHook& IndexMaintenanceHookRef() {
  // Thread-local: each concurrently executing statement installs and
  // restores its own hook without racing other connections' statements
  // (statements never migrate threads mid-execution).
  static thread_local IndexMaintenanceHook hook;
  return hook;
}

/// Resolves unqualified column names against one row of this table.
class SchemaRowBinding : public RowBinding {
 public:
  SchemaRowBinding(const TableSchema* schema, const Row* row)
      : schema_(schema), row_(row) {}

  Result<Value> Resolve(const std::string& qualifier,
                        const std::string& column) const override {
    if (!qualifier.empty() &&
        !EqualsIgnoreCase(qualifier, schema_->table_name())) {
      return Status::NotFound("no such qualifier '" + qualifier + "'");
    }
    int index = schema_->FindColumn(column);
    if (index < 0) {
      return Status::NotFound("no column '" + column +
                              "' in CHECK constraint scope");
    }
    return (*row_)[static_cast<size_t>(index)];
  }

 private:
  const TableSchema* schema_;
  const Row* row_;
};

}  // namespace

struct Table::ParsedChecks {
  Status parse_status;
  std::vector<ExprPtr> expressions;
};

namespace {

// Serializes one value with a type tag so Integer(1) and String("1")
// produce distinct keys.
void AppendKeyPart(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back('N');
      break;
    case ValueType::kBoolean:
      out->push_back('B');
      out->push_back(v.boolean() ? '1' : '0');
      break;
    case ValueType::kInteger:
      out->push_back('I');
      *out += std::to_string(v.integer());
      break;
    case ValueType::kDouble:
      out->push_back('D');
      *out += std::to_string(v.dbl());
      break;
    case ValueType::kString:
      out->push_back('S');
      *out += v.str();
      break;
  }
  out->push_back('\x1f');
}

}  // namespace

void AppendLookupKeyPart(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->push_back('N');
      break;
    case ValueType::kBoolean:
      out->push_back('B');
      out->push_back(v.boolean() ? '1' : '0');
      break;
    case ValueType::kInteger:
    case ValueType::kDouble:
    case ValueType::kString: {
      // The executor compares numbers (and numeric strings) through
      // double, so normalize all of them to one representation; strings
      // that don't parse keep their raw bytes.
      bool numeric = true;
      double d = 0.0;
      if (v.type() == ValueType::kString) {
        Result<double> parsed = v.AsDouble();
        if (parsed.ok()) {
          d = *parsed;
        } else {
          numeric = false;
        }
      } else {
        d = v.type() == ValueType::kInteger
                ? static_cast<double>(v.integer())
                : v.dbl();
      }
      if (numeric) {
        if (d == 0.0) d = 0.0;  // collapse -0.0 (compares equal to +0.0)
        char buf[40];
        std::snprintf(buf, sizeof(buf), "D%.17g", d);
        *out += buf;
      } else {
        out->push_back('S');
        *out += v.str();
      }
      break;
    }
  }
  out->push_back('\x1f');
}

int OrderedValueCompare(const Value& a, const Value& b) {
  bool a_nan = a.type() == ValueType::kDouble && std::isnan(a.dbl());
  bool b_nan = b.type() == ValueType::kDouble && std::isnan(b.dbl());
  if (a_nan || b_nan) {
    auto numeric = [](const Value& v) {
      return v.type() == ValueType::kInteger ||
             v.type() == ValueType::kDouble;
    };
    if (numeric(a) && numeric(b)) {
      if (a_nan && b_nan) return 0;
      return a_nan ? 1 : -1;
    }
  }
  return a.Compare(b);
}

bool OrderedKeyLess::operator()(const Row& a, const Row& b) const {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    int cmp = OrderedValueCompare(a[i], b[i]);
    if (cmp != 0) return cmp < 0;
  }
  return a.size() < b.size();
}

bool OrderedKeyLess::operator()(const Row& a, const OrderedBound& b) const {
  for (size_t i = 0; i < b.prefix.size(); ++i) {
    int cmp = OrderedValueCompare(a[i], b.prefix[i]);
    if (cmp != 0) return cmp < 0;
  }
  if (!b.has_value) return b.after_equal;
  int cmp = OrderedValueCompare(a[b.prefix.size()], b.value);
  if (cmp != 0) return cmp < 0;
  return b.after_equal;
}

bool OrderedKeyLess::operator()(const OrderedBound& a, const Row& b) const {
  for (size_t i = 0; i < a.prefix.size(); ++i) {
    int cmp = OrderedValueCompare(a.prefix[i], b[i]);
    if (cmp != 0) return cmp < 0;
  }
  if (!a.has_value) return !a.after_equal;
  int cmp = OrderedValueCompare(a.value, b[a.prefix.size()]);
  if (cmp != 0) return cmp < 0;
  return !a.after_equal;
}

Table::Table(TableSchema schema) : schema_(std::move(schema)) {
  int pk = schema_.primary_key_index();
  if (pk >= 0) {
    UniqueConstraint uc;
    uc.name = "__pk_" + schema_.table_name();
    uc.column_indexes.push_back(static_cast<size_t>(pk));
    unique_constraints_.push_back(std::move(uc));
    // The primary key also gets a point-lookup index, so every table
    // with a PK supports O(1) key access out of the box.
    SecondaryIndex idx;
    idx.name = "__pk_" + schema_.table_name();
    idx.column_indexes.push_back(static_cast<size_t>(pk));
    idx.unique = true;
    secondary_indexes_.push_back(std::move(idx));
  }
}

std::string Table::MakeIndexKey(const SecondaryIndex& index,
                                const Row& row) const {
  std::string key;
  for (size_t idx : index.column_indexes) {
    AppendLookupKeyPart(row[idx], &key);
  }
  return key;
}

Row Table::MakeOrderedKey(const SecondaryIndex& index,
                          const Row& row) const {
  Row key;
  key.reserve(index.column_indexes.size());
  for (size_t idx : index.column_indexes) key.push_back(row[idx]);
  return key;
}

namespace {

void InsertSlotSorted(std::vector<size_t>* slots, size_t slot) {
  if (slots->empty() || slots->back() < slot) {
    slots->push_back(slot);
  } else {
    slots->insert(std::lower_bound(slots->begin(), slots->end(), slot),
                  slot);
  }
}

}  // namespace

IndexMaintenanceHook ExchangeIndexMaintenanceHook(
    IndexMaintenanceHook next) {
  IndexMaintenanceHook previous = std::move(IndexMaintenanceHookRef());
  IndexMaintenanceHookRef() = std::move(next);
  return previous;
}

void Table::IndexRow(const Row& row, size_t slot) {
  for (SecondaryIndex& index : secondary_indexes_) {
    InsertSlotSorted(&index.buckets[MakeIndexKey(index, row)], slot);
    InsertSlotSorted(&index.ordered[MakeOrderedKey(index, row)], slot);
  }
}

void Table::UnindexRow(const Row& row, size_t slot) {
  for (SecondaryIndex& index : secondary_indexes_) {
    auto it = index.buckets.find(MakeIndexKey(index, row));
    if (it != index.buckets.end()) {
      std::vector<size_t>& slots = it->second;
      auto pos = std::lower_bound(slots.begin(), slots.end(), slot);
      if (pos != slots.end() && *pos == slot) slots.erase(pos);
      if (slots.empty()) index.buckets.erase(it);
    }
    auto oit = index.ordered.find(MakeOrderedKey(index, row));
    if (oit != index.ordered.end()) {
      std::vector<size_t>& slots = oit->second;
      auto pos = std::lower_bound(slots.begin(), slots.end(), slot);
      if (pos != slots.end() && *pos == slot) slots.erase(pos);
      if (slots.empty()) index.ordered.erase(oit);
    }
  }
}

void Table::ShiftIndexSlotsUp(size_t at) {
  for (SecondaryIndex& index : secondary_indexes_) {
    for (auto& [key, slots] : index.buckets) {
      for (size_t& slot : slots) {
        if (slot >= at) ++slot;
      }
    }
    for (auto& [key, slots] : index.ordered) {
      for (size_t& slot : slots) {
        if (slot >= at) ++slot;
      }
    }
  }
}

void Table::ShiftIndexSlotsDown(size_t at) {
  for (SecondaryIndex& index : secondary_indexes_) {
    for (auto& [key, slots] : index.buckets) {
      for (size_t& slot : slots) {
        if (slot > at) --slot;
      }
    }
    for (auto& [key, slots] : index.ordered) {
      for (size_t& slot : slots) {
        if (slot > at) --slot;
      }
    }
  }
}

void Table::RebuildSecondaryIndexes() {
  for (SecondaryIndex& index : secondary_indexes_) {
    index.buckets.clear();
    index.ordered.clear();
    for (size_t slot = 0; slot < rows_.size(); ++slot) {
      index.buckets[MakeIndexKey(index, rows_[slot])].push_back(slot);
      index.ordered[MakeOrderedKey(index, rows_[slot])].push_back(slot);
    }
  }
}

std::string Table::MakeKey(const UniqueConstraint& uc,
                           const Row& row) const {
  std::string key;
  for (size_t idx : uc.column_indexes) {
    AppendKeyPart(row[idx], &key);
  }
  return key;
}

const UniqueConstraint* Table::FindUniqueViolation(const Row& row,
                                                   size_t ignore_index,
                                                   bool has_ignore,
                                                   std::string* key) const {
  for (const UniqueConstraint& uc : unique_constraints_) {
    std::string candidate = MakeKey(uc, row);
    if (uc.keys.count(candidate) == 0) continue;
    // The key exists. If we're updating a row, the collision may be with
    // the row being replaced — in that case it's fine if the old row at
    // ignore_index carries the same key.
    if (has_ignore) {
      const Row& old_row = rows_[ignore_index];
      if (MakeKey(uc, old_row) == candidate) continue;
    }
    *key = std::move(candidate);
    return &uc;
  }
  return nullptr;
}

Status Table::CheckUnique(const Row& row, size_t ignore_index,
                          bool has_ignore) const {
  std::string key;
  const UniqueConstraint* uc =
      FindUniqueViolation(row, ignore_index, has_ignore, &key);
  if (uc == nullptr) return Status::OK();
  return Status::ConstraintError(
      "unique constraint '" + uc->name + "' violated in table '" +
      schema_.table_name() + "'");
}

Status Table::ClassifyUniqueViolation(const UniqueConstraint& uc,
                                      const std::string& key,
                                      const MvccTxn* txn) const {
  // Under MVCC, find the row actually holding the colliding key: if it
  // is pending under another transaction, or committed after `txn`'s
  // snapshot, this is a transient write-write race (the other writer
  // may yet roll back), not a durable constraint violation. Failure
  // path only, so the scan is acceptable.
  if (txn != nullptr) {
    for (size_t i = 0; i < rows_.size(); ++i) {
      if (MakeKey(uc, rows_[i]) != key) continue;
      const RowMeta& m = meta_[i];
      if (m.writer != 0 && m.writer != txn->id) {
        return Status::Deadlock(
            "unique key on '" + schema_.table_name() +
            "' contended by in-flight transaction (constraint '" +
            uc.name + "')");
      }
      if (m.writer == 0 && m.commit_ts != 0 && m.commit_ts > txn->begin_ts) {
        return Status::Unavailable(
            "unique key on '" + schema_.table_name() +
            "' taken by a transaction committed after this snapshot "
            "(constraint '" + uc.name + "')");
      }
      break;
    }
  }
  return Status::ConstraintError(
      "unique constraint '" + uc.name + "' violated in table '" +
      schema_.table_name() + "'");
}

Status Table::CheckStashedKeyConflict(const Row& row,
                                      const MvccTxn& txn) const {
  if (stash_count_ == 0 || unique_constraints_.empty()) {
    return Status::OK();
  }
  for (const VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const StashedVersion& v : shard.stash) {
      bool pending_other =
          v.superseder_ts == kPendingTs && v.superseder != txn.id;
      bool committed_after_snapshot =
          v.superseder_ts != kPendingTs && v.superseder_ts > txn.begin_ts;
      if (!pending_other && !committed_after_snapshot) continue;
      for (const UniqueConstraint& uc : unique_constraints_) {
        if (MakeKey(uc, v.image) != MakeKey(uc, row)) continue;
        if (pending_other) {
          return Status::Deadlock(
              "unique key on '" + schema_.table_name() +
              "' held by a version an in-flight transaction displaced "
              "(constraint '" + uc.name + "')");
        }
        return Status::Unavailable(
            "unique key on '" + schema_.table_name() +
            "' released by a transaction committed after this "
            "snapshot (constraint '" + uc.name + "')");
      }
    }
  }
  return Status::OK();
}

Status Table::CheckWriteConflict(size_t index, const MvccTxn& txn) const {
  const RowMeta& m = meta_[index];
  if (m.writer != 0 && m.writer != txn.id) {
    return Status::Deadlock("write-write conflict on table '" +
                            schema_.table_name() +
                            "': row pending under another transaction");
  }
  if (m.writer == 0 && m.commit_ts != 0 && m.commit_ts > txn.begin_ts) {
    return Status::Unavailable(
        "write-write conflict on table '" + schema_.table_name() +
        "': row committed after this transaction's snapshot "
        "(first-committer-wins)");
  }
  return Status::OK();
}

void Table::StashAndMarkPending(size_t index, const MvccTxn& txn) {
  RowMeta& m = meta_[index];
  if (m.writer == txn.id) return;  // already pending under this txn
  StashedVersion v;
  v.row_id = m.row_id;
  v.image = rows_[index];
  v.image_ts = m.commit_ts;
  v.superseder = txn.id;
  v.superseder_ts = kPendingTs;
  {
    VersionShard& shard = ShardFor(m.row_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stash.push_back(std::move(v));
  }
  ++stash_count_;
  m.writer = txn.id;
  m.commit_ts = kPendingTs;
  ++pending_row_count_;
}

void Table::AddKeys(const Row& row) {
  for (UniqueConstraint& uc : unique_constraints_) {
    uc.keys.insert(MakeKey(uc, row));
  }
}

void Table::RemoveKeys(const Row& row) {
  for (UniqueConstraint& uc : unique_constraints_) {
    uc.keys.erase(MakeKey(uc, row));
  }
}

Status Table::CheckRowConstraints(const Row& row) {
  if (schema_.check_constraints().empty()) return Status::OK();
  if (parsed_checks_ == nullptr) {
    auto parsed = std::make_shared<ParsedChecks>();
    for (const std::string& text : schema_.check_constraints()) {
      auto expr = ParseExpression(text);
      if (!expr.ok()) {
        parsed->parse_status = expr.status();
        break;
      }
      parsed->expressions.push_back(std::move(*expr));
    }
    parsed_checks_ = std::move(parsed);
  }
  SQLFLOW_RETURN_IF_ERROR(parsed_checks_->parse_status);
  SchemaRowBinding binding(&schema_, &row);
  EvalContext ctx;
  ctx.binding = &binding;
  for (size_t i = 0; i < parsed_checks_->expressions.size(); ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(
        Value v, EvaluateExpr(*parsed_checks_->expressions[i], ctx));
    // SQL: a CHECK fails only when the condition is definitely FALSE.
    if (!v.is_null()) {
      SQLFLOW_ASSIGN_OR_RETURN(bool ok, v.AsBoolean());
      if (!ok) {
        return Status::ConstraintError(
            "CHECK constraint (" + schema_.check_constraints()[i] +
            ") violated in table '" + schema_.table_name() + "'");
      }
    }
  }
  return Status::OK();
}

Status Table::Insert(const Row& row, UndoLog* undo) {
  if (read_only_) {
    return Status::InvalidArgument("table '" + schema_.table_name() +
                                   "' is read-only");
  }
  if (row.size() != schema_.column_count()) {
    return Status::InvalidArgument(
        "row has " + std::to_string(row.size()) + " values, table '" +
        schema_.table_name() + "' has " +
        std::to_string(schema_.column_count()) + " columns");
  }
  Row coerced(row.size());
  for (size_t i = 0; i < row.size(); ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(coerced[i], schema_.CoerceValue(i, row[i]));
  }
  const MvccTxn* txn = undo != nullptr ? undo->txn : nullptr;
  {
    std::string key;
    const UniqueConstraint* uc = FindUniqueViolation(coerced, 0, false, &key);
    if (uc != nullptr) return ClassifyUniqueViolation(*uc, key, txn);
  }
  if (txn != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(CheckStashedKeyConflict(coerced, *txn));
  }
  SQLFLOW_RETURN_IF_ERROR(CheckRowConstraints(coerced));
  AddKeys(coerced);
  rows_.push_back(std::move(coerced));
  RowMeta meta;
  meta.row_id = next_row_id_++;
  if (txn != nullptr) {
    meta.commit_ts = kPendingTs;
    meta.writer = txn->id;
    ++pending_row_count_;
  }
  meta_.push_back(meta);
  if (undo != nullptr && undo->txn != nullptr) {
    undo->txn->Touch(ToUpperAscii(schema_.table_name()));
  }
  // Undo is recorded *before* index maintenance so that a fault between
  // the two (the hook below) is recoverable: RawRemoveAt un-keys the row
  // and tolerates the postings it never got.
  if (undo != nullptr) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kInsert;
    e.table_name = schema_.table_name();
    e.row_index = rows_.size() - 1;
    e.row_id = meta.row_id;
    if (undo->capture_rows()) e.new_row = rows_.back();
    undo->Record(std::move(e));
  }
  if (const auto& hook = IndexMaintenanceHookRef(); hook) {
    SQLFLOW_RETURN_IF_ERROR(hook(schema_.table_name(), "insert"));
  }
  IndexRow(rows_.back(), rows_.size() - 1);
  return Status::OK();
}

Status Table::Update(size_t index, const Row& new_row, UndoLog* undo) {
  if (read_only_) {
    return Status::InvalidArgument("table '" + schema_.table_name() +
                                   "' is read-only");
  }
  if (index >= rows_.size()) {
    return Status::InvalidArgument("update index out of range");
  }
  if (new_row.size() != schema_.column_count()) {
    return Status::InvalidArgument("row width mismatch in update");
  }
  Row coerced(new_row.size());
  for (size_t i = 0; i < new_row.size(); ++i) {
    SQLFLOW_ASSIGN_OR_RETURN(coerced[i],
                             schema_.CoerceValue(i, new_row[i]));
  }
  const MvccTxn* txn = undo != nullptr ? undo->txn : nullptr;
  if (txn != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(CheckWriteConflict(index, *txn));
  }
  {
    std::string key;
    const UniqueConstraint* uc = FindUniqueViolation(coerced, index, true,
                                                     &key);
    if (uc != nullptr) return ClassifyUniqueViolation(*uc, key, txn);
  }
  if (txn != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(CheckStashedKeyConflict(coerced, *txn));
  }
  SQLFLOW_RETURN_IF_ERROR(CheckRowConstraints(coerced));
  RowMeta prior_meta = meta_[index];
  if (txn != nullptr) {
    StashAndMarkPending(index, *txn);
    undo->txn->Touch(ToUpperAscii(schema_.table_name()));
  }
  Row old_row = rows_[index];
  RemoveKeys(old_row);
  UnindexRow(old_row, index);
  AddKeys(coerced);
  rows_[index] = std::move(coerced);
  // Same ordering rationale as Insert: the undo entry lands before index
  // maintenance, so a fault at the hook leaves a state RawReplaceAt can
  // reverse (the new row's postings simply don't exist yet).
  if (undo != nullptr) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kUpdate;
    e.table_name = schema_.table_name();
    e.row_index = index;
    e.row = std::move(old_row);
    e.row_id = prior_meta.row_id;
    e.meta_commit_ts = prior_meta.commit_ts;
    e.meta_writer = prior_meta.writer;
    if (undo->capture_rows()) e.new_row = rows_[index];
    undo->Record(std::move(e));
  }
  if (const auto& hook = IndexMaintenanceHookRef(); hook) {
    SQLFLOW_RETURN_IF_ERROR(hook(schema_.table_name(), "update"));
  }
  IndexRow(rows_[index], index);
  return Status::OK();
}

Status Table::Delete(size_t index, UndoLog* undo) {
  if (read_only_) {
    return Status::InvalidArgument("table '" + schema_.table_name() +
                                   "' is read-only");
  }
  if (index >= rows_.size()) {
    return Status::InvalidArgument("delete index out of range");
  }
  const MvccTxn* txn = undo != nullptr ? undo->txn : nullptr;
  if (txn != nullptr) {
    SQLFLOW_RETURN_IF_ERROR(CheckWriteConflict(index, *txn));
  }
  RowMeta prior_meta = meta_[index];
  if (txn != nullptr) {
    if (prior_meta.writer != txn->id) {
      // Committed row: stash its image so concurrent snapshots keep
      // seeing it until this delete commits past their horizon. A row
      // already pending under this txn either has its committed
      // pre-image stashed (earlier UPDATE) or was inserted by this txn
      // and was never visible to anyone else.
      StashedVersion v;
      v.row_id = prior_meta.row_id;
      v.image = rows_[index];
      v.image_ts = prior_meta.commit_ts;
      v.superseder = txn->id;
      v.superseder_ts = kPendingTs;
      {
        VersionShard& shard = ShardFor(prior_meta.row_id);
        std::lock_guard<std::mutex> lock(shard.mutex);
        shard.stash.push_back(std::move(v));
      }
      ++stash_count_;
    }
    undo->txn->Touch(ToUpperAscii(schema_.table_name()));
  }
  Row old_row = std::move(rows_[index]);
  RemoveKeys(old_row);
  UnindexRow(old_row, index);
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(index));
  if (prior_meta.writer != 0) --pending_row_count_;
  meta_.erase(meta_.begin() + static_cast<ptrdiff_t>(index));
  if (index < rows_.size()) ShiftIndexSlotsDown(index);
  if (undo != nullptr) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kDelete;
    e.table_name = schema_.table_name();
    e.row_index = index;
    e.row = std::move(old_row);
    e.row_id = prior_meta.row_id;
    e.meta_commit_ts = prior_meta.commit_ts;
    e.meta_writer = prior_meta.writer;
    undo->Record(std::move(e));
  }
  return Status::OK();
}

void Table::Clear(UndoLog* undo) {
  if (undo != nullptr) {
    UndoEntry e;
    e.kind = UndoEntry::Kind::kTruncate;
    e.table_name = schema_.table_name();
    e.bulk_rows = rows_;
    undo->Record(std::move(e));
    if (undo->txn != nullptr) {
      undo->txn->Touch(ToUpperAscii(schema_.table_name()));
    }
  }
  rows_.clear();
  // TRUNCATE is not versioned (the executor refuses it while other
  // writers are in flight): drop all version state with the rows.
  meta_.clear();
  pending_row_count_ = 0;
  for (VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stash.clear();
  }
  stash_count_ = 0;
  for (UniqueConstraint& uc : unique_constraints_) uc.keys.clear();
  for (SecondaryIndex& index : secondary_indexes_) {
    index.buckets.clear();
    index.ordered.clear();
  }
}

Status Table::AddUniqueConstraint(
    const std::string& name, const std::vector<std::string>& columns) {
  for (const UniqueConstraint& uc : unique_constraints_) {
    if (EqualsIgnoreCase(uc.name, name)) {
      return Status::AlreadyExists("constraint '" + name +
                                   "' already exists");
    }
  }
  UniqueConstraint uc;
  uc.name = name;
  for (const std::string& col : columns) {
    int idx = schema_.FindColumn(col);
    if (idx < 0) {
      return Status::NotFound("no column '" + col + "' in table '" +
                              schema_.table_name() + "'");
    }
    uc.column_indexes.push_back(static_cast<size_t>(idx));
  }
  for (const Row& row : rows_) {
    std::string key = MakeKey(uc, row);
    if (!uc.keys.insert(key).second) {
      return Status::ConstraintError(
          "existing data violates unique constraint '" + name + "'");
    }
  }
  unique_constraints_.push_back(std::move(uc));
  return Status::OK();
}

Status Table::DropUniqueConstraint(const std::string& name) {
  for (auto it = unique_constraints_.begin();
       it != unique_constraints_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      unique_constraints_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no constraint '" + name + "'");
}

ResultSet Table::Scan() const {
  std::vector<std::string> names;
  names.reserve(schema_.column_count());
  for (const ColumnDef& col : schema_.columns()) names.push_back(col.name);
  ResultSet rs(std::move(names));
  for (const Row& row : rows_) rs.AddRow(row);
  return rs;
}

size_t Table::ApproxByteSize() const {
  size_t total = 0;
  for (const Row& row : rows_) {
    for (const Value& v : row) {
      total += v.type() == ValueType::kString ? v.str().size() + 4 : 8;
    }
  }
  return total;
}

void Table::RawInsertAt(size_t index, Row row) {
  AddKeys(row);
  RowMeta meta;
  meta.row_id = next_row_id_++;
  if (index >= rows_.size()) {
    rows_.push_back(std::move(row));
    meta_.push_back(meta);
    IndexRow(rows_.back(), rows_.size() - 1);
  } else {
    ShiftIndexSlotsUp(index);
    rows_.insert(rows_.begin() + static_cast<ptrdiff_t>(index),
                 std::move(row));
    meta_.insert(meta_.begin() + static_cast<ptrdiff_t>(index), meta);
    IndexRow(rows_[index], index);
  }
}

Row Table::RawRemoveAt(size_t index) {
  Row row = std::move(rows_[index]);
  RemoveKeys(row);
  UnindexRow(row, index);
  rows_.erase(rows_.begin() + static_cast<ptrdiff_t>(index));
  if (meta_[index].writer != 0) --pending_row_count_;
  meta_.erase(meta_.begin() + static_cast<ptrdiff_t>(index));
  if (index < rows_.size()) ShiftIndexSlotsDown(index);
  return row;
}

void Table::RawReplaceAt(size_t index, Row row) {
  RemoveKeys(rows_[index]);
  UnindexRow(rows_[index], index);
  AddKeys(row);
  rows_[index] = std::move(row);
  IndexRow(rows_[index], index);
}

void Table::RawRestoreAll(std::vector<Row> rows) {
  rows_ = std::move(rows);
  meta_.clear();
  meta_.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    RowMeta meta;
    meta.row_id = next_row_id_++;
    meta_.push_back(meta);
  }
  pending_row_count_ = 0;
  for (VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.stash.clear();
  }
  stash_count_ = 0;
  for (UniqueConstraint& uc : unique_constraints_) {
    uc.keys.clear();
    for (const Row& row : rows_) uc.keys.insert(MakeKey(uc, row));
  }
  RebuildSecondaryIndexes();
}

void Table::ReplayInsert(Row row, uint64_t row_id) {
  AddKeys(row);
  RowMeta meta;
  meta.row_id = row_id;
  rows_.push_back(std::move(row));
  meta_.push_back(meta);
  IndexRow(rows_.back(), rows_.size() - 1);
  if (row_id >= next_row_id_) next_row_id_ = row_id + 1;
}

Status Table::ReplayUpdate(uint64_t row_id, Row row) {
  size_t slot = FindSlotByRowId(row_id, rows_.size());
  if (slot >= rows_.size()) {
    return Status::DataLoss("wal replays UPDATE of unknown row id " +
                            std::to_string(row_id) + " in table " +
                            schema_.table_name());
  }
  RawReplaceAt(slot, std::move(row));
  return Status::OK();
}

Status Table::ReplayDelete(uint64_t row_id) {
  size_t slot = FindSlotByRowId(row_id, rows_.size());
  if (slot >= rows_.size()) {
    return Status::DataLoss("wal replays DELETE of unknown row id " +
                            std::to_string(row_id) + " in table " +
                            schema_.table_name());
  }
  RawRemoveAt(slot);
  if (row_id >= next_row_id_) next_row_id_ = row_id + 1;
  return Status::OK();
}

std::vector<std::pair<uint64_t, Row>> Table::CommittedRowsWithIds() const {
  std::vector<std::pair<uint64_t, Row>> out;
  out.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    if (meta_[i].writer == 0) out.emplace_back(meta_[i].row_id, rows_[i]);
  }
  for (const VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const StashedVersion& sv : shard.stash) {
      if (sv.superseder_ts == kPendingTs) {
        out.emplace_back(sv.row_id, sv.image);
      }
    }
  }
  return out;
}

// --- MVCC version chain -----------------------------------------------------

bool Table::NeedsSnapshot(uint64_t reader_txn, uint64_t snapshot_ts) const {
  (void)reader_txn;
  return pending_row_count_ > 0 || stash_count_ > 0 ||
         max_commit_ts_ > snapshot_ts;
}

std::vector<Row> Table::SnapshotRows(uint64_t reader_txn,
                                     uint64_t snapshot_ts) const {
  std::vector<Row> out;
  out.reserve(rows_.size());
  for (size_t i = 0; i < rows_.size(); ++i) {
    const RowMeta& m = meta_[i];
    if (m.writer != 0) {
      if (m.writer == reader_txn) out.push_back(rows_[i]);
      continue;
    }
    if (m.commit_ts <= snapshot_ts) out.push_back(rows_[i]);
  }
  for (const VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const StashedVersion& v : shard.stash) {
      if (v.image_ts > snapshot_ts) continue;
      // The version chain guarantees at most one candidate per row id:
      // adjacent versions share image_ts == the older one's
      // superseder_ts, so exactly one interval brackets the snapshot.
      bool superseder_visible =
          v.superseder == reader_txn ||
          (v.superseder_ts != kPendingTs && v.superseder_ts <= snapshot_ts);
      if (!superseder_visible) out.push_back(v.image);
    }
  }
  return out;
}

void Table::CommitTxn(uint64_t txn_id, uint64_t commit_ts) {
  // Pending rows cluster at the tail (INSERT appends), so walk
  // backwards and stop once every pending row in the table has been
  // seen — commits stay O(write set), not O(table).
  size_t unseen = pending_row_count_;
  for (auto it = meta_.rbegin(); it != meta_.rend() && unseen > 0; ++it) {
    RowMeta& m = *it;
    if (m.writer == 0) continue;
    --unseen;
    if (m.writer == txn_id) {
      m.writer = 0;
      m.commit_ts = commit_ts;
      --pending_row_count_;
    }
  }
  if (stash_count_ > 0) {
    for (VersionShard& shard : shards_) {
      std::lock_guard<std::mutex> lock(shard.mutex);
      for (StashedVersion& v : shard.stash) {
        if (v.superseder == txn_id && v.superseder_ts == kPendingTs) {
          v.superseder_ts = commit_ts;
        }
      }
    }
  }
  if (commit_ts > max_commit_ts_) max_commit_ts_ = commit_ts;
}

void Table::AbortTxn(uint64_t txn_id) {
  size_t unseen = pending_row_count_;
  for (auto it = meta_.rbegin(); it != meta_.rend() && unseen > 0; ++it) {
    RowMeta& m = *it;
    if (m.writer == 0) continue;
    --unseen;
    if (m.writer == txn_id) {
      // Undo replay restores metadata per row; anything still pending
      // here was rolled back without a matching undo record (defensive).
      m.writer = 0;
      m.commit_ts = 0;
      --pending_row_count_;
    }
  }
  if (stash_count_ == 0) return;
  for (VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.stash.begin(); it != shard.stash.end();) {
      if (it->superseder == txn_id && it->superseder_ts == kPendingTs) {
        it = shard.stash.erase(it);
        --stash_count_;
      } else {
        ++it;
      }
    }
  }
}

size_t Table::GcVersions(uint64_t horizon) {
  if (stash_count_ == 0) return 0;
  size_t reclaimed = 0;
  for (VersionShard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (auto it = shard.stash.begin(); it != shard.stash.end();) {
      if (it->superseder_ts != kPendingTs && it->superseder_ts <= horizon) {
        it = shard.stash.erase(it);
        ++reclaimed;
      } else {
        ++it;
      }
    }
  }
  stash_count_ -= reclaimed;
  return reclaimed;
}

bool Table::HasPendingWriterOther(uint64_t txn_id) const {
  if (pending_row_count_ == 0) return false;
  // Same tail-first walk as CommitTxn: pending rows are almost always
  // recent appends, so the gate costs O(pending set) per statement.
  size_t unseen = pending_row_count_;
  for (auto it = meta_.rbegin(); it != meta_.rend() && unseen > 0; ++it) {
    if (it->writer == 0) continue;
    --unseen;
    if (it->writer != txn_id) return true;
  }
  return false;
}

size_t Table::FindSlotByRowId(uint64_t row_id, size_t hint) const {
  if (hint < meta_.size() && meta_[hint].row_id == row_id) return hint;
  for (size_t i = 0; i < meta_.size(); ++i) {
    if (meta_[i].row_id == row_id) return i;
  }
  return meta_.size();
}

void Table::RestoreMetaAt(size_t index, RowMeta meta) {
  bool was_pending = meta_[index].writer != 0;
  bool now_pending = meta.writer != 0;
  meta_[index] = meta;
  if (was_pending && !now_pending) --pending_row_count_;
  if (!was_pending && now_pending) ++pending_row_count_;
}

bool Table::DropStashedVersion(uint64_t row_id, uint64_t superseder) {
  VersionShard& shard = ShardFor(row_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  for (auto it = shard.stash.begin(); it != shard.stash.end(); ++it) {
    if (it->row_id == row_id && it->superseder == superseder) {
      shard.stash.erase(it);
      --stash_count_;
      return true;
    }
  }
  return false;
}

size_t Table::StashDepthForTest() const {
  return stash_count_;
}

Status Table::AddSecondaryIndex(const std::string& name,
                                const std::vector<std::string>& columns,
                                bool unique) {
  for (const SecondaryIndex& index : secondary_indexes_) {
    if (EqualsIgnoreCase(index.name, name)) {
      return Status::AlreadyExists("index '" + name +
                                   "' already exists on table '" +
                                   schema_.table_name() + "'");
    }
  }
  SecondaryIndex index;
  index.name = name;
  index.unique = unique;
  for (const std::string& col : columns) {
    int idx = schema_.FindColumn(col);
    if (idx < 0) {
      return Status::NotFound("no column '" + col + "' in table '" +
                              schema_.table_name() + "'");
    }
    index.column_indexes.push_back(static_cast<size_t>(idx));
  }
  for (size_t slot = 0; slot < rows_.size(); ++slot) {
    index.buckets[MakeIndexKey(index, rows_[slot])].push_back(slot);
    index.ordered[MakeOrderedKey(index, rows_[slot])].push_back(slot);
  }
  secondary_indexes_.push_back(std::move(index));
  return Status::OK();
}

Status Table::DropSecondaryIndex(const std::string& name) {
  for (auto it = secondary_indexes_.begin();
       it != secondary_indexes_.end(); ++it) {
    if (EqualsIgnoreCase(it->name, name)) {
      secondary_indexes_.erase(it);
      return Status::OK();
    }
  }
  return Status::NotFound("no index '" + name + "'");
}

const SecondaryIndex* Table::FindSecondaryIndex(
    const std::string& name) const {
  for (const SecondaryIndex& index : secondary_indexes_) {
    if (EqualsIgnoreCase(index.name, name)) return &index;
  }
  return nullptr;
}

const std::vector<size_t>* Table::IndexBucket(
    const SecondaryIndex& index, const std::string& serialized_key) const {
  auto it = index.buckets.find(serialized_key);
  if (it == index.buckets.end()) return nullptr;
  return &it->second;
}

}  // namespace sqlflow::sql
