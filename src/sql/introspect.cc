#include "sql/introspect.h"

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.h"
#include "sql/database.h"
#include "sql/fault.h"
#include "sql/table.h"

namespace sqlflow::sql {

namespace {

TableSchema MakeSchema(std::string name,
                       std::vector<std::pair<std::string, ValueType>> cols) {
  std::vector<ColumnDef> defs;
  defs.reserve(cols.size());
  for (auto& [col_name, type] : cols) {
    ColumnDef def;
    def.name = std::move(col_name);
    def.type = type;
    defs.push_back(std::move(def));
  }
  return TableSchema(std::move(name), std::move(defs));
}

std::vector<Row> MetricsRows() {
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  std::vector<Row> rows;
  for (const obs::CounterSnapshot& c : metrics.SnapshotCounters()) {
    rows.push_back({Value::String(c.name), Value::String("counter"),
                    Value::Integer(static_cast<int64_t>(c.value)),
                    Value::Null(), Value::Null(), Value::Null(),
                    Value::Null(), Value::Null(), Value::Null()});
  }
  for (const obs::HistogramSnapshot& h : metrics.SnapshotHistograms()) {
    rows.push_back({Value::String(h.name), Value::String("histogram"),
                    Value::Null(),
                    Value::Integer(static_cast<int64_t>(h.count)),
                    Value::Integer(static_cast<int64_t>(h.sum)),
                    Value::Integer(static_cast<int64_t>(h.p50)),
                    Value::Integer(static_cast<int64_t>(h.p95)),
                    Value::Integer(static_cast<int64_t>(h.p99)),
                    Value::Integer(static_cast<int64_t>(h.max))});
  }
  return rows;
}

std::vector<Row> TablesRows(Database* db) {
  std::vector<Row> rows;
  Catalog& catalog = db->catalog();
  // Virtual tables report a NULL row count: they materialize only for
  // statements that reference them, so any number read here would be a
  // stale snapshot from some earlier statement.
  auto add = [&](const std::string& name, const char* kind,
                 bool live_rows) {
    const Table* table = catalog.FindTable(name);
    if (table == nullptr) return;
    rows.push_back(
        {Value::String(name), Value::String(kind),
         live_rows
             ? Value::Integer(static_cast<int64_t>(table->row_count()))
             : Value::Null(),
         Value::Integer(
             static_cast<int64_t>(table->schema().column_count())),
         Value::Integer(
             static_cast<int64_t>(table->secondary_indexes().size()))});
  };
  for (const std::string& name : catalog.TableNames()) {
    add(name, "base", /*live_rows=*/true);
  }
  for (const std::string& name : catalog.VirtualTableNames()) {
    add(name, "virtual", /*live_rows=*/false);
  }
  for (const std::string& name : catalog.ViewNames()) {
    rows.push_back({Value::String(name), Value::String("view"),
                    Value::Null(), Value::Null(), Value::Null()});
  }
  return rows;
}

std::vector<Row> IndexesRows(Database* db) {
  std::vector<Row> rows;
  Catalog& catalog = db->catalog();
  for (const std::string& table_name : catalog.TableNames()) {
    const Table* table = catalog.FindTable(table_name);
    if (table == nullptr) continue;
    for (const SecondaryIndex& index : table->secondary_indexes()) {
      std::string columns;
      for (size_t i = 0; i < index.column_indexes.size(); ++i) {
        if (i > 0) columns += ",";
        columns += table->schema().columns()[index.column_indexes[i]].name;
      }
      rows.push_back(
          {Value::String(index.name), Value::String(table_name),
           Value::String(std::move(columns)), Value::Boolean(index.unique),
           Value::Integer(static_cast<int64_t>(index.ordered.size()))});
    }
  }
  return rows;
}

std::vector<Row> PlanCacheRows(Database* db) {
  std::vector<Row> rows;
  for (const Database::PlanCacheEntry& e : db->PlanCacheEntries()) {
    rows.push_back({Value::String(e.sql), Value::String(e.tables),
                    Value::Integer(static_cast<int64_t>(e.hits)),
                    Value::Integer(static_cast<int64_t>(e.plan_epoch)),
                    Value::Integer(static_cast<int64_t>(e.last_used_tick)),
                    Value::Boolean(e.has_access_plan),
                    Value::Boolean(e.has_range_plan)});
  }
  return rows;
}

std::vector<Row> FaultSitesRows(Database* db) {
  std::shared_ptr<FaultInjector> injector = db->fault_injector();
  if (injector == nullptr) injector = Database::GlobalFaultInjector();
  std::vector<Row> rows;
  if (injector == nullptr) return rows;
  const FaultInjector::Options& options = injector->options();
  const FaultInjector::Stats& stats = injector->stats();
  obs::MetricsRegistry& metrics = obs::MetricsRegistry::Global();
  // Per-layer row: the layer's gate plus its injected split. SEEN and
  // MATCHED are injector-wide (the stream is shared across layers).
  // ABSORBED maps each layer to the recovery counter that answers its
  // faults: the statement-layer replay for statement and mid-statement
  // sites (mid faults are rolled back, then replayed by the same
  // wrapper), the service-layer retry for service sites.
  struct LayerRow {
    const char* layer;
    bool enabled;
    uint64_t injected;
    const char* absorbed_counter;
  };
  const LayerRow layers[] = {
      {"statement", options.statement_sites, stats.injected_statement,
       "sql.fault.absorbed"},
      {"mid_statement", options.mid_statement_sites,
       stats.injected_mid_statement, "sql.fault.absorbed"},
      {"service", options.service_sites, stats.injected_service,
       "svc.fault.absorbed"},
      // A crash is never absorbed in-process: recovery happens in the
      // next incarnation, which is what wfc.resume.* counts.
      {"crash", options.crash_sites, stats.injected_crash,
       "wfc.resume.instances"},
      // Network faults are absorbed by the client driver's reconnect +
      // idempotent-replay ladder (net.retry.absorbed).
      {"network", options.network_sites, stats.injected_network,
       "net.retry.absorbed"},
  };
  for (const LayerRow& layer : layers) {
    rows.push_back(
        {Value::String(layer.layer), Value::Boolean(layer.enabled),
         Value::Integer(static_cast<int64_t>(options.seed)),
         Value::Double(options.probability),
         Value::String(options.site_filter),
         Value::String(options.database_filter),
         Value::Integer(static_cast<int64_t>(stats.statements_seen)),
         Value::Integer(static_cast<int64_t>(stats.sites_matched)),
         Value::Integer(static_cast<int64_t>(layer.injected)),
         Value::Integer(static_cast<int64_t>(
             metrics.GetCounter(layer.absorbed_counter).value()))});
  }
  return rows;
}

std::vector<Row> WalRows(Database* db) {
  std::vector<Row> rows;
  WalManager* wal = db->wal();
  if (wal == nullptr) return rows;  // durability off: empty table
  const WalStats stats = wal->stats();
  rows.push_back(
      {Value::Integer(static_cast<int64_t>(stats.current_lsn)),
       Value::Integer(static_cast<int64_t>(stats.snapshot_lsn)),
       Value::Integer(static_cast<int64_t>(stats.records)),
       Value::Integer(static_cast<int64_t>(stats.commits)),
       Value::Integer(static_cast<int64_t>(stats.syncs)),
       Value::Integer(static_cast<int64_t>(stats.sync_coalesced)),
       Value::String(FsyncPolicyName(stats.fsync_policy)),
       Value::Boolean(wal->crashed())});
  return rows;
}

std::vector<Row> TransactionsRows(Database* db) {
  const MvccManager& mvcc = db->mvcc();
  const Database::Stats& stats = db->stats();
  std::vector<Row> rows;
  rows.push_back(
      {Value::Integer(static_cast<int64_t>(mvcc.epoch())),
       Value::Integer(static_cast<int64_t>(mvcc.active_count())),
       Value::Integer(static_cast<int64_t>(mvcc.next_txn_id())),
       Value::Integer(static_cast<int64_t>(mvcc.Horizon())),
       Value::Boolean(db->concurrent_mode()),
       Value::Integer(static_cast<int64_t>(stats.transactions_committed)),
       Value::Integer(
           static_cast<int64_t>(stats.transactions_rolled_back))});
  return rows;
}

}  // namespace

Status RegisterSysTables(Database* db) {
  Catalog& catalog = db->catalog();

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.metrics",
                 {{"NAME", ValueType::kString},
                  {"KIND", ValueType::kString},
                  {"VALUE", ValueType::kInteger},
                  {"COUNT", ValueType::kInteger},
                  {"SUM", ValueType::kInteger},
                  {"P50", ValueType::kInteger},
                  {"P95", ValueType::kInteger},
                  {"P99", ValueType::kInteger},
                  {"MAX", ValueType::kInteger}}),
      [] { return MetricsRows(); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.tables",
                 {{"NAME", ValueType::kString},
                  {"KIND", ValueType::kString},
                  {"ROW_COUNT", ValueType::kInteger},
                  {"COLUMN_COUNT", ValueType::kInteger},
                  {"INDEX_COUNT", ValueType::kInteger}}),
      [db] { return TablesRows(db); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.indexes",
                 {{"NAME", ValueType::kString},
                  {"TABLE_NAME", ValueType::kString},
                  {"COLUMNS", ValueType::kString},
                  {"IS_UNIQUE", ValueType::kBoolean},
                  {"DISTINCT_KEYS", ValueType::kInteger}}),
      [db] { return IndexesRows(db); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.plan_cache",
                 {{"SQL_TEXT", ValueType::kString},
                  {"TABLES", ValueType::kString},
                  {"HITS", ValueType::kInteger},
                  {"PLAN_EPOCH", ValueType::kInteger},
                  {"LAST_USED", ValueType::kInteger},
                  {"HAS_ACCESS", ValueType::kBoolean},
                  {"HAS_RANGE", ValueType::kBoolean}}),
      [db] { return PlanCacheRows(db); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.fault_sites",
                 {{"LAYER", ValueType::kString},
                  {"ENABLED", ValueType::kBoolean},
                  {"SEED", ValueType::kInteger},
                  {"PROBABILITY", ValueType::kDouble},
                  {"SITE_FILTER", ValueType::kString},
                  {"DATABASE_FILTER", ValueType::kString},
                  {"SEEN", ValueType::kInteger},
                  {"MATCHED", ValueType::kInteger},
                  {"INJECTED", ValueType::kInteger},
                  {"ABSORBED", ValueType::kInteger}}),
      [db] { return FaultSitesRows(db); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.transactions",
                 {{"EPOCH", ValueType::kInteger},
                  {"ACTIVE_TXNS", ValueType::kInteger},
                  {"NEXT_TXN_ID", ValueType::kInteger},
                  {"GC_HORIZON", ValueType::kInteger},
                  {"CONCURRENT_MODE", ValueType::kBoolean},
                  {"COMMITTED", ValueType::kInteger},
                  {"ROLLED_BACK", ValueType::kInteger}}),
      [db] { return TransactionsRows(db); }));

  SQLFLOW_RETURN_IF_ERROR(catalog.RegisterVirtualTable(
      MakeSchema("sys.wal",
                 {{"CURRENT_LSN", ValueType::kInteger},
                  {"SNAPSHOT_LSN", ValueType::kInteger},
                  {"RECORDS", ValueType::kInteger},
                  {"COMMITS", ValueType::kInteger},
                  {"SYNCS", ValueType::kInteger},
                  {"SYNC_COALESCED", ValueType::kInteger},
                  {"FSYNC_POLICY", ValueType::kString},
                  {"CRASHED", ValueType::kBoolean}}),
      [db] { return WalRows(db); }));

  return Status::OK();
}

}  // namespace sqlflow::sql
