#ifndef SQLFLOW_SQL_EVAL_H_
#define SQLFLOW_SQL_EVAL_H_

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"
#include "sql/ast.h"

namespace sqlflow::sql {

class Database;

/// Host-variable bindings for one statement execution. Named parameters
/// (`:name`) resolve by name; positional (`?`) by order of appearance.
/// A named parameter may also be satisfied positionally.
struct Params {
  std::map<std::string, Value> named;
  std::vector<Value> positional;

  static Params None() { return Params(); }

  Params& Set(std::string name, Value v) {
    named[std::move(name)] = std::move(v);
    return *this;
  }
  Params& Add(Value v) {
    positional.push_back(std::move(v));
    return *this;
  }
};

/// Resolves column references for the current row scope.
class RowBinding {
 public:
  virtual ~RowBinding() = default;
  /// `qualifier` may be empty (unqualified reference).
  virtual Result<Value> Resolve(const std::string& qualifier,
                                const std::string& column) const = 0;
};

/// Everything an expression needs at evaluation time. All pointers are
/// optional; expressions touching a missing facility fail cleanly.
struct EvalContext {
  const RowBinding* binding = nullptr;
  const Params* params = nullptr;
  /// Lets the executor substitute precomputed values for specific nodes
  /// (used for aggregate calls in grouped queries).
  std::function<std::optional<Value>(const Expr&)> node_override;
  /// For NEXTVAL('seq').
  Database* database = nullptr;
};

/// Evaluates `e` under `ctx` with SQL three-valued-logic semantics:
/// comparisons and arithmetic propagate NULL, AND/OR are Kleene, WHERE
/// should treat a NULL result as not-true.
Result<Value> EvaluateExpr(const Expr& e, const EvalContext& ctx);

/// True iff `v` is TRUE (NULL and FALSE both fail a predicate).
bool IsTrue(const Value& v);

/// SQL LIKE with `%` and `_` wildcards.
bool LikeMatch(const std::string& text, const std::string& pattern);

/// NEXTVAL('seq') — defined in database.cc to avoid a circular include.
Result<Value> EvalNextval(Database* db, const std::string& sequence_name);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_EVAL_H_
