#ifndef SQLFLOW_SQL_WAL_H_
#define SQLFLOW_SQL_WAL_H_

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sql/result_set.h"

namespace sqlflow::sql {

class FaultInjector;

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over `n` bytes.
/// Every log record carries one so recovery can tell a torn tail (short
/// bytes — clean stop) from corruption (full bytes, wrong sum — refuse).
uint32_t WalCrc32(const void* data, size_t n);

/// Redo-record kinds. The log is committed-effects-only: DML records are
/// written at MVCC commit time from the transaction's captured
/// post-images, so replay never needs to understand rollback. The kWf*
/// kinds are the workflow dehydration records (ISSUE 9): they share the
/// log so a workflow step and the SQL it committed become durable in the
/// same atomic batch.
enum class WalRecordType : uint8_t {
  kInsert = 1,    // table, row_id, row post-image
  kUpdate = 2,    // table, row_id, row post-image
  kDelete = 3,    // table, row_id
  kTruncate = 4,  // table
  kDdl = 5,       // canonical SQL text, re-executed on replay
  kSeqSet = 6,    // sequence name, next_value after the statement
  kCommit = 7,    // batch terminator; records before it become visible
  kWfStart = 8,   // instance_id, process name, encoded inputs
  kWfStep = 9,    // instance_id, step name, seq, variable snapshot
  kWfAttempt = 10,  // instance_id, step name, seq, attempt number
  kWfEnd = 11,    // instance_id
  /// Wire-request dedup ledger (net/server.cc): idempotency key →
  /// request outcome, committed in the same batch as the request's SQL
  /// effects so a crash lands strictly before (key absent, retry
  /// re-executes) or strictly after (key present, retry answers from
  /// the ledger) — never between.
  kNetRequest = 12,  // key, state, instance_id, encoded response
};

// --- primitive codec -------------------------------------------------------
// Little-endian, length-prefixed. Shared by the log payloads, the
// snapshot files (sql/checkpoint.cc), and the workflow dehydration
// records (wfc/persist.cc) so there is exactly one byte format.

void WalPutU32(std::string& out, uint32_t v);
void WalPutU64(std::string& out, uint64_t v);
void WalPutString(std::string& out, std::string_view s);
/// Value: u8 type tag (0 null, 1 bool, 2 int, 3 double, 4 string) +
/// payload.
void WalPutValue(std::string& out, const Value& v);
void WalPutRow(std::string& out, const Row& row);

/// Bounded forward reader over encoded bytes; every accessor checks the
/// remaining length so corrupt input yields a Status, never a read past
/// the end.
class WalReader {
 public:
  explicit WalReader(std::string_view data) : data_(data) {}

  Result<uint8_t> U8();
  Result<uint32_t> U32();
  Result<uint64_t> U64();
  Result<std::string> Str();
  Result<Value> Val();
  Result<Row> RowField();

  bool AtEnd() const { return pos_ >= data_.size(); }
  size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  size_t pos_ = 0;
};

// --- payload builders ------------------------------------------------------
// Each returns `[u8 type][fields...]`, ready for WalManager::AppendCommit.

std::string WalInsertRecord(std::string_view table, uint64_t row_id,
                            const Row& row);
std::string WalUpdateRecord(std::string_view table, uint64_t row_id,
                            const Row& row);
std::string WalDeleteRecord(std::string_view table, uint64_t row_id);
std::string WalTruncateRecord(std::string_view table);
std::string WalDdlRecord(std::string_view sql);
std::string WalSeqSetRecord(std::string_view name, int64_t next_value);

/// One entry of the durable wire-request ledger (kNetRequest).
/// `state` kPending marks a workflow instance started on behalf of the
/// key (crash recovery maps the key to the resumed instance);
/// kDone carries the encoded response the retry should see verbatim.
struct WalNetRequest {
  enum State : uint8_t { kPending = 1, kDone = 2 };
  uint8_t state = kPending;
  uint64_t instance_id = 0;
  std::string response;  // net protocol response payload (kDone only)
};
std::string WalNetRequestRecord(std::string_view key,
                                const WalNetRequest& entry);
/// `payload` is the record bytes after the type tag.
Result<std::pair<std::string, WalNetRequest>> DecodeWalNetRequest(
    std::string_view payload);

/// When the OS is told to flush. kNever leans on the page cache (process
/// crash safe, power-loss unsafe), kEveryCommit is the classic durable
/// setting, kEveryN amortizes the flush over N commit batches.
enum class FsyncPolicy { kNever, kEveryCommit, kEveryN };
const char* FsyncPolicyName(FsyncPolicy policy);

struct WalOptions {
  FsyncPolicy fsync_policy = FsyncPolicy::kNever;
  uint32_t fsync_every_n = 32;  // commits per fsync under kEveryN
};

struct WalStats {
  uint64_t current_lsn = 0;   // next append offset == log byte size
  uint64_t snapshot_lsn = 0;  // replay starts here after snapshot load
  uint64_t records = 0;
  uint64_t commits = 0;
  uint64_t syncs = 0;
  /// Commits under kEveryCommit that became durable without issuing
  /// their own fsync — another connection's flush covered them (group
  /// commit coalescing).
  uint64_t sync_coalesced = 0;
  FsyncPolicy fsync_policy = FsyncPolicy::kNever;
};

/// One decoded log record: `payload` is the bytes *after* the type tag.
struct WalRecord {
  WalRecordType type;
  uint64_t lsn = 0;
  std::string payload;
};

/// Dehydrated state of one workflow instance, accumulated from kWf*
/// records (both as they append and as they replay). An instance with a
/// start but no end was in flight when the process died —
/// wfc::WorkflowEngine::ResumeInstances rehydrates exactly these.
struct WfInstanceLog {
  std::string start_payload;       // kWfStart payload (after the tag)
  std::vector<std::string> steps;  // kWfStep payloads, append order
  std::vector<std::string> attempts;  // kWfAttempt payloads
  bool ended = false;
};

/// The append-only redo log. Appends are serialized (the owning
/// Database's exclusive statement latch orders mutating statements, so
/// append order == commit order), but under kEveryCommit the durability
/// *wait* happens outside that latch via the split
/// AppendCommit/SyncToLsn pair — that is what lets concurrent
/// connections coalesce onto one fsync. The internal mutex makes the
/// stats and the workflow bookkeeping safe for concurrent readers.
///
/// Record framing: `[u32 payload_len][u32 crc32(payload)][payload]`,
/// LSN = byte offset of the length word. A commit batch is written with
/// a single write(2) call — group commit — so a crash tears at most one
/// batch, and the missing kCommit terminator makes recovery discard the
/// torn prefix wholesale.
class WalManager {
 public:
  /// Opens (creating if needed) `dir`/wal.log and positions the append
  /// offset at its current size. Validation of existing content is
  /// recovery's job (ReplayLog), not Open's.
  static Result<std::unique_ptr<WalManager>> Open(const std::string& dir,
                                                  WalOptions options);
  ~WalManager();

  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// Appends `payloads` plus a trailing kCommit record as one atomic
  /// write and applies the fsync policy. Consults the installed fault
  /// injector's crash layer first: on a scheduled kill only a
  /// seed-chosen byte prefix of the batch reaches the file (possibly
  /// tearing mid-record), the manager enters the crashed state, and this
  /// and every later append returns kDataLoss — the in-process analogue
  /// of the host dying at that LSN.
  Status AppendCommit(const std::vector<std::string>& payloads);

  /// AppendCommit with the durability wait split off: under kEveryCommit
  /// the batch is appended (ordered, counted) but this call returns
  /// *before* it is flushed, handing the caller the LSN it must pass to
  /// SyncToLsn once it has released whatever serialized the append.
  /// That is the group-commit seam: the Database's exclusive statement
  /// latch serializes appends (so append order == commit order), but
  /// committers wait for the flush *outside* the latch, piling up
  /// behind one leader fsync instead of issuing one syscall each.
  /// Under kNever / kEveryN the inline policy applies as usual and
  /// `*defer_sync_to` is 0 (nothing to wait for).
  Status AppendCommit(const std::vector<std::string>& payloads,
                      uint64_t* defer_sync_to);

  /// Completes a deferred commit: blocks until the log is flushed at
  /// least to `lsn`. Either joins a flush another committer is leading,
  /// leads one itself, or — when a prior flush already covered `lsn` —
  /// returns without a syscall (counted in `sync_coalesced`). Safe to
  /// call without any latch held; a no-op under kNever / kEveryN and
  /// for lsn == 0. An acknowledged commit is durable on return; a
  /// commit that is visible but not yet acknowledged sits earlier in
  /// the sequential log than any later acknowledged one, so a crash in
  /// the window can never persist an effect that read it without also
  /// persisting it.
  Status SyncToLsn(uint64_t lsn);

  /// One-payload commit batch.
  Status Append(const std::string& payload);

  uint64_t current_lsn() const;
  WalStats stats() const;
  void set_snapshot_lsn(uint64_t lsn);
  uint64_t snapshot_lsn() const;

  /// True once a simulated crash tore an append; the log must not be
  /// written further (recovery into a fresh image is the only way on).
  bool crashed() const;

  /// Arms the kCrash fault layer. `database_name` is what the
  /// injector's database filter matches against.
  void SetFaultInjector(FaultInjector* injector, std::string database_name);

  std::string log_path() const;
  const std::string& dir() const { return dir_; }

  /// Reads committed batches from the log file starting at `from_lsn`
  /// and hands each complete batch to `apply`. Records are buffered
  /// until their batch's kCommit is seen, so effects of a torn batch
  /// never replay. A short header or short payload is a torn tail —
  /// replay stops cleanly before it; a full-length record with a CRC
  /// mismatch is corruption and fails with kDataLoss. A missing file
  /// replays as empty (cold start). When `committed_end_lsn` is
  /// non-null it receives the byte offset just past the last applied
  /// kCommit (or `from_lsn` when nothing replayed) — the point a
  /// recovering writer must truncate to before reusing the log, since
  /// complete-but-uncommitted records left in place would be swept into
  /// the next batch that commits after them.
  static Status ReplayLog(
      const std::string& path, uint64_t from_lsn,
      const std::function<Status(const std::vector<WalRecord>&)>& apply,
      uint64_t* committed_end_lsn = nullptr);

  /// Discards every byte at or past `lsn` and repositions the append
  /// offset there. Recovery calls this with ReplayLog's
  /// committed_end_lsn so the torn tail of the previous incarnation can
  /// never contaminate batches this incarnation appends.
  Status TruncateTo(uint64_t lsn);

  /// Feeds one replayed record into the workflow bookkeeping (recovery
  /// calls this for kWf* records; appends note their own).
  void NoteReplayedRecord(const WalRecord& record);

  /// Seeds bookkeeping for instances restored from a snapshot file
  /// (their kWf* records predate the snapshot LSN and will not replay).
  void SeedWfInstance(uint64_t instance_id, WfInstanceLog log);

  /// Snapshot of the per-instance dehydration state.
  std::map<uint64_t, WfInstanceLog> WfState() const;

  /// Snapshot of the durable wire-request ledger (kNetRequest records,
  /// accumulated on append and on replay). The window reaches back to
  /// the last snapshot: requests recorded before a checkpoint age out
  /// of the dedup ledger with the log tail they rode in on.
  std::map<std::string, WalNetRequest> NetRequestState() const;

  /// Single-key ledger lookup (the per-request dedup probe).
  std::optional<WalNetRequest> FindNetRequest(const std::string& key) const;

 private:
  WalManager(std::string dir, WalOptions options, int fd, uint64_t size);

  /// Parses `payload` (with its leading tag) and updates wf_state_ if it
  /// is a kWf* record. Caller holds mutex_.
  void NoteWfPayloadLocked(std::string_view payload);

  /// The kEveryCommit coalescing wait (body shared by the inline and
  /// deferred paths). Caller holds `lock`; it drops during the fsync.
  Status SyncToLsnLocked(std::unique_lock<std::mutex>& lock,
                         uint64_t my_lsn);

  std::string dir_;
  WalOptions options_;
  int fd_ = -1;
  mutable std::mutex mutex_;
  uint64_t lsn_ = 0;
  uint64_t records_ = 0;
  uint64_t commits_ = 0;
  uint64_t syncs_ = 0;
  uint64_t snapshot_lsn_ = 0;
  uint32_t commits_since_sync_ = 0;
  bool crashed_ = false;
  FaultInjector* fault_injector_ = nullptr;
  std::string database_name_;
  std::map<uint64_t, WfInstanceLog> wf_state_;
  std::map<std::string, WalNetRequest> net_state_;
  /// Group-commit fsync coalescing (kEveryCommit): a committer whose
  /// bytes are already covered by `synced_lsn_` returns without its own
  /// fsync; otherwise one committer leads a flush (releasing the mutex,
  /// so later appends proceed meanwhile) and the rest wait on the
  /// condvar. `sync_coalesced_` counts the commits that never had to
  /// lead.
  std::condition_variable sync_cv_;
  uint64_t synced_lsn_ = 0;
  bool sync_in_progress_ = false;
  uint64_t sync_coalesced_ = 0;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_WAL_H_
