#ifndef SQLFLOW_SQL_SCHEMA_H_
#define SQLFLOW_SQL_SCHEMA_H_

#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/value.h"

namespace sqlflow::sql {

/// One column of a table schema.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kNull;
  bool not_null = false;
  bool primary_key = false;
  /// Value used when INSERT omits the column (constant, evaluated once
  /// at CREATE TABLE time).
  std::optional<Value> default_value;
};

/// An ordered list of typed columns. Column names are unique
/// case-insensitively.
class TableSchema {
 public:
  TableSchema() = default;
  TableSchema(std::string table_name, std::vector<ColumnDef> columns)
      : table_name_(std::move(table_name)), columns_(std::move(columns)) {}

  const std::string& table_name() const { return table_name_; }
  const std::vector<ColumnDef>& columns() const { return columns_; }
  size_t column_count() const { return columns_.size(); }

  /// Case-insensitive lookup; -1 if absent.
  int FindColumn(const std::string& name) const;

  /// Index of the PRIMARY KEY column, or -1 if none is declared.
  int primary_key_index() const;

  /// Validates uniqueness of column names and non-empty schema.
  Status Validate() const;

  /// Checks `value` against column i's declared type/nullability; integers
  /// widen to double columns, anything stringifies into VARCHAR.
  /// On success returns the (possibly coerced) value.
  Result<Value> CoerceValue(size_t column_index, const Value& value) const;

  /// CHECK constraints, stored as canonical (re-parseable) expression
  /// text so the schema stays copyable. Enforced by the Table.
  void AddCheckConstraint(std::string expr_text) {
    check_constraints_.push_back(std::move(expr_text));
  }
  const std::vector<std::string>& check_constraints() const {
    return check_constraints_;
  }

 private:
  std::string table_name_;
  std::vector<ColumnDef> columns_;
  std::vector<std::string> check_constraints_;
};

/// Renders `value` as a re-parseable SQL literal (quotes doubled inside
/// strings, doubles at round-trip precision).
std::string SqlLiteral(const Value& value);

/// Unparses a schema back to `CREATE TABLE name (...)` DDL that
/// reproduces it when re-executed: column types, NOT NULL, PRIMARY KEY,
/// DEFAULTs, and table-level CHECK constraints. Used by the WAL (DDL
/// redo records) and by DROP TABLE compensation (sql/inverse.cc).
std::string CreateTableSql(const TableSchema& schema);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_SCHEMA_H_
