#ifndef SQLFLOW_SQL_LEXER_H_
#define SQLFLOW_SQL_LEXER_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace sqlflow::sql {

/// Tokenizes an SQL string. Keywords are recognized case-insensitively and
/// normalized to upper case; identifiers keep their original spelling.
/// Supports line comments (`-- ...`) and quoted identifiers (`"name"`).
Result<std::vector<Token>> Tokenize(std::string_view input);

/// True if `word` (upper-cased) is a reserved SQL keyword of this dialect.
bool IsReservedKeyword(std::string_view upper_word);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_LEXER_H_
