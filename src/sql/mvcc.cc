#include "sql/mvcc.h"

#include "obs/metrics.h"

namespace sqlflow::sql {

void MvccManager::Begin(MvccTxn* txn) {
  std::lock_guard<std::mutex> lock(mutex_);
  txn->id = next_txn_id_++;
  txn->begin_ts = epoch_;
  txn->touched_tables.clear();
  active_.emplace(txn->id, txn->begin_ts);
  obs::MetricsRegistry::Global().GetCounter("sql.txn.begin").Increment();
}

uint64_t MvccManager::Commit(const MvccTxn& txn) {
  (void)txn;
  std::lock_guard<std::mutex> lock(mutex_);
  return ++epoch_;
}

void MvccManager::End(uint64_t txn_id) {
  std::lock_guard<std::mutex> lock(mutex_);
  active_.erase(txn_id);
}

uint64_t MvccManager::Horizon() const {
  std::lock_guard<std::mutex> lock(mutex_);
  if (active_.empty()) return epoch_;
  uint64_t horizon = epoch_;
  for (const auto& [id, begin_ts] : active_) {
    if (begin_ts < horizon) horizon = begin_ts;
  }
  return horizon;
}

uint64_t MvccManager::epoch() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return epoch_;
}

uint64_t MvccManager::active_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return active_.size();
}

uint64_t MvccManager::next_txn_id() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return next_txn_id_;
}

}  // namespace sqlflow::sql
