#ifndef SQLFLOW_SQL_TRANSACTION_H_
#define SQLFLOW_SQL_TRANSACTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "sql/ast.h"
#include "sql/catalog.h"
#include "sql/mvcc.h"
#include "sql/result_set.h"
#include "sql/schema.h"

namespace sqlflow::sql {

class Database;

/// One logical change, with enough information to reverse it. Entries are
/// replayed in reverse order on rollback; tables are addressed by name so
/// that CREATE/DROP interleavings stay correct.
struct UndoEntry {
  enum class Kind {
    kInsert,          // undo: remove row at `row_index`
    kDelete,          // undo: re-insert `row` at `row_index`
    kUpdate,          // undo: restore `row` at `row_index`
    kTruncate,        // undo: restore `bulk_rows`
    kCreateTable,     // undo: drop the table
    kDropTable,       // undo: re-register the saved table
    kCreateSequence,  // undo: drop the sequence
    kDropSequence,    // undo: re-create with `sequence_value`
    kSequenceAdvance, // undo: restore `sequence_value`
    kCreateIndex,     // undo: drop the constraint
    kDropIndex,       // saved_indexes holds the dropped index's metadata
    kCreateView,      // undo: drop the view
    kDropView,        // undo: re-register `saved_view`
  };

  Kind kind;
  std::string table_name;   // or sequence/index name
  size_t row_index = 0;
  /// MVCC identity of the affected row (0 for non-row entries): replay
  /// resolves the row by id when concurrent interleavings may have
  /// shifted its slot, and restores the pre-mutation version metadata.
  uint64_t row_id = 0;
  uint64_t meta_commit_ts = 0;  // pre-mutation RowMeta (kUpdate/kDelete)
  uint64_t meta_writer = 0;
  Row row;
  /// Only populated when the owning log has `capture_rows()` set: the
  /// post-image of the mutation (the inserted row for kInsert, the new
  /// values for kUpdate). Replay never reads it; the inverse-SQL
  /// compensation builder does (see sql/inverse.h).
  Row new_row;
  std::vector<Row> bulk_rows;
  int64_t sequence_value = 0;
  // For kDropTable: the saved schema + data + constraints.
  TableSchema saved_schema;
  std::vector<Row> saved_rows;
  std::vector<std::pair<std::string, std::vector<std::string>>>
      saved_constraints;  // name → column names
  std::vector<IndexInfo> saved_indexes;  // for kDropTable
  std::string index_table;           // for kCreateIndex
  std::unique_ptr<SelectStatement> saved_view;  // for kDropView
};

/// Ordered list of undo records. One log serves both scopes: the open
/// transaction (entries up to the statement mark) and the statement
/// currently executing (entries past the mark) — `RollbackTo` unwinds
/// just the statement's tail, `RollbackInto` the whole log.
class UndoLog {
 public:
  void Record(UndoEntry entry) { entries_.push_back(std::move(entry)); }
  size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }
  const std::vector<UndoEntry>& entries() const { return entries_; }
  std::vector<UndoEntry>& mutable_entries() { return entries_; }

  /// Applies all entries in reverse and clears the log.
  void RollbackInto(Database* db);

  /// Applies the entries recorded after `mark` in reverse and truncates
  /// the log back to `mark` — the statement-scope rollback that restores
  /// the byte-identical pre-statement state after a mid-statement fault.
  /// Returns true if any undone entry was DDL (caller must bump the
  /// schema epoch so memoized plans revalidate).
  bool RollbackTo(size_t mark, Database* db);

  void Clear() { entries_.clear(); }

  /// When set, Table mutations record post-images (`UndoEntry::new_row`)
  /// alongside the undo data, so successful statements can be turned
  /// into inverse SQL for compensation (sql/inverse.h).
  bool capture_rows() const { return capture_rows_; }
  void set_capture_rows(bool on) { capture_rows_ = on; }

  /// The MVCC transaction this log belongs to, or nullptr outside a
  /// transaction. Set by the owning Database connection; Table mutations
  /// read it for conflict detection and version stashing, and replay
  /// reads it to unwind version metadata. Not owned.
  MvccTxn* txn = nullptr;

 private:
  std::vector<UndoEntry> entries_;
  bool capture_rows_ = false;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_TRANSACTION_H_
