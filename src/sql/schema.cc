#include "sql/schema.h"

#include <cstdio>

#include "common/string_util.h"

namespace sqlflow::sql {

int TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int TableSchema::primary_key_index() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::Validate() const {
  if (columns_.empty()) {
    return Status::InvalidArgument("table '" + table_name_ +
                                   "' has no columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (EqualsIgnoreCase(columns_[i].name, columns_[j].name)) {
        return Status::InvalidArgument("duplicate column '" +
                                       columns_[i].name + "' in table '" +
                                       table_name_ + "'");
      }
    }
  }
  return Status::OK();
}

Result<Value> TableSchema::CoerceValue(size_t column_index,
                                       const Value& value) const {
  const ColumnDef& col = columns_[column_index];
  if (value.is_null()) {
    if (col.not_null) {
      return Status::ConstraintError("column '" + col.name +
                                     "' is NOT NULL");
    }
    return value;
  }
  switch (col.type) {
    case ValueType::kInteger: {
      SQLFLOW_ASSIGN_OR_RETURN(int64_t v, value.AsInteger());
      return Value::Integer(v);
    }
    case ValueType::kDouble: {
      SQLFLOW_ASSIGN_OR_RETURN(double v, value.AsDouble());
      return Value::Double(v);
    }
    case ValueType::kBoolean: {
      SQLFLOW_ASSIGN_OR_RETURN(bool v, value.AsBoolean());
      return Value::Boolean(v);
    }
    case ValueType::kString:
      return Value::String(value.AsString());
    case ValueType::kNull:
      return value;  // untyped column accepts anything
  }
  return Status::Internal("bad column type");
}

std::string SqlLiteral(const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kBoolean:
      return value.boolean() ? "TRUE" : "FALSE";
    case ValueType::kInteger:
      return std::to_string(value.integer());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", value.dbl());
      std::string s = buf;
      // Force a decimal marker so the literal re-parses as a double.
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find("inf") == std::string::npos &&
          s.find("nan") == std::string::npos) {
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : value.str()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
  }
  return "NULL";
}

std::string CreateTableSql(const TableSchema& schema) {
  std::string out = "CREATE TABLE " + schema.table_name() + " (";
  bool first = true;
  for (const ColumnDef& col : schema.columns()) {
    if (!first) out += ", ";
    first = false;
    out += col.name + " ";
    switch (col.type) {
      case ValueType::kInteger:
        out += "INTEGER";
        break;
      case ValueType::kDouble:
        out += "DOUBLE";
        break;
      case ValueType::kBoolean:
        out += "BOOLEAN";
        break;
      case ValueType::kString:
      case ValueType::kNull:
        out += "VARCHAR";
        break;
    }
    if (col.not_null && !col.primary_key) out += " NOT NULL";
    if (col.primary_key) out += " PRIMARY KEY";
    if (col.default_value.has_value()) {
      out += " DEFAULT " + SqlLiteral(*col.default_value);
    }
  }
  for (const std::string& check : schema.check_constraints()) {
    out += ", CHECK (" + check + ")";
  }
  out += ")";
  return out;
}

}  // namespace sqlflow::sql
