#include "sql/schema.h"

#include "common/string_util.h"

namespace sqlflow::sql {

int TableSchema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (EqualsIgnoreCase(columns_[i].name, name)) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

int TableSchema::primary_key_index() const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].primary_key) return static_cast<int>(i);
  }
  return -1;
}

Status TableSchema::Validate() const {
  if (columns_.empty()) {
    return Status::InvalidArgument("table '" + table_name_ +
                                   "' has no columns");
  }
  for (size_t i = 0; i < columns_.size(); ++i) {
    for (size_t j = i + 1; j < columns_.size(); ++j) {
      if (EqualsIgnoreCase(columns_[i].name, columns_[j].name)) {
        return Status::InvalidArgument("duplicate column '" +
                                       columns_[i].name + "' in table '" +
                                       table_name_ + "'");
      }
    }
  }
  return Status::OK();
}

Result<Value> TableSchema::CoerceValue(size_t column_index,
                                       const Value& value) const {
  const ColumnDef& col = columns_[column_index];
  if (value.is_null()) {
    if (col.not_null) {
      return Status::ConstraintError("column '" + col.name +
                                     "' is NOT NULL");
    }
    return value;
  }
  switch (col.type) {
    case ValueType::kInteger: {
      SQLFLOW_ASSIGN_OR_RETURN(int64_t v, value.AsInteger());
      return Value::Integer(v);
    }
    case ValueType::kDouble: {
      SQLFLOW_ASSIGN_OR_RETURN(double v, value.AsDouble());
      return Value::Double(v);
    }
    case ValueType::kBoolean: {
      SQLFLOW_ASSIGN_OR_RETURN(bool v, value.AsBoolean());
      return Value::Boolean(v);
    }
    case ValueType::kString:
      return Value::String(value.AsString());
    case ValueType::kNull:
      return value;  // untyped column accepts anything
  }
  return Status::Internal("bad column type");
}

}  // namespace sqlflow::sql
