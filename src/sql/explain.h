#ifndef SQLFLOW_SQL_EXPLAIN_H_
#define SQLFLOW_SQL_EXPLAIN_H_

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/eval.h"
#include "sql/result_set.h"
#include "sql/schema.h"

namespace sqlflow::sql {

class Database;

// ---------------------------------------------------------------------------
// Shared plan-decision helpers
// ---------------------------------------------------------------------------
// The executor and EXPLAIN both call these, so the rendered plan cannot
// drift from the decisions execution actually makes. Decisions that
// depend on the *data* (hash-join key comparability, build side,
// pushdown abandonment on a mid-scan error) stay runtime-only; EXPLAIN
// reports the static choice and EXPLAIN ANALYZE reports what really ran.

/// One column visible in a FROM scope: the table alias (or name) it is
/// reachable through, plus its column name.
struct ScopeColumnRef {
  std::string qualifier;
  std::string name;
};

/// Scope ordinal of a column reference, mirroring the executor's
/// ScopeBinding resolution; -1 when absent or ambiguous.
int FindScopeColumnIndex(const std::vector<ScopeColumnRef>& cols,
                         const Expr& e);

/// Equality conjuncts of a join condition that pair a left-scope column
/// (ordinal < left_width) with a right-side column, as (left ordinal,
/// right-relative ordinal) pairs — the hash-join key set.
std::vector<std::pair<size_t, size_t>> ExtractEquiJoinKeys(
    const Expr& join_condition, const std::vector<ScopeColumnRef>& columns,
    size_t left_width);

/// Whether pushdown below the join is structurally sound for this table
/// reference: not the right side of a LEFT OUTER join, and its
/// qualifier names exactly one FROM entry.
bool PushdownAllowed(const SelectStatement& sel, size_t ref_index);

/// WHERE conjuncts that mention only `qual`'s columns (explicitly
/// qualified) and can never raise a TypeError the un-pushed WHERE would
/// have short-circuited past — the set TryPushdown evaluates below the
/// join.
std::vector<const Expr*> CollectPushableConjuncts(
    const TableSchema& schema, const std::string& qual,
    const SelectStatement& sel);

/// AND-combines conjuncts into one owned expression (nullptr when empty).
ExprPtr CombineConjuncts(const std::vector<const Expr*>& conjuncts);

/// Maps each ORDER BY item of a single-base-table SELECT to a schema
/// column ordinal (see executor: ORDER BY elision). False when the sort
/// cannot be satisfied by an index traversal; on success `descending`
/// (when non-null) reports the uniform direction — all-descending
/// orders use a reversed walk, mixed directions are never sargable.
bool OrderBySargColumns(const SelectStatement& sel, const std::string& qual,
                        const TableSchema& schema, std::vector<size_t>* out,
                        bool* descending = nullptr);

// ---------------------------------------------------------------------------
// EXPLAIN
// ---------------------------------------------------------------------------

/// Executes EXPLAIN [ANALYZE] <target>. Plain EXPLAIN renders the
/// statically chosen plan as a one-column ("PLAN") result set without
/// running the target. ANALYZE runs the target with an ExecProfile
/// installed and renders one row per executed operator (OP, DETAIL,
/// ROWS_IN, ROWS_OUT, LOOPS, TIME_NS, BATCHES) plus a final RESULT row.
Result<ResultSet> ExecuteExplain(Database* db,
                                 const ExplainStatement& explain,
                                 const Params& params);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_EXPLAIN_H_
