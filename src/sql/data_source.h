#ifndef SQLFLOW_SQL_DATA_SOURCE_H_
#define SQLFLOW_SQL_DATA_SOURCE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "sql/database.h"

namespace sqlflow::sql {

/// Names a database behind a connection string. The only scheme in this
/// build is `memdb://<name>`; the structure mirrors what real products
/// put in their (static or dynamic) connection strings.
struct ConnectionString {
  std::string scheme;   // "memdb"
  std::string database; // logical database name

  static Result<ConnectionString> Parse(const std::string& raw);
  std::string ToString() const { return scheme + "://" + database; }
};

/// Registry of named in-memory databases. This is the substitution for
/// "all kinds of external data stores" in the paper: engines resolve
/// connection strings here, which is what makes IBM-style *dynamic* data
/// source binding (switching test ⇄ production without redeploying)
/// observable in tests and benchmarks.
class DataSourceRegistry {
 public:
  DataSourceRegistry() = default;
  DataSourceRegistry(const DataSourceRegistry&) = delete;
  DataSourceRegistry& operator=(const DataSourceRegistry&) = delete;

  /// Creates a database under `name`; error if it exists.
  Result<std::shared_ptr<Database>> CreateDatabase(const std::string& name);

  /// Returns the database named by `connection_string`, creating it on
  /// first open (like embedded databases do).
  Result<std::shared_ptr<Database>> Open(
      const std::string& connection_string);

  /// Lookup only; NotFound if the database was never created/opened.
  Result<std::shared_ptr<Database>> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;
  std::vector<std::string> DatabaseNames() const;

  /// Installs a fault injector and retry policy on every database the
  /// registry currently holds *and* every database it opens later —
  /// the chaos harness's per-engine hook (the global injector on
  /// sql::Database covers databases created outside any registry).
  void InstallFaultInjector(std::shared_ptr<FaultInjector> injector,
                            RetryPolicy retry_policy);

 private:
  void ApplyFaultConfig(Database* db);

  std::map<std::string, std::shared_ptr<Database>> databases_;
  std::shared_ptr<FaultInjector> fault_injector_;
  std::optional<RetryPolicy> retry_policy_;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_DATA_SOURCE_H_
