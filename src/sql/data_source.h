#ifndef SQLFLOW_SQL_DATA_SOURCE_H_
#define SQLFLOW_SQL_DATA_SOURCE_H_

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "common/status.h"
#include "sql/database.h"

namespace sqlflow::sql {

/// Names a database behind a connection string. The only scheme in this
/// build is `memdb://<name>`; the structure mirrors what real products
/// put in their (static or dynamic) connection strings.
struct ConnectionString {
  std::string scheme;   // "memdb"
  std::string database; // logical database name

  static Result<ConnectionString> Parse(const std::string& raw);
  std::string ToString() const { return scheme + "://" + database; }
};

/// Registry of named in-memory databases. This is the substitution for
/// "all kinds of external data stores" in the paper: engines resolve
/// connection strings here, which is what makes IBM-style *dynamic* data
/// source binding (switching test ⇄ production without redeploying)
/// observable in tests and benchmarks.
class DataSourceRegistry {
 public:
  DataSourceRegistry() = default;
  DataSourceRegistry(const DataSourceRegistry&) = delete;
  DataSourceRegistry& operator=(const DataSourceRegistry&) = delete;

  /// Creates a database under `name`; error if it exists.
  Result<std::shared_ptr<Database>> CreateDatabase(const std::string& name);

  /// Returns the database named by `connection_string`, creating it on
  /// first open (like embedded databases do).
  Result<std::shared_ptr<Database>> Open(
      const std::string& connection_string);

  /// Lookup only; NotFound if the database was never created/opened.
  Result<std::shared_ptr<Database>> Get(const std::string& name) const;

  bool Exists(const std::string& name) const;
  std::vector<std::string> DatabaseNames() const;

  /// Installs a fault injector and retry policy on every database the
  /// registry currently holds *and* every database it opens later —
  /// the chaos harness's per-engine hook (the global injector on
  /// sql::Database covers databases created outside any registry).
  void InstallFaultInjector(std::shared_ptr<FaultInjector> injector,
                            RetryPolicy retry_policy);

  /// Per-instance session view over this registry. A session resolves
  /// every name in its parent (creating the database there on first
  /// open, exactly like a direct Open), but hands back a private
  /// *connection* (Database::CreateConnection) sharing the parent's
  /// storage — so concurrent workflow instances each talk to the engine
  /// through their own session with its own transaction state, while
  /// reads and writes land in the one shared database. Sessions are
  /// cheap; the engine makes one per concurrent instance. The session
  /// must not outlive its parent registry.
  std::unique_ptr<DataSourceRegistry> CreateSession();

 private:
  void ApplyFaultConfig(Database* db);
  /// Returns the cached per-session connection for `key`, creating it
  /// from `primary` on first use; caller holds `mutex_`. Const because
  /// the connection cache is a lookup-side detail (Get is const).
  std::shared_ptr<Database> SessionConnectionLocked(
      const std::string& key,
      const std::shared_ptr<Database>& primary) const;

  /// Guards the map and fault config: in concurrent runs every worker
  /// may Open() the same name at once.
  mutable std::mutex mutex_;
  mutable std::map<std::string, std::shared_ptr<Database>> databases_;
  std::shared_ptr<FaultInjector> fault_injector_;
  std::optional<RetryPolicy> retry_policy_;
  /// Non-null for session views: names resolve there, connections cache
  /// here.
  DataSourceRegistry* parent_ = nullptr;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_DATA_SOURCE_H_
