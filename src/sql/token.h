#ifndef SQLFLOW_SQL_TOKEN_H_
#define SQLFLOW_SQL_TOKEN_H_

#include <cstdint>
#include <string>

namespace sqlflow::sql {

enum class TokenType {
  kEnd = 0,
  kIdentifier,      // table1, MyColumn (case preserved; compared fold-case)
  kKeyword,         // SELECT, FROM, ... (normalized to upper case in text)
  kIntegerLiteral,  // 42
  kDoubleLiteral,   // 3.14
  kStringLiteral,   // 'abc' (text holds the unescaped payload)
  kNamedParameter,  // :name (text holds "name")
  kPositionalParameter,  // ?
  // Punctuation / operators:
  kComma,
  kDot,
  kLParen,
  kRParen,
  kSemicolon,
  kStar,
  kPlus,
  kMinus,
  kSlash,
  kPercent,
  kEq,        // =
  kNotEq,     // <> or !=
  kLt,
  kLtEq,
  kGt,
  kGtEq,
  kConcat,    // ||
};

struct Token {
  TokenType type = TokenType::kEnd;
  std::string text;        // identifier/keyword/string payload
  int64_t integer = 0;     // for kIntegerLiteral
  double dbl = 0.0;        // for kDoubleLiteral
  size_t position = 0;     // byte offset in the input, for error messages

  bool IsKeyword(const char* kw) const;
};

const char* TokenTypeName(TokenType type);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_TOKEN_H_
