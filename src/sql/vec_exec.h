#ifndef SQLFLOW_SQL_VEC_EXEC_H_
#define SQLFLOW_SQL_VEC_EXEC_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"
#include "sql/ast.h"
#include "sql/batch.h"
#include "sql/eval.h"
#include "sql/explain.h"

namespace sqlflow::sql {

// ---------------------------------------------------------------------------
// Vectorized SELECT pipeline — data model
// ---------------------------------------------------------------------------
// The batch executor never materializes combined join rows. A relation is
// a set of *sides* (base-table row storage borrowed in place, or rows
// owned by a derived/view evaluation) plus one slot vector per side: row
// r of the relation is the concatenation of sides[s].rows[slots[s][r]]
// for every side. LEFT OUTER padding stores kNullSlot, which reads as
// NULL in every column of that side. Filtering compacts the slot
// vectors; column data never moves.

/// Slot sentinel for LEFT OUTER padding (no matching right row).
inline constexpr uint32_t kNullSlot = 0xFFFFFFFFu;

/// Stable NULL value for padded-slot reads.
const Value& VecNullValue();

/// One storage side of a relation. `rows` points at borrowed storage
/// (base table) or at `owned` (derived table / view result).
struct VecSide {
  const std::vector<Row>* rows = nullptr;
  std::vector<Row> owned;
  size_t width = 0;

  void BorrowRows(const std::vector<Row>* r, size_t w) {
    rows = r;
    width = w;
  }
  void OwnRows(std::vector<Row> r, size_t w) {
    owned = std::move(r);
    rows = &owned;
    width = w;
  }
};

/// A (possibly joined) FROM scope in columnar form. `sides` are
/// non-owning pointers: the caller keeps the VecSide storage alive
/// (sides are shared between a scope and the per-window probe relation
/// during joins).
struct VecRelation {
  std::vector<ScopeColumnRef> columns;
  std::vector<const VecSide*> sides;
  std::vector<std::vector<uint32_t>> slots;  // parallel to sides
  std::vector<uint32_t> col_side;            // per scope column
  std::vector<uint32_t> col_offset;

  size_t row_count() const { return slots.empty() ? 0 : slots[0].size(); }

  void AddSide(const VecSide* side, const std::string& qualifier,
               const std::vector<ScopeColumnRef>& side_columns) {
    uint32_t s = static_cast<uint32_t>(sides.size());
    sides.push_back(side);
    slots.emplace_back();
    for (size_t i = 0; i < side_columns.size(); ++i) {
      columns.push_back(side_columns[i]);
      col_side.push_back(s);
      col_offset.push_back(static_cast<uint32_t>(i));
    }
    (void)qualifier;
  }

  /// The value of scope column `col` in relation row `row`, by reference
  /// into side storage (or the shared NULL for padded slots).
  const Value& AtRef(size_t row, size_t col) const {
    uint32_t side = col_side[col];
    uint32_t slot = slots[side][row];
    if (slot == kNullSlot) return VecNullValue();
    return (*sides[side]->rows)[slot][col_offset[col]];
  }

  /// Materializes one full relation row (used for group representative
  /// rows, where the row path would bind the original scope row).
  Row MaterializeRow(size_t row) const {
    Row out;
    out.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) out.push_back(AtRef(row, c));
    return out;
  }
};

/// One evaluation window over a relation: rows [start, start+count).
struct VecWindow {
  const VecRelation* rel = nullptr;
  size_t start = 0;
  size_t count = 0;
  const Params* params = nullptr;
};

/// Scope-column ordinal for a column reference, mirroring the row
/// executor's ScopeBinding resolution. -1 ⇒ not found, -2 ⇒ ambiguous
/// (kernels bail either way; the scalar fallback then raises the exact
/// row-path error).
int FindVecColumn(const VecRelation& rel, const std::string& qualifier,
                  const std::string& name);

/// Vectorized expression kernel. Returns true and fills `out` when the
/// whole window can be evaluated with provably row-path-identical
/// results and *no possibility of an evaluation error or side effect*;
/// returns false (out reset to kBail) otherwise, and the caller must
/// re-evaluate the window row-at-a-time through EvaluateExpr.
bool TryVecEval(const Expr& e, const VecWindow& w, VecCol* out);

/// Row-at-a-time fallback binding over a columnar relation; Resolve
/// reproduces ScopeBinding byte-for-byte (case-insensitive match,
/// ambiguity and not-found messages).
class VecRowBinding : public RowBinding {
 public:
  explicit VecRowBinding(const VecRelation* rel) : rel_(rel) {}

  void set_row(size_t row) { row_ = row; }

  Result<Value> Resolve(const std::string& qualifier,
                        const std::string& column) const override;

 private:
  const VecRelation* rel_;
  size_t row_ = 0;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_VEC_EXEC_H_
