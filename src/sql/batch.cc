#include "sql/batch.h"

namespace sqlflow::sql {

size_t CompactSelection(Batch* batch, const std::vector<uint8_t>& keep) {
  size_t out = 0;
  for (size_t i = 0; i < batch->selection.size(); ++i) {
    uint32_t pos = batch->selection[i];
    if (keep[pos]) batch->selection[out++] = pos;
  }
  batch->selection.resize(out);
  return out;
}

}  // namespace sqlflow::sql
