#include "sql/vec_exec.h"

#include <algorithm>
#include <cmath>
#include <deque>
#include <map>
#include <set>
#include <unordered_map>
#include <utility>

#include "common/string_util.h"
#include "obs/trace.h"
#include "sql/database.h"
#include "sql/executor.h"
#include "sql/planner.h"
#include "sql/profile.h"
#include "sql/result_set.h"
#include "sql/table.h"

// ---------------------------------------------------------------------------
// Vectorized SELECT pipeline
// ---------------------------------------------------------------------------
// This file implements Executor::ExecuteSelectCoreBatch: the same stage
// sequence as ExecuteSelectCoreRow (FROM resolution → joins → WHERE →
// projection/aggregation → DISTINCT → ORDER BY → LIMIT), processed in
// kBatchCapacity-row windows over a columnar relation. Every window is
// all-or-nothing: a kernel either evaluates the whole window with
// provably identical results and no possible error/side effect, or the
// window re-runs through the scalar EvaluateExpr path. The row path is
// the semantics oracle — results, error messages, error ordering, plan
// counters, and profile operators must match byte-for-byte.

namespace sqlflow::sql {

const Value& VecNullValue() {
  static const Value kNull = Value::Null();
  return kNull;
}

int FindVecColumn(const VecRelation& rel, const std::string& qualifier,
                  const std::string& name) {
  int found = -1;
  for (size_t i = 0; i < rel.columns.size(); ++i) {
    const ScopeColumnRef& sc = rel.columns[i];
    if (!qualifier.empty() && !EqualsIgnoreCase(sc.qualifier, qualifier)) {
      continue;
    }
    if (!EqualsIgnoreCase(sc.name, name)) continue;
    if (found >= 0) return -2;  // ambiguous
    found = static_cast<int>(i);
  }
  return found;
}

Result<Value> VecRowBinding::Resolve(const std::string& qualifier,
                                     const std::string& column) const {
  int found = -1;
  for (size_t i = 0; i < rel_->columns.size(); ++i) {
    const ScopeColumnRef& sc = rel_->columns[i];
    if (!qualifier.empty() && !EqualsIgnoreCase(sc.qualifier, qualifier)) {
      continue;
    }
    if (!EqualsIgnoreCase(sc.name, column)) continue;
    if (found >= 0) {
      return Status::InvalidArgument("ambiguous column reference '" +
                                     column + "'");
    }
    found = static_cast<int>(i);
  }
  if (found < 0) {
    return Status::NotFound(
        "no column '" +
        (qualifier.empty() ? column : qualifier + "." + column) +
        "' in scope");
  }
  return rel_->AtRef(row_, static_cast<size_t>(found));
}

// ---------------------------------------------------------------------------
// Expression kernels
// ---------------------------------------------------------------------------

namespace {

using Tag = VecCol::Tag;

void BroadcastValue(const Value& v, size_t n, VecCol* out) {
  switch (v.type()) {
    case ValueType::kNull:
      out->ResetNull(n);
      return;
    case ValueType::kInteger:
      out->ResetTyped(Tag::kInt, n);
      out->ints.assign(n, v.integer());
      out->size = n;
      return;
    case ValueType::kDouble:
      out->ResetTyped(Tag::kDouble, n);
      out->dbls.assign(n, v.dbl());
      out->size = n;
      return;
    case ValueType::kBoolean:
      out->ResetTyped(Tag::kBool, n);
      out->bools.assign(n, v.boolean() ? 1 : 0);
      out->size = n;
      return;
    case ValueType::kString:
      out->ResetTyped(Tag::kString, n);
      out->strs.assign(n, &v.str());
      out->size = n;
      return;
  }
  out->ResetBail();
}

bool IsNumericTag(Tag t) { return t == Tag::kInt || t == Tag::kDouble; }

/// Total-order rank matching Value::Compare's TypeRank (no kNull: raw
/// compares only run on non-null elements).
int TagRank(Tag t) {
  switch (t) {
    case Tag::kBool:
      return 1;
    case Tag::kInt:
    case Tag::kDouble:
      return 2;
    case Tag::kString:
      return 3;
    default:
      return 0;
  }
}

double DblAt(const VecCol& c, size_t i) {
  return c.tag == Tag::kInt ? static_cast<double>(c.ints[i]) : c.dbls[i];
}

/// Value::Compare over two non-null column elements (raw total order —
/// BETWEEN and IN semantics, never an error).
int RawCompare(const VecCol& a, size_t i, const VecCol& b, size_t j) {
  int ra = TagRank(a.tag);
  int rb = TagRank(b.tag);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.tag) {
    case Tag::kBool: {
      bool x = a.bools[i] != 0;
      bool y = b.bools[j] != 0;
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case Tag::kInt:
      if (b.tag == Tag::kInt) {
        int64_t x = a.ints[i];
        int64_t y = b.ints[j];
        return x == y ? 0 : (x < y ? -1 : 1);
      }
      [[fallthrough]];
    case Tag::kDouble: {
      double x = DblAt(a, i);
      double y = DblAt(b, j);
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case Tag::kString: {
      const std::string& x = *a.strs[i];
      const std::string& y = *b.strs[j];
      return x.compare(y) == 0 ? 0 : (x < y ? -1 : 1);
    }
    default:
      return 0;
  }
}

/// Value::Compare between a non-null column element and a non-null Value.
int RawCompareValue(const VecCol& a, size_t i, const Value& v) {
  int ra = TagRank(a.tag);
  int rb = 0;
  switch (v.type()) {
    case ValueType::kBoolean:
      rb = 1;
      break;
    case ValueType::kInteger:
    case ValueType::kDouble:
      rb = 2;
      break;
    case ValueType::kString:
      rb = 3;
      break;
    default:
      rb = 0;
      break;
  }
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.tag) {
    case Tag::kBool: {
      bool x = a.bools[i] != 0;
      bool y = v.boolean();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case Tag::kInt:
      if (v.type() == ValueType::kInteger) {
        int64_t x = a.ints[i];
        int64_t y = v.integer();
        return x == y ? 0 : (x < y ? -1 : 1);
      }
      [[fallthrough]];
    case Tag::kDouble: {
      double x = DblAt(a, i);
      double y = v.type() == ValueType::kInteger
                     ? static_cast<double>(v.integer())
                     : v.dbl();
      return x == y ? 0 : (x < y ? -1 : 1);
    }
    case Tag::kString: {
      const std::string& x = *a.strs[i];
      const std::string& y = v.str();
      return x.compare(y) == 0 ? 0 : (x < y ? -1 : 1);
    }
    default:
      return 0;
  }
}

/// Kleene truth for AND/OR operands: AsBoolean coercion for bool/int/
/// double tags (never errors); strings are rejected by the caller.
/// Returns false when the element is NULL (unknown).
bool KnownBool(const VecCol& c, size_t i, bool* out) {
  if (c.IsNull(i)) return false;
  switch (c.tag) {
    case Tag::kBool:
      *out = c.bools[i] != 0;
      return true;
    case Tag::kInt:
      *out = c.ints[i] != 0;
      return true;
    case Tag::kDouble:
      *out = c.dbls[i] != 0.0;
      return true;
    default:
      return false;
  }
}

bool VecArithmetic(BinaryOp op, const VecCol& a, const VecCol& b, size_t n,
                   VecCol* out) {
  // Arithmetic() checks NULL before types: an all-NULL operand makes the
  // result all-NULL no matter what the other side holds.
  if (a.tag == Tag::kNull || b.tag == Tag::kNull) {
    out->ResetNull(n);
    return true;
  }
  // A non-numeric operand could raise "arithmetic on non-numeric values"
  // wherever both sides are non-NULL; leave those windows to the scalar
  // path rather than proving per-element safety.
  if (!IsNumericTag(a.tag) || !IsNumericTag(b.tag)) return false;
  bool both_int = a.tag == Tag::kInt && b.tag == Tag::kInt;
  bool divmod = op == BinaryOp::kDiv || op == BinaryOp::kMod;
  if (both_int) {
    out->ResetTyped(Tag::kInt, n);
    out->ints.resize(n, 0);
    out->size = n;
    for (size_t i = 0; i < n; ++i) {
      if (a.IsNull(i) || b.IsNull(i)) {
        out->nulls.SetNull(i);
        continue;
      }
      int64_t x = a.ints[i];
      int64_t y = b.ints[i];
      if (divmod && y == 0) return false;  // "division by zero" possible
      switch (op) {
        case BinaryOp::kAdd:
          out->ints[i] = x + y;
          break;
        case BinaryOp::kSub:
          out->ints[i] = x - y;
          break;
        case BinaryOp::kMul:
          out->ints[i] = x * y;
          break;
        case BinaryOp::kDiv:
          out->ints[i] = x / y;
          break;
        case BinaryOp::kMod:
          out->ints[i] = x % y;
          break;
        default:
          return false;
      }
    }
    return true;
  }
  out->ResetTyped(Tag::kDouble, n);
  out->dbls.resize(n, 0.0);
  out->size = n;
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out->nulls.SetNull(i);
      continue;
    }
    double x = DblAt(a, i);
    double y = DblAt(b, i);
    if (divmod && y == 0.0) return false;
    switch (op) {
      case BinaryOp::kAdd:
        out->dbls[i] = x + y;
        break;
      case BinaryOp::kSub:
        out->dbls[i] = x - y;
        break;
      case BinaryOp::kMul:
        out->dbls[i] = x * y;
        break;
      case BinaryOp::kDiv:
        out->dbls[i] = x / y;
        break;
      case BinaryOp::kMod:
        out->dbls[i] = std::fmod(x, y);
        break;
      default:
        return false;
    }
  }
  return true;
}

bool VecComparison(BinaryOp op, const VecCol& a, const VecCol& b, size_t n,
                   VecCol* out) {
  // Comparison() checks NULL first: an all-NULL operand ⇒ all-NULL.
  if (a.tag == Tag::kNull || b.tag == Tag::kNull) {
    out->ResetNull(n);
    return true;
  }
  // Combinations that could coerce (numeric↔string via AsDouble) or
  // raise "cannot compare X with Y" (bool vs anything else) stay scalar.
  bool comparable = (IsNumericTag(a.tag) && IsNumericTag(b.tag)) ||
                    (a.tag == Tag::kString && b.tag == Tag::kString) ||
                    (a.tag == Tag::kBool && b.tag == Tag::kBool);
  if (!comparable) return false;
  out->ResetTyped(Tag::kBool, n);
  out->bools.resize(n, 0);
  out->size = n;
  bool both_int = a.tag == Tag::kInt && b.tag == Tag::kInt;
  for (size_t i = 0; i < n; ++i) {
    if (a.IsNull(i) || b.IsNull(i)) {
      out->nulls.SetNull(i);
      continue;
    }
    int cmp;
    if (both_int) {
      int64_t x = a.ints[i];
      int64_t y = b.ints[i];
      cmp = x == y ? 0 : (x < y ? -1 : 1);
    } else if (a.tag == Tag::kString) {
      const std::string& x = *a.strs[i];
      const std::string& y = *b.strs[i];
      cmp = x.compare(y) == 0 ? 0 : (x < y ? -1 : 1);
    } else if (a.tag == Tag::kBool) {
      bool x = a.bools[i] != 0;
      bool y = b.bools[i] != 0;
      cmp = x == y ? 0 : (x < y ? -1 : 1);
    } else {
      double x = DblAt(a, i);
      double y = DblAt(b, i);
      cmp = x == y ? 0 : (x < y ? -1 : 1);
    }
    bool v = false;
    switch (op) {
      case BinaryOp::kEq:
        v = cmp == 0;
        break;
      case BinaryOp::kNotEq:
        v = cmp != 0;
        break;
      case BinaryOp::kLt:
        v = cmp < 0;
        break;
      case BinaryOp::kLtEq:
        v = cmp <= 0;
        break;
      case BinaryOp::kGt:
        v = cmp > 0;
        break;
      case BinaryOp::kGtEq:
        v = cmp >= 0;
        break;
      default:
        return false;
    }
    out->bools[i] = v ? 1 : 0;
  }
  return true;
}

}  // namespace

bool TryVecEval(const Expr& e, const VecWindow& w, VecCol* out) {
  const size_t n = w.count;
  out->ResetBail();
  switch (e.kind) {
    case ExprKind::kLiteral:
      BroadcastValue(e.literal, n, out);
      return out->tag != Tag::kBail;
    case ExprKind::kParameter: {
      // Mirrors EvaluateExpr's parameter resolution; an unbound
      // parameter (an error on the row path) bails so the scalar pass
      // raises it.
      if (w.params == nullptr) return false;
      const Value* found = nullptr;
      if (!e.param_name.empty()) {
        auto it = w.params->named.find(e.param_name);
        if (it != w.params->named.end()) found = &it->second;
      }
      if (found == nullptr && e.param_index >= 0 &&
          static_cast<size_t>(e.param_index) <
              w.params->positional.size()) {
        found = &w.params->positional[static_cast<size_t>(e.param_index)];
      }
      if (found == nullptr) return false;
      BroadcastValue(*found, n, out);
      return out->tag != Tag::kBail;
    }
    case ExprKind::kColumnRef: {
      int idx = FindVecColumn(*w.rel, e.table_qualifier, e.column_name);
      if (idx < 0) return false;  // missing/ambiguous ⇒ scalar error path
      size_t col = static_cast<size_t>(idx);
      return LoadVecCol(
          n,
          [&](size_t i) -> const Value& {
            return w.rel->AtRef(w.start + i, col);
          },
          out);
    }
    case ExprKind::kUnary: {
      VecCol child;
      if (!TryVecEval(*e.children[0], w, &child)) return false;
      switch (e.unary_op) {
        case UnaryOp::kNot: {
          // AsBoolean never errors for bool/int/double; strings can.
          if (child.tag == Tag::kNull) {
            out->ResetNull(n);
            return true;
          }
          if (child.tag == Tag::kString) return false;
          out->ResetTyped(Tag::kBool, n);
          out->bools.resize(n, 0);
          out->size = n;
          for (size_t i = 0; i < n; ++i) {
            bool b;
            if (!KnownBool(child, i, &b)) {
              out->nulls.SetNull(i);
              continue;
            }
            out->bools[i] = b ? 0 : 1;
          }
          return true;
        }
        case UnaryOp::kNegate: {
          if (child.tag == Tag::kNull) {
            out->ResetNull(n);
            return true;
          }
          if (child.tag == Tag::kInt) {
            out->ResetTyped(Tag::kInt, n);
            out->ints.resize(n, 0);
            out->size = n;
            for (size_t i = 0; i < n; ++i) {
              if (child.IsNull(i)) {
                out->nulls.SetNull(i);
                continue;
              }
              out->ints[i] = -child.ints[i];
            }
            return true;
          }
          if (child.tag == Tag::kDouble) {
            out->ResetTyped(Tag::kDouble, n);
            out->dbls.resize(n, 0.0);
            out->size = n;
            for (size_t i = 0; i < n; ++i) {
              if (child.IsNull(i)) {
                out->nulls.SetNull(i);
                continue;
              }
              out->dbls[i] = -child.dbls[i];
            }
            return true;
          }
          return false;  // bool/string negation stays scalar
        }
        case UnaryOp::kIsNull:
        case UnaryOp::kIsNotNull: {
          bool want_null = e.unary_op == UnaryOp::kIsNull;
          out->ResetTyped(Tag::kBool, n);
          out->bools.resize(n, 0);
          out->size = n;
          for (size_t i = 0; i < n; ++i) {
            out->bools[i] = (child.IsNull(i) == want_null) ? 1 : 0;
          }
          return true;
        }
      }
      return false;
    }
    case ExprKind::kBinary: {
      if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
        // Both operands evaluate eagerly here; safe because successful
        // kernels are pure and error-free, so skipping the row path's
        // short-circuit is unobservable.
        VecCol a;
        VecCol b;
        if (!TryVecEval(*e.children[0], w, &a)) return false;
        if (!TryVecEval(*e.children[1], w, &b)) return false;
        if (a.tag == Tag::kString || b.tag == Tag::kString) {
          return false;  // AsBoolean on strings can error
        }
        bool is_and = e.binary_op == BinaryOp::kAnd;
        out->ResetTyped(Tag::kBool, n);
        out->bools.resize(n, 0);
        out->size = n;
        for (size_t i = 0; i < n; ++i) {
          bool av = false;
          bool bv = false;
          bool a_known = KnownBool(a, i, &av);
          bool b_known = KnownBool(b, i, &bv);
          if (a_known && is_and && !av) {
            out->bools[i] = 0;
          } else if (a_known && !is_and && av) {
            out->bools[i] = 1;
          } else if (b_known && is_and && !bv) {
            out->bools[i] = 0;
          } else if (b_known && !is_and && bv) {
            out->bools[i] = 1;
          } else if (!a_known || !b_known) {
            out->nulls.SetNull(i);
          } else {
            out->bools[i] = is_and ? 1 : 0;
          }
        }
        return true;
      }
      VecCol a;
      VecCol b;
      if (!TryVecEval(*e.children[0], w, &a)) return false;
      if (!TryVecEval(*e.children[1], w, &b)) return false;
      switch (e.binary_op) {
        case BinaryOp::kAdd:
        case BinaryOp::kSub:
        case BinaryOp::kMul:
        case BinaryOp::kDiv:
        case BinaryOp::kMod:
          return VecArithmetic(e.binary_op, a, b, n, out);
        case BinaryOp::kEq:
        case BinaryOp::kNotEq:
        case BinaryOp::kLt:
        case BinaryOp::kLtEq:
        case BinaryOp::kGt:
        case BinaryOp::kGtEq:
          return VecComparison(e.binary_op, a, b, n, out);
        case BinaryOp::kLike: {
          // LIKE via AsString never errors, but non-string operands
          // would need materialized conversions; keep those scalar.
          if (a.tag == Tag::kNull || b.tag == Tag::kNull) {
            out->ResetNull(n);
            return true;
          }
          if (a.tag != Tag::kString || b.tag != Tag::kString) return false;
          out->ResetTyped(Tag::kBool, n);
          out->bools.resize(n, 0);
          out->size = n;
          for (size_t i = 0; i < n; ++i) {
            if (a.IsNull(i) || b.IsNull(i)) {
              out->nulls.SetNull(i);
              continue;
            }
            out->bools[i] = LikeMatch(*a.strs[i], *b.strs[i]) ? 1 : 0;
          }
          return true;
        }
        default:
          // kConcat produces owned strings the column layout cannot
          // hold; anything else is unexpected — scalar path either way.
          return false;
      }
    }
    case ExprKind::kBetween: {
      // BETWEEN uses raw Value::Compare (never errors, any types).
      VecCol v;
      VecCol lo;
      VecCol hi;
      if (!TryVecEval(*e.children[0], w, &v)) return false;
      if (!TryVecEval(*e.children[1], w, &lo)) return false;
      if (!TryVecEval(*e.children[2], w, &hi)) return false;
      out->ResetTyped(Tag::kBool, n);
      out->bools.resize(n, 0);
      out->size = n;
      bool all_int = v.tag == Tag::kInt && lo.tag == Tag::kInt &&
                     hi.tag == Tag::kInt;
      for (size_t i = 0; i < n; ++i) {
        if (v.IsNull(i) || lo.IsNull(i) || hi.IsNull(i)) {
          out->nulls.SetNull(i);
          continue;
        }
        bool in_range;
        if (all_int) {
          int64_t x = v.ints[i];
          in_range = x >= lo.ints[i] && x <= hi.ints[i];
        } else {
          in_range = RawCompare(v, i, lo, i) >= 0 &&
                     RawCompare(v, i, hi, i) <= 0;
        }
        out->bools[i] = (e.negated ? !in_range : in_range) ? 1 : 0;
      }
      return true;
    }
    case ExprKind::kInList: {
      if (e.subquery != nullptr) return false;  // runs a nested SELECT
      // Literal-only lists evaluate without errors or side effects; any
      // computed item stays scalar.
      for (size_t i = 1; i < e.children.size(); ++i) {
        if (e.children[i]->kind != ExprKind::kLiteral) return false;
      }
      VecCol probe;
      if (!TryVecEval(*e.children[0], w, &probe)) return false;
      out->ResetTyped(Tag::kBool, n);
      out->bools.resize(n, 0);
      out->size = n;
      for (size_t i = 0; i < n; ++i) {
        if (probe.IsNull(i)) {
          out->nulls.SetNull(i);
          continue;
        }
        bool matched = false;
        bool saw_null = false;
        for (size_t k = 1; k < e.children.size(); ++k) {
          const Value& item = e.children[k]->literal;
          if (item.is_null()) {
            saw_null = true;
            continue;
          }
          if (RawCompareValue(probe, i, item) == 0) {
            matched = true;
            break;
          }
        }
        if (matched) {
          out->bools[i] = e.negated ? 0 : 1;
        } else if (saw_null) {
          out->nulls.SetNull(i);
        } else {
          out->bools[i] = e.negated ? 1 : 0;
        }
      }
      return true;
    }
    default:
      // kFunctionCall (may error / NEXTVAL side effect), kCase (lazy
      // branch evaluation), kSubquery/kExists (nested execution), kStar
      // (always an error outside COUNT(*)): scalar path only.
      return false;
  }
}

// ---------------------------------------------------------------------------
// Batched aggregation
// ---------------------------------------------------------------------------

namespace {

enum class AggKind { kCount, kSum, kAvg, kMin, kMax, kOther };

AggKind AggKindOf(const std::string& fn) {
  if (fn == "COUNT") return AggKind::kCount;
  if (fn == "SUM") return AggKind::kSum;
  if (fn == "AVG") return AggKind::kAvg;
  if (fn == "MIN") return AggKind::kMin;
  if (fn == "MAX") return AggKind::kMax;
  return AggKind::kOther;
}

/// Streaming replica of ComputeAggregate's accumulator loop. `failed`
/// records the first argument-evaluation error for this (group,
/// aggregate) pair; finalization returns recorded errors in the row
/// path's group-major, aggregate-minor order.
struct AggState {
  int64_t count = 0;
  std::set<std::string> distinct_seen;
  bool have = false;
  Value acc;           // MIN/MAX accumulator
  int64_t sum_i = 0;   // integer SUM
  double sum_d = 0.0;  // double SUM
  bool all_int = true;
  bool failed = false;
  Status error;
};

void FeedValue(AggState* st, AggKind kind, bool distinct, const Value& v) {
  if (v.is_null()) return;
  if (distinct) {
    std::string key = ExecRowKey({v});
    if (!st->distinct_seen.insert(std::move(key)).second) return;
  }
  ++st->count;
  switch (kind) {
    case AggKind::kMin:
    case AggKind::kMax: {
      bool better = kind == AggKind::kMin ? v.Compare(st->acc) < 0
                                          : v.Compare(st->acc) > 0;
      if (!st->have || better) {
        st->acc = v;
        st->have = true;
      }
      break;
    }
    case AggKind::kSum:
    case AggKind::kAvg: {
      if (v.type() == ValueType::kInteger) {
        st->sum_i += v.integer();
        st->sum_d += static_cast<double>(v.integer());
      } else {
        Result<double> d = v.AsDouble();
        if (!d.ok()) {
          st->failed = true;
          st->error = d.status();
          return;
        }
        st->sum_d += *d;
        st->all_int = false;
      }
      break;
    }
    default:
      break;
  }
}

/// Integer fast path: one non-null int element, no DISTINCT.
void FeedInt(AggState* st, AggKind kind, int64_t x) {
  ++st->count;
  switch (kind) {
    case AggKind::kMin:
    case AggKind::kMax: {
      if (!st->have) {
        st->acc = Value::Integer(x);
        st->have = true;
        break;
      }
      if (st->acc.type() == ValueType::kInteger) {
        int64_t cur = st->acc.integer();
        if (kind == AggKind::kMin ? x < cur : x > cur) {
          st->acc = Value::Integer(x);
        }
      } else {
        Value v = Value::Integer(x);
        bool better = kind == AggKind::kMin ? v.Compare(st->acc) < 0
                                            : v.Compare(st->acc) > 0;
        if (better) st->acc = std::move(v);
      }
      break;
    }
    case AggKind::kSum:
    case AggKind::kAvg:
      st->sum_i += x;
      st->sum_d += static_cast<double>(x);
      break;
    default:
      break;
  }
}

/// Finalization mirror of ComputeAggregate's tail (count already
/// includes DISTINCT filtering).
Value FinalizeAgg(const AggState& st, AggKind kind) {
  if (kind == AggKind::kCount) return Value::Integer(st.count);
  if (st.count == 0) return Value::Null();
  if (kind == AggKind::kMin || kind == AggKind::kMax) return st.acc;
  if (kind == AggKind::kSum) {
    return st.all_int ? Value::Integer(st.sum_i) : Value::Double(st.sum_d);
  }
  return Value::Double(st.sum_d / static_cast<double>(st.count));  // AVG
}

struct OutputItem {
  const Expr* expr = nullptr;  // null ⇒ direct scope column passthrough
  size_t scope_index = 0;
  std::string name;
};

struct SortableRow {
  Row output;
  std::vector<Value> sort_keys;
};

bool VecIsTrue(const VecCol& col, size_t i) {
  return col.tag == Tag::kBool && !col.IsNull(i) && col.bools[i] != 0;
}

}  // namespace

// ---------------------------------------------------------------------------
// Batch SELECT core
// ---------------------------------------------------------------------------

Result<ResultSet> Executor::ExecuteSelectCoreBatch(
    const SelectStatement& sel, const Params& params,
    const StatementPlan* plan) {
  db_->NotePlanChoice(PlanChoice::kBatch);
  ExecProfile* prof = db_->exec_profile();

  // Side storage must outlive the relation (deque: stable addresses).
  std::deque<VecSide> side_store;
  VecRelation scope;
  bool first_ref = true;
  bool order_by_presorted = false;

  // --- 1. FROM scope ------------------------------------------------------
  for (size_t ref_index = 0; ref_index < sel.from.size(); ++ref_index) {
    const TableRef& ref = sel.from[ref_index];
    const std::string& qual =
        ref.alias.empty() ? ref.table_name : ref.alias;
    std::vector<ScopeColumnRef> right_cols;
    side_store.emplace_back();
    VecSide& right_side = side_store.back();
    std::vector<uint32_t> right_slots;
    if (ref.derived != nullptr) {
      SQLFLOW_ASSIGN_OR_RETURN(ResultSet derived,
                               ExecuteSelect(*ref.derived, params));
      for (const std::string& name : derived.column_names()) {
        right_cols.push_back({qual, name});
      }
      size_t width = derived.column_count();
      right_side.OwnRows(std::move(derived.mutable_rows()), width);
      right_slots.resize(right_side.rows->size());
      for (size_t i = 0; i < right_slots.size(); ++i) {
        right_slots[i] = static_cast<uint32_t>(i);
      }
      if (prof != nullptr) {
        ExecProfileOp& op = prof->Add("DERIVED", qual);
        op.rows_in = op.rows_out = right_slots.size();
        op.loops = 1;
      }
    } else if (Table* table = db_->catalog().FindTable(ref.table_name)) {
      for (const ColumnDef& col : table->schema().columns()) {
        right_cols.push_back({qual, col.name});
      }
      right_side.BorrowRows(&table->rows(),
                            table->schema().columns().size());
      std::optional<ResolvedAccess> resolved;
      std::vector<size_t> pushed_slots;
      bool pushed = false;
      if (first_ref && sel.from.size() == 1) {
        std::vector<size_t> order_cols;
        bool order_desc = false;
        bool have_order = OrderBySargColumns(sel, qual, table->schema(),
                                             &order_cols, &order_desc);
        resolved = ResolveCandidates(table, qual, sel.where.get(), plan,
                                     params,
                                     have_order ? &order_cols : nullptr,
                                     order_desc);
        if (resolved.has_value() && resolved->key_ordered) {
          order_by_presorted = true;
        }
      } else if (TryPushdownSlots(table, qual, sel, ref_index, params,
                                  &pushed_slots)) {
        pushed = true;
      } else if (first_ref) {
        db_->NotePlanChoice(PlanChoice::kScan);
      }
      if (resolved.has_value()) {
        right_slots.reserve(resolved->slots.size());
        for (size_t slot : resolved->slots) {
          right_slots.push_back(static_cast<uint32_t>(slot));
        }
      } else if (pushed) {
        right_slots.reserve(pushed_slots.size());
        for (size_t slot : pushed_slots) {
          right_slots.push_back(static_cast<uint32_t>(slot));
        }
      } else {
        right_slots.resize(table->row_count());
        for (size_t i = 0; i < right_slots.size(); ++i) {
          right_slots[i] = static_cast<uint32_t>(i);
        }
        if (prof != nullptr && !(first_ref && sel.from.size() == 1)) {
          ExecProfileOp& op =
              prof->Add("SCAN", table->schema().table_name());
          op.rows_in = op.rows_out = right_slots.size();
          op.loops = 1;
        }
      }
    } else if (const SelectStatement* view =
                   db_->catalog().FindView(ref.table_name)) {
      int* depth = db_->MutableViewDepth();
      if (++*depth > kMaxViewDepth) {
        --*depth;
        return Status::ExecutionError(
            "view expansion too deep (cyclic view definition?)");
      }
      auto view_result = ExecuteSelect(*view, params);
      --*depth;
      if (!view_result.ok()) return view_result.status();
      for (const std::string& name : view_result->column_names()) {
        right_cols.push_back({qual, name});
      }
      size_t width = view_result->column_count();
      right_side.OwnRows(std::move(view_result->mutable_rows()), width);
      right_slots.resize(right_side.rows->size());
      for (size_t i = 0; i < right_slots.size(); ++i) {
        right_slots[i] = static_cast<uint32_t>(i);
      }
      if (prof != nullptr) {
        ExecProfileOp& op = prof->Add("VIEW", ref.table_name);
        op.rows_in = op.rows_out = right_slots.size();
        op.loops = 1;
      }
    } else {
      return Status::NotFound("no table or view '" + ref.table_name +
                              "'");
    }
    db_->MutableStats()->rows_read += right_slots.size();
    if (first_ref) {
      scope.AddSide(&right_side, qual, right_cols);
      scope.slots[0] = std::move(right_slots);
      first_ref = false;
      continue;
    }

    // --- join step --------------------------------------------------------
    const size_t left_width = scope.columns.size();
    const size_t left_rows = scope.row_count();
    const size_t right_rows = right_slots.size();
    const size_t prev_sides = scope.sides.size();
    std::vector<ScopeColumnRef> combined_cols = scope.columns;
    combined_cols.insert(combined_cols.end(), right_cols.begin(),
                         right_cols.end());

    std::vector<std::pair<size_t, size_t>> key_pairs;
    bool hash_join = db_->optimizer_enabled() &&
                     ref.join_condition != nullptr &&
                     (ref.join_type == JoinType::kInner ||
                      ref.join_type == JoinType::kLeftOuter);
    if (hash_join) {
      key_pairs = ExtractEquiJoinKeys(*ref.join_condition, combined_cols,
                                      left_width);
      bool comparable = !key_pairs.empty();
      // Comparability prescan over every input value (mirrors
      // JoinKeysComparable over materialized rows).
      // Key pairs are (left combined ordinal, right-relative ordinal).
      for (const auto& [lo, ro] : key_pairs) {
        if (!comparable) break;
        unsigned lmask = 0;
        unsigned rmask = 0;
        for (size_t r = 0; r < left_rows; ++r) {
          lmask |= JoinValueClassBit(scope.AtRef(r, lo));
        }
        for (uint32_t slot : right_slots) {
          rmask |= JoinValueClassBit((*right_side.rows)[slot][ro]);
        }
        if (JoinClassesMayError(lmask, rmask)) comparable = false;
      }
      hash_join = comparable;
    }

    const int64_t join_start = prof != nullptr ? obs::NowNanos() : 0;
    const size_t join_rows_in = left_rows + right_rows;

    // Output slot vectors (previous sides + the new right side).
    std::vector<std::vector<uint32_t>> out_slots(prev_sides + 1);

    // Candidate right positions per left row (hash join), or implicit
    // full range (nested loop).
    std::vector<std::vector<size_t>> right_of_left;
    if (hash_join) {
      db_->NotePlanChoice(PlanChoice::kHashJoin);
      auto left_key = [&](size_t li, std::string* key) -> bool {
        for (const auto& [lo, ro] : key_pairs) {
          (void)ro;
          const Value& v = scope.AtRef(li, lo);
          if (v.is_null()) return false;
          AppendLookupKeyPart(v, key);
        }
        return true;
      };
      auto right_key = [&](size_t ri, std::string* key) -> bool {
        for (const auto& [lo, ro] : key_pairs) {
          (void)lo;
          const Value& v = (*right_side.rows)[right_slots[ri]][ro];
          if (v.is_null()) return false;
          AppendLookupKeyPart(v, key);
        }
        return true;
      };
      right_of_left.assign(left_rows, {});
      const bool build_left = left_rows < right_rows;
      std::unordered_map<std::string, std::vector<size_t>> buckets;
      if (build_left) {
        buckets.reserve(left_rows);
        for (size_t li = 0; li < left_rows; ++li) {
          std::string key;
          if (left_key(li, &key)) buckets[std::move(key)].push_back(li);
        }
        for (size_t ri = 0; ri < right_rows; ++ri) {
          std::string key;
          if (!right_key(ri, &key)) continue;
          auto bucket = buckets.find(key);
          if (bucket == buckets.end()) continue;
          for (size_t li : bucket->second) {
            right_of_left[li].push_back(ri);
          }
        }
      } else {
        buckets.reserve(right_rows);
        for (size_t ri = 0; ri < right_rows; ++ri) {
          std::string key;
          if (right_key(ri, &key)) buckets[std::move(key)].push_back(ri);
        }
        for (size_t li = 0; li < left_rows; ++li) {
          std::string key;
          if (!left_key(li, &key)) continue;
          auto bucket = buckets.find(key);
          if (bucket != buckets.end()) right_of_left[li] = bucket->second;
        }
      }
    } else if (ref.join_condition != nullptr) {
      db_->NotePlanChoice(PlanChoice::kScan);
    }

    // Streaming pair evaluation: candidate (li, ri) pairs flow through
    // kBatchCapacity windows in the row path's emission order; LEFT
    // OUTER padding is inserted when a left row closes unmatched.
    VecRelation probe;
    probe.columns = combined_cols;
    probe.sides = scope.sides;
    probe.sides.push_back(&right_side);
    probe.slots.assign(prev_sides + 1, {});
    probe.col_side = scope.col_side;
    probe.col_offset = scope.col_offset;
    for (size_t i = 0; i < right_cols.size(); ++i) {
      probe.col_side.push_back(static_cast<uint32_t>(prev_sides));
      probe.col_offset.push_back(static_cast<uint32_t>(i));
    }

    VecRowBinding probe_binding(&probe);
    EvalContext probe_ctx;
    probe_ctx.binding = &probe_binding;
    probe_ctx.params = &params;
    probe_ctx.database = db_;

    std::vector<size_t> pair_li;
    std::vector<size_t> pair_ri;
    pair_li.reserve(kBatchCapacity);
    pair_ri.reserve(kBatchCapacity);
    std::vector<uint8_t> matched(ref.join_type == JoinType::kLeftOuter
                                     ? left_rows
                                     : 0,
                                 0);
    size_t open_li = 0;  // left rows < open_li are fully emitted
    uint64_t join_windows = 0;
    VecCol cond_col;

    auto emit_pair = [&](size_t li, size_t ri) {
      for (size_t s = 0; s < prev_sides; ++s) {
        out_slots[s].push_back(scope.slots[s][li]);
      }
      out_slots[prev_sides].push_back(right_slots[ri]);
    };
    auto close_through = [&](size_t next_li) {
      // Left rows in [open_li, next_li) have no pairs left; pad the
      // unmatched ones (LEFT OUTER) in order.
      if (ref.join_type != JoinType::kLeftOuter) {
        open_li = next_li;
        return;
      }
      for (; open_li < next_li; ++open_li) {
        if (matched[open_li]) continue;
        for (size_t s = 0; s < prev_sides; ++s) {
          out_slots[s].push_back(scope.slots[s][open_li]);
        }
        out_slots[prev_sides].push_back(kNullSlot);
      }
    };
    auto flush_pairs = [&]() -> Status {
      const size_t count = pair_li.size();
      if (count == 0) return Status::OK();
      ++join_windows;
      std::vector<uint8_t> keep(count, 1);
      if (ref.join_condition != nullptr) {
        for (size_t s = 0; s < prev_sides; ++s) {
          probe.slots[s].clear();
          probe.slots[s].reserve(count);
        }
        probe.slots[prev_sides].clear();
        probe.slots[prev_sides].reserve(count);
        for (size_t p = 0; p < count; ++p) {
          for (size_t s = 0; s < prev_sides; ++s) {
            probe.slots[s].push_back(scope.slots[s][pair_li[p]]);
          }
          probe.slots[prev_sides].push_back(right_slots[pair_ri[p]]);
        }
        VecWindow w{&probe, 0, count, &params};
        if (TryVecEval(*ref.join_condition, w, &cond_col)) {
          for (size_t p = 0; p < count; ++p) {
            keep[p] = VecIsTrue(cond_col, p) ? 1 : 0;
          }
        } else {
          for (size_t p = 0; p < count; ++p) {
            probe_binding.set_row(p);
            SQLFLOW_ASSIGN_OR_RETURN(
                Value cond, EvaluateExpr(*ref.join_condition, probe_ctx));
            keep[p] = IsTrue(cond) ? 1 : 0;
          }
        }
      }
      for (size_t p = 0; p < count; ++p) {
        size_t li = pair_li[p];
        close_through(li);
        if (!keep[p]) continue;
        if (!matched.empty()) matched[li] = 1;
        emit_pair(li, pair_ri[p]);
      }
      pair_li.clear();
      pair_ri.clear();
      return Status::OK();
    };
    auto push_pair = [&](size_t li, size_t ri) -> Status {
      pair_li.push_back(li);
      pair_ri.push_back(ri);
      if (pair_li.size() >= kBatchCapacity) return flush_pairs();
      return Status::OK();
    };

    if (hash_join) {
      for (size_t li = 0; li < left_rows; ++li) {
        for (size_t ri : right_of_left[li]) {
          Status s = push_pair(li, ri);
          if (!s.ok()) return s;
        }
      }
    } else {
      for (size_t li = 0; li < left_rows; ++li) {
        for (size_t ri = 0; ri < right_rows; ++ri) {
          Status s = push_pair(li, ri);
          if (!s.ok()) return s;
        }
      }
    }
    {
      Status s = flush_pairs();
      if (!s.ok()) return s;
    }
    close_through(left_rows);

    if (prof != nullptr) {
      std::string op_name = hash_join ? "HASH JOIN" : "NESTED LOOP";
      if (ref.join_type == JoinType::kLeftOuter) op_name += " LEFT OUTER";
      ExecProfileOp& op = prof->Add(
          std::move(op_name), ref.join_condition != nullptr
                                  ? ref.join_condition->ToString()
                                  : "cross");
      op.rows_in = join_rows_in;
      op.rows_out = out_slots[0].size();
      op.loops = 1;
      op.batches = join_windows;
      op.elapsed_ns = obs::NowNanos() - join_start;
    }

    scope.columns = std::move(combined_cols);
    scope.sides.push_back(&right_side);
    scope.col_side.clear();
    scope.col_offset.clear();
    scope.col_side = probe.col_side;
    scope.col_offset = probe.col_offset;
    scope.slots = std::move(out_slots);
  }

  const size_t scope_rows = scope.row_count();
  VecRowBinding scalar_binding(&scope);
  EvalContext scalar_ctx;
  scalar_ctx.binding = &scalar_binding;
  scalar_ctx.params = &params;
  scalar_ctx.database = db_;

  // --- 2. WHERE -----------------------------------------------------------
  if (sel.where != nullptr) {
    const int64_t filter_start = prof != nullptr ? obs::NowNanos() : 0;
    const size_t filter_rows_in = scope_rows;
    std::vector<std::vector<uint32_t>> kept(scope.sides.size());
    uint64_t filter_windows = 0;
    VecCol cond_col;
    Batch window;
    std::vector<uint8_t> keep;
    for (size_t start = 0; start < scope_rows; start += kBatchCapacity) {
      const size_t count = std::min(kBatchCapacity, scope_rows - start);
      ++filter_windows;
      keep.assign(count, 0);
      VecWindow w{&scope, start, count, &params};
      if (TryVecEval(*sel.where, w, &cond_col)) {
        for (size_t i = 0; i < count; ++i) {
          keep[i] = VecIsTrue(cond_col, i) ? 1 : 0;
        }
      } else {
        for (size_t i = 0; i < count; ++i) {
          scalar_binding.set_row(start + i);
          SQLFLOW_ASSIGN_OR_RETURN(Value cond,
                                   EvaluateExpr(*sel.where, scalar_ctx));
          keep[i] = IsTrue(cond) ? 1 : 0;
        }
      }
      window.ResetIdentity(count);
      CompactSelection(&window, keep);
      for (uint32_t pos : window.selection) {
        const size_t r = start + pos;
        for (size_t s = 0; s < scope.sides.size(); ++s) {
          kept[s].push_back(scope.slots[s][r]);
        }
      }
    }
    scope.slots = std::move(kept);
    if (prof != nullptr) {
      ExecProfileOp& op = prof->Add("FILTER", sel.where->ToString());
      op.rows_in = filter_rows_in;
      op.rows_out = scope.row_count();
      op.loops = 1;
      op.batches = filter_windows;
      op.elapsed_ns = obs::NowNanos() - filter_start;
    }
  }
  const size_t filtered_rows = scope.row_count();

  // --- 3. Expand stars & name output columns ------------------------------
  std::vector<OutputItem> outputs;
  for (const SelectItem& item : sel.items) {
    if (item.star) {
      for (size_t i = 0; i < scope.columns.size(); ++i) {
        if (!item.star_qualifier.empty() &&
            !EqualsIgnoreCase(scope.columns[i].qualifier,
                              item.star_qualifier)) {
          continue;
        }
        OutputItem out;
        out.scope_index = i;
        out.name = scope.columns[i].name;
        outputs.push_back(std::move(out));
      }
      continue;
    }
    OutputItem out;
    out.expr = item.expr.get();
    out.name = !item.alias.empty()
                   ? item.alias
                   : DeriveOutputColumnName(*item.expr, outputs.size());
    outputs.push_back(std::move(out));
  }

  // --- 4. Grouped vs plain projection -------------------------------------
  bool has_aggregates = false;
  for (const OutputItem& out : outputs) {
    if (out.expr != nullptr && ContainsAggregate(*out.expr)) {
      has_aggregates = true;
    }
  }
  if (sel.having != nullptr && ContainsAggregate(*sel.having)) {
    has_aggregates = true;
  }
  bool grouped = !sel.group_by.empty() || has_aggregates;

  std::vector<std::string> out_names;
  out_names.reserve(outputs.size());
  for (const OutputItem& out : outputs) out_names.push_back(out.name);
  ResultSet result(out_names);

  std::vector<SortableRow> produced;

  std::vector<int> order_output_index(sel.order_by.size(), -1);
  for (size_t i = 0; i < sel.order_by.size(); ++i) {
    const Expr& e = *sel.order_by[i].expr;
    if (e.kind == ExprKind::kLiteral &&
        e.literal.type() == ValueType::kInteger) {
      int64_t ordinal = e.literal.integer();
      if (ordinal < 1 || ordinal > static_cast<int64_t>(outputs.size())) {
        return Status::InvalidArgument("ORDER BY ordinal out of range");
      }
      order_output_index[i] = static_cast<int>(ordinal - 1);
      continue;
    }
    if (e.kind == ExprKind::kColumnRef && e.table_qualifier.empty()) {
      for (size_t j = 0; j < outputs.size(); ++j) {
        if (EqualsIgnoreCase(outputs[j].name, e.column_name)) {
          order_output_index[i] = static_cast<int>(j);
          break;
        }
      }
    }
  }

  const int64_t agg_start =
      (prof != nullptr && grouped) ? obs::NowNanos() : 0;
  uint64_t agg_windows = 0;
  if (grouped) {
    std::vector<const Expr*> agg_nodes;
    for (const OutputItem& out : outputs) {
      if (out.expr != nullptr) CollectAggregateNodes(*out.expr, &agg_nodes);
    }
    if (sel.having != nullptr) {
      CollectAggregateNodes(*sel.having, &agg_nodes);
    }
    for (const OrderByItem& ob : sel.order_by) {
      CollectAggregateNodes(*ob.expr, &agg_nodes);
    }
    const size_t num_aggs = agg_nodes.size();

    // 4a. Partition rows into groups (one pass — the row path partitions
    // all rows before computing any aggregate).
    std::vector<uint32_t> group_of_row(filtered_rows, 0);
    std::vector<size_t> group_rep;   // first row of each group
    std::vector<int64_t> group_size;
    size_t num_groups = 0;
    if (sel.group_by.empty()) {
      num_groups = 1;
      group_rep.push_back(filtered_rows > 0 ? 0 : SIZE_MAX);
      group_size.push_back(static_cast<int64_t>(filtered_rows));
    } else {
      std::map<std::string, uint32_t> group_index;
      const size_t G = sel.group_by.size();
      std::vector<VecCol> key_cols(G);
      std::vector<uint8_t> key_vec(G, 0);
      Row key_values;
      for (size_t start = 0; start < filtered_rows;
           start += kBatchCapacity) {
        const size_t count = std::min(kBatchCapacity, filtered_rows - start);
        VecWindow w{&scope, start, count, &params};
        for (size_t j = 0; j < G; ++j) {
          key_vec[j] = TryVecEval(*sel.group_by[j], w, &key_cols[j]) ? 1 : 0;
        }
        for (size_t i = 0; i < count; ++i) {
          const size_t r = start + i;
          key_values.clear();
          for (size_t j = 0; j < G; ++j) {
            if (key_vec[j]) {
              key_values.push_back(key_cols[j].At(i));
            } else {
              scalar_binding.set_row(r);
              SQLFLOW_ASSIGN_OR_RETURN(
                  Value v, EvaluateExpr(*sel.group_by[j], scalar_ctx));
              key_values.push_back(std::move(v));
            }
          }
          std::string key = ExecRowKey(key_values);
          auto [it, inserted] = group_index.try_emplace(
              std::move(key), static_cast<uint32_t>(num_groups));
          if (inserted) {
            ++num_groups;
            group_rep.push_back(r);
            group_size.push_back(0);
          }
          group_of_row[r] = it->second;
          ++group_size[it->second];
        }
      }
    }

    // 4b. Streaming accumulation, kBatchCapacity rows at a time.
    std::vector<AggKind> agg_kinds(num_aggs);
    std::vector<uint8_t> agg_skip(num_aggs, 0);  // COUNT(*) / argless
    for (size_t a = 0; a < num_aggs; ++a) {
      const Expr& agg = *agg_nodes[a];
      agg_kinds[a] = AggKindOf(agg.function_name);
      bool star = !agg.children.empty() &&
                  agg.children[0]->kind == ExprKind::kStar;
      agg_skip[a] =
          (agg.function_name == "COUNT" && star) || agg.children.empty();
    }
    std::vector<AggState> states(num_groups * num_aggs);
    bool any_accum = false;
    for (size_t a = 0; a < num_aggs; ++a) {
      if (!agg_skip[a]) any_accum = true;
    }
    if (any_accum && num_groups > 0) {
      VecCol arg_col;
      for (size_t start = 0; start < filtered_rows;
           start += kBatchCapacity) {
        const size_t count = std::min(kBatchCapacity, filtered_rows - start);
        ++agg_windows;
        for (size_t a = 0; a < num_aggs; ++a) {
          if (agg_skip[a]) continue;
          const Expr& agg = *agg_nodes[a];
          const AggKind kind = agg_kinds[a];
          const bool distinct = agg.distinct_arg;
          VecWindow w{&scope, start, count, &params};
          if (TryVecEval(*agg.children[0], w, &arg_col)) {
            if (arg_col.tag == Tag::kInt && !distinct) {
              for (size_t i = 0; i < count; ++i) {
                if (arg_col.IsNull(i)) continue;
                AggState& st =
                    states[group_of_row[start + i] * num_aggs + a];
                if (st.failed) continue;
                FeedInt(&st, kind, arg_col.ints[i]);
              }
            } else {
              for (size_t i = 0; i < count; ++i) {
                AggState& st =
                    states[group_of_row[start + i] * num_aggs + a];
                if (st.failed) continue;
                FeedValue(&st, kind, distinct, arg_col.At(i));
              }
            }
          } else {
            for (size_t i = 0; i < count; ++i) {
              const size_t r = start + i;
              AggState& st = states[group_of_row[r] * num_aggs + a];
              if (st.failed) continue;
              scalar_binding.set_row(r);
              Result<Value> v = EvaluateExpr(*agg.children[0], scalar_ctx);
              if (!v.ok()) {
                st.failed = true;
                st.error = v.status();
                continue;
              }
              FeedValue(&st, kind, distinct, *v);
            }
          }
        }
      }
    }

    // 4c. Finalize groups in first-seen order, interleaving aggregate
    // errors, HAVING, and output evaluation exactly like the row path's
    // per-group loop.
    for (size_t g = 0; g < num_groups; ++g) {
      std::map<const Expr*, Value> agg_values;
      for (size_t a = 0; a < num_aggs; ++a) {
        const Expr& agg = *agg_nodes[a];
        bool star = !agg.children.empty() &&
                    agg.children[0]->kind == ExprKind::kStar;
        if (agg.function_name == "COUNT" && star) {
          agg_values[&agg] = Value::Integer(group_size[g]);
          continue;
        }
        if (agg.children.empty()) {
          return Status::InvalidArgument(agg.function_name +
                                         " requires an argument");
        }
        AggState& st = states[g * num_aggs + a];
        if (st.failed) return st.error;
        if (agg_kinds[a] == AggKind::kOther) {
          return Status::Internal("bad aggregate " + agg.function_name);
        }
        agg_values[&agg] = FinalizeAgg(st, agg_kinds[a]);
      }

      const bool empty_group = group_size[g] == 0;
      VecRowBinding rep_binding(&scope);
      if (!empty_group) rep_binding.set_row(group_rep[g]);
      EvalContext ctx;
      ctx.binding = empty_group ? nullptr : &rep_binding;
      ctx.params = &params;
      ctx.database = db_;
      ctx.node_override =
          [&agg_values](const Expr& e) -> std::optional<Value> {
        auto it = agg_values.find(&e);
        if (it == agg_values.end()) return std::nullopt;
        return it->second;
      };

      if (sel.having != nullptr) {
        SQLFLOW_ASSIGN_OR_RETURN(Value cond,
                                 EvaluateExpr(*sel.having, ctx));
        if (!IsTrue(cond)) continue;
      }

      SortableRow out_row;
      for (const OutputItem& out : outputs) {
        if (out.expr == nullptr) {
          if (empty_group) {
            return Status::ExecutionError(
                "cannot select columns from an empty group");
          }
          out_row.output.push_back(
              scope.AtRef(group_rep[g], out.scope_index));
        } else {
          SQLFLOW_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*out.expr, ctx));
          out_row.output.push_back(std::move(v));
        }
      }
      for (size_t i = 0; i < sel.order_by.size(); ++i) {
        if (order_output_index[i] >= 0) {
          out_row.sort_keys.push_back(
              out_row.output[static_cast<size_t>(order_output_index[i])]);
        } else {
          SQLFLOW_ASSIGN_OR_RETURN(
              Value v, EvaluateExpr(*sel.order_by[i].expr, ctx));
          out_row.sort_keys.push_back(std::move(v));
        }
      }
      produced.push_back(std::move(out_row));
    }
  } else {
    // Plain projection: per-window kernels per output column, scalar
    // fallback per bailed column in the row path's row-major order
    // (vectorized columns are pure, so precomputing them cannot reorder
    // observable effects).
    const size_t O = outputs.size();
    const size_t K = sel.order_by.size();
    std::vector<VecCol> out_cols(O);
    std::vector<uint8_t> out_vec(O, 0);
    std::vector<VecCol> key_cols(K);
    std::vector<uint8_t> key_vec(K, 0);
    produced.reserve(filtered_rows);
    for (size_t start = 0; start < filtered_rows; start += kBatchCapacity) {
      const size_t count = std::min(kBatchCapacity, filtered_rows - start);
      VecWindow w{&scope, start, count, &params};
      for (size_t o = 0; o < O; ++o) {
        if (outputs[o].expr == nullptr) continue;
        out_vec[o] = TryVecEval(*outputs[o].expr, w, &out_cols[o]) ? 1 : 0;
      }
      for (size_t k = 0; k < K; ++k) {
        if (order_output_index[k] >= 0) continue;
        key_vec[k] =
            TryVecEval(*sel.order_by[k].expr, w, &key_cols[k]) ? 1 : 0;
      }
      for (size_t i = 0; i < count; ++i) {
        const size_t r = start + i;
        SortableRow out_row;
        out_row.output.reserve(O);
        for (size_t o = 0; o < O; ++o) {
          const OutputItem& out = outputs[o];
          if (out.expr == nullptr) {
            out_row.output.push_back(scope.AtRef(r, out.scope_index));
          } else if (out_vec[o]) {
            out_row.output.push_back(out_cols[o].At(i));
          } else {
            scalar_binding.set_row(r);
            SQLFLOW_ASSIGN_OR_RETURN(Value v,
                                     EvaluateExpr(*out.expr, scalar_ctx));
            out_row.output.push_back(std::move(v));
          }
        }
        for (size_t k = 0; k < K; ++k) {
          if (order_output_index[k] >= 0) {
            out_row.sort_keys.push_back(
                out_row.output[static_cast<size_t>(order_output_index[k])]);
          } else if (key_vec[k]) {
            out_row.sort_keys.push_back(key_cols[k].At(i));
          } else {
            scalar_binding.set_row(r);
            SQLFLOW_ASSIGN_OR_RETURN(
                Value v, EvaluateExpr(*sel.order_by[k].expr, scalar_ctx));
            out_row.sort_keys.push_back(std::move(v));
          }
        }
        produced.push_back(std::move(out_row));
      }
    }
  }
  if (prof != nullptr && grouped) {
    std::string detail;
    if (sel.group_by.empty()) {
      detail = "implicit group";
    } else {
      for (size_t i = 0; i < sel.group_by.size(); ++i) {
        if (i > 0) detail += ", ";
        detail += sel.group_by[i]->ToString();
      }
      detail = "GROUP BY " + detail;
    }
    ExecProfileOp& op = prof->Add("AGGREGATE", std::move(detail));
    op.rows_in = filtered_rows;
    op.rows_out = produced.size();
    op.loops = 1;
    op.batches = agg_windows;
    op.elapsed_ns = obs::NowNanos() - agg_start;
  }

  // --- 5. DISTINCT --------------------------------------------------------
  if (sel.distinct) {
    const int64_t distinct_start = prof != nullptr ? obs::NowNanos() : 0;
    const size_t distinct_rows_in = produced.size();
    std::set<std::string> seen;
    std::vector<SortableRow> unique;
    for (SortableRow& row : produced) {
      if (seen.insert(ExecRowKey(row.output)).second) {
        unique.push_back(std::move(row));
      }
    }
    produced = std::move(unique);
    if (prof != nullptr) {
      ExecProfileOp& op = prof->Add("DISTINCT", "");
      op.rows_in = distinct_rows_in;
      op.rows_out = produced.size();
      op.loops = 1;
      op.elapsed_ns = obs::NowNanos() - distinct_start;
    }
  }

  // --- 6. ORDER BY --------------------------------------------------------
  if (!sel.order_by.empty() && !order_by_presorted) {
    const int64_t sort_start = prof != nullptr ? obs::NowNanos() : 0;
    std::stable_sort(
        produced.begin(), produced.end(),
        [&sel](const SortableRow& a, const SortableRow& b) {
          for (size_t i = 0; i < sel.order_by.size(); ++i) {
            int cmp = a.sort_keys[i].Compare(b.sort_keys[i]);
            if (cmp != 0) {
              return sel.order_by[i].descending ? cmp > 0 : cmp < 0;
            }
          }
          return false;
        });
    if (prof != nullptr) {
      ExecProfileOp& op = prof->Add("SORT", "");
      op.rows_in = op.rows_out = produced.size();
      op.loops = 1;
      op.elapsed_ns = obs::NowNanos() - sort_start;
    }
  } else if (!sel.order_by.empty() && prof != nullptr) {
    ExecProfileOp& op = prof->Add("SORT", "elided (index order)");
    op.rows_in = op.rows_out = produced.size();
    op.loops = 1;
  }

  // --- 7. OFFSET / LIMIT --------------------------------------------------
  size_t begin = 0;
  size_t end = produced.size();
  if (sel.offset.has_value()) {
    begin = std::min<size_t>(static_cast<size_t>(*sel.offset), end);
  }
  if (sel.limit.has_value()) {
    end = std::min<size_t>(begin + static_cast<size_t>(*sel.limit), end);
  }
  if (prof != nullptr &&
      (sel.offset.has_value() || sel.limit.has_value())) {
    std::string detail;
    if (sel.offset.has_value()) {
      detail += "OFFSET " + std::to_string(*sel.offset);
    }
    if (sel.limit.has_value()) {
      if (!detail.empty()) detail += " ";
      detail += "LIMIT " + std::to_string(*sel.limit);
    }
    ExecProfileOp& op = prof->Add("LIMIT", std::move(detail));
    op.rows_in = produced.size();
    op.rows_out = end - begin;
    op.loops = 1;
  }
  for (size_t i = begin; i < end; ++i) {
    result.AddRow(std::move(produced[i].output));
  }
  db_->MutableStats()->bytes_materialized += result.ApproxByteSize();
  return result;
}

}  // namespace sqlflow::sql
