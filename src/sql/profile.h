#ifndef SQLFLOW_SQL_PROFILE_H_
#define SQLFLOW_SQL_PROFILE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace sqlflow::sql {

/// One executed plan operator, as reported by EXPLAIN ANALYZE. `loops`
/// counts how many times the operator ran (e.g. an index probe per
/// outer row); rows_in/rows_out are totals across all loops.
struct ExecProfileOp {
  std::string op;      // "SCAN", "INDEX LOOKUP", "HASH JOIN", ...
  std::string detail;  // table/index/predicate description
  int depth = 0;       // rendering indent (join inputs nest one deeper)
  uint64_t rows_in = 0;
  uint64_t rows_out = 0;
  uint64_t loops = 0;
  /// Windows processed by the batch pipeline (0 on the row path — the
  /// ANALYZE column renders it only when the batch executor ran).
  uint64_t batches = 0;
  int64_t elapsed_ns = 0;
};

/// Per-statement operator trace filled in by the executor while a
/// profile is installed on the database (EXPLAIN ANALYZE only — plain
/// execution never pays for this).
struct ExecProfile {
  std::vector<ExecProfileOp> ops;

  ExecProfileOp& Add(std::string op, std::string detail, int depth = 0) {
    ops.emplace_back();
    ExecProfileOp& slot = ops.back();
    slot.op = std::move(op);
    slot.detail = std::move(detail);
    slot.depth = depth;
    return slot;
  }
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_PROFILE_H_
