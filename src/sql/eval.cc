#include "sql/eval.h"

#include <cmath>

#include "common/string_util.h"
#include "sql/database.h"

namespace sqlflow::sql {

namespace {

bool IsNumeric(const Value& v) {
  return v.type() == ValueType::kInteger || v.type() == ValueType::kDouble;
}

Result<Value> Arithmetic(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  if (!IsNumeric(a) || !IsNumeric(b)) {
    return Status::TypeError("arithmetic on non-numeric values");
  }
  bool both_int = a.type() == ValueType::kInteger &&
                  b.type() == ValueType::kInteger;
  if (both_int) {
    int64_t x = a.integer();
    int64_t y = b.integer();
    switch (op) {
      case BinaryOp::kAdd:
        return Value::Integer(x + y);
      case BinaryOp::kSub:
        return Value::Integer(x - y);
      case BinaryOp::kMul:
        return Value::Integer(x * y);
      case BinaryOp::kDiv:
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Integer(x / y);
      case BinaryOp::kMod:
        if (y == 0) return Status::ExecutionError("division by zero");
        return Value::Integer(x % y);
      default:
        break;
    }
  }
  SQLFLOW_ASSIGN_OR_RETURN(double x, a.AsDouble());
  SQLFLOW_ASSIGN_OR_RETURN(double y, b.AsDouble());
  switch (op) {
    case BinaryOp::kAdd:
      return Value::Double(x + y);
    case BinaryOp::kSub:
      return Value::Double(x - y);
    case BinaryOp::kMul:
      return Value::Double(x * y);
    case BinaryOp::kDiv:
      if (y == 0.0) return Status::ExecutionError("division by zero");
      return Value::Double(x / y);
    case BinaryOp::kMod:
      if (y == 0.0) return Status::ExecutionError("division by zero");
      return Value::Double(std::fmod(x, y));
    default:
      break;
  }
  return Status::Internal("bad arithmetic operator");
}

// SQL comparison: NULL operand ⇒ NULL result. A string compared with a
// number is implicitly cast to the numeric side (host variables arrive
// as strings from XML-typed process spaces; commercial engines coerce
// the same way).
Result<Value> Comparison(BinaryOp op, const Value& a, const Value& b) {
  if (a.is_null() || b.is_null()) return Value::Null();
  Value lhs = a;
  Value rhs = b;
  if (IsNumeric(lhs) && rhs.type() == ValueType::kString) {
    SQLFLOW_ASSIGN_OR_RETURN(double v, rhs.AsDouble());
    rhs = Value::Double(v);
  } else if (IsNumeric(rhs) && lhs.type() == ValueType::kString) {
    SQLFLOW_ASSIGN_OR_RETURN(double v, lhs.AsDouble());
    lhs = Value::Double(v);
  }
  bool comparable = (IsNumeric(lhs) && IsNumeric(rhs)) ||
                    lhs.type() == rhs.type();
  if (!comparable) {
    return Status::TypeError(std::string("cannot compare ") +
                             ValueTypeName(a.type()) + " with " +
                             ValueTypeName(b.type()));
  }
  int cmp = lhs.Compare(rhs);
  bool out = false;
  switch (op) {
    case BinaryOp::kEq:
      out = cmp == 0;
      break;
    case BinaryOp::kNotEq:
      out = cmp != 0;
      break;
    case BinaryOp::kLt:
      out = cmp < 0;
      break;
    case BinaryOp::kLtEq:
      out = cmp <= 0;
      break;
    case BinaryOp::kGt:
      out = cmp > 0;
      break;
    case BinaryOp::kGtEq:
      out = cmp >= 0;
      break;
    default:
      return Status::Internal("bad comparison operator");
  }
  return Value::Boolean(out);
}

Result<Value> EvalFunction(const Expr& e, const EvalContext& ctx);

}  // namespace

bool IsTrue(const Value& v) {
  return v.type() == ValueType::kBoolean && v.boolean();
}

bool LikeMatch(const std::string& text, const std::string& pattern) {
  // Iterative two-pointer wildcard match; '%' = any run, '_' = one char.
  size_t t = 0;
  size_t p = 0;
  size_t star_p = std::string::npos;
  size_t star_t = 0;
  while (t < text.size()) {
    if (p < pattern.size() &&
        (pattern[p] == '_' || pattern[p] == text[t])) {
      ++t;
      ++p;
    } else if (p < pattern.size() && pattern[p] == '%') {
      star_p = p++;
      star_t = t;
    } else if (star_p != std::string::npos) {
      p = star_p + 1;
      t = ++star_t;
    } else {
      return false;
    }
  }
  while (p < pattern.size() && pattern[p] == '%') ++p;
  return p == pattern.size();
}

namespace {

Result<Value> EvalBinary(const Expr& e, const EvalContext& ctx) {
  // AND/OR need Kleene short-circuit handling over possibly-NULL operands.
  if (e.binary_op == BinaryOp::kAnd || e.binary_op == BinaryOp::kOr) {
    SQLFLOW_ASSIGN_OR_RETURN(Value a, EvaluateExpr(*e.children[0], ctx));
    bool is_and = e.binary_op == BinaryOp::kAnd;
    if (!a.is_null()) {
      SQLFLOW_ASSIGN_OR_RETURN(bool av, a.AsBoolean());
      if (is_and && !av) return Value::Boolean(false);
      if (!is_and && av) return Value::Boolean(true);
    }
    SQLFLOW_ASSIGN_OR_RETURN(Value b, EvaluateExpr(*e.children[1], ctx));
    if (!b.is_null()) {
      SQLFLOW_ASSIGN_OR_RETURN(bool bv, b.AsBoolean());
      if (is_and && !bv) return Value::Boolean(false);
      if (!is_and && bv) return Value::Boolean(true);
    }
    if (a.is_null() || b.is_null()) return Value::Null();
    // Both known and not short-circuited: AND ⇒ true, OR ⇒ false.
    return Value::Boolean(is_and);
  }

  SQLFLOW_ASSIGN_OR_RETURN(Value a, EvaluateExpr(*e.children[0], ctx));
  SQLFLOW_ASSIGN_OR_RETURN(Value b, EvaluateExpr(*e.children[1], ctx));
  switch (e.binary_op) {
    case BinaryOp::kAdd:
    case BinaryOp::kSub:
    case BinaryOp::kMul:
    case BinaryOp::kDiv:
    case BinaryOp::kMod:
      return Arithmetic(e.binary_op, a, b);
    case BinaryOp::kEq:
    case BinaryOp::kNotEq:
    case BinaryOp::kLt:
    case BinaryOp::kLtEq:
    case BinaryOp::kGt:
    case BinaryOp::kGtEq:
      return Comparison(e.binary_op, a, b);
    case BinaryOp::kLike: {
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::Boolean(LikeMatch(a.AsString(), b.AsString()));
    }
    case BinaryOp::kConcat: {
      if (a.is_null() || b.is_null()) return Value::Null();
      return Value::String(a.AsString() + b.AsString());
    }
    default:
      return Status::Internal("bad binary operator");
  }
}

Result<Value> EvalFunction(const Expr& e, const EvalContext& ctx) {
  const std::string& name = e.function_name;
  if (IsAggregateFunctionName(name)) {
    return Status::ExecutionError(
        "aggregate function " + name +
        " not allowed in this context (no GROUP BY scope)");
  }
  auto arg = [&](size_t i) -> Result<Value> {
    if (i >= e.children.size()) {
      return Status::InvalidArgument("missing argument " +
                                     std::to_string(i + 1) + " to " + name);
    }
    return EvaluateExpr(*e.children[i], ctx);
  };

  if (name == "COALESCE") {
    for (const ExprPtr& child : e.children) {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*child, ctx));
      if (!v.is_null()) return v;
    }
    return Value::Null();
  }
  if (name == "UPPER") {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, arg(0));
    if (v.is_null()) return v;
    return Value::String(ToUpperAscii(v.AsString()));
  }
  if (name == "LOWER") {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, arg(0));
    if (v.is_null()) return v;
    return Value::String(ToLowerAscii(v.AsString()));
  }
  if (name == "LENGTH") {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, arg(0));
    if (v.is_null()) return v;
    return Value::Integer(static_cast<int64_t>(v.AsString().size()));
  }
  if (name == "ABS") {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, arg(0));
    if (v.is_null()) return v;
    if (v.type() == ValueType::kInteger) {
      return Value::Integer(v.integer() < 0 ? -v.integer() : v.integer());
    }
    SQLFLOW_ASSIGN_OR_RETURN(double d, v.AsDouble());
    return Value::Double(std::fabs(d));
  }
  if (name == "ROUND") {
    SQLFLOW_ASSIGN_OR_RETURN(Value v, arg(0));
    if (v.is_null()) return v;
    SQLFLOW_ASSIGN_OR_RETURN(double d, v.AsDouble());
    int64_t digits = 0;
    if (e.children.size() > 1) {
      SQLFLOW_ASSIGN_OR_RETURN(Value dv, arg(1));
      SQLFLOW_ASSIGN_OR_RETURN(digits, dv.AsInteger());
    }
    double scale = std::pow(10.0, static_cast<double>(digits));
    return Value::Double(std::round(d * scale) / scale);
  }
  if (name == "SUBSTR" || name == "SUBSTRING") {
    SQLFLOW_ASSIGN_OR_RETURN(Value sv, arg(0));
    if (sv.is_null()) return sv;
    std::string s = sv.AsString();
    SQLFLOW_ASSIGN_OR_RETURN(Value startv, arg(1));
    SQLFLOW_ASSIGN_OR_RETURN(int64_t start, startv.AsInteger());
    int64_t len = static_cast<int64_t>(s.size());
    if (e.children.size() > 2) {
      SQLFLOW_ASSIGN_OR_RETURN(Value lenv, arg(2));
      SQLFLOW_ASSIGN_OR_RETURN(len, lenv.AsInteger());
    }
    if (start < 1) start = 1;
    if (start > static_cast<int64_t>(s.size()) || len <= 0) {
      return Value::String("");
    }
    return Value::String(
        s.substr(static_cast<size_t>(start - 1),
                 static_cast<size_t>(len)));
  }
  if (name == "CONCAT") {
    std::string out;
    for (const ExprPtr& child : e.children) {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*child, ctx));
      out += v.AsString();
    }
    return Value::String(out);
  }
  if (name == "NULLIF") {
    SQLFLOW_ASSIGN_OR_RETURN(Value a, arg(0));
    SQLFLOW_ASSIGN_OR_RETURN(Value b, arg(1));
    if (a.Equals(b)) return Value::Null();
    return a;
  }
  if (name == "NEXTVAL") {
    if (ctx.database == nullptr) {
      return Status::ExecutionError("NEXTVAL requires a database context");
    }
    SQLFLOW_ASSIGN_OR_RETURN(Value seq, arg(0));
    return EvalNextval(ctx.database, seq.AsString());
  }
  return Status::NotFound("unknown function " + name);
}

namespace {

// Executes an uncorrelated subquery (scalar, EXISTS, or IN-list source).
// Subqueries may reference host parameters but not outer-row columns.
Result<ResultSet> RunSubquery(const Expr& e, const EvalContext& ctx) {
  if (ctx.database == nullptr) {
    return Status::ExecutionError("subquery requires a database context");
  }
  static const Params kNoParams;
  const Params& params = ctx.params != nullptr ? *ctx.params : kNoParams;
  return ctx.database->ExecuteSelect(*e.subquery, params);
}

}  // namespace

}  // namespace

Result<Value> EvaluateExpr(const Expr& e, const EvalContext& ctx) {
  if (ctx.node_override) {
    std::optional<Value> v = ctx.node_override(e);
    if (v.has_value()) return *v;
  }
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kStar:
      return Status::ExecutionError("'*' is only valid inside COUNT(*)");
    case ExprKind::kColumnRef: {
      if (ctx.binding == nullptr) {
        return Status::ExecutionError("column reference '" +
                                      e.column_name +
                                      "' outside a row context");
      }
      return ctx.binding->Resolve(e.table_qualifier, e.column_name);
    }
    case ExprKind::kParameter: {
      if (ctx.params == nullptr) {
        return Status::ExecutionError("statement has parameters but none "
                                      "were bound");
      }
      if (!e.param_name.empty()) {
        auto it = ctx.params->named.find(e.param_name);
        if (it != ctx.params->named.end()) return it->second;
      }
      if (e.param_index >= 0 &&
          static_cast<size_t>(e.param_index) <
              ctx.params->positional.size()) {
        return ctx.params->positional[static_cast<size_t>(e.param_index)];
      }
      return Status::NotFound(
          "unbound parameter " +
          (e.param_name.empty() ? "?" + std::to_string(e.param_index + 1)
                                : ":" + e.param_name));
    }
    case ExprKind::kUnary: {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.children[0], ctx));
      switch (e.unary_op) {
        case UnaryOp::kNot: {
          if (v.is_null()) return Value::Null();
          SQLFLOW_ASSIGN_OR_RETURN(bool b, v.AsBoolean());
          return Value::Boolean(!b);
        }
        case UnaryOp::kNegate: {
          if (v.is_null()) return Value::Null();
          if (v.type() == ValueType::kInteger) {
            return Value::Integer(-v.integer());
          }
          SQLFLOW_ASSIGN_OR_RETURN(double d, v.AsDouble());
          return Value::Double(-d);
        }
        case UnaryOp::kIsNull:
          return Value::Boolean(v.is_null());
        case UnaryOp::kIsNotNull:
          return Value::Boolean(!v.is_null());
      }
      return Status::Internal("bad unary operator");
    }
    case ExprKind::kBinary:
      return EvalBinary(e, ctx);
    case ExprKind::kFunctionCall:
      return EvalFunction(e, ctx);
    case ExprKind::kInList: {
      SQLFLOW_ASSIGN_OR_RETURN(Value probe,
                               EvaluateExpr(*e.children[0], ctx));
      if (probe.is_null()) return Value::Null();
      // Collect candidate values: the literal list, or the first column
      // of the IN (SELECT ...) subquery.
      std::vector<Value> items;
      if (e.subquery != nullptr) {
        SQLFLOW_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(e, ctx));
        if (rs.column_count() != 1) {
          return Status::ExecutionError(
              "IN subquery must return exactly one column");
        }
        items.reserve(rs.row_count());
        for (const Row& row : rs.rows()) items.push_back(row[0]);
      } else {
        items.reserve(e.children.size() - 1);
        for (size_t i = 1; i < e.children.size(); ++i) {
          SQLFLOW_ASSIGN_OR_RETURN(Value item,
                                   EvaluateExpr(*e.children[i], ctx));
          items.push_back(std::move(item));
        }
      }
      bool saw_null = false;
      for (const Value& item : items) {
        if (item.is_null()) {
          saw_null = true;
          continue;
        }
        if (probe.Equals(item)) {
          return Value::Boolean(!e.negated);
        }
      }
      if (saw_null) return Value::Null();
      return Value::Boolean(e.negated);
    }
    case ExprKind::kBetween: {
      SQLFLOW_ASSIGN_OR_RETURN(Value v, EvaluateExpr(*e.children[0], ctx));
      SQLFLOW_ASSIGN_OR_RETURN(Value lo, EvaluateExpr(*e.children[1], ctx));
      SQLFLOW_ASSIGN_OR_RETURN(Value hi, EvaluateExpr(*e.children[2], ctx));
      if (v.is_null() || lo.is_null() || hi.is_null()) {
        return Value::Null();
      }
      bool in_range = v.Compare(lo) >= 0 && v.Compare(hi) <= 0;
      return Value::Boolean(e.negated ? !in_range : in_range);
    }
    case ExprKind::kCase: {
      for (size_t i = 0; i + 1 < e.children.size(); i += 2) {
        SQLFLOW_ASSIGN_OR_RETURN(Value cond,
                                 EvaluateExpr(*e.children[i], ctx));
        if (IsTrue(cond)) {
          return EvaluateExpr(*e.children[i + 1], ctx);
        }
      }
      if (e.case_else != nullptr) {
        return EvaluateExpr(*e.case_else, ctx);
      }
      return Value::Null();
    }
    case ExprKind::kSubquery: {
      SQLFLOW_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(e, ctx));
      if (rs.column_count() != 1) {
        return Status::ExecutionError(
            "scalar subquery must return exactly one column");
      }
      if (rs.row_count() == 0) return Value::Null();
      if (rs.row_count() > 1) {
        return Status::ExecutionError(
            "scalar subquery returned more than one row");
      }
      return rs.rows()[0][0];
    }
    case ExprKind::kExists: {
      SQLFLOW_ASSIGN_OR_RETURN(ResultSet rs, RunSubquery(e, ctx));
      return Value::Boolean(rs.row_count() > 0);
    }
  }
  return Status::Internal("bad expression kind");
}

}  // namespace sqlflow::sql
