#ifndef SQLFLOW_SQL_AST_H_
#define SQLFLOW_SQL_AST_H_

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/value.h"

namespace sqlflow::sql {

// ---------------------------------------------------------------------------
// Expressions
// ---------------------------------------------------------------------------

enum class ExprKind {
  kLiteral,
  kColumnRef,
  kParameter,   // :name or ? (positional index assigned at parse time)
  kUnary,
  kBinary,
  kFunctionCall,  // scalar or aggregate
  kInList,
  kBetween,
  kStar,        // only valid inside COUNT(*)
  kCase,        // CASE WHEN ... THEN ... [ELSE ...] END
  kSubquery,    // scalar subquery, or the list side of IN (SELECT ...)
  kExists,      // EXISTS (SELECT ...)
};

enum class UnaryOp { kNot, kNegate, kIsNull, kIsNotNull };

enum class BinaryOp {
  kAdd, kSub, kMul, kDiv, kMod,
  kEq, kNotEq, kLt, kLtEq, kGt, kGtEq,
  kAnd, kOr,
  kLike, kConcat,
};

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;
struct SelectStatement;

struct Expr {
  Expr();
  ~Expr();  // out-of-line: `subquery` points to an incomplete type here
  Expr(Expr&&) = default;
  Expr& operator=(Expr&&) = default;

  ExprKind kind = ExprKind::kLiteral;

  // kLiteral
  Value literal;

  // kColumnRef
  std::string table_qualifier;  // optional alias/table prefix
  std::string column_name;

  // kParameter
  std::string param_name;  // empty for positional
  int param_index = -1;    // 0-based order of appearance in the statement

  // kUnary / kBinary / function args / IN list / BETWEEN bounds
  UnaryOp unary_op = UnaryOp::kNot;
  BinaryOp binary_op = BinaryOp::kAdd;
  std::vector<ExprPtr> children;

  // kFunctionCall
  std::string function_name;  // upper-cased
  bool distinct_arg = false;  // COUNT(DISTINCT x)

  // kInList / kBetween: children[0] is the probe; kInList may be negated.
  bool negated = false;

  // kCase: children are [when1, then1, when2, then2, ...]; `case_else`
  // is the optional ELSE expression.
  ExprPtr case_else;

  // kSubquery / kExists, and IN (SELECT ...) on a kInList node.
  std::unique_ptr<SelectStatement> subquery;

  /// Debug/round-trip rendering (parenthesized, canonical casing).
  std::string ToString() const;
};

ExprPtr MakeLiteral(Value v);
ExprPtr MakeColumnRef(std::string qualifier, std::string column);
ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs);
ExprPtr MakeUnary(UnaryOp op, ExprPtr operand);
ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args);

/// Deep copy (Expr owns its children through unique_ptr).
ExprPtr CloneExpr(const Expr& e);

/// True if the expression tree contains an aggregate function call
/// (COUNT/SUM/AVG/MIN/MAX) at any depth.
bool ContainsAggregate(const Expr& e);

bool IsAggregateFunctionName(const std::string& upper_name);

// ---------------------------------------------------------------------------
// Statements
// ---------------------------------------------------------------------------

enum class StatementKind {
  kSelect,
  kInsert,
  kUpdate,
  kDelete,
  kCreateTable,
  kDropTable,
  kTruncate,
  kCreateIndex,
  kDropIndex,
  kCreateView,
  kDropView,
  kCreateSequence,
  kDropSequence,
  kCall,
  kBegin,
  kCommit,
  kRollback,
  kExplain,
};

/// Stable lower-case name ("select", "create-table", ...) for audit
/// events, trace attributes, and metrics labels.
const char* StatementKindName(StatementKind kind);

struct SelectItem {
  ExprPtr expr;          // null for plain `*`
  std::string alias;     // optional AS alias
  bool star = false;     // `*` or `t.*`
  std::string star_qualifier;  // for `t.*`
};

enum class JoinType { kInner, kLeftOuter, kCross };

struct TableRef {
  std::string table_name;   // empty for a derived table
  std::string alias;        // effective name = alias if set, else table_name
  JoinType join_type = JoinType::kCross;  // how this ref joins the previous
  ExprPtr join_condition;   // ON expr (null for cross/first)
  /// Derived table: FROM (SELECT ...) alias.
  std::unique_ptr<SelectStatement> derived;
};

struct OrderByItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectStatement {
  bool distinct = false;
  std::vector<SelectItem> items;
  std::vector<TableRef> from;        // empty ⇒ SELECT without FROM
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderByItem> order_by;
  std::optional<int64_t> limit;
  std::optional<int64_t> offset;
  // UNION [ALL] chain: executed left-to-right, results concatenated;
  // plain UNION removes duplicates over the combined output.
  std::unique_ptr<SelectStatement> union_next;
  bool union_all = false;
};

/// Deep copy of a SELECT tree (used by CloneExpr for subqueries).
std::unique_ptr<SelectStatement> CloneSelect(const SelectStatement& s);

/// Renders a SELECT tree back to parseable SQL (canonical casing,
/// parenthesized expressions). Round-trips through the parser: the WAL
/// uses it to persist view definitions as re-executable DDL text.
std::string SelectToString(const SelectStatement& s);

struct InsertStatement {
  std::string table_name;
  std::vector<std::string> columns;         // empty ⇒ schema order
  std::vector<std::vector<ExprPtr>> rows;   // VALUES (...), (...)
  std::unique_ptr<SelectStatement> select;  // INSERT ... SELECT
};

struct UpdateStatement {
  std::string table_name;
  std::vector<std::pair<std::string, ExprPtr>> assignments;
  ExprPtr where;
};

struct DeleteStatement {
  std::string table_name;
  ExprPtr where;
};

struct ColumnDefAst {
  std::string name;
  ValueType type = ValueType::kNull;
  bool not_null = false;
  bool primary_key = false;
  ExprPtr default_value;  // DEFAULT <expr>; must be constant-foldable
};

struct CreateTableStatement {
  std::string table_name;
  std::vector<ColumnDefAst> columns;
  bool if_not_exists = false;
  /// Table-level CHECK (<expr>) constraints, evaluated against each
  /// inserted/updated row.
  std::vector<ExprPtr> checks;
};

struct DropTableStatement {
  std::string table_name;
  bool if_exists = false;
};

struct TruncateStatement {
  std::string table_name;
};

struct CreateIndexStatement {
  std::string index_name;
  std::string table_name;
  std::vector<std::string> columns;
  bool unique = false;
};

struct DropIndexStatement {
  std::string index_name;
  bool if_exists = false;
};

struct CreateViewStatement {
  std::string view_name;
  std::unique_ptr<SelectStatement> select;
};

struct DropViewStatement {
  std::string view_name;
  bool if_exists = false;
};

struct CreateSequenceStatement {
  std::string sequence_name;
  int64_t start_with = 1;
};

struct DropSequenceStatement {
  std::string sequence_name;
  bool if_exists = false;
};

struct CallStatement {
  std::string procedure_name;
  std::vector<ExprPtr> arguments;
};

struct Statement;

/// EXPLAIN [ANALYZE] <statement>. Plain EXPLAIN renders the plan the
/// executor would choose without running the target; ANALYZE runs the
/// target with per-operator profiling and renders observed rows/timings.
struct ExplainStatement {
  bool analyze = false;
  std::unique_ptr<Statement> target;
};

/// A single parsed SQL statement; exactly the member matching `kind` is set.
struct Statement {
  StatementKind kind;
  std::unique_ptr<SelectStatement> select;
  std::unique_ptr<InsertStatement> insert;
  std::unique_ptr<UpdateStatement> update;
  std::unique_ptr<DeleteStatement> del;
  std::unique_ptr<CreateTableStatement> create_table;
  std::unique_ptr<DropTableStatement> drop_table;
  std::unique_ptr<TruncateStatement> truncate;
  std::unique_ptr<CreateIndexStatement> create_index;
  std::unique_ptr<DropIndexStatement> drop_index;
  std::unique_ptr<CreateViewStatement> create_view;
  std::unique_ptr<DropViewStatement> drop_view;
  std::unique_ptr<CreateSequenceStatement> create_sequence;
  std::unique_ptr<DropSequenceStatement> drop_sequence;
  std::unique_ptr<CallStatement> call;
  std::unique_ptr<ExplainStatement> explain;

  /// Number of parameters (named + positional) appearing in the statement.
  int parameter_count = 0;
};

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_AST_H_
