#ifndef SQLFLOW_SQL_BATCH_H_
#define SQLFLOW_SQL_BATCH_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/value.h"

namespace sqlflow::sql {

// ---------------------------------------------------------------------------
// Columnar batch layer
// ---------------------------------------------------------------------------
// The vectorized executor (sql/vec_exec.cc) processes rows in fixed-size
// windows. Within a window each expression evaluates to one VecCol: a
// typed value vector plus a packed null bitmap. A column whose window
// values are not uniformly typed (or whose evaluation could raise an
// error the row-at-a-time interpreter would have raised) is marked kBail,
// and the whole window re-evaluates through the scalar EvaluateExpr path
// — semantics never fork, vectorization only accelerates.

/// Rows per execution window. Large enough to amortize dispatch, small
/// enough that a window of doubles + bitmap stays L1/L2-resident.
inline constexpr size_t kBatchCapacity = 1024;

/// Packed validity bitmap: bit set ⇒ the value at that position is NULL.
/// (Null-bits rather than valid-bits: freshly Reset state means "no
/// NULLs", which is the overwhelmingly common case for key columns.)
class NullBitmap {
 public:
  void Reset(size_t n) {
    size_ = n;
    words_.assign((n + 63) / 64, 0);
    null_count_ = 0;
  }
  void SetNull(size_t i) {
    uint64_t& w = words_[i >> 6];
    uint64_t bit = uint64_t{1} << (i & 63);
    if ((w & bit) == 0) {
      w |= bit;
      ++null_count_;
    }
  }
  bool IsNull(size_t i) const {
    return (words_[i >> 6] >> (i & 63)) & 1;
  }
  bool AnyNull() const { return null_count_ > 0; }
  bool AllNull() const { return null_count_ == size_; }
  size_t null_count() const { return null_count_; }
  size_t size() const { return size_; }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
  size_t null_count_ = 0;
};

/// One expression's values over a window. Exactly one typed vector is
/// populated, per `tag`; NULL positions carry a zero placeholder there
/// and are flagged in `nulls`.
struct VecCol {
  enum class Tag {
    kBail,    // not vectorizable for this window — use the scalar path
    kNull,    // every value NULL (typed vectors empty)
    kInt,     // int64 values
    kDouble,  // double values
    kString,  // pointers into stable row / literal storage
    kBool,    // 0/1 values
  };

  Tag tag = Tag::kBail;
  size_t size = 0;
  std::vector<int64_t> ints;
  std::vector<double> dbls;
  std::vector<const std::string*> strs;
  std::vector<uint8_t> bools;
  NullBitmap nulls;

  void ResetBail() {
    tag = Tag::kBail;
    size = 0;
  }

  /// Prepares an all-NULL column of n values.
  void ResetNull(size_t n) {
    tag = Tag::kNull;
    size = n;
    nulls.Reset(n);
    for (size_t i = 0; i < n; ++i) nulls.SetNull(i);
  }

  /// Starts an empty typed column; append values with PushValue.
  void ResetTyped(Tag t, size_t capacity) {
    tag = t;
    size = 0;
    ints.clear();
    dbls.clear();
    strs.clear();
    bools.clear();
    nulls.Reset(capacity);
    switch (t) {
      case Tag::kInt:
        ints.reserve(capacity);
        break;
      case Tag::kDouble:
        dbls.reserve(capacity);
        break;
      case Tag::kString:
        strs.reserve(capacity);
        break;
      case Tag::kBool:
        bools.reserve(capacity);
        break;
      default:
        break;
    }
  }

  bool IsNull(size_t i) const { return nulls.IsNull(i); }

  /// Reconstructs the Value at position i (same type and payload the
  /// scalar evaluator would produce).
  Value At(size_t i) const {
    if (nulls.IsNull(i)) return Value::Null();
    switch (tag) {
      case Tag::kInt:
        return Value::Integer(ints[i]);
      case Tag::kDouble:
        return Value::Double(dbls[i]);
      case Tag::kString:
        return Value::String(*strs[i]);
      case Tag::kBool:
        return Value::Boolean(bools[i] != 0);
      default:
        return Value::Null();
    }
  }
};

/// Loads window values from a sequence of Values (e.g. one scope column
/// across the window's rows). The callback yields the i-th Value.
/// Returns false — leaving `out` as kBail — when the non-NULL values are
/// not uniformly typed (integer and double do not mix: arithmetic and
/// comparison semantics differ between the exact-integer and double
/// paths).
template <typename ValueAt>
bool LoadVecCol(size_t n, const ValueAt& value_at, VecCol* out) {
  out->tag = VecCol::Tag::kNull;
  out->size = n;
  out->ints.clear();
  out->dbls.clear();
  out->strs.clear();
  out->bools.clear();
  out->nulls.Reset(n);
  for (size_t i = 0; i < n; ++i) {
    const Value& v = value_at(i);
    switch (v.type()) {
      case ValueType::kNull:
        out->nulls.SetNull(i);
        switch (out->tag) {
          case VecCol::Tag::kInt:
            out->ints.push_back(0);
            break;
          case VecCol::Tag::kDouble:
            out->dbls.push_back(0.0);
            break;
          case VecCol::Tag::kString:
            out->strs.push_back(nullptr);
            break;
          case VecCol::Tag::kBool:
            out->bools.push_back(0);
            break;
          default:
            break;  // still kNull: backfilled on first typed value
        }
        continue;
      case ValueType::kInteger:
        if (out->tag == VecCol::Tag::kNull) {
          out->tag = VecCol::Tag::kInt;
          out->ints.assign(i, 0);  // backfill leading NULL placeholders
        } else if (out->tag != VecCol::Tag::kInt) {
          out->ResetBail();
          return false;
        }
        out->ints.push_back(v.integer());
        continue;
      case ValueType::kDouble:
        if (out->tag == VecCol::Tag::kNull) {
          out->tag = VecCol::Tag::kDouble;
          out->dbls.assign(i, 0.0);
        } else if (out->tag != VecCol::Tag::kDouble) {
          out->ResetBail();
          return false;
        }
        out->dbls.push_back(v.dbl());
        continue;
      case ValueType::kString:
        if (out->tag == VecCol::Tag::kNull) {
          out->tag = VecCol::Tag::kString;
          out->strs.assign(i, nullptr);
        } else if (out->tag != VecCol::Tag::kString) {
          out->ResetBail();
          return false;
        }
        out->strs.push_back(&v.str());
        continue;
      case ValueType::kBoolean:
        if (out->tag == VecCol::Tag::kNull) {
          out->tag = VecCol::Tag::kBool;
          out->bools.assign(i, 0);
        } else if (out->tag != VecCol::Tag::kBool) {
          out->ResetBail();
          return false;
        }
        out->bools.push_back(v.boolean() ? 1 : 0);
        continue;
    }
    out->ResetBail();
    return false;
  }
  return true;
}

/// One window of columnar data flowing through the pipeline: typed
/// column vectors plus the selection vector of still-live positions.
/// Operators filter by compacting `selection`, never by moving column
/// data.
struct Batch {
  size_t rows = 0;
  std::vector<VecCol> columns;
  std::vector<uint32_t> selection;  // live positions, ascending

  void ResetIdentity(size_t n) {
    rows = n;
    selection.resize(n);
    for (size_t i = 0; i < n; ++i) selection[i] = static_cast<uint32_t>(i);
  }
};

/// Compacts `batch.selection` to the positions where `keep` (indexed by
/// position, not selection ordinal) is true. Returns surviving count.
size_t CompactSelection(Batch* batch, const std::vector<uint8_t>& keep);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_BATCH_H_
