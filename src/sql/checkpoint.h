#ifndef SQLFLOW_SQL_CHECKPOINT_H_
#define SQLFLOW_SQL_CHECKPOINT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "sql/wal.h"

namespace sqlflow::sql {

class Database;

/// What a snapshot file carries besides SQL state: the LSN to resume
/// tail replay from, and the dehydrated workflow journal of every
/// instance whose kWf* records predate the snapshot.
struct SnapshotData {
  uint64_t snapshot_lsn = 0;
  std::map<uint64_t, WfInstanceLog> wf_state;
};

/// Serializes the committed logical state of `db` — catalog objects as
/// re-executable DDL text, per-table committed rows with their row ids,
/// sequence positions, and the workflow journal — into `dir`/snapshot.bin
/// at `snapshot_lsn`. Written to a temp file and renamed, so a crash
/// mid-checkpoint leaves the previous snapshot intact. The file ends in
/// a CRC32 over everything before it; a torn or corrupt snapshot is
/// detected at load time, not trusted. Caller must ensure no statement
/// is concurrently mutating (Database::Checkpoint holds the exclusive
/// statement latch around this).
Status WriteSnapshot(Database& db, const std::string& dir,
                     uint64_t snapshot_lsn,
                     const std::map<uint64_t, WfInstanceLog>& wf_state);

/// Loads `dir`/snapshot.bin into the freshly constructed, empty `db`:
/// re-executes the DDL, replays row images preserving row ids, restores
/// sequence positions. Returns snapshot_lsn == 0 (and an untouched `db`)
/// when no snapshot file exists — recovery then replays the whole log.
Result<SnapshotData> LoadSnapshot(Database& db, const std::string& dir);

/// Canonical dump of a database's *logical* state: schemas, unique
/// constraints, secondary indexes, catalog index metadata, sequences,
/// views, and committed rows sorted by serialized content (row ids and
/// slot order are physical artifacts — aborted statements burn ids, so
/// two behaviorally identical histories may number rows differently).
/// Byte-equal dumps ⇔ SQL-indistinguishable databases; the chaos
/// differential compares recovered state against an uncrashed oracle
/// with this.
std::string CanonicalStateDump(Database& db);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_CHECKPOINT_H_
