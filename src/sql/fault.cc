#include "sql/fault.h"

#include <sstream>

#include "common/rand.h"
#include "obs/metrics.h"

namespace sqlflow::sql {

namespace {

/// What the injected Status says happened, per kind. Messages carry the
/// site so audit trails and test failures point at the statement.
/// Mid-statement faults say "during" — work had already happened.
std::string FaultMessage(StatusCode code, const FaultSite& site,
                         uint64_t ordinal) {
  std::string what;
  switch (code) {
    case StatusCode::kUnavailable:
      what = "connection lost";
      break;
    case StatusCode::kDeadlock:
      what = "deadlock victim";
      break;
    case StatusCode::kTimeout:
      what = "statement timed out";
      break;
    default:
      what = "fault";
      break;
  }
  const char* when =
      site.layer == FaultLayer::kMidStatement ? "during" : "before";
  return "injected " + what + " (#" + std::to_string(ordinal) + ") " +
         when + " [" + site.description + "] on " + site.database;
}

}  // namespace

FaultInjector::FaultInjector(Options options)
    : options_(std::move(options)) {
  if (options_.kinds.empty()) {
    options_.kinds = {StatusCode::kUnavailable};
  }
  Reseed(options_.seed);
}

void FaultInjector::Reseed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mutex_);
  options_.seed = seed;
  rng_state_ = seed == 0 ? 0x9e3779b97f4a7c15ULL : seed;
  stats_ = Stats();
}

uint64_t FaultInjector::NextRandom() { return SplitMix64Next(&rng_state_); }

std::optional<Status> FaultInjector::MaybeFault(const FaultSite& site) {
  // Disabled layers are invisible: no stream draw, no stats — so the
  // statement-layer schedule at a given seed is unchanged by whether the
  // other layers exist.
  switch (site.layer) {
    case FaultLayer::kStatement:
      if (!options_.statement_sites) return std::nullopt;
      break;
    case FaultLayer::kMidStatement:
      if (!options_.mid_statement_sites) return std::nullopt;
      break;
    case FaultLayer::kService:
      if (!options_.service_sites) return std::nullopt;
      break;
    case FaultLayer::kCrash:
      // Crash sites never yield a Status fault — they go through
      // MaybeCrash, which returns a torn-byte count instead.
      return std::nullopt;
    case FaultLayer::kNetwork:
      // Network sites go through MaybeNetworkFault, which returns an
      // action on the frame instead of a Status.
      return std::nullopt;
  }
  // Serialize the draw-and-count path: one shared injector may be hit
  // from every worker at once, and a torn rng draw would break seed
  // reproducibility (concurrent-mode schedules are still interleaving-
  // dependent; only the deterministic scheduler pins them).
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.statements_seen++;
  if (!options_.database_filter.empty() &&
      site.database.find(options_.database_filter) == std::string::npos) {
    return std::nullopt;
  }
  if (!options_.site_filter.empty() &&
      site.description.find(options_.site_filter) == std::string::npos) {
    return std::nullopt;
  }
  stats_.sites_matched++;

  if (options_.budget >= 0 &&
      stats_.faults_injected >= static_cast<uint64_t>(options_.budget)) {
    return std::nullopt;
  }

  bool fire = false;
  if (stats_.faults_injected < options_.fault_first_n &&
      stats_.sites_matched <= options_.fault_first_n) {
    // Count mode: the first N matching statements fault, then the site
    // is healthy again — deterministic retry-absorption schedules.
    fire = true;
  } else if (options_.probability > 0.0) {
    double u = static_cast<double>(NextRandom() >> 11) * 0x1.0p-53;
    fire = u < options_.probability;
  }
  if (!fire) return std::nullopt;

  StatusCode code =
      options_.kinds[NextRandom() % options_.kinds.size()];
  stats_.faults_injected++;
  stats_.injected_by_code[code]++;
  const char* counter = "sql.fault.injected";
  switch (site.layer) {
    case FaultLayer::kStatement:
      stats_.injected_statement++;
      break;
    case FaultLayer::kMidStatement:
      stats_.injected_mid_statement++;
      counter = "sql.fault.injected.mid";
      break;
    case FaultLayer::kService:
      stats_.injected_service++;
      counter = "svc.fault.injected";
      break;
    default:
      break;  // kCrash / kNetwork never reach here
  }
  obs::MetricsRegistry::Global().GetCounter(counter).Increment();
  return Status(code,
                FaultMessage(code, site, stats_.faults_injected));
}

std::optional<uint64_t> FaultInjector::MaybeCrash(const FaultSite& site,
                                                  uint64_t batch_bytes) {
  // Mirrors MaybeFault's gating exactly, so crash schedules are
  // seed-deterministic and a disabled crash layer leaves the other
  // layers' schedules untouched.
  if (!options_.crash_sites) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.statements_seen++;
  if (!options_.database_filter.empty() &&
      site.database.find(options_.database_filter) == std::string::npos) {
    return std::nullopt;
  }
  if (!options_.site_filter.empty() &&
      site.description.find(options_.site_filter) == std::string::npos) {
    return std::nullopt;
  }
  stats_.sites_matched++;

  if (options_.budget >= 0 &&
      stats_.faults_injected >= static_cast<uint64_t>(options_.budget)) {
    return std::nullopt;
  }

  bool fire = false;
  if (stats_.faults_injected < options_.fault_first_n &&
      stats_.sites_matched <= options_.fault_first_n) {
    fire = true;
  } else if (options_.probability > 0.0) {
    double u = static_cast<double>(NextRandom() >> 11) * 0x1.0p-53;
    fire = u < options_.probability;
  }
  if (!fire) return std::nullopt;

  // The tear point: 0 = nothing of this batch survives, batch_bytes =
  // the whole batch is durable but the process died right after.
  uint64_t torn = NextRandom() % (batch_bytes + 1);
  stats_.faults_injected++;
  stats_.injected_crash++;
  obs::MetricsRegistry::Global()
      .GetCounter("wal.crash.injected")
      .Increment();
  return torn;
}

std::optional<NetFault> FaultInjector::MaybeNetworkFault(
    const FaultSite& site, uint64_t frame_bytes) {
  // Mirrors MaybeFault's gating exactly: disabled layers draw nothing,
  // so arming the network layer never perturbs the other layers'
  // schedules at the same seed.
  if (!options_.network_sites) return std::nullopt;
  std::lock_guard<std::mutex> lock(mutex_);
  stats_.statements_seen++;
  if (!options_.database_filter.empty() &&
      site.database.find(options_.database_filter) == std::string::npos) {
    return std::nullopt;
  }
  if (!options_.site_filter.empty() &&
      site.description.find(options_.site_filter) == std::string::npos) {
    return std::nullopt;
  }
  stats_.sites_matched++;

  if (options_.budget >= 0 &&
      stats_.faults_injected >= static_cast<uint64_t>(options_.budget)) {
    return std::nullopt;
  }

  bool fire = false;
  if (stats_.faults_injected < options_.fault_first_n &&
      stats_.sites_matched <= options_.fault_first_n) {
    fire = true;
  } else if (options_.probability > 0.0) {
    double u = static_cast<double>(NextRandom() >> 11) * 0x1.0p-53;
    fire = u < options_.probability;
  }
  if (!fire) return std::nullopt;

  NetFault fault;
  switch (NextRandom() % 4) {
    case 0:
      fault.kind = NetFault::Kind::kDrop;
      break;
    case 1:
      fault.kind = NetFault::Kind::kDelay;
      fault.delay_ms =
          1 + static_cast<uint32_t>(
                  NextRandom() %
                  (options_.network_delay_max_ms == 0
                       ? 1
                       : options_.network_delay_max_ms));
      break;
    case 2:
      fault.kind = NetFault::Kind::kPartialWrite;
      fault.partial_bytes =
          frame_bytes == 0 ? 0 : NextRandom() % frame_bytes;
      break;
    default:
      fault.kind = NetFault::Kind::kAbruptClose;
      break;
  }
  stats_.faults_injected++;
  stats_.injected_network++;
  stats_.injected_net_by_kind[fault.kind]++;
  obs::MetricsRegistry::Global()
      .GetCounter("net.fault.injected")
      .Increment();
  return fault;
}

const char* NetFaultKindName(NetFault::Kind kind) {
  switch (kind) {
    case NetFault::Kind::kDrop:
      return "drop";
    case NetFault::Kind::kDelay:
      return "delay";
    case NetFault::Kind::kPartialWrite:
      return "partial_write";
    case NetFault::Kind::kAbruptClose:
      return "abrupt_close";
  }
  return "unknown";
}

std::string DescribeFaultStats(const FaultInjector::Stats& stats) {
  std::ostringstream os;
  os << "injected=" << stats.faults_injected;
  for (const auto& [code, count] : stats.injected_by_code) {
    os << ' ' << StatusCodeName(code) << '=' << count;
  }
  if (stats.injected_mid_statement > 0 || stats.injected_service > 0 ||
      stats.injected_crash > 0 || stats.injected_network > 0) {
    os << " by_layer[stmt=" << stats.injected_statement
       << " mid=" << stats.injected_mid_statement
       << " svc=" << stats.injected_service
       << " crash=" << stats.injected_crash
       << " net=" << stats.injected_network << ']';
  }
  os << " matched=" << stats.sites_matched
     << " seen=" << stats.statements_seen;
  return os.str();
}

}  // namespace sqlflow::sql
