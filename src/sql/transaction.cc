#include "sql/transaction.h"

#include "sql/database.h"
#include "sql/table.h"

namespace sqlflow::sql {

namespace {

/// DML undo entries restore data; everything else re-shapes the catalog
/// and therefore invalidates memoized plans when unwound.
bool IsDdlUndo(UndoEntry::Kind kind) {
  switch (kind) {
    case UndoEntry::Kind::kInsert:
    case UndoEntry::Kind::kDelete:
    case UndoEntry::Kind::kUpdate:
    case UndoEntry::Kind::kTruncate:
    case UndoEntry::Kind::kSequenceAdvance:
      return false;
    default:
      return true;
  }
}

/// Reverses one recorded change. Uses only the Raw* replay entry points
/// (which never consult fault hooks and never re-log), so rollback can
/// run safely while a fault injector is armed. Under MVCC (`txn` set),
/// rows are resolved by id (slots may have shifted) and each entry also
/// restores the row's pre-mutation version metadata and drops the stash
/// entry its mutation created.
void UndoOne(UndoEntry& e, Database* db, const MvccTxn* txn) {
  Catalog& catalog = db->catalog();
  switch (e.kind) {
  case UndoEntry::Kind::kInsert: {
    Table* table = catalog.FindTable(e.table_name);
    if (table == nullptr) break;
    size_t slot = e.row_index;
    if (txn != nullptr && e.row_id != 0) {
      slot = table->FindSlotByRowId(e.row_id, e.row_index);
    }
    if (slot < table->row_count()) {
      table->RawRemoveAt(slot);
    }
    break;
  }
  case UndoEntry::Kind::kDelete: {
    Table* table = catalog.FindTable(e.table_name);
    if (table != nullptr) {
      size_t at = e.row_index;
      if (at > table->row_count()) at = table->row_count();
      table->RawInsertAt(at, std::move(e.row));
      if (txn != nullptr && e.row_id != 0) {
        size_t slot = at < table->row_count() ? at : table->row_count() - 1;
        RowMeta meta;
        meta.row_id = e.row_id;
        meta.commit_ts = e.meta_commit_ts;
        meta.writer = e.meta_writer;
        table->RestoreMetaAt(slot, meta);
        if (e.meta_writer != txn->id) {
          table->DropStashedVersion(e.row_id, txn->id);
        }
      }
    }
    break;
  }
  case UndoEntry::Kind::kUpdate: {
    Table* table = catalog.FindTable(e.table_name);
    if (table == nullptr) break;
    size_t slot = e.row_index;
    if (txn != nullptr && e.row_id != 0) {
      slot = table->FindSlotByRowId(e.row_id, e.row_index);
    }
    if (slot < table->row_count()) {
      table->RawReplaceAt(slot, std::move(e.row));
      if (txn != nullptr && e.row_id != 0) {
        RowMeta meta;
        meta.row_id = e.row_id;
        meta.commit_ts = e.meta_commit_ts;
        meta.writer = e.meta_writer;
        table->RestoreMetaAt(slot, meta);
        if (e.meta_writer != txn->id) {
          table->DropStashedVersion(e.row_id, txn->id);
        }
      }
    }
    break;
  }
  case UndoEntry::Kind::kTruncate: {
    Table* table = catalog.FindTable(e.table_name);
    if (table != nullptr) {
      table->RawRestoreAll(std::move(e.bulk_rows));
    }
    break;
  }
  case UndoEntry::Kind::kCreateTable:
    (void)catalog.DropTable(e.table_name);
    break;
  case UndoEntry::Kind::kDropTable: {
    auto table = std::make_unique<Table>(e.saved_schema);
    // Re-create secondary constraints, then restore the data. The
    // PRIMARY KEY constraint is rebuilt by the Table constructor;
    // skip saved constraints with the same auto-generated name.
    for (const auto& [name, cols] : e.saved_constraints) {
      bool is_pk = !table->unique_constraints().empty() &&
                   table->unique_constraints()[0].name == name;
      if (!is_pk) {
        (void)table->AddUniqueConstraint(name, cols);
      }
    }
    // Re-register dropped index metadata and rebuild the hash
    // structures (DropTable erased both). The PRIMARY KEY secondary
    // index is re-created by the Table constructor.
    for (const IndexInfo& info : e.saved_indexes) {
      (void)catalog.CreateIndex(info);
      (void)table->AddSecondaryIndex(info.name, info.columns,
                                     info.unique);
    }
    table->RawRestoreAll(std::move(e.saved_rows));
    catalog.RestoreTable(std::move(table));
    break;
  }
  case UndoEntry::Kind::kCreateSequence:
    (void)catalog.DropSequence(e.table_name);
    break;
  case UndoEntry::Kind::kDropSequence: {
    (void)catalog.CreateSequence(e.table_name, e.sequence_value);
    if (Sequence* seq = catalog.FindSequence(e.table_name)) {
      seq->next_value = e.sequence_value;
    }
    break;
  }
  case UndoEntry::Kind::kSequenceAdvance: {
    if (Sequence* seq = catalog.FindSequence(e.table_name)) {
      seq->next_value = e.sequence_value;
    }
    break;
  }
  case UndoEntry::Kind::kCreateIndex: {
    Table* table = catalog.FindTable(e.index_table);
    if (table != nullptr) {
      (void)table->DropUniqueConstraint(e.table_name);
      (void)table->DropSecondaryIndex(e.table_name);
    }
    (void)catalog.DropIndex(e.table_name);
    break;
  }
  case UndoEntry::Kind::kDropIndex: {
    // Restore the dropped index (structure + catalog metadata),
    // rebuilt from the table's current rows; Raw* replay of any
    // remaining data entries keeps it maintained from here on.
    for (IndexInfo& info : e.saved_indexes) {
      if (Table* table = catalog.FindTable(info.table_name)) {
        if (info.unique) {
          (void)table->AddUniqueConstraint(info.name, info.columns);
        }
        (void)table->AddSecondaryIndex(info.name, info.columns,
                                       info.unique);
      }
      (void)catalog.CreateIndex(info);
    }
    break;
  }
  case UndoEntry::Kind::kCreateView:
    (void)catalog.DropView(e.table_name);
    break;
  case UndoEntry::Kind::kDropView:
    (void)catalog.CreateView(e.table_name, std::move(e.saved_view));
    break;
  }
}

}  // namespace

void UndoLog::RollbackInto(Database* db) {
  for (auto it = entries_.rbegin(); it != entries_.rend(); ++it) {
    UndoOne(*it, db, txn);
  }
  entries_.clear();
}

bool UndoLog::RollbackTo(size_t mark, Database* db) {
  bool undid_ddl = false;
  while (entries_.size() > mark) {
    undid_ddl = undid_ddl || IsDdlUndo(entries_.back().kind);
    UndoOne(entries_.back(), db, txn);
    entries_.pop_back();
  }
  return undid_ddl;
}

}  // namespace sqlflow::sql
