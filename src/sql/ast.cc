#include "sql/ast.h"

#include "common/string_util.h"

namespace sqlflow::sql {

namespace {

const char* UnaryOpName(UnaryOp op) {
  switch (op) {
    case UnaryOp::kNot:
      return "NOT";
    case UnaryOp::kNegate:
      return "-";
    case UnaryOp::kIsNull:
      return "IS NULL";
    case UnaryOp::kIsNotNull:
      return "IS NOT NULL";
  }
  return "?";
}

const char* BinaryOpName(BinaryOp op) {
  switch (op) {
    case BinaryOp::kAdd:
      return "+";
    case BinaryOp::kSub:
      return "-";
    case BinaryOp::kMul:
      return "*";
    case BinaryOp::kDiv:
      return "/";
    case BinaryOp::kMod:
      return "%";
    case BinaryOp::kEq:
      return "=";
    case BinaryOp::kNotEq:
      return "<>";
    case BinaryOp::kLt:
      return "<";
    case BinaryOp::kLtEq:
      return "<=";
    case BinaryOp::kGt:
      return ">";
    case BinaryOp::kGtEq:
      return ">=";
    case BinaryOp::kAnd:
      return "AND";
    case BinaryOp::kOr:
      return "OR";
    case BinaryOp::kLike:
      return "LIKE";
    case BinaryOp::kConcat:
      return "||";
  }
  return "?";
}

}  // namespace

Expr::Expr() = default;
Expr::~Expr() = default;

namespace {

/// SQL string literal with embedded quotes doubled, so the rendering
/// re-parses (the lexer understands '' escapes).
std::string QuoteSqlString(const std::string& s) {
  std::string out = "'";
  for (char c : s) {
    if (c == '\'') out += "''";
    else out += c;
  }
  out += "'";
  return out;
}

}  // namespace

std::string Expr::ToString() const {
  switch (kind) {
    case ExprKind::kLiteral:
      return literal.type() == ValueType::kString
                 ? QuoteSqlString(literal.str())
                 : literal.ToString();
    case ExprKind::kColumnRef:
      return table_qualifier.empty() ? column_name
                                     : table_qualifier + "." + column_name;
    case ExprKind::kParameter:
      return param_name.empty() ? "?" : ":" + param_name;
    case ExprKind::kStar:
      return "*";
    case ExprKind::kUnary:
      if (unary_op == UnaryOp::kIsNull || unary_op == UnaryOp::kIsNotNull) {
        return "(" + children[0]->ToString() + " " +
               UnaryOpName(unary_op) + ")";
      }
      return std::string("(") + UnaryOpName(unary_op) + " " +
             children[0]->ToString() + ")";
    case ExprKind::kBinary:
      return "(" + children[0]->ToString() + " " +
             BinaryOpName(binary_op) + " " + children[1]->ToString() + ")";
    case ExprKind::kFunctionCall: {
      std::string out = function_name + "(";
      if (distinct_arg) out += "DISTINCT ";
      for (size_t i = 0; i < children.size(); ++i) {
        if (i > 0) out += ", ";
        out += children[i]->ToString();
      }
      out += ")";
      return out;
    }
    case ExprKind::kInList: {
      std::string out = "(" + children[0]->ToString();
      out += negated ? " NOT IN (" : " IN (";
      for (size_t i = 1; i < children.size(); ++i) {
        if (i > 1) out += ", ";
        out += children[i]->ToString();
      }
      out += "))";
      return out;
    }
    case ExprKind::kBetween: {
      std::string out = "(" + children[0]->ToString();
      out += negated ? " NOT BETWEEN " : " BETWEEN ";
      out += children[1]->ToString() + " AND " + children[2]->ToString();
      out += ")";
      return out;
    }
    case ExprKind::kCase: {
      std::string out = "CASE";
      for (size_t i = 0; i + 1 < children.size(); i += 2) {
        out += " WHEN " + children[i]->ToString() + " THEN " +
               children[i + 1]->ToString();
      }
      if (case_else != nullptr) {
        out += " ELSE " + case_else->ToString();
      }
      out += " END";
      return out;
    }
    case ExprKind::kSubquery:
      return subquery != nullptr ? "(" + SelectToString(*subquery) + ")"
                                 : "(SELECT ...)";
    case ExprKind::kExists:
      return subquery != nullptr
                 ? "EXISTS (" + SelectToString(*subquery) + ")"
                 : "EXISTS (SELECT ...)";
  }
  return "?";
}

std::string SelectToString(const SelectStatement& s) {
  std::string out = "SELECT ";
  if (s.distinct) out += "DISTINCT ";
  for (size_t i = 0; i < s.items.size(); ++i) {
    if (i > 0) out += ", ";
    const SelectItem& item = s.items[i];
    if (item.star) {
      out += item.star_qualifier.empty() ? "*" : item.star_qualifier + ".*";
    } else {
      out += item.expr->ToString();
      if (!item.alias.empty()) out += " AS " + item.alias;
    }
  }
  if (!s.from.empty()) {
    out += " FROM ";
    for (size_t i = 0; i < s.from.size(); ++i) {
      const TableRef& ref = s.from[i];
      if (i > 0) {
        switch (ref.join_type) {
          case JoinType::kCross:
            out += ", ";
            break;
          case JoinType::kInner:
            out += " JOIN ";
            break;
          case JoinType::kLeftOuter:
            out += " LEFT JOIN ";
            break;
        }
      }
      if (ref.derived != nullptr) {
        out += "(" + SelectToString(*ref.derived) + ") AS " + ref.alias;
      } else {
        out += ref.table_name;
        if (!ref.alias.empty() && ref.alias != ref.table_name) {
          out += " AS " + ref.alias;
        }
      }
      if (i > 0 && ref.join_condition != nullptr) {
        out += " ON " + ref.join_condition->ToString();
      }
    }
  }
  if (s.where != nullptr) out += " WHERE " + s.where->ToString();
  if (!s.group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < s.group_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += s.group_by[i]->ToString();
    }
  }
  if (s.having != nullptr) out += " HAVING " + s.having->ToString();
  if (!s.order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < s.order_by.size(); ++i) {
      if (i > 0) out += ", ";
      out += s.order_by[i].expr->ToString();
      if (s.order_by[i].descending) out += " DESC";
    }
  }
  if (s.limit.has_value()) out += " LIMIT " + std::to_string(*s.limit);
  if (s.offset.has_value()) out += " OFFSET " + std::to_string(*s.offset);
  if (s.union_next != nullptr) {
    out += s.union_all ? " UNION ALL " : " UNION ";
    out += SelectToString(*s.union_next);
  }
  return out;
}

ExprPtr MakeLiteral(Value v) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(v);
  return e;
}

ExprPtr MakeColumnRef(std::string qualifier, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table_qualifier = std::move(qualifier);
  e->column_name = std::move(column);
  return e;
}

ExprPtr MakeBinary(BinaryOp op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->binary_op = op;
  e->children.push_back(std::move(lhs));
  e->children.push_back(std::move(rhs));
  return e;
}

ExprPtr MakeUnary(UnaryOp op, ExprPtr operand) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kUnary;
  e->unary_op = op;
  e->children.push_back(std::move(operand));
  return e;
}

ExprPtr MakeFunctionCall(std::string name, std::vector<ExprPtr> args) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kFunctionCall;
  e->function_name = ToUpperAscii(name);
  e->children = std::move(args);
  return e;
}

ExprPtr CloneExpr(const Expr& e) {
  auto out = std::make_unique<Expr>();
  out->kind = e.kind;
  out->literal = e.literal;
  out->table_qualifier = e.table_qualifier;
  out->column_name = e.column_name;
  out->param_name = e.param_name;
  out->param_index = e.param_index;
  out->unary_op = e.unary_op;
  out->binary_op = e.binary_op;
  out->function_name = e.function_name;
  out->distinct_arg = e.distinct_arg;
  out->negated = e.negated;
  out->children.reserve(e.children.size());
  for (const auto& child : e.children) {
    out->children.push_back(CloneExpr(*child));
  }
  if (e.case_else != nullptr) out->case_else = CloneExpr(*e.case_else);
  if (e.subquery != nullptr) out->subquery = CloneSelect(*e.subquery);
  return out;
}

std::unique_ptr<SelectStatement> CloneSelect(const SelectStatement& s) {
  auto out = std::make_unique<SelectStatement>();
  out->distinct = s.distinct;
  for (const SelectItem& item : s.items) {
    SelectItem copy;
    if (item.expr != nullptr) copy.expr = CloneExpr(*item.expr);
    copy.alias = item.alias;
    copy.star = item.star;
    copy.star_qualifier = item.star_qualifier;
    out->items.push_back(std::move(copy));
  }
  for (const TableRef& ref : s.from) {
    TableRef copy;
    copy.table_name = ref.table_name;
    copy.alias = ref.alias;
    copy.join_type = ref.join_type;
    if (ref.join_condition != nullptr) {
      copy.join_condition = CloneExpr(*ref.join_condition);
    }
    if (ref.derived != nullptr) {
      copy.derived = CloneSelect(*ref.derived);
    }
    out->from.push_back(std::move(copy));
  }
  if (s.where != nullptr) out->where = CloneExpr(*s.where);
  for (const ExprPtr& g : s.group_by) {
    out->group_by.push_back(CloneExpr(*g));
  }
  if (s.having != nullptr) out->having = CloneExpr(*s.having);
  for (const OrderByItem& item : s.order_by) {
    OrderByItem copy;
    copy.expr = CloneExpr(*item.expr);
    copy.descending = item.descending;
    out->order_by.push_back(std::move(copy));
  }
  out->limit = s.limit;
  out->offset = s.offset;
  if (s.union_next != nullptr) out->union_next = CloneSelect(*s.union_next);
  out->union_all = s.union_all;
  return out;
}

bool IsAggregateFunctionName(const std::string& upper_name) {
  return upper_name == "COUNT" || upper_name == "SUM" ||
         upper_name == "AVG" || upper_name == "MIN" || upper_name == "MAX";
}

const char* StatementKindName(StatementKind kind) {
  switch (kind) {
    case StatementKind::kSelect:
      return "select";
    case StatementKind::kInsert:
      return "insert";
    case StatementKind::kUpdate:
      return "update";
    case StatementKind::kDelete:
      return "delete";
    case StatementKind::kCreateTable:
      return "create-table";
    case StatementKind::kDropTable:
      return "drop-table";
    case StatementKind::kTruncate:
      return "truncate";
    case StatementKind::kCreateIndex:
      return "create-index";
    case StatementKind::kDropIndex:
      return "drop-index";
    case StatementKind::kCreateView:
      return "create-view";
    case StatementKind::kDropView:
      return "drop-view";
    case StatementKind::kCreateSequence:
      return "create-sequence";
    case StatementKind::kDropSequence:
      return "drop-sequence";
    case StatementKind::kCall:
      return "call";
    case StatementKind::kBegin:
      return "begin";
    case StatementKind::kCommit:
      return "commit";
    case StatementKind::kRollback:
      return "rollback";
    case StatementKind::kExplain:
      return "explain";
  }
  return "unknown";
}

bool ContainsAggregate(const Expr& e) {
  if (e.kind == ExprKind::kFunctionCall &&
      IsAggregateFunctionName(e.function_name)) {
    return true;
  }
  for (const auto& child : e.children) {
    if (ContainsAggregate(*child)) return true;
  }
  return false;
}

}  // namespace sqlflow::sql
