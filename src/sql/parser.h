#ifndef SQLFLOW_SQL_PARSER_H_
#define SQLFLOW_SQL_PARSER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"

namespace sqlflow::sql {

/// Parses a single SQL statement (an optional trailing ';' is consumed;
/// trailing garbage is an error).
Result<std::unique_ptr<Statement>> ParseStatement(std::string_view input);

/// Parses a ';'-separated script into its statements. Empty statements are
/// skipped.
Result<std::vector<std::unique_ptr<Statement>>> ParseScript(
    std::string_view input);

/// Parses a standalone scalar expression (used by tests and by engines that
/// evaluate conditions, e.g. while-activity conditions over host variables).
Result<ExprPtr> ParseExpression(std::string_view input);

}  // namespace sqlflow::sql

#endif  // SQLFLOW_SQL_PARSER_H_
