#include "sql/inverse.h"

#include "sql/database.h"
#include "sql/schema.h"
#include "sql/table.h"

namespace sqlflow::sql {

namespace {

/// The columns a compensating DELETE/UPDATE keys on: the table's first
/// unique constraint (the PRIMARY KEY, when one exists) or every column.
std::vector<size_t> KeyColumns(const Table& table) {
  if (!table.unique_constraints().empty()) {
    return table.unique_constraints()[0].column_indexes;
  }
  std::vector<size_t> all(table.schema().column_count());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  return all;
}

/// Appends "c1 = ? AND c2 IS NULL AND ..." for `row` projected onto
/// `key_columns`, binding the non-null values positionally.
void AppendKeyPredicate(const Table& table,
                        const std::vector<size_t>& key_columns,
                        const Row& row, std::string* sql,
                        Params* params) {
  bool first = true;
  for (size_t col : key_columns) {
    if (!first) *sql += " AND ";
    first = false;
    *sql += table.schema().columns()[col].name;
    if (row[col].is_null()) {
      *sql += " IS NULL";
    } else {
      *sql += " = ?";
      params->Add(row[col]);
    }
  }
}

InverseStatement MakeReinsert(const Table& table, const Row& row) {
  InverseStatement inv;
  inv.sql = "INSERT INTO " + table.schema().table_name() + " (";
  std::string placeholders;
  for (size_t i = 0; i < table.schema().column_count(); ++i) {
    if (i > 0) {
      inv.sql += ", ";
      placeholders += ", ";
    }
    inv.sql += table.schema().columns()[i].name;
    placeholders += '?';
    inv.params.Add(row[i]);
  }
  inv.sql += ") VALUES (" + placeholders + ')';
  return inv;
}

}  // namespace

Result<std::vector<InverseStatement>> BuildInverseStatements(
    const Database& db, const std::vector<UndoEntry>& effects) {
  std::vector<InverseStatement> program;
  program.reserve(effects.size());
  // Reverse order: the inverse of "do A then B" is "undo B then undo A".
  for (auto it = effects.rbegin(); it != effects.rend(); ++it) {
    const UndoEntry& e = *it;
    const Table* table = db.catalog().FindTable(e.table_name);
    switch (e.kind) {
      case UndoEntry::Kind::kInsert: {
        if (table == nullptr) {
          return Status::NotFound("cannot invert INSERT: table '" +
                                  e.table_name + "' is gone");
        }
        if (e.new_row.empty()) {
          return Status::InvalidArgument(
              "cannot invert INSERT into '" + e.table_name +
              "': effect was captured without row post-images "
              "(set_capture_effects must be on during execution)");
        }
        InverseStatement inv;
        inv.sql = "DELETE FROM " + e.table_name + " WHERE ";
        AppendKeyPredicate(*table, KeyColumns(*table), e.new_row,
                           &inv.sql, &inv.params);
        program.push_back(std::move(inv));
        break;
      }
      case UndoEntry::Kind::kDelete: {
        if (table == nullptr) {
          return Status::NotFound("cannot invert DELETE: table '" +
                                  e.table_name + "' is gone");
        }
        program.push_back(MakeReinsert(*table, e.row));
        break;
      }
      case UndoEntry::Kind::kUpdate: {
        if (table == nullptr) {
          return Status::NotFound("cannot invert UPDATE: table '" +
                                  e.table_name + "' is gone");
        }
        if (e.new_row.empty()) {
          return Status::InvalidArgument(
              "cannot invert UPDATE of '" + e.table_name +
              "': effect was captured without row post-images "
              "(set_capture_effects must be on during execution)");
        }
        InverseStatement inv;
        inv.sql = "UPDATE " + e.table_name + " SET ";
        for (size_t i = 0; i < table->schema().column_count(); ++i) {
          if (i > 0) inv.sql += ", ";
          inv.sql += table->schema().columns()[i].name;
          inv.sql += " = ?";
          inv.params.Add(e.row[i]);
        }
        inv.sql += " WHERE ";
        // Keyed by the new row: that is what the committed table holds.
        AppendKeyPredicate(*table, KeyColumns(*table), e.new_row,
                           &inv.sql, &inv.params);
        program.push_back(std::move(inv));
        break;
      }
      case UndoEntry::Kind::kTruncate: {
        if (table == nullptr) {
          return Status::NotFound("cannot invert TRUNCATE: table '" +
                                  e.table_name + "' is gone");
        }
        for (const Row& row : e.bulk_rows) {
          program.push_back(MakeReinsert(*table, row));
        }
        break;
      }
      case UndoEntry::Kind::kCreateTable:
        program.push_back({"DROP TABLE " + e.table_name, Params()});
        break;
      case UndoEntry::Kind::kCreateSequence:
        program.push_back({"DROP SEQUENCE " + e.table_name, Params()});
        break;
      case UndoEntry::Kind::kCreateIndex:
        program.push_back({"DROP INDEX " + e.table_name, Params()});
        break;
      case UndoEntry::Kind::kCreateView:
        program.push_back({"DROP VIEW " + e.table_name, Params()});
        break;
      case UndoEntry::Kind::kSequenceAdvance:
        break;  // burned sequence numbers stay burned, by design
      case UndoEntry::Kind::kDropTable: {
        // DROP TABLE captures everything needed to rebuild the object:
        // schema, secondary indexes, and the committed rows. The
        // inverse is a real DDL+DML program, so compensation can undo
        // a flow that tore down a per-instance result table.
        if (e.saved_schema.column_count() == 0) {
          return Status::InvalidArgument(
              "cannot invert DROP TABLE '" + e.table_name +
              "': effect was captured without the saved schema "
              "(set_capture_effects must be on during execution)");
        }
        program.push_back({CreateTableSql(e.saved_schema), Params()});
        for (const IndexInfo& index : e.saved_indexes) {
          std::string ddl = std::string("CREATE ") +
                            (index.unique ? "UNIQUE " : "") + "INDEX " +
                            index.name + " ON " + index.table_name +
                            " (";
          for (size_t i = 0; i < index.columns.size(); ++i) {
            if (i > 0) ddl += ", ";
            ddl += index.columns[i];
          }
          ddl += ')';
          program.push_back({std::move(ddl), Params()});
        }
        for (const Row& row : e.saved_rows) {
          InverseStatement inv;
          inv.sql = "INSERT INTO " + e.saved_schema.table_name() + " (";
          std::string placeholders;
          for (size_t i = 0; i < e.saved_schema.column_count(); ++i) {
            if (i > 0) {
              inv.sql += ", ";
              placeholders += ", ";
            }
            inv.sql += e.saved_schema.columns()[i].name;
            placeholders += '?';
            inv.params.Add(row[i]);
          }
          inv.sql += ") VALUES (" + placeholders + ')';
          program.push_back(std::move(inv));
        }
        break;
      }
      case UndoEntry::Kind::kDropSequence:
      case UndoEntry::Kind::kDropIndex:
      case UndoEntry::Kind::kDropView:
        return Status::InvalidArgument(
            "cannot auto-invert a DROP effect on '" + e.table_name +
            "' — recreating dropped objects is DDL migration, not "
            "compensation");
    }
  }
  return program;
}

Status ApplyInverseStatements(
    Database& db, const std::vector<InverseStatement>& program) {
  for (const InverseStatement& inv : program) {
    auto result = db.Execute(inv.sql, inv.params);
    if (!result.ok()) return result.status();
  }
  return Status::OK();
}

}  // namespace sqlflow::sql
